"""``select_culprits``: evidence → anchored set cover → culprit modules.

The orchestration layer of :mod:`repro.selection` and the programmatic
face of the pipeline's ``selection`` stage.  Given the accepted ensemble
and the ECT-failing runs, it

1. derives per-variable deviation weights restricted to the ECT-failing
   variables and runs the robust evidence selection
   (:func:`repro.selection.select_affected_variables`);
2. slices backward from exactly those variables
   (``slice_failing_runs(evidence=...)``) for per-variable module depths,
   module scores, and the ranked candidate pool;
3. builds the anchored :class:`~repro.selection.setcover.SetCoverProblem`
   — candidates restricted to the ranked slice, coverage within
   ``depth_cap`` BFS levels, module weight ``1 / (1 + score)`` so strong
   slice evidence is cheap to keep, anchors forced — and solves it with
   the configured :class:`~repro.selection.setcover.Solver`;
4. returns a :class:`SelectionResult` ordered strongest evidence first,
   ready to warm-start :func:`repro.refine.refine_slice`.

Instrumented via :mod:`repro.obs`: a ``selection.solve`` span plus the
``selection.solves`` / ``selection.nodes_explored`` counters and the
``selection.warm_start_gap`` distribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from ..obs import get_metrics, get_tracer
from ..slicing import slice_failing_runs, variable_weights
from .evidence import EVIDENCE_METHODS, EvidenceSelection, select_affected_variables
from .setcover import SetCoverProblem, get_solver

__all__ = [
    "SelectionResult",
    "SelectionSpec",
    "select_culprits",
]


@dataclass(frozen=True)
class SelectionSpec:
    """Knobs of optimization-based culprit selection.

    Defaults are tuned so all five registered patches localize to at most
    eight modules containing the injected culprit (held by the strict
    bench gate); ``ExperimentSpec.selection = None`` means these defaults.
    """

    #: evidence method: "mad" (robust, default), "lasso", or "topk"
    method: str = "mad"
    #: outlier strictness of the evidence method (MAD multiplier)
    strength: float = 3.0
    #: pad the evidence up to this many variables
    min_variables: int = 6
    #: hard cap on evidence variables
    max_variables: int = 8
    #: strongest evidence variables whose neighbourhood anchors the cover
    anchor_variables: int = 4
    #: anchor radius in BFS levels (the refinement stage's ``slack``)
    anchor_depth: int = 2
    #: slice-reachability constraint: a module can cover a variable only
    #: within this many BFS levels of the variable's backward slice
    depth_cap: int = 2
    #: registered solver name ("branch-and-bound" or "pulp")
    solver: str = "branch-and-bound"
    #: branch-and-bound node budget (solution flagged non-optimal beyond)
    node_limit: int = 200_000

    def __post_init__(self) -> None:
        if self.method not in EVIDENCE_METHODS:
            raise ValueError(
                f"unknown evidence method {self.method!r} "
                f"(known: {', '.join(EVIDENCE_METHODS)})"
            )
        if self.anchor_depth < 0 or self.depth_cap < 0:
            raise ValueError("depths must be >= 0")
        if self.anchor_depth > self.depth_cap:
            raise ValueError(
                f"anchor_depth ({self.anchor_depth}) must not exceed "
                f"depth_cap ({self.depth_cap}): anchors are covers too"
            )


@dataclass(frozen=True)
class SelectionResult:
    """The selected culprit modules and the optimization that chose them."""

    #: selected modules, strongest slice evidence first
    modules: tuple[str, ...]
    #: the solver's minimum-weight cover (anchors included), sorted
    cover: tuple[str, ...]
    #: modules forced by anchor reachability, sorted
    anchors: tuple[str, ...]
    #: the evidence selection the cover explains
    evidence: Optional[EvidenceSelection]
    #: evidence variables that could not be sliced or covered (no seeds,
    #: or nothing within ``depth_cap``) — excluded from the cover
    dropped_variables: tuple[str, ...] = ()
    #: per-module slice scores of the selected modules
    scores: Mapping[str, float] = field(default_factory=dict)
    cost: float = 0.0
    warm_start_cost: float = 0.0
    optimal: bool = True
    nodes_explored: int = 0
    solver: str = ""

    def __len__(self) -> int:
        return len(self.modules)

    def __contains__(self, module: str) -> bool:
        return module in self.modules

    def __bool__(self) -> bool:
        return bool(self.modules)

    @property
    def warm_start_gap(self) -> float:
        """Cost the exact solve shaved off the greedy warm start."""
        return self.warm_start_cost - self.cost

    def summary(self) -> str:
        head = ", ".join(self.modules[:6])
        return (
            f"SelectionResult({len(self.modules)} modules via {self.solver}"
            f"{'' if self.optimal else ' (node limit)'}: {head}"
            f"{'...' if len(self.modules) > 6 else ''})"
        )

    def to_dict(self) -> dict:
        return {
            "modules": list(self.modules),
            "cover": list(self.cover),
            "anchors": list(self.anchors),
            "evidence": None if self.evidence is None else self.evidence.to_dict(),
            "dropped_variables": list(self.dropped_variables),
            "scores": {k: self.scores[k] for k in sorted(self.scores)},
            "cost": self.cost,
            "warm_start_cost": self.warm_start_cost,
            "optimal": self.optimal,
            "nodes_explored": self.nodes_explored,
            "solver": self.solver,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SelectionResult":
        evidence = data.get("evidence")
        return cls(
            modules=tuple(data["modules"]),
            cover=tuple(data.get("cover", ())),
            anchors=tuple(data.get("anchors", ())),
            evidence=(
                None if evidence is None else EvidenceSelection.from_dict(evidence)
            ),
            dropped_variables=tuple(data.get("dropped_variables", ())),
            scores=dict(data.get("scores", {})),
            cost=float(data.get("cost", 0.0)),
            warm_start_cost=float(data.get("warm_start_cost", 0.0)),
            optimal=bool(data.get("optimal", True)),
            nodes_explored=int(data.get("nodes_explored", 0)),
            solver=data.get("solver", ""),
        )

    @classmethod
    def empty(cls, evidence: Optional[EvidenceSelection] = None) -> "SelectionResult":
        """The no-evidence selection: nothing selected, nothing solved."""
        return cls(modules=(), cover=(), anchors=(), evidence=evidence)


def select_culprits(
    ensemble,
    runs: Sequence,
    *,
    graph=None,
    source=None,
    coverage=None,
    ect_result=None,
    communities=None,
    ranked=None,
    spec: Optional[SelectionSpec] = None,
) -> SelectionResult:
    """Optimization-based culprit selection for a set of ECT-failing runs.

    Parameters mirror :func:`repro.slicing.slice_failing_runs`;
    additionally ``communities`` (a
    :class:`~repro.analysis.CommunityResult`) guides the solver's greedy
    warm start and ``ranked`` (the slicing stage's
    :class:`~repro.slicing.RankedSlice`) restricts the candidate pool to
    the slice — anchor modules stay candidates regardless, their
    reachability constraint outranks the cap.  Deterministic for a fixed
    :class:`SelectionSpec`.
    """
    spec = spec or SelectionSpec()
    if not runs:
        raise ValueError("select_culprits needs at least one failing run")

    failing = (
        list(ect_result.failing_variables) if ect_result is not None else None
    )
    weights = variable_weights(ensemble, runs, failing)
    evidence = select_affected_variables(
        weights,
        method=spec.method,
        strength=spec.strength,
        min_variables=spec.min_variables,
        max_variables=spec.max_variables,
        anchor_variables=spec.anchor_variables,
    )
    if not evidence.variables:
        return SelectionResult.empty(evidence)

    # one slicer pass over exactly the selected evidence: per-variable
    # depths + module scores (store rehydration drops RankedSlice.slices,
    # so the stage recomputes them here rather than trusting its input)
    sliced = slice_failing_runs(
        ensemble,
        runs,
        graph=graph,
        source=source,
        coverage=coverage,
        evidence=evidence,
    )
    depths = {
        name: sl.module_depths() for name, sl in sliced.slices.items()
    }
    scores = dict(sliced.ranking)

    pool = None if ranked is None else set(ranked.modules)
    anchors: set[str] = set()
    for name in evidence.anchors:
        for module, depth in depths.get(name, {}).items():
            if depth <= spec.anchor_depth:
                anchors.add(module)

    coverers: dict[str, frozenset[str]] = {}
    dropped: list[str] = []
    for name in evidence.variables:
        near = {
            module
            for module, depth in depths.get(name, {}).items()
            if depth <= spec.depth_cap
            and (pool is None or module in pool or module in anchors)
        }
        if near:
            coverers[name] = frozenset(near)
        else:
            dropped.append(name)
    if not coverers:
        return SelectionResult.empty(evidence)

    module_weights = {
        module: 1.0 / (1.0 + scores.get(module, 0.0))
        for covered in coverers.values()
        for module in covered
    }
    for module in anchors:
        module_weights.setdefault(
            module, 1.0 / (1.0 + scores.get(module, 0.0))
        )
    groups: dict[str, int] = {}
    if communities is not None:
        ordered = [tuple(sorted(c)) for c in communities.communities]
        for module in module_weights:
            groups[module] = next(
                (i for i, c in enumerate(ordered) if module in c), -1
            )

    problem = SetCoverProblem(
        elements=tuple(
            name for name in evidence.variables if name in coverers
        ),
        coverers=coverers,
        weights=module_weights,
        forced=frozenset(anchors),
        groups=groups,
    )
    solver = get_solver(spec.solver, node_limit=spec.node_limit)

    tracer = get_tracer()
    metrics = get_metrics()
    with tracer.span(
        "selection.solve",
        lambda: {
            "solver": solver.name,
            "elements": len(problem.elements),
            "candidates": len(problem.candidates),
            "anchors": len(anchors),
        },
    ) as span:
        solution = solver.solve(problem)
        span.annotate(
            modules=len(solution.modules),
            nodes_explored=solution.nodes_explored,
            optimal=solution.optimal,
        )
    metrics.inc("selection.solves")
    metrics.inc("selection.nodes_explored", solution.nodes_explored)
    metrics.observe("selection.warm_start_gap", solution.warm_start_gap)

    modules = sorted(
        solution.modules, key=lambda m: (-scores.get(m, 0.0), m)
    )
    return SelectionResult(
        modules=tuple(modules),
        cover=solution.modules,
        anchors=tuple(sorted(anchors)),
        evidence=evidence,
        dropped_variables=tuple(dropped),
        scores={m: float(scores.get(m, 0.0)) for m in modules},
        cost=solution.cost,
        warm_start_cost=solution.warm_start_cost,
        optimal=solution.optimal,
        nodes_explored=solution.nodes_explored,
        solver=solution.solver,
    )

"""Robust affected-variable selection: the evidence layer of culprit selection.

The slicer's historical rule — "take the ``top_k`` most-deviant output
variables" — is a fixed-size cut: it keeps chaotic background deviation
whenever fewer than ``top_k`` variables are genuinely affected, and it
truncates the signal whenever more are.  This module replaces that cut with
robust statistics over the per-variable deviation weights
(:func:`repro.slicing.variable_weights`):

``"mad"`` (default)
    Median/MAD outlier detection: a variable is *strong* evidence when its
    weight exceeds ``median + strength * MAD`` of the weight population.
    The median/MAD pair is insensitive to the outliers it is looking for,
    so one broken invariant (weight ≈ log1p(2e6) ≈ 14.5) does not drag the
    threshold up and hide a second, subtler signal.

``"lasso"``
    L1-style soft-thresholding: shrink every weight by λ (the
    ``max_variables + 1``-th largest weight — the largest λ keeping at most
    ``max_variables`` coefficients active, exactly the LASSO path knot) and
    call the survivors active; *strong* evidence is an active variable whose
    shrunk weight is at least ``strength`` × the median positive shrinkage.

``"topk"``
    The legacy fixed-size cut, kept for comparison runs.

Every method returns an :class:`EvidenceSelection`: the selected variables
(strongest first), their weights, and the *anchor* subset — the strongest
evidence whose slice neighbourhood the set-cover stage
(:mod:`repro.selection.setcover`) must keep reachable.  The selection is
deterministic: all orderings break ties lexicographically.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Mapping

__all__ = [
    "EVIDENCE_METHODS",
    "EvidenceSelection",
    "select_affected_variables",
]

#: recognised values of ``select_affected_variables(method=...)``
EVIDENCE_METHODS = ("mad", "lasso", "topk")


@dataclass(frozen=True)
class EvidenceSelection:
    """Affected output variables, as selected evidence.

    ``variables`` are ordered strongest evidence first (ties broken by
    name); ``anchors`` is the prefix of *strong* variables whose slice
    neighbourhoods anchor the set-cover stage.  Also the replacement for
    the deprecated ``slice_failing_runs(variables=...)`` kwarg — pass one
    of these as ``evidence=`` instead.
    """

    #: selected variable base names, ordered by (-weight, name)
    variables: tuple[str, ...]
    #: deviation weight of each selected variable
    weights: Mapping[str, float] = field(default_factory=dict)
    #: the strong prefix anchoring slice-reachability constraints
    anchors: tuple[str, ...] = ()
    #: how the selection was made ("mad", "lasso", "topk", "explicit")
    method: str = "explicit"
    #: the strong-evidence cut the method applied (0 when not applicable)
    threshold: float = 0.0

    def __post_init__(self) -> None:
        if len(set(self.variables)) != len(self.variables):
            raise ValueError("evidence variables must be unique")
        unknown = [a for a in self.anchors if a not in self.variables]
        if unknown:
            raise ValueError(
                f"anchors must be selected variables, got extra {unknown}"
            )

    def __len__(self) -> int:
        return len(self.variables)

    def __contains__(self, name: str) -> bool:
        return name in self.variables

    def to_dict(self) -> dict:
        return {
            "variables": list(self.variables),
            "weights": {k: self.weights[k] for k in sorted(self.weights)},
            "anchors": list(self.anchors),
            "method": self.method,
            "threshold": self.threshold,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "EvidenceSelection":
        return cls(
            variables=tuple(data["variables"]),
            weights=dict(data.get("weights", {})),
            anchors=tuple(data.get("anchors", ())),
            method=data.get("method", "explicit"),
            threshold=float(data.get("threshold", 0.0)),
        )


def _ordered(weights: Mapping[str, float]) -> list[str]:
    return sorted(weights, key=lambda name: (-weights[name], name))


def select_affected_variables(
    weights: Mapping[str, float],
    *,
    method: str = "mad",
    strength: float = 3.0,
    min_variables: int = 6,
    max_variables: int = 8,
    anchor_variables: int = 4,
) -> EvidenceSelection:
    """Select the affected output variables from deviation ``weights``.

    Parameters
    ----------
    weights:
        ``{variable base name: deviation weight}`` as produced by
        :func:`repro.slicing.variable_weights` — typically restricted to
        the ECT-failing variables.
    method:
        One of :data:`EVIDENCE_METHODS` (see the module docstring).
    strength:
        Outlier strictness: the MAD multiplier (``"mad"``) or the
        median-shrinkage multiple (``"lasso"``).  Higher = fewer strong
        variables.
    min_variables:
        The selection is padded with the next-strongest variables up to
        this size, so a single gross outlier does not starve the set-cover
        stage of covering constraints.
    max_variables:
        Hard cap on the selection size (the strongest survive).
    anchor_variables:
        Cap on the anchor prefix.  When a method finds no strong variables
        (a flat weight distribution), the top ``anchor_variables`` selected
        variables anchor instead — matching the refinement stage's
        ``top_variables`` protection rule.
    """
    if method not in EVIDENCE_METHODS:
        raise ValueError(
            f"unknown evidence method {method!r} "
            f"(known: {', '.join(EVIDENCE_METHODS)})"
        )
    if min_variables < 1 or max_variables < 1 or anchor_variables < 1:
        raise ValueError("variable counts must be >= 1")
    if min_variables > max_variables:
        raise ValueError(
            f"min_variables ({min_variables}) must not exceed "
            f"max_variables ({max_variables})"
        )
    if not weights:
        return EvidenceSelection(variables=(), method=method)

    ordered = _ordered(weights)
    threshold = 0.0
    if method == "mad":
        values = sorted(weights.values())
        med = statistics.median(values)
        mad = statistics.median([abs(v - med) for v in values])
        threshold = med + strength * mad
        strong = [name for name in ordered if weights[name] > threshold]
    elif method == "lasso":
        values = sorted(weights.values(), reverse=True)
        lam = values[max_variables] if len(values) > max_variables else 0.0
        shrunk = {
            name: weights[name] - lam
            for name in ordered
            if weights[name] - lam > 0.0
        }
        active = [name for name in ordered if name in shrunk]
        if shrunk:
            scale = statistics.median(sorted(shrunk.values()))
            threshold = lam + strength * scale
            strong = [
                name for name in active if shrunk[name] >= strength * scale
            ]
        else:
            strong = []
    else:  # "topk"
        strong = ordered[:max_variables]

    selected = list(strong)
    for name in ordered:
        if len(selected) >= min_variables:
            break
        if name not in selected:
            selected.append(name)
    selected = sorted(selected, key=lambda n: (-weights[n], n))[:max_variables]
    anchors = (strong or selected)[:anchor_variables]
    anchors = [name for name in anchors if name in selected]
    return EvidenceSelection(
        variables=tuple(selected),
        weights={name: float(weights[name]) for name in selected},
        anchors=tuple(anchors),
        method=method,
        threshold=float(threshold),
    )

"""repro.selection — optimization-based culprit selection.

The bridge between slicing and refinement: instead of handing Algorithm
5.4 the whole ranked slice (top-k evidence, ~45% of the modules) to prune
iteratively, select the culprit candidates *up front* as the optimum of a
small, exactly-solved combinatorial program:

1. **Evidence** (:mod:`repro.selection.evidence`) — robust median/MAD (or
   LASSO-style soft-threshold) selection of the genuinely affected output
   variables, replacing the slicer's fixed top-k cut.
2. **Set cover** (:mod:`repro.selection.setcover`) — the minimum-weight
   module set covering all selected evidence, subject to
   slice-reachability constraints (a module covers a variable only within
   ``depth_cap`` BFS levels of its coverage-filtered backward slice;
   modules near the strongest evidence are anchored into every solution).
   Solved exactly by a deterministic pure-python branch-and-bound
   warm-started from a community-guided greedy cover, or by the optional
   PuLP/CBC backend behind the same :class:`Solver` protocol.
3. **Stage** — ``root_cause_pipeline`` runs this as the ``selection``
   stage between slicing and refinement, so ``refine_slice`` starts from
   the set-cover optimum instead of the full slice: fewer candidate
   modules in, fewer exclusion iterations, tighter localizations out.

>>> from repro.selection import SelectionSpec, select_culprits
>>> result = select_culprits(ensemble, failing_runs, graph=graph,
...                          source=source, ect_result=verdict,
...                          spec=SelectionSpec())
>>> result.modules  # minimum-weight cover, strongest evidence first
"""

from .evidence import (
    EVIDENCE_METHODS,
    EvidenceSelection,
    select_affected_variables,
)
from .select import SelectionResult, SelectionSpec, select_culprits
from .setcover import (
    BranchAndBoundSolver,
    InfeasibleSelectionError,
    PulpSolver,
    SelectionError,
    SetCoverProblem,
    SetCoverSolution,
    Solver,
    UnknownSolverError,
    get_solver,
    greedy_cover,
    list_solvers,
)

__all__ = [
    "BranchAndBoundSolver",
    "EVIDENCE_METHODS",
    "EvidenceSelection",
    "InfeasibleSelectionError",
    "PulpSolver",
    "SelectionError",
    "SelectionResult",
    "SelectionSpec",
    "SetCoverProblem",
    "SetCoverSolution",
    "Solver",
    "UnknownSolverError",
    "get_solver",
    "greedy_cover",
    "list_solvers",
    "select_affected_variables",
    "select_culprits",
]

"""Weighted set cover with reachability anchors: the selection optimizer.

Culprit selection is cast as a minimum-weight set-cover MILP: choose the
cheapest module set such that **every** selected evidence variable is
covered by at least one chosen module that can reach it within
``depth_cap`` BFS levels of its coverage-filtered backward slice, subject
to the *anchor* constraints — modules within the anchor radius of the
strongest evidence variables are forced into every solution (the sharpest
part of the failure signal points at them; this is Algorithm 5.4's
protection rule promoted from a sampling guard into a hard MILP
constraint).  Minimality is what tells a culprit from a conduit: one
module explaining three deviating variables beats three single-purpose
hub modules.

Two interchangeable solvers behind the :class:`Solver` protocol:

:class:`BranchAndBoundSolver` (default)
    A deterministic pure-python branch-and-bound.  Branches on the
    uncovered element with the fewest remaining coverers, bounds with the
    classic per-element density lower bound, and warm-starts from
    :func:`greedy_cover` — a community-aware greedy whose incumbent keeps
    the gap metric (``selection.warm_start_gap``) honest.  All tie-breaks
    are lexicographic, so the node count and the optimum are platform- and
    hash-seed-independent (property-tested in ``tests/selection``).

:class:`PulpSolver`
    The same MILP handed to `PuLP <https://coin-or.github.io/pulp/>`_/CBC
    when the optional ``pulp`` package is installed; raises
    :class:`SelectionError` when it is not.  CI exercises it on exactly
    one matrix entry — everywhere else the pure-python solver carries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Protocol, runtime_checkable

from ..errors import ReproError

__all__ = [
    "BranchAndBoundSolver",
    "InfeasibleSelectionError",
    "PulpSolver",
    "SelectionError",
    "SetCoverProblem",
    "SetCoverSolution",
    "Solver",
    "UnknownSolverError",
    "get_solver",
    "greedy_cover",
    "list_solvers",
]

#: cost differences below this are ties (broken lexicographically)
_EPS = 1e-9


class SelectionError(ReproError):
    """Raised when culprit selection cannot run or cannot finish."""


class InfeasibleSelectionError(SelectionError):
    """A cover is impossible: some element has no candidate coverer."""

    def __init__(self, elements):
        self.elements = tuple(sorted(elements))
        super().__init__(
            "no candidate module covers evidence variable(s): "
            + ", ".join(self.elements)
        )


class UnknownSolverError(SelectionError, KeyError):
    """Raised for a solver name that is not registered."""

    def __str__(self) -> str:  # avoid KeyError's repr-quoting of the message
        return self.args[0] if self.args else ""


@dataclass(frozen=True)
class SetCoverProblem:
    """A weighted set-cover instance over modules and evidence variables.

    ``elements`` are the evidence variables to explain; ``coverers`` maps
    each element to the modules able to cover it (its depth-capped slice);
    ``weights`` prices each module; ``forced`` fixes the anchor modules
    into every solution; ``groups`` (module → community index) guides the
    greedy warm start toward community-coherent covers.
    """

    elements: tuple[str, ...]
    coverers: Mapping[str, frozenset[str]]
    weights: Mapping[str, float]
    forced: frozenset[str] = frozenset()
    groups: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        missing = [e for e in self.elements if e not in self.coverers]
        if missing:
            raise ValueError(f"elements without coverer sets: {missing}")

    @property
    def candidates(self) -> tuple[str, ...]:
        """Every module the instance can choose from, sorted."""
        out = set(self.forced)
        for e in self.elements:
            out.update(self.coverers[e])
        return tuple(sorted(out))

    def validate(self) -> None:
        """Raise :class:`InfeasibleSelectionError` on uncoverable elements."""
        bad = [e for e in self.elements if not self.coverers[e]]
        if bad:
            raise InfeasibleSelectionError(bad)

    def cost(self, modules) -> float:
        """Total weight of ``modules``, summed in sorted order."""
        return sum(self.weights.get(m, 1.0) for m in sorted(modules))


@dataclass(frozen=True)
class SetCoverSolution:
    """A cover, its cost, and how the solver got there."""

    #: chosen modules (including the forced anchors), sorted
    modules: tuple[str, ...]
    cost: float
    #: True when the solver proved optimality (False on node-limit stops)
    optimal: bool
    #: branch-and-bound nodes expanded (0 for external solvers)
    nodes_explored: int
    #: cost of the greedy warm-start incumbent
    warm_start_cost: float
    solver: str

    @property
    def warm_start_gap(self) -> float:
        """How much the exact solve improved on the greedy warm start."""
        return self.warm_start_cost - self.cost


@runtime_checkable
class Solver(Protocol):
    """Anything that can solve a :class:`SetCoverProblem`.

    Implementations must be deterministic for a fixed problem: same
    modules, same cost, same node count on every platform.
    """

    name: str

    def solve(self, problem: SetCoverProblem) -> SetCoverSolution:
        """Return a minimum-weight cover of ``problem``."""
        ...  # pragma: no cover - protocol


def greedy_cover(problem: SetCoverProblem) -> tuple[str, ...]:
    """Community-guided greedy cover: the branch-and-bound warm start.

    Starts from the forced anchors, then repeatedly takes the module with
    the best cost-per-newly-covered-element density — preferring, at equal
    density, modules from a community already represented in the partial
    cover (the modularity-optimal partition groups tightly coupled
    modules, and real culprits sit in the community the anchors already
    flagged), then lexicographically smaller names.  Deterministic;
    raises :class:`InfeasibleSelectionError` when no cover exists.
    """
    problem.validate()
    chosen = set(problem.forced)
    uncovered = {
        e for e in problem.elements if not (problem.coverers[e] & chosen)
    }
    communities = {problem.groups.get(m) for m in chosen}
    while uncovered:
        best: Optional[tuple[float, int, str]] = None
        for m in problem.candidates:
            if m in chosen:
                continue
            gain = sum(1 for e in uncovered if m in problem.coverers[e])
            if gain == 0:
                continue
            density = problem.weights.get(m, 1.0) / gain
            outside = 0 if problem.groups.get(m) in communities else 1
            key = (density, outside, m)
            if best is None or key < best:
                best = key
        if best is None:  # pragma: no cover - validate() precludes this
            raise InfeasibleSelectionError(uncovered)
        module = best[2]
        chosen.add(module)
        communities.add(problem.groups.get(module))
        uncovered = {
            e for e in uncovered if module not in problem.coverers[e]
        }
    return tuple(sorted(chosen))


class BranchAndBoundSolver:
    """Deterministic pure-python branch-and-bound for weighted set cover.

    Complete element-branching: each node picks the uncovered element with
    the fewest surviving coverers and branches on *which* coverer handles
    it, banning earlier siblings in later branches so no cover is
    enumerated twice.  The density lower bound ``Σ_e min_m w(m)/|cov(m)|``
    prunes, the :func:`greedy_cover` incumbent warm-starts, and
    ``node_limit`` bounds the worst case (the solution is then flagged
    non-optimal rather than wrong).
    """

    name = "branch-and-bound"

    def __init__(self, node_limit: int = 200_000):
        if node_limit < 1:
            raise ValueError(f"node_limit must be >= 1, got {node_limit}")
        self.node_limit = node_limit

    def solve(self, problem: SetCoverProblem) -> SetCoverSolution:
        problem.validate()
        warm = greedy_cover(problem)
        warm_cost = problem.cost(warm)
        weights = problem.weights
        coverers = problem.coverers

        best: tuple[str, ...] = warm
        best_cost = warm_cost
        nodes = 0
        truncated = False

        def lower_bound(uncovered, banned) -> float:
            bound = 0.0
            for e in sorted(uncovered):
                options = coverers[e] - banned
                if not options:
                    return float("inf")
                bound += min(
                    weights.get(m, 1.0)
                    / sum(1 for x in uncovered if m in coverers[x])
                    for m in sorted(options)
                )
            return bound

        def search(chosen: set, cost: float, uncovered: set, banned: frozenset):
            nonlocal best, best_cost, nodes, truncated
            if truncated:
                return
            nodes += 1
            if nodes >= self.node_limit:
                truncated = True
                return
            if not uncovered:
                key = tuple(sorted(chosen))
                if cost < best_cost - _EPS or (
                    abs(cost - best_cost) <= _EPS and key < best
                ):
                    best, best_cost = key, cost
                return
            if cost + lower_bound(uncovered, banned) >= best_cost - _EPS:
                return
            # branch on the most constrained element, then on its coverers
            # cheapest first; banning earlier siblings keeps branches disjoint
            element = min(
                uncovered, key=lambda e: (len(coverers[e] - banned), e)
            )
            options = sorted(
                coverers[element] - banned,
                key=lambda m: (weights.get(m, 1.0), m),
            )
            for i, module in enumerate(options):
                search(
                    chosen | {module},
                    cost + weights.get(module, 1.0),
                    {e for e in uncovered if module not in coverers[e]},
                    banned | frozenset(options[:i]),
                )

        forced_cost = problem.cost(problem.forced)
        uncovered = {
            e
            for e in problem.elements
            if not (coverers[e] & problem.forced)
        }
        search(set(problem.forced), forced_cost, uncovered, frozenset())
        return SetCoverSolution(
            modules=best,
            cost=best_cost,
            optimal=not truncated,
            nodes_explored=nodes,
            warm_start_cost=warm_cost,
            solver=self.name,
        )


class PulpSolver:
    """The same MILP via the optional PuLP/CBC backend.

    Import of ``pulp`` is deferred to :meth:`solve`, so merely naming the
    solver (CLI validation, spec round-trips) never requires the package;
    solving without it raises :class:`SelectionError` with install advice.
    """

    name = "pulp"

    def __init__(self, node_limit: int = 200_000):
        self.node_limit = node_limit  # accepted for protocol symmetry

    def solve(self, problem: SetCoverProblem) -> SetCoverSolution:
        try:
            import pulp
        except ImportError as exc:
            raise SelectionError(
                "the 'pulp' selection solver needs the optional PuLP "
                "package (pip install pulp); the built-in "
                "'branch-and-bound' solver needs nothing"
            ) from exc
        problem.validate()
        warm = greedy_cover(problem)
        warm_cost = problem.cost(warm)
        candidates = problem.candidates
        model = pulp.LpProblem("culprit_selection", pulp.LpMinimize)
        x = {
            m: pulp.LpVariable(f"x_{i}", cat="Binary")
            for i, m in enumerate(candidates)
        }
        model += pulp.lpSum(
            problem.weights.get(m, 1.0) * x[m] for m in candidates
        )
        for e in sorted(problem.elements):
            model += (
                pulp.lpSum(x[m] for m in sorted(problem.coverers[e])) >= 1,
                f"cover_{e}",
            )
        for m in sorted(problem.forced):
            model += x[m] == 1, f"anchor_{m}"
        for m in warm:  # warm-start the MIP from the greedy incumbent
            x[m].setInitialValue(1)
        status = model.solve(pulp.PULP_CBC_CMD(msg=False))
        if pulp.LpStatus[status] == "Infeasible":
            raise InfeasibleSelectionError(problem.elements)
        if pulp.LpStatus[status] != "Optimal":
            raise SelectionError(
                f"pulp solve ended with status {pulp.LpStatus[status]!r}"
            )
        modules = tuple(
            sorted(m for m in candidates if (x[m].value() or 0.0) > 0.5)
        )
        return SetCoverSolution(
            modules=modules,
            cost=problem.cost(modules),
            optimal=True,
            nodes_explored=0,
            warm_start_cost=warm_cost,
            solver=self.name,
        )


_SOLVERS = {
    BranchAndBoundSolver.name: BranchAndBoundSolver,
    PulpSolver.name: PulpSolver,
}


def list_solvers() -> list[str]:
    """Names of all registered selection solvers, sorted."""
    return sorted(_SOLVERS)


def get_solver(name: str, *, node_limit: int = 200_000) -> Solver:
    """Instantiate a registered solver by name.

    Raises :class:`UnknownSolverError` (a :class:`SelectionError` that is
    also a ``KeyError``) for unregistered names, so a typo in ``--solver``
    fails at argument-validation time with exit code 2.
    """
    try:
        cls = _SOLVERS[name]
    except KeyError:
        known = ", ".join(list_solvers())
        raise UnknownSolverError(
            f"unknown selection solver {name!r} (known: {known})"
        ) from None
    return cls(node_limit=node_limit)

"""repro.ensemble — accepted-ensemble and experimental-run generation.

This is the statistical front half of the paper's consistency pipeline: a
set of N model runs that differ only in accepted ways (tiny
initial-temperature perturbations and independent PRNG seeds) defines the
distribution a change must stay inside to count as "the same climate".
:class:`EnsembleSpec` derives the N member configs deterministically from
one base seed, :func:`generate_ensemble` fans them out through a pluggable
execution backend (``serial`` / ``thread`` / ``process`` — see
:mod:`repro.ensemble.backends`) sharing one parsed
:class:`~repro.model.builder.ModelSource`, with an optional
content-addressed :class:`RunArtifact` disk cache making re-runs
incremental (coverage included), and the resulting :class:`Ensemble`
holds the member matrix plus merged coverage for the ECT / slicing
stages.  All backends are bit-identical; ``process`` is the one that
scales past the GIL.

Quickstart — does the ``cldfrc-premib`` bug patch change the climate?

>>> from repro.ensemble import EnsembleSpec, generate_ensemble
>>> from repro.ect import ect_test
>>> from repro.model import ModelConfig
>>> from repro.runtime import RunConfig, run_model
>>> ens = generate_ensemble(n=30)                     # accepted ensemble
>>> spec = ens.spec
>>> patched = ModelConfig(patches=("cldfrc-premib",))
>>> runs = [run_model(spec.experimental_config(i, model=patched))
...         for i in range(3)]
>>> ect_test(ens, runs).consistent                    # bug is flagged
False
>>> control = [run_model(spec.experimental_config(i)) for i in range(3)]
>>> ect_test(ens, control).consistent                 # held-out seeds pass
True
"""

from __future__ import annotations

from .artifact import RunArtifact
from .backends import (
    ExecutionBackend,
    InvalidBatchSizeError,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    UnknownBackendError,
    VectorizedBackend,
    get_backend,
    list_backends,
    register_backend,
)
from .cache import MemberCache, member_cache_key
from .generate import Ensemble, EnsembleGenerator, generate_ensemble, run_vector
from .spec import EnsembleSpec

__all__ = [
    "Ensemble",
    "EnsembleGenerator",
    "EnsembleSpec",
    "ExecutionBackend",
    "InvalidBatchSizeError",
    "MemberCache",
    "ProcessBackend",
    "RunArtifact",
    "SerialBackend",
    "ThreadBackend",
    "UnknownBackendError",
    "VectorizedBackend",
    "generate_ensemble",
    "get_backend",
    "list_backends",
    "member_cache_key",
    "register_backend",
    "run_vector",
]

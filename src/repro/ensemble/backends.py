"""Pluggable execution backends for the ensemble member fan-out.

``generate_ensemble`` is a *coordinator*: it derives member configs,
consults the artifact cache, and hands the cache misses to an
:class:`ExecutionBackend` that decides **where** the interpreter runs.
Four backends ship:

``serial``
    Run members one after another in the calling thread.  The reference
    semantics every other backend must match bit-for-bit, and the fastest
    choice for one or two members.

``thread``
    A :class:`concurrent.futures.ThreadPoolExecutor` sharing one parsed
    :class:`~repro.model.builder.ModelSource`.  Cheap to start and fine for
    overlapping cache I/O, but the interpreter is pure Python, so member
    *execution* is GIL-bound — wall clock scales like ``serial`` no matter
    the pool width.

``process``
    A :class:`concurrent.futures.ProcessPoolExecutor` that sidesteps the
    GIL.  Each worker keeps a per-process ``{model token: parsed
    ModelSource}`` cache, so a worker pays the build + parse cost once and
    then runs many members against the cached ASTs; under the ``fork``
    start method the workers additionally inherit the parent's already
    parsed source for free.  Workers return :class:`RunArtifact` values
    (plain arrays + counters), never interpreter internals, so the IPC
    payload stays small and version-stable.

``vectorized``
    One member-batched interpreter pass (:mod:`repro.runtime.vec`) that
    advances every member at once over numpy arrays carrying a leading
    member axis.  Single-core and GIL-friendly, it beats the scalar
    backends by an order of magnitude on wide ensembles; members whose
    configs differ in more than ``pertlim``/``seed`` fall into separate
    batches automatically.

Every backend maps the same ``(index, RunConfig)`` list to the same
artifacts — the interpreter is deterministic, so ``serial``, ``thread``,
``process`` and ``vectorized`` produce bit-identical ensembles (a
conformance test holds them to that).

Backends are looked up by name via :func:`get_backend`; the selection knob
on :class:`~repro.ensemble.spec.EnsembleSpec` / ``generate_ensemble`` and
the ``REPRO_ENSEMBLE_BACKEND`` environment variable both resolve through
the same registry, so new backends (e.g. a cluster dispatcher) only need
one ``register_backend`` call.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from concurrent.futures import FIRST_COMPLETED, wait
from typing import Callable, Iterator, Optional

from ..errors import ReproError
from ..model.builder import ModelConfig, ModelSource, build_model_source
from ..obs import Span, get_tracer, new_span_id
from ..runtime import RunConfig, run_model
from .artifact import RunArtifact
from .cache import member_cache_key

__all__ = [
    "DEFAULT_BACKEND",
    "ExecutionBackend",
    "InvalidBatchSizeError",
    "ProcessBackend",
    "SerialBackend",
    "ThreadBackend",
    "UnknownBackendError",
    "VectorizedBackend",
    "get_backend",
    "list_backends",
    "register_backend",
]


class UnknownBackendError(ReproError, ValueError, KeyError):
    """Raised for a backend name that is not registered.

    Mirrors :class:`~repro.model.patches.UnknownPatchError`: it subclasses
    :class:`ValueError` (the error type ``get_backend`` has always raised,
    so existing callers keep working) and :class:`KeyError` (for callers
    treating the registry as a mapping), and its message names every
    registered backend so a typo in ``backend=`` or the
    ``REPRO_ENSEMBLE_BACKEND`` environment variable fails fast and loudly
    instead of deep inside an ensemble generation.
    """

    def __str__(self) -> str:  # avoid KeyError's repr-quoting of the message
        return self.args[0] if self.args else ""

class InvalidBatchSizeError(ReproError, ValueError):
    """Raised for a nonsense vectorized batch size, wherever it came from.

    Mirrors :class:`UnknownBackendError`: a :class:`ValueError` whose
    message names the offending value *and its origin* (constructor
    argument, ``EnsembleSpec.vec_batch``, or the ``REPRO_VEC_BATCH``
    environment variable), so a typo'd knob fails fast at configuration
    time instead of deep inside a batched ensemble pass.
    """

    def __str__(self) -> str:  # keep the plain message, no repr-quoting
        return self.args[0] if self.args else ""


#: environment knob bounding the vectorized backend's batch width
VEC_BATCH_ENV_VAR = "REPRO_VEC_BATCH"


def validate_batch_size(value, origin: str) -> int:
    """``value`` as a positive int, or :class:`InvalidBatchSizeError`.

    ``origin`` names where the knob came from so the error message points
    at the right place to fix.
    """
    if isinstance(value, str):
        try:
            value = int(value.strip())
        except ValueError:
            raise InvalidBatchSizeError(
                f"invalid vectorized batch size {value!r} from {origin} "
                "(expected a positive integer)"
            ) from None
    if isinstance(value, bool) or not isinstance(value, int) or value < 1:
        raise InvalidBatchSizeError(
            f"invalid vectorized batch size {value!r} from {origin} "
            "(expected a positive integer)"
        )
    return value


def resolve_vec_batch(*candidates) -> Optional[tuple[int, str]]:
    """The effective ``(batch size, origin)``: first non-None candidate
    (each a ``(value, origin)`` pair), then the ``REPRO_VEC_BATCH``
    environment variable, else None (one batch per uniform group)."""
    for value, origin in candidates:
        if value is not None:
            return validate_batch_size(value, origin), origin
    env = os.environ.get(VEC_BATCH_ENV_VAR)
    if env is not None and env.strip():
        origin = f"the {VEC_BATCH_ENV_VAR} environment variable"
        return validate_batch_size(env, origin), origin
    return None


#: environment knob consulted when neither the call nor the spec chooses
BACKEND_ENV_VAR = "REPRO_ENSEMBLE_BACKEND"

#: the fallback when nothing selects a backend (see ``resolve_backend_name``)
DEFAULT_BACKEND = "thread"


def _bare_artifact(source: ModelSource, config: RunConfig) -> RunArtifact:
    """Run one member and wrap it as an artifact (shared by all backends)."""
    result = run_model(config, source=source)
    return RunArtifact.from_result(result, member_cache_key(source, config))


def _run_artifact(
    source: ModelSource,
    config: RunConfig,
    parent_id: Optional[str] = None,
    backend: Optional[str] = None,
) -> RunArtifact:
    """One member under an ``ensemble.member`` span (in-process backends).

    ``parent_id`` carries the submitting thread's current span into pool
    threads, whose own span stacks are empty.
    """
    tracer = get_tracer()
    span = tracer.span(
        "ensemble.member",
        lambda: {"seed": config.seed, "nsteps": config.nsteps,
                 "backend": backend},
        parent_id=parent_id,
    )
    with span:
        artifact = _bare_artifact(source, config)
        span.annotate(statements=int(artifact.statements_executed))
    return artifact


class ExecutionBackend(ABC):
    """Strategy interface: run member configs, yield artifacts as they land.

    ``run_members`` receives the shared built+parsed :class:`ModelSource`
    and ``(index, config)`` pairs; it yields ``(index, RunArtifact)`` in
    *completion* order (the coordinator reassembles member order).  A
    backend must produce exactly one artifact per submitted index and must
    be bit-identical to :class:`SerialBackend`.
    """

    #: registry name; subclasses set it
    name: str = ""

    @abstractmethod
    def run_members(
        self,
        source: ModelSource,
        jobs: list[tuple[int, RunConfig]],
    ) -> Iterator[tuple[int, RunArtifact]]:
        """Yield ``(index, artifact)`` for every job, in completion order."""

    def describe(self) -> str:
        return self.name


class SerialBackend(ExecutionBackend):
    """Reference backend: run members in submission order, inline."""

    name = "serial"

    def run_members(
        self,
        source: ModelSource,
        jobs: list[tuple[int, RunConfig]],
    ) -> Iterator[tuple[int, RunArtifact]]:
        for index, config in jobs:
            yield index, _run_artifact(source, config, backend=self.name)


class ThreadBackend(ExecutionBackend):
    """Thread-pool fan-out over one shared parsed source (GIL-bound)."""

    name = "thread"

    def __init__(self, max_workers: Optional[int] = None):
        self.max_workers = max_workers

    def run_members(
        self,
        source: ModelSource,
        jobs: list[tuple[int, RunConfig]],
    ) -> Iterator[tuple[int, RunArtifact]]:
        from concurrent.futures import ThreadPoolExecutor

        workers = self.max_workers or min(4, len(jobs)) or 1
        # pool threads have empty span stacks: hand them the submitting
        # thread's current span so member spans still nest under the stage
        parent = get_tracer().current_id()
        with ThreadPoolExecutor(max_workers=max(1, workers)) as pool:
            pending = {
                pool.submit(
                    _run_artifact, source, config, parent, self.name
                ): index
                for index, config in jobs
            }
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    yield pending.pop(future), future.result()

    def describe(self) -> str:
        return f"thread(max_workers={self.max_workers or 'auto'})"


# --------------------------------------------------------------------------
# process backend: per-worker parsed-source cache
# --------------------------------------------------------------------------

#: per-process cache {model token: built+parsed ModelSource}.  Populated in
#: the parent before the pool starts so `fork` workers inherit a warm cache;
#: `spawn` workers fill it on their first member and reuse it afterwards.
_WORKER_SOURCES: dict[tuple, ModelSource] = {}


def _model_token(config: ModelConfig) -> tuple:
    """Hashable identity of a built source tree (compset, patches, macros)."""
    return (
        config.compset,
        tuple(config.patches),
        tuple(sorted(config.macros.items())),
    )


def _worker_source(model: ModelConfig) -> ModelSource:
    token = _model_token(model)
    source = _WORKER_SOURCES.get(token)
    if source is None:
        source = build_model_source(model)
        source.parse()
        _WORKER_SOURCES[token] = source
    return source


def _process_worker(job: tuple) -> tuple[int, RunArtifact, list]:
    """Top-level (picklable) worker: parse once per process, run many.

    ``job`` is ``(index, config, trace_parent)``.  ``trace_parent`` is
    ``None`` when the parent is not tracing; otherwise the parent span id
    (possibly ``""`` for "traced but rootless").  The worker never touches
    the process-global tracer — a ``fork`` child inherits the parent's
    enabled tracer and buffered spans, and recording into that copy would
    silently drop or duplicate spans.  Instead it builds the span
    standalone (:meth:`Span.measure`) and ships it back as a dict next to
    the artifact; the parent adopts it with span-id dedup.
    """
    index, config, trace_parent = job
    source = _worker_source(config.model)
    if trace_parent is None:
        return index, _bare_artifact(source, config), []
    span, artifact = Span.measure(
        "ensemble.member",
        lambda: _bare_artifact(source, config),
        parent_id=trace_parent or None,
        attrs={
            "seed": config.seed,
            "nsteps": config.nsteps,
            "backend": "process",
        },
    )
    span.attrs["statements"] = int(artifact.statements_executed)
    return index, artifact, [span.to_dict()]


class ProcessBackend(ExecutionBackend):
    """Process-pool fan-out with a per-worker parsed-source cache.

    Parameters
    ----------
    max_workers:
        Pool width (default ``min(n_jobs, os.cpu_count())``).
    mp_context:
        A :mod:`multiprocessing` context or start-method name
        (``"fork"``/``"spawn"``/``"forkserver"``); default is the
        platform's.  The spawn path requires ``repro`` to be importable in
        child processes (e.g. ``PYTHONPATH=src``), which the CI spawn leg
        guards.
    """

    name = "process"

    def __init__(
        self,
        max_workers: Optional[int] = None,
        mp_context=None,
    ):
        self.max_workers = max_workers
        if isinstance(mp_context, str):
            import multiprocessing

            mp_context = multiprocessing.get_context(mp_context)
        self.mp_context = mp_context

    def run_members(
        self,
        source: ModelSource,
        jobs: list[tuple[int, RunConfig]],
    ) -> Iterator[tuple[int, RunArtifact]]:
        from concurrent.futures import ProcessPoolExecutor

        # Warm the module-level cache in *this* process: fork children
        # inherit the parsed ASTs copy-on-write and never re-parse.  The
        # entry is evicted once the pool is gone — it is only needed while
        # children are being forked, and pinning every tree ever run would
        # leak a full parse per configuration in long sessions.
        token = _model_token(source.config)
        previous = _WORKER_SOURCES.get(token)
        _WORKER_SOURCES[token] = source
        source.parse()

        tracer = get_tracer()
        trace_parent = (
            (tracer.current_id() or "") if tracer.enabled else None
        )
        workers = self.max_workers or min(len(jobs), os.cpu_count() or 1)
        try:
            with ProcessPoolExecutor(
                max_workers=max(1, workers), mp_context=self.mp_context
            ) as pool:
                pending = {
                    pool.submit(
                        _process_worker, (index, config, trace_parent)
                    ): index
                    for index, config in jobs
                }
                while pending:
                    done, _ = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        pending.pop(future)
                        index, artifact, spans = future.result()
                        if spans:
                            tracer.adopt(spans)
                        yield index, artifact
        finally:
            if previous is None:
                _WORKER_SOURCES.pop(token, None)
            else:
                _WORKER_SOURCES[token] = previous

    def describe(self) -> str:
        method = (
            self.mp_context.get_start_method()
            if self.mp_context is not None
            else "default"
        )
        return (
            f"process(max_workers={self.max_workers or 'auto'}, "
            f"start={method})"
        )


class VectorizedBackend(ExecutionBackend):
    """Member-batched backend: one interpreter pass advances every member.

    Jobs are grouped by everything :func:`repro.runtime.vec.run_model_batch`
    requires to be uniform (nsteps and fp model — the model build is
    already fixed by ``source``; coverage flag and statement budget may
    vary per lane since PR 9), so a mixed job list still runs correctly,
    just in one batch per group.  Falls back to nothing: a model the
    vectorized runtime cannot express raises
    :class:`~repro.runtime.VectorizationError` rather than silently
    degrading, and the caller picks a scalar backend instead.

    ``batch_size`` bounds how many members one interpreter pass carries
    (memory scales with the member axis); ``None`` defers to
    ``EnsembleSpec.vec_batch``, then the ``REPRO_VEC_BATCH`` environment
    variable, then "one batch per group".  A nonsense value — zero,
    negative, non-integer, an unparseable environment string — raises
    :class:`InvalidBatchSizeError` up front.
    """

    name = "vectorized"

    def __init__(self, batch_size: Optional[int] = None):
        if batch_size is not None:
            batch_size = validate_batch_size(
                batch_size, "VectorizedBackend(batch_size=)"
            )
        self.batch_size = batch_size

    def effective_batch_size(self) -> Optional[int]:
        """The batch bound this run will use (constructor, then env)."""
        resolved = resolve_vec_batch(
            (self.batch_size, "VectorizedBackend(batch_size=)")
        )
        return None if resolved is None else resolved[0]

    def run_members(
        self,
        source: ModelSource,
        jobs: list[tuple[int, RunConfig]],
    ) -> Iterator[tuple[int, RunArtifact]]:
        from ..runtime.vec import run_model_batch

        limit = self.effective_batch_size()
        groups: dict[tuple, list[tuple[int, RunConfig]]] = {}
        for index, config in jobs:
            token = (config.nsteps, config.fp)
            groups.setdefault(token, []).append((index, config))
        tracer = get_tracer()
        for group in groups.values():
            step = limit or len(group)
            batches = [
                group[i : i + step] for i in range(0, len(group), step)
            ]
            yield from self._run_batches(
                tracer, source, batches, run_model_batch
            )

    def _run_batches(
        self, tracer, source, batches, run_model_batch
    ) -> Iterator[tuple[int, RunArtifact]]:
        for batch in batches:
            with tracer.span(
                "ensemble.batch",
                lambda: {"members": len(batch), "backend": self.name},
            ) as batch_span:
                results = run_model_batch(
                    [config for _, config in batch], source=source
                )
            if tracer.enabled:
                # one interpreter pass advanced the whole batch, so true
                # per-member walls don't exist; synthesize member spans
                # with the amortized share (flagged `estimated`) so the
                # trace still accounts for every member.
                self._adopt_member_spans(tracer, batch_span, batch)
            for (index, config), result in zip(batch, results):
                artifact = RunArtifact.from_result(
                    result, member_cache_key(source, config)
                )
                yield index, artifact

    def describe(self) -> str:
        limit = self.effective_batch_size()
        return f"vectorized(batch={limit if limit is not None else 'auto'})"

    @staticmethod
    def _adopt_member_spans(tracer, batch_span, batch) -> None:
        finished = {s.span_id: s for s in tracer.finished()}
        done = finished.get(batch_span.span_id)
        if done is None:  # pragma: no cover - defensive
            return
        share = done.wall_s / len(batch)
        cpu_share = done.cpu_s / len(batch)
        tracer.adopt(
            Span(
                name="ensemble.member",
                span_id=new_span_id(),
                parent_id=batch_span.span_id,
                start=done.start + i * share,
                wall_s=share,
                cpu_s=cpu_share,
                attrs={
                    "seed": config.seed,
                    "nsteps": config.nsteps,
                    "backend": "vectorized",
                    "estimated": True,
                },
                pid=done.pid,
                thread_id=done.thread_id,
            )
            for i, (_, config) in enumerate(batch)
        )


# --------------------------------------------------------------------------
# registry
# --------------------------------------------------------------------------

_BACKENDS: dict[str, Callable[..., ExecutionBackend]] = {}


def register_backend(
    name: str, factory: Callable[..., ExecutionBackend]
) -> None:
    """Register a backend factory under ``name`` (``factory(max_workers=)``)."""
    if name in _BACKENDS:
        raise ValueError(f"backend {name!r} is already registered")
    _BACKENDS[name] = factory


def list_backends() -> list[str]:
    """Names of all registered execution backends, sorted."""
    return sorted(_BACKENDS)


register_backend("serial", lambda max_workers=None: SerialBackend())
register_backend("thread", ThreadBackend)
register_backend("process", ProcessBackend)
register_backend(
    "vectorized",
    lambda max_workers=None, batch_size=None: VectorizedBackend(
        batch_size=batch_size
    ),
)


def resolve_backend_name(*candidates: Optional[str]) -> str:
    """First non-None name among ``candidates``, the environment knob
    (``REPRO_ENSEMBLE_BACKEND``), and the package default."""
    for name in candidates:
        if name is not None:
            return name
    return os.environ.get(BACKEND_ENV_VAR) or DEFAULT_BACKEND


def get_backend(
    backend: "ExecutionBackend | str | None" = None,
    max_workers: Optional[int] = None,
) -> ExecutionBackend:
    """Resolve a backend instance from an instance, a name, or the default.

    Passing an :class:`ExecutionBackend` returns it unchanged (so callers
    can hand over a pre-configured pool) — combining an instance with
    ``max_workers`` is a :class:`ValueError` rather than a silently
    ignored knob; a string is looked up in the registry; ``None`` falls
    back to the ``REPRO_ENSEMBLE_BACKEND`` environment variable and then
    to ``"thread"``.  A name the registry does not know — wherever it came
    from, argument, spec or environment — raises
    :class:`UnknownBackendError` listing every registered backend.
    """
    if isinstance(backend, ExecutionBackend):
        if max_workers is not None:
            raise ValueError(
                "max_workers cannot override a pre-configured backend "
                "instance; construct the backend with the desired width "
                "instead"
            )
        return backend
    name = resolve_backend_name(backend)
    try:
        factory = _BACKENDS[name]
    except KeyError:
        known = ", ".join(list_backends())
        raise UnknownBackendError(
            f"unknown execution backend {name!r} (known: {known})"
        ) from None
    return factory(max_workers=max_workers)

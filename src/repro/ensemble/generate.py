"""Accepted-ensemble generation over the live interpreter.

``generate_ensemble`` expands an :class:`~repro.ensemble.spec.EnsembleSpec`
into N member runs.  It is a *coordinator*: member configs are derived from
the spec, members already present in the content-addressed artifact cache
are loaded (coverage included — a cache hit preserves the member's
:class:`CoverageTrace`), and the remaining misses are fanned out through a
pluggable :class:`~repro.ensemble.backends.ExecutionBackend` (``serial``,
``thread``, or ``process`` — the process pool is how O(1000)-member
ensembles get past the GIL).  Every backend produces bit-identical
members, so the backend choice never changes the science.

The collected :class:`Ensemble` is the statistical object the ECT layer
consumes: a ``(n_members, n_variables)`` matrix of global-mean output
values over *two* snapshots per variable — the end-of-run state and the
end-of-first-step state (``<NAME>@first``), whose across-member
bit-invariants make ULP-level effects like FMA contraction testable —
plus the members' merged :class:`CoverageTrace` for the coverage/slicing
stages.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from ..model.builder import ModelSource, build_model_source
from ..obs import get_metrics, get_tracer
from ..runtime import CoverageTrace, RunConfig, RunResult
from .artifact import RunArtifact
from .backends import ExecutionBackend, get_backend
from .cache import MemberCache, member_cache_key
from .spec import EnsembleSpec

__all__ = ["Ensemble", "EnsembleGenerator", "generate_ensemble"]

#: suffix marking the end-of-first-step snapshot half of the vector
FIRST_SUFFIX = "@first"


def run_vector(result: RunResult, names: Sequence[str]) -> np.ndarray:
    """One run's ensemble-space vector for the given variable names."""
    final_names = [n for n in names if not n.endswith(FIRST_SUFFIX)]
    first_names = [n[: -len(FIRST_SUFFIX)] for n in names if n.endswith(FIRST_SUFFIX)]
    out = np.empty(len(names), dtype=float)
    final = dict(
        zip(final_names, result.output_array(final_names, which="final"))
    )
    first = dict(
        zip(first_names, result.output_array(first_names, which="first"))
    )
    for i, name in enumerate(names):
        if name.endswith(FIRST_SUFFIX):
            out[i] = first[name[: -len(FIRST_SUFFIX)]]
        else:
            out[i] = final[name]
    return out


def _variable_names(result: RunResult) -> list[str]:
    names = list(result.outputs)
    return names + [f"{n}{FIRST_SUFFIX}" for n in names]


@dataclass
class Ensemble:
    """The accepted ensemble: member results plus their stacked matrix.

    ``matrix[i]`` is member ``i``'s vector over ``variable_names`` (end-state
    global means first, then the ``@first`` snapshot).  ``coverage`` is the
    merge of every member's trace; per-member traces stay available on
    ``members[i].coverage``.
    """

    spec: EnsembleSpec
    variable_names: list[str]
    matrix: np.ndarray
    members: list[RunResult]
    coverage: CoverageTrace
    cache_hits: int = 0
    cache_misses: int = 0
    stats: dict = field(default_factory=dict)

    @property
    def n_members(self) -> int:
        return len(self.members)

    def mean(self) -> np.ndarray:
        return self.matrix.mean(axis=0)

    def std(self, ddof: int = 1) -> np.ndarray:
        return self.matrix.std(axis=0, ddof=ddof)

    def run_vector(self, result: RunResult) -> np.ndarray:
        """An experimental run's vector aligned with ``variable_names``."""
        return run_vector(result, self.variable_names)

    def summary(self) -> str:
        sd = self.std()
        return (
            f"Ensemble(n={self.n_members}, variables={len(self.variable_names)}, "
            f"invariant={int(np.sum(sd == 0.0))}, "
            f"cache_hits={self.cache_hits}, cache_misses={self.cache_misses})"
        )


def generate_ensemble(
    spec: Optional[EnsembleSpec] = None,
    *,
    n: Optional[int] = None,
    source: Optional[ModelSource] = None,
    cache_dir: Optional[str | os.PathLike] = None,
    backend: "ExecutionBackend | str | None" = None,
    max_workers: Optional[int] = None,
    progress: Optional[Callable[[int, int], None]] = None,
) -> Ensemble:
    """Run (or load) every member of ``spec`` and stack the result matrix.

    Parameters
    ----------
    spec:
        The ensemble specification; defaults to ``EnsembleSpec()`` — the
        unpatched FC5 control build.
    n:
        Convenience override of ``spec.n_members``
        (``generate_ensemble(n=30)``).
    source:
        An already-built :class:`ModelSource` matching ``spec.model``; built
        once here when omitted and shared (with its parse cache) by the
        backend's workers.
    cache_dir:
        Directory of the content-addressed member artifact cache.  Omit to
        disable caching.  Cached members keep their coverage: incremental
        re-runs never drop or recompute a member's trace.
    backend:
        Execution backend for the cache-miss fan-out: a registered name
        (``"serial"``, ``"thread"``, ``"process"``) or a pre-configured
        :class:`ExecutionBackend` instance.  ``None`` falls back to
        ``spec.backend``, then the ``REPRO_ENSEMBLE_BACKEND`` environment
        variable, then ``"thread"``.  All backends are bit-identical; the
        process pool is the one that scales past the GIL.
    max_workers:
        Pool width for pool-based backends (default: backend-specific).
    progress:
        Optional ``callback(done, total)`` invoked as members complete
        (cache hits included).
    """
    spec = spec or EnsembleSpec()
    if n is not None:
        spec = dataclasses.replace(spec, n_members=n)
    if source is None:
        source = build_model_source(spec.model)
    elif source.config != spec.model:
        raise ValueError(
            "the provided ModelSource was built from a different ModelConfig "
            "than spec.model"
        )
    source.parse()  # warm the shared AST cache once, outside any pool

    exec_backend = get_backend(
        backend if backend is not None else spec.backend,
        max_workers=max_workers,
    )
    if spec.vec_batch is not None:
        from .backends import VectorizedBackend

        if (
            isinstance(exec_backend, VectorizedBackend)
            and exec_backend.batch_size is None
        ):
            # the spec's *where* knob configures the backend unless the
            # caller already pinned a width on the instance
            exec_backend = VectorizedBackend(batch_size=spec.vec_batch)
    cache = MemberCache(cache_dir) if cache_dir is not None else None
    configs = spec.member_configs()
    total = len(configs)
    artifacts: list[Optional[RunArtifact]] = [None] * total
    done = 0

    def advance() -> None:
        nonlocal done
        done += 1
        if progress is not None:
            progress(done, total)

    metrics = get_metrics()
    with get_tracer().span(
        "ensemble.generate",
        lambda: {"members": total, "backend": exec_backend.describe(),
                 "cached": cache is not None},
    ) as gen_span:
        # phase 1: satisfy what the artifact cache already holds
        misses: list[tuple[int, RunConfig]] = []
        for index, config in enumerate(configs):
            if cache is not None:
                key = member_cache_key(source, config)
                cached = cache.load_artifact(key)
                if cached is not None:
                    artifacts[index] = cached
                    advance()
                    continue
            misses.append((index, config))

        # phase 2: fan the misses out through the execution backend
        if misses:
            for index, artifact in exec_backend.run_members(source, misses):
                artifacts[index] = artifact
                if cache is not None:
                    cache.store_artifact(artifact)
                advance()
        metrics.inc("ensemble.members_run", len(misses))
        metrics.inc("ensemble.members_cached", total - len(misses))
        gen_span.annotate(members_run=len(misses),
                          members_cached=total - len(misses))

    if any(a is None for a in artifacts):  # pragma: no cover - defensive
        raise RuntimeError(
            f"backend {exec_backend.describe()} lost ensemble members"
        )
    members: list[RunResult] = [
        artifact.to_result(config)
        for artifact, config in zip(artifacts, configs)
    ]

    names = _variable_names(members[0])
    matrix = np.stack([run_vector(r, names) for r in members])
    coverage = CoverageTrace().merged(*(r.coverage for r in members))
    sd = matrix.std(axis=0, ddof=1)
    stats = {
        "backend": exec_backend.describe(),
        "statements_per_member": [r.statements_executed for r in members],
        "invariant_variables": [
            names[j] for j in range(len(names)) if sd[j] == 0.0
        ],
    }
    return Ensemble(
        spec=spec,
        variable_names=names,
        matrix=matrix,
        members=members,
        coverage=coverage,
        cache_hits=cache.hits if cache is not None else 0,
        cache_misses=cache.misses if cache is not None else 0,
        stats=stats,
    )


class EnsembleGenerator:
    """OO facade over :func:`generate_ensemble` for repeated generation.

    Holds the shared :class:`ModelSource`, the backend selection and the
    cache directory so successive calls (e.g. an accepted ensemble plus
    batches of experimental runs in the same process) reuse the parse
    cache and the disk cache.
    """

    def __init__(
        self,
        spec: Optional[EnsembleSpec] = None,
        cache_dir: Optional[str | os.PathLike] = None,
        backend: "ExecutionBackend | str | None" = None,
        max_workers: Optional[int] = None,
    ):
        self.spec = spec or EnsembleSpec()
        self.cache_dir = cache_dir
        self.backend = backend
        self.max_workers = max_workers
        self._source = build_model_source(self.spec.model)

    @property
    def source(self) -> ModelSource:
        return self._source

    def generate(self, n: Optional[int] = None) -> Ensemble:
        """Generate (or incrementally load) the accepted ensemble."""
        return generate_ensemble(
            self.spec,
            n=n,
            source=self._source,
            cache_dir=self.cache_dir,
            backend=self.backend,
            max_workers=self.max_workers,
        )

    def experimental_runs(
        self,
        count: int = 3,
        model=None,
        fp=None,
    ) -> list[RunResult]:
        """``count`` experimental runs with held-out seeds (see spec)."""
        from ..runtime import run_model

        runs = []
        for i in range(count):
            config = self.spec.experimental_config(i, model=model, fp=fp)
            exp_source = (
                self._source
                if config.model == self.spec.model
                else build_model_source(config.model)
            )
            runs.append(run_model(config, source=exp_source))
        return runs

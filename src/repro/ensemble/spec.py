"""Ensemble specification: how N accepted members are derived from one seed.

The paper's accepted ensemble is a set of model runs that differ only in
ways the climate is *allowed* to differ: a tiny initial-temperature
perturbation (``pertlim``) and an independent PRNG seed per member.  An
:class:`EnsembleSpec` captures everything else — build configuration,
step count, floating-point model — so that one spec deterministically
expands into N :class:`~repro.runtime.RunConfig` objects: member ``i``'s
``pertlim`` draw and seed come from a dedicated splitmix64 stream keyed by
``(base_seed, i)``, so adding members never reshuffles existing ones and a
re-run with the same spec reproduces every member bit-for-bit (which is
what makes the on-disk member cache sound).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..model.builder import ModelConfig
from ..runtime import FPConfig, RunConfig
from ..runtime.prng import PRNGStreams

__all__ = ["EnsembleSpec"]


@dataclass(frozen=True)
class EnsembleSpec:
    """N accepted-ensemble members derived deterministically from one seed.

    ``pertlim`` is the *magnitude* knob: member ``i`` perturbs the initial
    temperature by a uniform draw in ``[-pertlim, +pertlim)``.  ``base_seed``
    seeds both the per-member draw and the member's own stream-per-module
    PRNG seed, so two specs differing only in ``base_seed`` give disjoint
    ensembles.
    """

    model: ModelConfig = field(default_factory=ModelConfig)
    n_members: int = 30
    nsteps: int = 2
    pertlim: float = 1.0e-14
    base_seed: int = 9100
    fp: FPConfig = field(default_factory=FPConfig)
    collect_coverage: bool = True
    max_statements: int = 50_000_000
    #: execution-backend name for the member fan-out (``"serial"``,
    #: ``"thread"`` or ``"process"`` — see :mod:`repro.ensemble.backends`).
    #: ``None`` defers to ``generate_ensemble``'s ``backend=`` argument,
    #: then the ``REPRO_ENSEMBLE_BACKEND`` environment variable, then
    #: ``"thread"``.  The backend only chooses *where* members run: every
    #: backend produces bit-identical ensembles.
    backend: str | None = None
    #: batch-width bound for the ``vectorized`` backend (``None`` = defer
    #: to the ``REPRO_VEC_BATCH`` environment variable, then "one batch
    #: per uniform group").  A *where* knob like ``backend``: every batch
    #: width produces bit-identical members, so it is excluded from
    #: pipeline stage cache keys (see ``__config_token_exclude__``).
    vec_batch: int | None = None

    #: fields :func:`repro.pipeline.core.config_token` must skip — knobs
    #: that change *where/how wide* members run but never their bits
    __config_token_exclude__ = frozenset({"vec_batch"})

    def __post_init__(self) -> None:
        if isinstance(self.n_members, bool) or not isinstance(
            self.n_members, int
        ):
            raise ValueError(
                f"n_members must be an int, got {type(self.n_members).__name__}"
            )
        if self.vec_batch is not None:
            from .backends import validate_batch_size

            validate_batch_size(self.vec_batch, "EnsembleSpec.vec_batch")
        if self.n_members < 2:
            raise ValueError(
                f"an ensemble needs at least 2 members, got {self.n_members}"
            )
        # delegate knob validation (finite pertlim, int seed, nsteps >= 1)
        # to RunConfig so the error surfaces at spec construction time
        self._derive(0)

    def _derive(self, index: int) -> tuple[float, int]:
        """Member ``index``'s ``(pertlim draw, seed)`` — stable per index."""
        stream = PRNGStreams(self.base_seed).stream(f"ensemble.member.{index}")
        pert = (2.0 * stream.uniform() - 1.0) * self.pertlim
        seed = int(stream.next_u64() >> 33)  # 31-bit, plenty of key space
        RunConfig(nsteps=self.nsteps, pertlim=pert, seed=seed)  # validate
        return pert, seed

    def member_config(self, index: int) -> RunConfig:
        """The :class:`RunConfig` of member ``index`` (0-based)."""
        if index < 0 or index >= self.n_members:
            raise IndexError(
                f"member index {index} out of range for n_members="
                f"{self.n_members}"
            )
        pert, seed = self._derive(index)
        return RunConfig(
            model=self.model,
            nsteps=self.nsteps,
            pertlim=pert,
            seed=seed,
            fp=self.fp,
            collect_coverage=self.collect_coverage,
            max_statements=self.max_statements,
        )

    def member_configs(self) -> list[RunConfig]:
        """All member configs, in member order."""
        return [self.member_config(i) for i in range(self.n_members)]

    def experimental_config(
        self,
        run_index: int,
        model: ModelConfig | None = None,
        fp: FPConfig | None = None,
    ) -> RunConfig:
        """A held-out experimental run config that shares the spec's knobs.

        Experimental seeds live in a stream disjoint from every member's
        (``ensemble.experimental.<i>`` vs ``ensemble.member.<i>``), so an
        unpatched experimental run is a genuine new draw from the accepted
        distribution — the pass case ECT must get right.
        """
        stream = PRNGStreams(self.base_seed).stream(
            f"ensemble.experimental.{run_index}"
        )
        pert = (2.0 * stream.uniform() - 1.0) * self.pertlim
        seed = int(stream.next_u64() >> 33)
        return RunConfig(
            model=self.model if model is None else model,
            nsteps=self.nsteps,
            pertlim=pert,
            seed=seed,
            fp=self.fp if fp is None else fp,
            collect_coverage=self.collect_coverage,
            max_statements=self.max_statements,
        )

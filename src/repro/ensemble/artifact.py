"""The unified run artifact: everything one member run produces, on disk.

A :class:`RunArtifact` is the single currency between the execution
backends, the member cache and the downstream pipeline stages: the output
snapshots (end-of-run and ``@first``), the run's :class:`CoverageTrace`,
the execution counters, and the content hash (``config_key``) of the
configuration that produced it.  Backends return artifacts (so worker
processes never ship interpreter internals across the pipe), the cache
stores and loads them verbatim, and ``generate_ensemble`` rehydrates them
into :class:`~repro.runtime.RunResult` values — which keeps coverage
cached alongside outputs instead of being recomputed or dropped on
incremental re-runs.

The serialized form is a flat ``{name: ndarray}`` mapping (one ``.npz``
per artifact) so it round-trips through :func:`numpy.savez_compressed`
with ``allow_pickle=False`` — no code execution on load, ever.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from ..errors import ReproError
from ..runtime import CoverageTrace, RunConfig, RunResult

__all__ = ["ArtifactError", "RunArtifact"]

#: bump when the payload layout changes incompatibly
ARTIFACT_FORMAT = 2

_OUT_PREFIX = "out::"
_FIRST_PREFIX = "first::"


class ArtifactError(ReproError, ValueError):
    """Raised when a serialized artifact payload cannot be decoded."""


@dataclass
class RunArtifact:
    """One member run's persistable product (see module docstring)."""

    config_key: str
    outputs: dict[str, np.ndarray]
    first_outputs: dict[str, np.ndarray]
    coverage: CoverageTrace
    statements_executed: int
    prng_draws: int
    meta: dict = field(default_factory=dict)

    # ------------------------------------------------------------ conversion
    @classmethod
    def from_result(cls, result: RunResult, config_key: str) -> "RunArtifact":
        """Wrap a live :class:`RunResult` (arrays are shared, not copied)."""
        return cls(
            config_key=config_key,
            outputs=dict(result.outputs),
            first_outputs=dict(result.first_outputs),
            coverage=result.coverage,
            statements_executed=result.statements_executed,
            prng_draws=result.prng_draws,
        )

    def to_result(self, config: RunConfig) -> RunResult:
        """Rehydrate the :class:`RunResult` for ``config``.

        The caller vouches that ``config`` is the configuration hashed into
        ``config_key`` — the cache layer verifies this by construction
        (the key addresses the entry), the backends by assignment.
        """
        return RunResult(
            config=config,
            outputs=dict(self.outputs),
            coverage=self.coverage,
            statements_executed=self.statements_executed,
            prng_draws=self.prng_draws,
            first_outputs=dict(self.first_outputs),
        )

    # --------------------------------------------------------- serialization
    def to_payload(self) -> dict[str, np.ndarray]:
        """Flat ``{name: ndarray}`` mapping for ``np.savez`` round-trips."""
        payload: dict[str, np.ndarray] = {
            "format": np.array([ARTIFACT_FORMAT], dtype=np.int64),
            "config_key": np.array([self.config_key]),
            "meta": np.array(
                [self.statements_executed, self.prng_draws], dtype=np.int64
            ),
        }
        for name, value in self.outputs.items():
            payload[f"{_OUT_PREFIX}{name}"] = np.asarray(value)
        for name, value in self.first_outputs.items():
            payload[f"{_FIRST_PREFIX}{name}"] = np.asarray(value)
        if self.coverage.counts:
            items = sorted(self.coverage.counts.items())
            payload["cov_files"] = np.array([k[0] for k, _ in items])
            payload["cov_lines"] = np.array(
                [k[1] for k, _ in items], dtype=np.int64
            )
            payload["cov_counts"] = np.array(
                [count for _, count in items], dtype=np.int64
            )
        return payload

    @classmethod
    def from_payload(cls, data: Mapping[str, np.ndarray]) -> "RunArtifact":
        """Decode a payload produced by :meth:`to_payload`.

        Raises :class:`ArtifactError` on any structural mismatch — the
        cache treats that as a miss and re-runs the member.
        """
        try:
            fmt = int(np.asarray(data["format"])[0])
            if fmt != ARTIFACT_FORMAT:
                raise ArtifactError(
                    f"artifact format {fmt} != expected {ARTIFACT_FORMAT}"
                )
            config_key = str(np.asarray(data["config_key"])[0])
            meta = np.asarray(data["meta"])
            statements, draws = int(meta[0]), int(meta[1])
            outputs: dict[str, np.ndarray] = {}
            first_outputs: dict[str, np.ndarray] = {}
            for full in data:
                if full.startswith(_OUT_PREFIX):
                    outputs[full[len(_OUT_PREFIX):]] = np.asarray(data[full])
                elif full.startswith(_FIRST_PREFIX):
                    first_outputs[full[len(_FIRST_PREFIX):]] = np.asarray(
                        data[full]
                    )
            counts: dict[tuple[str, int], int] = {}
            if "cov_files" in data:
                for fname, line, count in zip(
                    np.asarray(data["cov_files"]),
                    np.asarray(data["cov_lines"]),
                    np.asarray(data["cov_counts"]),
                ):
                    counts[(str(fname), int(line))] = int(count)
        except ArtifactError:
            raise
        except (KeyError, ValueError, IndexError, TypeError) as exc:
            raise ArtifactError(f"malformed artifact payload: {exc}") from exc
        return cls(
            config_key=config_key,
            outputs=outputs,
            first_outputs=first_outputs,
            coverage=CoverageTrace(counts),
            statements_executed=statements,
            prng_draws=draws,
        )

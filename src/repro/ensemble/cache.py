"""Content-addressed on-disk cache of ensemble member runs.

A member's cache key is a SHA-256 over everything that determines its
numbers: the *patched* compiled source text (so a new bug patch or any
model-source edit invalidates automatically), every runtime knob of its
:class:`~repro.runtime.RunConfig`, and a format version.  Values are
``.npz`` files holding the output snapshots, the coverage counts and the
run counters — enough to rebuild a :class:`~repro.runtime.RunResult`
without re-interpreting ~36k statements, which is what makes
``generate_ensemble`` incremental across processes and PRs.

Writes go through a temp file + ``os.replace`` so a crashed run never
leaves a truncated entry behind, and concurrent generators racing on the
same key simply both win.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Optional

import numpy as np

from ..model.builder import ModelSource
from ..runtime import CoverageTrace, RunConfig, RunResult

__all__ = ["MemberCache", "member_cache_key"]

#: bump when the serialized layout or run semantics change incompatibly
CACHE_FORMAT = 1


def _fp_token(config: RunConfig) -> dict:
    fp = config.fp
    return {
        "fma": bool(fp.fma),
        # frozenset() (FMA nowhere) and None (FMA everywhere) are different
        # builds and must hash differently
        "fma_modules": (
            sorted(fp.fma_modules) if fp.fma_modules is not None else None
        ),
        "flush_to_zero": bool(fp.flush_to_zero),
    }


def member_cache_key(source: ModelSource, config: RunConfig) -> str:
    """The content hash identifying one run of one built source tree."""
    h = hashlib.sha256()
    h.update(b"repro-ensemble-member\x00")
    h.update(str(CACHE_FORMAT).encode())
    for name in source.compiled_files:
        h.update(name.encode())
        h.update(b"\x00")
        h.update(source.files[name].encode())
        h.update(b"\x01")
    token = {
        "nsteps": config.nsteps,
        "pertlim": float(config.pertlim).hex(),
        "seed": config.seed,
        "fp": _fp_token(config),
        "collect_coverage": bool(config.collect_coverage),
        "max_statements": config.max_statements,
    }
    h.update(json.dumps(token, sort_keys=True).encode())
    return h.hexdigest()


class MemberCache:
    """Load/store :class:`RunResult` values under content-addressed keys."""

    def __init__(self, directory: str | os.PathLike):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.npz"

    def load(self, key: str, config: RunConfig) -> Optional[RunResult]:
        """The cached result for ``key``, or None on miss/corruption."""
        path = self._path(key)
        if not path.exists():
            self.misses += 1
            return None
        try:
            with np.load(path, allow_pickle=False) as data:
                outputs = {}
                first_outputs = {}
                for full in data.files:
                    if full.startswith("out::"):
                        outputs[full[5:]] = data[full]
                    elif full.startswith("first::"):
                        first_outputs[full[7:]] = data[full]
                counts: dict[tuple[str, int], int] = {}
                if "cov_files" in data.files:
                    cov_files = data["cov_files"]
                    cov_lines = data["cov_lines"]
                    cov_counts = data["cov_counts"]
                    for fname, line, count in zip(
                        cov_files, cov_lines, cov_counts
                    ):
                        counts[(str(fname), int(line))] = int(count)
                meta = data["meta"]
                statements, draws = int(meta[0]), int(meta[1])
        except (OSError, KeyError, ValueError, IndexError):
            self.misses += 1
            return None
        self.hits += 1
        return RunResult(
            config=config,
            outputs=outputs,
            coverage=CoverageTrace(counts),
            statements_executed=statements,
            prng_draws=draws,
            first_outputs=first_outputs,
        )

    def store(self, key: str, result: RunResult) -> None:
        """Persist ``result`` under ``key`` (atomic via temp + replace)."""
        payload: dict[str, np.ndarray] = {
            "meta": np.array(
                [result.statements_executed, result.prng_draws], dtype=np.int64
            )
        }
        for name, value in result.outputs.items():
            payload[f"out::{name}"] = np.asarray(value)
        for name, value in result.first_outputs.items():
            payload[f"first::{name}"] = np.asarray(value)
        if result.coverage.counts:
            items = sorted(result.coverage.counts.items())
            payload["cov_files"] = np.array([k[0] for k, _ in items])
            payload["cov_lines"] = np.array(
                [k[1] for k, _ in items], dtype=np.int64
            )
            payload["cov_counts"] = np.array(
                [count for _, count in items], dtype=np.int64
            )
        fd, tmp = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=".npz"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez_compressed(handle, **payload)
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

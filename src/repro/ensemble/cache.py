"""Content-addressed on-disk cache of ensemble member run artifacts.

A member's cache key is a SHA-256 over everything that determines its
numbers: the *patched* compiled source text (so a new bug patch or any
model-source edit invalidates automatically), every runtime knob of its
:class:`~repro.runtime.RunConfig` — including the **full**
:class:`~repro.runtime.FPConfig` floating-point model and the
coverage-enablement flag, so cache hits can never cross numerically or
observationally distinct configurations — and a format version.  Values
are :class:`~repro.ensemble.artifact.RunArtifact` payloads (one ``.npz``
per member: output snapshots, ``@first`` snapshots, coverage counts, run
counters), so coverage is cached alongside outputs and incremental
re-runs preserve it.

The FP token is derived generically from the ``FPConfig`` dataclass
fields: a field added to ``FPConfig`` in a later PR automatically changes
the hash instead of being silently omitted (the regression that motivated
this layout).

Writes go through a temp file + ``os.replace`` so a crashed run never
leaves a truncated entry behind, and concurrent generators racing on the
same key simply both win.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import zipfile
from pathlib import Path
from typing import Optional

import numpy as np

from ..model.builder import ModelSource
from ..obs import get_metrics
from ..runtime import FPConfig, RunConfig, RunResult
from .artifact import ArtifactError, RunArtifact

__all__ = ["MemberCache", "member_cache_key"]

#: bump when the serialized layout or run semantics change incompatibly.
#: 2: RunArtifact payloads (adds format/config_key fields) + generic FP token.
CACHE_FORMAT = 2


def _json_safe(value):
    """Make dataclass field values deterministic JSON (sets sorted, floats
    hex-exact so -0.0/rounding can never alias two configs)."""
    if isinstance(value, (frozenset, set)):
        return sorted(_json_safe(v) for v in value)
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in sorted(value.items())}
    if isinstance(value, bool) or value is None or isinstance(value, (str, int)):
        return value
    if isinstance(value, float):
        return float(value).hex()
    return repr(value)


def _fp_token(fp: FPConfig) -> dict:
    """Every FPConfig field, generically: new knobs can't be missed."""
    return {
        f.name: _json_safe(getattr(fp, f.name))
        for f in dataclasses.fields(fp)
    }


def member_cache_key(source: ModelSource, config: RunConfig) -> str:
    """The content hash identifying one run of one built source tree."""
    h = hashlib.sha256()
    h.update(b"repro-ensemble-member\x00")
    h.update(str(CACHE_FORMAT).encode())
    # the source identity is memoized per ModelSource instance, so deriving
    # N member keys hashes the ~40-file tree once, not N times
    h.update(source.content_digest().encode())
    token = {
        "nsteps": config.nsteps,
        "pertlim": float(config.pertlim).hex(),
        "seed": config.seed,
        "fp": _fp_token(config.fp),
        "collect_coverage": bool(config.collect_coverage),
        "max_statements": config.max_statements,
    }
    h.update(json.dumps(token, sort_keys=True).encode())
    return h.hexdigest()


class MemberCache:
    """Load/store :class:`RunArtifact` values under content-addressed keys."""

    def __init__(self, directory: str | os.PathLike):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.npz"

    def load_artifact(self, key: str) -> Optional[RunArtifact]:
        """The cached artifact for ``key``, or None on miss/corruption."""
        path = self._path(key)
        if not path.exists():
            self._miss()
            return None
        try:
            with np.load(path, allow_pickle=False) as data:
                artifact = RunArtifact.from_payload(data)
        except (
            OSError,
            EOFError,  # zero-length/truncated file
            zipfile.BadZipFile,  # zip magic but corrupt body
            ArtifactError,
            KeyError,
            ValueError,
            IndexError,
        ):
            self._miss()
            return None
        if artifact.config_key != key:
            # a renamed/mangled entry: never serve it under the wrong key
            self._miss()
            return None
        self.hits += 1
        get_metrics().inc("member_cache.hits")
        return artifact

    def _miss(self) -> None:
        self.misses += 1
        get_metrics().inc("member_cache.misses")

    def load(self, key: str, config: RunConfig) -> Optional[RunResult]:
        """The cached result for ``key`` rehydrated for ``config``."""
        artifact = self.load_artifact(key)
        if artifact is None:
            return None
        return artifact.to_result(config)

    def store_artifact(self, artifact: RunArtifact) -> None:
        """Persist ``artifact`` under its own content key (atomic write)."""
        payload = artifact.to_payload()
        fd, tmp = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=".npz"
        )
        try:
            try:
                handle = os.fdopen(fd, "wb")
            except BaseException:
                os.close(fd)  # fdopen failed: the raw fd is still ours
                raise
            with handle:
                np.savez_compressed(handle, **payload)
            os.replace(tmp, self._path(artifact.config_key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def store(self, key: str, result: RunResult) -> None:
        """Persist ``result`` under ``key`` (compat shim over artifacts)."""
        self.store_artifact(RunArtifact.from_result(result, key))

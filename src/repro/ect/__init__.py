"""repro.ect — UF-CAM-ECT style PCA consistency testing.

Given an accepted ensemble from :mod:`repro.ensemble`, decide whether K
experimental runs (a bug patch, a compiler-flag change such as FMA
contraction, a swapped PRNG) are statistically distinguishable from the
accepted climate.  See :mod:`repro.ect.core` for the two-channel design
(truncated-PCA scores with the paper's failure-count rule, plus bit-exact
first-step invariants for ULP-level effects).

Quickstart — the ``cldfrc-premib`` patch fails ECT, held-out seeds pass:

>>> from repro.ensemble import generate_ensemble
>>> from repro.ect import UltraFastECT
>>> from repro.model import ModelConfig
>>> from repro.runtime import run_model
>>> ens = generate_ensemble(n=30)
>>> ect = UltraFastECT(ens)                 # fit once
>>> patched = ModelConfig(patches=("cldfrc-premib",))
>>> bad = [run_model(ens.spec.experimental_config(i, model=patched))
...        for i in range(3)]
>>> ect.test(bad).consistent
False
>>> good = [run_model(ens.spec.experimental_config(i)) for i in range(3)]
>>> ect.test(good).consistent
True
"""

from __future__ import annotations

from .core import EctConfig, EctResult, UltraFastECT, ect_test

__all__ = ["EctConfig", "EctResult", "UltraFastECT", "ect_test"]

"""UF-CAM-ECT style PCA consistency testing (numpy only).

The test decides whether K experimental runs are statistically
distinguishable from an accepted ensemble.  It works in two channels:

*PCA channel.*  Ensemble variables with nonzero spread are standardized
(mean 0, unit variance over the members), decomposed with an SVD, and
truncated to the leading principal components explaining
``variance_fraction`` of the ensemble variance — low-variance directions
of a 30-member sample are dominated by estimation noise, and keeping them
is what makes naive implementations flag *everything* (the paper keeps 50
of 120 PCs for the same reason).  Each experimental run is projected into
PC space and normalized by the member scores' standard deviation; a PC
*fails* when at least ``min_runs_per_pc`` of the K runs land outside the
``sigma``-sided confidence interval, and the experiment is inconsistent
when at least ``min_failing_pcs`` PCs fail.

*Invariant channel.*  Variables with exactly zero spread across members —
typically the ``@first`` snapshot of fields the stochastic physics has not
touched after one step — are bit-exact invariants of the accepted build.
Any experimental deviation there is an immediate violation; this is what
makes ULP-level effects (FMA contraction, flush-to-zero) testable at all,
since chaotic growth folds them into the accepted spread everywhere else.

Failing PCs are attributed back to output variables through their largest
loadings, so an :class:`EctResult` names the *variables* the downstream
selection / slicing stages start from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

import numpy as np

from ..runtime import RunResult

__all__ = ["EctConfig", "EctResult", "UltraFastECT", "ect_test"]


@dataclass(frozen=True)
class EctConfig:
    """Knobs of the consistency test (defaults follow the paper's shape)."""

    #: cumulative explained-variance fraction selecting how many PCs to keep
    variance_fraction: float = 0.95
    #: hard cap on retained PCs (None = no cap beyond the variance rule)
    max_pcs: Optional[int] = None
    #: per-PC confidence interval half-width, in member-score std units
    sigma: float = 2.0
    #: a PC fails when outside the CI in at least this many of the K runs
    min_runs_per_pc: int = 2
    #: the experiment fails when at least this many PCs fail
    min_failing_pcs: int = 3
    #: ... or when at least this many runs violate a bit-exact invariant
    min_invariant_runs: int = 2
    #: gross-outlier guard: a single variable whose standardized deviation
    #: exceeds this (in ensemble-sd units) in >= ``min_runs_per_pc`` runs
    #: fails the experiment even when the energy concentrates in too few
    #: PCs to trip the PC rule (the original CAM-ECT's variable-level test)
    variable_sigma: float = 4.0
    #: the experiment fails when at least this many variables trip the guard
    min_failing_variables: int = 1
    #: loadings at least this fraction of a failing PC's largest loading
    #: attribute the failure to that variable
    loading_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.variance_fraction <= 1.0:
            raise ValueError(
                f"variance_fraction must be in (0, 1], got "
                f"{self.variance_fraction}"
            )
        if self.sigma <= 0.0:
            raise ValueError(f"sigma must be positive, got {self.sigma}")
        if self.min_runs_per_pc < 1 or self.min_failing_pcs < 1:
            raise ValueError("failure-count thresholds must be >= 1")


@dataclass
class EctResult:
    """The verdict plus everything needed to explain it."""

    consistent: bool
    n_runs: int
    n_pcs: int
    failing_pcs: list[int]
    failing_variables: list[str]
    invariant_violations: list[str]
    #: per-PC count of runs outside the CI, shape (n_pcs,)
    pc_fail_counts: np.ndarray
    #: normalized scores per run, shape (n_runs, n_pcs)
    run_scores: np.ndarray
    config: EctConfig
    #: variables tripping the gross-outlier guard (subset of failing_variables)
    outlier_variables: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:  # truthiness == consistency
        return self.consistent

    def summary(self) -> str:
        verdict = "consistent" if self.consistent else "INCONSISTENT"
        parts = [
            f"{verdict}: {len(self.failing_pcs)} of {self.n_pcs} PCs failed "
            f"in >= {self.config.min_runs_per_pc} of {self.n_runs} runs"
        ]
        if self.invariant_violations:
            parts.append(
                "invariant violations: "
                + ", ".join(self.invariant_violations[:8])
            )
        if self.outlier_variables:
            parts.append(
                "gross outliers: " + ", ".join(self.outlier_variables[:8])
            )
        if self.failing_variables:
            parts.append(
                "implicated variables: "
                + ", ".join(self.failing_variables[:8])
            )
        return "; ".join(parts)


class UltraFastECT:
    """PCA consistency test fitted on one accepted ensemble.

    Fit once, test many experiments — the SVD is computed at construction
    from the ensemble's member matrix, and :meth:`test` only projects.

    ``ensemble`` is a :class:`repro.ensemble.Ensemble` (or any object with
    ``matrix`` and ``variable_names``).
    """

    def __init__(self, ensemble, config: Optional[EctConfig] = None):
        self.config = config or EctConfig()
        self.ensemble = ensemble
        matrix = np.asarray(ensemble.matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] < 3:
            raise ValueError(
                "ECT needs an ensemble matrix with at least 3 members, got "
                f"shape {matrix.shape}"
            )
        self.variable_names: list[str] = list(ensemble.variable_names)
        self.mean = matrix.mean(axis=0)
        self.std = matrix.std(axis=0, ddof=1)

        self._variable_cols = np.flatnonzero(self.std > 0.0)
        self._invariant_cols = np.flatnonzero(self.std == 0.0)
        self.invariant_names = [
            self.variable_names[j] for j in self._invariant_cols
        ]
        self.invariant_values = self.mean[self._invariant_cols]

        standardized = (
            matrix[:, self._variable_cols] - self.mean[self._variable_cols]
        ) / self.std[self._variable_cols]
        _, singular, vt = np.linalg.svd(standardized, full_matrices=False)
        explained = singular**2
        total = float(explained.sum())
        if total <= 0.0:
            raise ValueError("ensemble has no variance to decompose")
        cumulative = np.cumsum(explained) / total
        n_pcs = int(np.searchsorted(cumulative, self.config.variance_fraction))
        n_pcs = min(n_pcs + 1, len(singular))
        if self.config.max_pcs is not None:
            n_pcs = min(n_pcs, self.config.max_pcs)
        self.n_pcs = n_pcs
        self.components = vt[:n_pcs]                      # (n_pcs, n_var)
        member_scores = standardized @ self.components.T  # (n, n_pcs)
        self.score_std = member_scores.std(axis=0, ddof=1)
        self.explained_variance_fraction = float(cumulative[n_pcs - 1])

    # ------------------------------------------------------------- scoring
    def _vector(self, run: Union[RunResult, np.ndarray]) -> np.ndarray:
        if isinstance(run, RunResult):
            vector = self.ensemble.run_vector(run)
        else:
            vector = np.asarray(run, dtype=float)
        if vector.shape != (len(self.variable_names),):
            raise ValueError(
                f"run vector has shape {vector.shape}, expected "
                f"({len(self.variable_names)},)"
            )
        return vector

    def _standardize(self, vector: np.ndarray) -> np.ndarray:
        return (
            vector[self._variable_cols] - self.mean[self._variable_cols]
        ) / self.std[self._variable_cols]

    def _broken_invariants(self, vector: np.ndarray) -> list[str]:
        broken = vector[self._invariant_cols] != self.invariant_values
        return [
            name for name, bad in zip(self.invariant_names, broken) if bad
        ]

    def scores(self, run: Union[RunResult, np.ndarray]) -> np.ndarray:
        """Normalized PC scores of one run (member scores have std 1)."""
        z = self._standardize(self._vector(run))
        return (z @ self.components.T) / self.score_std

    def invariant_violations(
        self, run: Union[RunResult, np.ndarray]
    ) -> list[str]:
        """Names of bit-exact ensemble invariants this run breaks."""
        return self._broken_invariants(self._vector(run))

    def variable_z(self, run: Union[RunResult, np.ndarray]) -> np.ndarray:
        """Standardized per-variable deviations over the varying columns."""
        return self._standardize(self._vector(run))

    # ------------------------------------------------------------- testing
    def test(
        self, runs: Sequence[Union[RunResult, np.ndarray]]
    ) -> EctResult:
        """Apply the failure-count rule to K experimental runs."""
        from ..obs import get_metrics, get_tracer

        get_metrics().inc("ect.tests")
        with get_tracer().span(
            "ect.test", lambda: {"runs": len(runs), "pcs": self.n_pcs}
        ) as span:
            result = self._test(runs)
            span.annotate(consistent=result.consistent)
        return result

    def _test(
        self, runs: Sequence[Union[RunResult, np.ndarray]]
    ) -> EctResult:
        if not runs:
            raise ValueError("ECT needs at least one experimental run")
        config = self.config
        pc_fail_counts = np.zeros(self.n_pcs, dtype=int)
        var_fail_counts = np.zeros(len(self._variable_cols), dtype=int)
        run_scores = np.empty((len(runs), self.n_pcs), dtype=float)
        violation_runs = 0
        violated: dict[str, None] = {}
        for i, run in enumerate(runs):
            vector = self._vector(run)
            names = self._broken_invariants(vector)
            if names:
                violation_runs += 1
                for name in names:
                    violated.setdefault(name)
            z = self._standardize(vector)
            var_fail_counts += (np.abs(z) > config.variable_sigma).astype(int)
            scores = (z @ self.components.T) / self.score_std
            run_scores[i] = scores
            pc_fail_counts += (np.abs(scores) > config.sigma).astype(int)

        runs_needed = min(config.min_runs_per_pc, len(runs))
        failing_pcs = [
            int(pc)
            for pc in np.flatnonzero(pc_fail_counts >= runs_needed)
        ]
        outlier_variables = [
            self.variable_names[self._variable_cols[idx]]
            for idx in np.flatnonzero(var_fail_counts >= runs_needed)
        ]
        invariant_runs_needed = min(config.min_invariant_runs, len(runs))
        invariant_fail = violation_runs >= invariant_runs_needed
        consistent = (
            len(failing_pcs) < config.min_failing_pcs
            and len(outlier_variables) < config.min_failing_variables
            and not invariant_fail
        )

        failing_variables: dict[str, None] = {}
        for name in violated:
            failing_variables.setdefault(name)
        for name in outlier_variables:
            failing_variables.setdefault(name)
        for pc in failing_pcs:
            loadings = np.abs(self.components[pc])
            threshold = config.loading_fraction * float(loadings.max())
            for idx in np.argsort(loadings)[::-1]:
                if loadings[idx] < threshold:
                    break
                name = self.variable_names[self._variable_cols[idx]]
                failing_variables.setdefault(name)

        return EctResult(
            consistent=consistent,
            n_runs=len(runs),
            n_pcs=self.n_pcs,
            failing_pcs=failing_pcs,
            failing_variables=list(failing_variables),
            invariant_violations=list(violated),
            pc_fail_counts=pc_fail_counts,
            run_scores=run_scores,
            config=config,
            outlier_variables=outlier_variables,
        )


def ect_test(
    ensemble,
    runs: Sequence[Union[RunResult, np.ndarray]],
    config: Optional[EctConfig] = None,
) -> EctResult:
    """Fit :class:`UltraFastECT` on ``ensemble`` and test ``runs``."""
    return UltraFastECT(ensemble, config).test(runs)

"""repro.errors — the consolidated exception hierarchy.

Every error the package raises on purpose derives from :class:`ReproError`,
so callers embedding the pipeline (services, notebooks, the CLI) can write
one ``except ReproError`` instead of importing eight scattered types::

    from repro.errors import ReproError

    try:
        run_experiment(name, store_dir=store)
    except ReproError as exc:
        ...  # every intentional repro failure lands here

The concrete classes keep living (and keep being importable) where they
always were — ``repro.model.patches.UnknownPatchError``,
``repro.pipeline.store.StoreError``, ... — this module re-exports them
lazily so ``import repro.errors`` stays cheap and free of import cycles.
Each class also keeps its historical builtin bases (``ValueError``,
``KeyError``, ``RuntimeError``) so existing ``except`` clauses continue to
match.

Two usage conventions the CLI maps onto exit codes (tested in
``tests/test_errors.py``):

* *usage errors* — unknown experiment/backend/solver names, bad batch
  sizes — exit ``2`` (``EX_USAGE``) before any work runs;
* *analysis outcomes* — the pipeline ran but did not localize — exit
  ``1``; these are not exceptions at all.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "ArtifactError",
    "CoverageReportError",
    "FortranFrontEndError",
    "FortranRuntimeError",
    "InfeasibleSelectionError",
    "InvalidBatchSizeError",
    "KernelError",
    "PatchError",
    "PipelineError",
    "ReproError",
    "SelectionError",
    "StageError",
    "StoreError",
    "UnknownBackendError",
    "UnknownExperimentError",
    "UnknownPatchError",
    "UnknownSolverError",
    "VectorizationError",
]


class ReproError(Exception):
    """Base class of every intentional error raised by :mod:`repro`.

    Concrete errors mix this in *alongside* their historical builtin base
    (``class StoreError(ReproError, ValueError)``), so both
    ``except ReproError`` and the pre-consolidation ``except ValueError``
    spellings keep working.
    """


#: name -> (module, attribute): the concrete classes, re-exported lazily
#: from their defining modules (importing them eagerly here would create
#: cycles — those modules import ReproError from this one)
_ERROR_EXPORTS: dict[str, tuple[str, str]] = {
    "FortranFrontEndError": ("repro.fortran.errors", "FortranFrontEndError"),
    "FortranRuntimeError": ("repro.runtime.values", "FortranRuntimeError"),
    "ArtifactError": ("repro.ensemble.artifact", "ArtifactError"),
    "CoverageReportError": ("repro.coverage.report", "CoverageReportError"),
    "PatchError": ("repro.model.patches", "PatchError"),
    "UnknownPatchError": ("repro.model.patches", "UnknownPatchError"),
    "UnknownExperimentError": ("repro.experiments", "UnknownExperimentError"),
    "UnknownBackendError": ("repro.ensemble.backends", "UnknownBackendError"),
    "InvalidBatchSizeError": ("repro.ensemble.backends", "InvalidBatchSizeError"),
    "StoreError": ("repro.pipeline.store", "StoreError"),
    "PipelineError": ("repro.pipeline.core", "PipelineError"),
    "StageError": ("repro.pipeline.core", "StageError"),
    "VectorizationError": ("repro.runtime.values", "VectorizationError"),
    "KernelError": ("repro.kgen.extract", "KernelError"),
    "SelectionError": ("repro.selection.setcover", "SelectionError"),
    "InfeasibleSelectionError": ("repro.selection.setcover", "InfeasibleSelectionError"),
    "UnknownSolverError": ("repro.selection.setcover", "UnknownSolverError"),
}


def __getattr__(name: str) -> Any:
    try:
        module_name, attr = _ERROR_EXPORTS[name]
    except KeyError as exc:
        raise AttributeError(
            f"module 'repro.errors' has no attribute {name!r}"
        ) from exc
    from importlib import import_module

    return getattr(import_module(module_name), attr)


def __dir__() -> list[str]:  # pragma: no cover - trivial
    return sorted(__all__)

"""repro.slicing — hybrid backward slicing over the metagraph (§4.3).

Given the output variables a consistency test flags, walk the
variable-dependency metagraph backward to everything that could have fed
them, intersect with executed-line coverage, and rank the surviving
modules into a root-cause search space:

>>> from repro.ensemble import generate_ensemble
>>> from repro.ect import UltraFastECT
>>> from repro.model import ModelConfig, build_model_source
>>> from repro.runtime import run_model
>>> from repro.slicing import slice_failing_runs
>>> ens = generate_ensemble(n=30)
>>> ect = UltraFastECT(ens)
>>> bad = ModelConfig(patches=("wsubbug",))
>>> runs = [run_model(ens.spec.experimental_config(i, model=bad))
...         for i in range(3)]
>>> verdict = ect.test(runs)              # fails
>>> sl = slice_failing_runs(ens, runs, ect_result=verdict)
>>> "microp_aero" in sl                   # the patched module is inside
True
>>> sl.fraction < 0.5                     # ... and the space is halved
True

:func:`backward_slice` is the underlying pure graph operation (reverse
BFS with depths, coverage-filtered); :func:`output_field_seeds` maps
history field names to their ``outfld`` payload nodes.
"""

from __future__ import annotations

from .backward import (
    BackwardSlice,
    RankedSlice,
    backward_slice,
    slice_failing_runs,
    variable_weights,
)
from .seeds import module_file_map, output_field_seeds

__all__ = [
    "BackwardSlice",
    "RankedSlice",
    "backward_slice",
    "module_file_map",
    "output_field_seeds",
    "slice_failing_runs",
    "variable_weights",
]

"""Map output variables to metagraph seed nodes (and modules to files).

The paper slices backward from the output variables the consistency test
flags.  The bridge from an output-field *name* (``"PRECT"``) to graph
*nodes* is the model's history layer: every field is written by a
``call outfld('NAME', payload)`` (or ``outfld2d``) statement, so the seed
nodes of a field are the variable nodes its payload expression reads at
the call site.  Scanning call sites — instead of guessing by name — keeps
the mapping correct when the payload variable is named differently from
the field (``CLDTOT`` is written from ``cltot``) or lives in another
module via use-association (``RELHUM`` is written from the physics
buffer's ``pbuf_relhum``).
"""

from __future__ import annotations

from typing import Mapping

from ..fortran.ast_nodes import (
    Apply,
    CallStmt,
    DerivedRef,
    SourceFileAST,
    StringLit,
    VarRef,
)
from ..graphs.metagraph import MetaGraph, NodeKey

__all__ = ["module_file_map", "output_field_seeds"]

#: history-write entry points recognized at call sites
_OUTFLD_NAMES = frozenset({"outfld", "outfld2d"})


def _parsed(source) -> Mapping[str, SourceFileAST]:
    """Accept a ModelSource or an already-parsed ``{filename: AST}`` map."""
    if hasattr(source, "parse"):
        return source.parse()
    return source


def module_file_map(source) -> dict[str, str]:
    """``{fortran module name: filename}`` over the parsed tree."""
    out: dict[str, str] = {}
    for filename, ast in _parsed(source).items():
        for mod in ast.modules:
            out[mod.name] = filename
    return out


def _payload_name(expr) -> str | None:
    """The dotted variable name an outfld payload expression designates."""
    if isinstance(expr, VarRef):
        return expr.name
    if isinstance(expr, Apply):  # array element/section payload
        return expr.name
    if isinstance(expr, DerivedRef):
        base = _payload_name(expr.base)
        return f"{base}%{expr.component}" if base else None
    return None


def output_field_seeds(
    source, graph: MetaGraph
) -> dict[str, frozenset[NodeKey]]:
    """Seed nodes per output field, from ``outfld`` call sites.

    For every ``call outfld('NAME', payload)`` in the parsed tree, the
    seeds of ``NAME`` are the graph nodes matching the payload variable —
    preferentially in the calling module/scope, falling back to a global
    canonical-name match for use-associated payloads (e.g. physics-buffer
    fields owned by another module).
    """
    seeds: dict[str, set[NodeKey]] = {}
    for ast in _parsed(source).values():
        for mod in ast.modules:
            for sub, stmt in mod.walk_statements():
                if not isinstance(stmt, CallStmt):
                    continue
                if stmt.name not in _OUTFLD_NAMES or len(stmt.args) < 2:
                    continue
                label = stmt.args[0]
                if not isinstance(label, StringLit):
                    continue
                name = _payload_name(stmt.args[1])
                if name is None:
                    continue
                canonical = name.rsplit("%", 1)[-1].lower()
                scope_names = (sub.name, "") if sub is not None else ("",)
                keys = [
                    key
                    for key in graph.find(canonical)
                    if key[0] == mod.name and key[1] in scope_names
                ]
                if not keys:  # use-associated payload: match anywhere
                    keys = graph.find(canonical)
                seeds.setdefault(label.value, set()).update(keys)
    return {field: frozenset(keys) for field, keys in seeds.items()}

"""Hybrid backward slicing: metagraph BFS intersected with coverage.

This is the paper's §4.3 search-space reduction, live: starting from the
output variables a consistency test flags, walk the variable-dependency
metagraph *backward* (``MetaGraph.reachable_from(..., reverse=True)``) to
everything that could have fed them, intersect with the executed-line
coverage of the failing configuration (statically reachable but never
executed code cannot be the cause), and rank the surviving modules.

Two layers:

:func:`backward_slice`
    The pure graph operation: reverse-BFS closure of a seed set with
    per-node depths, optionally coverage-filtered.  Deterministic, cheap,
    and independent of any model run.

:func:`slice_failing_runs`
    The pipeline operation: given the accepted :class:`Ensemble` and the
    ECT-failing experimental runs, weight output variables by how far
    outside the accepted distribution they fall (invariant violations
    dominate), slice backward from the most-affected variables' seed
    nodes, and score each module by proximity — ``score(m) = Σ_v w(v) ·
    decay^depth_v(m)``.  Chaotic error growth makes *every* variable fail
    after a step or two, so set intersection alone cannot localize; the
    magnitude-times-distance ranking is what turns a 80%-of-the-code
    reachable set into a slice below half the modules that still contains
    the injected bug (the integration suite holds it to that for all five
    registered patches).
"""

from __future__ import annotations

import math
import warnings
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

import numpy as np

from ..graphs.metagraph import MetaGraph, NodeKey
from .seeds import module_file_map, output_field_seeds

__all__ = [
    "BackwardSlice",
    "RankedSlice",
    "backward_slice",
    "slice_failing_runs",
    "variable_weights",
]

#: z-score assigned to a violated bit-invariant channel (sd == 0 but the
#: experimental value moved): far above any finite spread, below overflow
_INVARIANT_Z = 1.0e6


def _executed_lines_by_file(coverage) -> dict[str, frozenset[int]]:
    """Normalize a CoverageTrace or CoverageReport to {file: executed lines}."""
    if coverage is None:
        return {}
    if hasattr(coverage, "filenames"):  # CoverageReport
        names = coverage.filenames()
    else:  # CoverageTrace
        names = coverage.files()
    return {
        name: frozenset(coverage.executed_lines(name)) for name in names
    }


@dataclass
class BackwardSlice:
    """The reverse closure of a seed set, with per-node BFS depths."""

    seeds: frozenset[NodeKey]
    #: node -> minimum reverse-BFS distance from any seed
    depths: dict[NodeKey, int] = field(default_factory=dict)
    #: nodes discovered by BFS but rejected by the coverage filter
    unexecuted: frozenset[NodeKey] = frozenset()

    @property
    def nodes(self) -> frozenset[NodeKey]:
        return frozenset(self.depths)

    def modules(self) -> frozenset[str]:
        """Fortran modules with at least one node in the slice."""
        return frozenset(key[0] for key in self.depths)

    def module_depths(self) -> dict[str, int]:
        """``{module: min depth of any of its nodes}``."""
        out: dict[str, int] = {}
        for (module, _, _), depth in self.depths.items():
            if depth < out.get(module, math.inf):
                out[module] = depth
        return out

    def scopes(self) -> frozenset[tuple[str, str]]:
        """``(module, scope)`` pairs represented in the slice."""
        return frozenset((key[0], key[1]) for key in self.depths)

    def __len__(self) -> int:
        return len(self.depths)

    def __contains__(self, key: NodeKey) -> bool:
        return key in self.depths


def backward_slice(
    graph: MetaGraph,
    seeds: "Iterable[NodeKey] | str",
    *,
    coverage=None,
    module_files: Optional[Mapping[str, str]] = None,
) -> BackwardSlice:
    """Reverse-BFS closure of ``seeds`` over ``graph``, coverage-filtered.

    Parameters
    ----------
    graph:
        The variable-dependency :class:`MetaGraph`.
    seeds:
        Node keys to start from, or a canonical variable name resolved via
        :meth:`MetaGraph.find`.
    coverage:
        Optional :class:`~repro.runtime.CoverageTrace` or
        :class:`~repro.coverage.CoverageReport`.  When given (together
        with ``module_files``), a reached node is kept only if its
        module's file was executed *and* — when the node carries source
        lines — at least one of its lines executed.  Rejected nodes are
        recorded on ``unexecuted`` and the BFS does **not** continue
        through them: data cannot have flowed through code that never ran.
    module_files:
        ``{fortran module: filename}`` (see
        :func:`repro.slicing.module_file_map`), required to interpret
        ``coverage``.
    """
    if isinstance(seeds, str):
        seed_keys = frozenset(graph.find(seeds))
    else:
        seed_keys = frozenset(seeds)
    executed = _executed_lines_by_file(coverage)
    filtering = coverage is not None and module_files is not None

    def keep(key: NodeKey) -> bool:
        if not filtering:
            return True
        filename = module_files.get(key[0])
        if filename is None or filename not in executed:
            return False
        node = graph.nodes.get(key)
        if node is None or not node.lines:
            return True
        return bool(node.lines & executed[filename])

    depths: dict[NodeKey, int] = {}
    rejected: set[NodeKey] = set()
    queue: deque[tuple[NodeKey, int]] = deque(
        (key, 0) for key in seed_keys if key in graph.nodes
    )
    while queue:
        key, depth = queue.popleft()
        if key in depths or key in rejected:
            continue
        if not keep(key):
            rejected.add(key)
            continue
        depths[key] = depth
        for pred in graph.predecessors(key):
            if pred not in depths and pred not in rejected:
                queue.append((pred, depth + 1))
    return BackwardSlice(
        seeds=seed_keys, depths=depths, unexecuted=frozenset(rejected)
    )


@dataclass
class RankedSlice:
    """A ranked module/scope slice: the root-cause search space.

    ``modules`` is the slice proper — the highest-scoring modules, capped
    below ``max_module_fraction`` of the graph's modules.  ``ranking``
    keeps every scored module for inspection, ``variable_weights`` the
    evidence each output variable contributed, and ``slices`` the
    per-variable :class:`BackwardSlice` objects (with node depths) so a
    report can descend from modules to scopes to source lines.
    """

    modules: list[str]
    ranking: list[tuple[str, float]]
    variable_weights: dict[str, float]
    slices: dict[str, BackwardSlice]
    total_modules: int

    def __contains__(self, module: str) -> bool:
        return module in self.modules

    def __len__(self) -> int:
        return len(self.modules)

    @property
    def fraction(self) -> float:
        """Slice size as a fraction of all graph modules."""
        return len(self.modules) / self.total_modules if self.total_modules else 0.0

    def scopes(self) -> list[tuple[str, str]]:
        """Sorted (module, scope) pairs of sliced nodes in slice modules."""
        keep = set(self.modules)
        out: set[tuple[str, str]] = set()
        for sl in self.slices.values():
            out.update(
                (m, s) for (m, s) in sl.scopes() if m in keep
            )
        return sorted(out)

    def summary(self) -> str:
        head = ", ".join(self.modules[:6])
        return (
            f"RankedSlice({len(self.modules)}/{self.total_modules} modules "
            f"[{self.fraction:.0%}]: {head}{'...' if len(self.modules) > 6 else ''})"
        )


def variable_weights(
    ensemble,
    runs: Sequence,
    failing: Optional[Iterable[str]] = None,
) -> dict[str, float]:
    """Log-damped z-score per output field: how far outside the accepted
    distribution the experimental runs fall, invariants dominating.

    The evidence layer shared by :func:`slice_failing_runs` and the
    refinement stage (:mod:`repro.refine`): every output field whose
    experimental values deviate gets a weight ``log1p(Σ z)``, where a
    violated bit-invariant column (ensemble spread exactly zero but the
    experimental value moved) counts as a fixed huge z so it dominates
    any finite spread.  ``failing``, when given, restricts the result to
    those field names (``@first`` suffixes are normalized away).
    """
    names = ensemble.variable_names
    mean = ensemble.mean()
    sd = ensemble.std()
    z_total = np.zeros(len(names))
    for run in runs:
        vec = ensemble.run_vector(run)
        dev = np.abs(vec - mean)
        with np.errstate(divide="ignore", invalid="ignore"):
            z = np.where(sd > 0, dev / np.where(sd > 0, sd, 1.0), 0.0)
        z = np.where((sd == 0) & (dev > 0), _INVARIANT_Z, z)
        z_total += np.minimum(z, _INVARIANT_Z)
    allowed = None
    if failing is not None:
        allowed = {name.replace("@first", "") for name in failing}
    weights: dict[str, float] = {}
    for i, name in enumerate(names):
        base = name.replace("@first", "")
        if allowed is not None and base not in allowed:
            continue
        if z_total[i] <= 0:
            continue
        w = float(np.log1p(min(z_total[i], 2 * _INVARIANT_Z)))
        if w > weights.get(base, 0.0):
            weights[base] = w
    return weights


def slice_failing_runs(
    ensemble,
    runs: Sequence,
    *,
    graph: Optional[MetaGraph] = None,
    source=None,
    coverage=None,
    ect_result=None,
    top_k: int = 8,
    decay: float = 0.5,
    max_module_fraction: float = 0.45,
    variables: Optional[Sequence[str]] = None,
    evidence=None,
) -> RankedSlice:
    """The hybrid backward slice for a set of ECT-failing runs.

    Parameters
    ----------
    ensemble:
        The accepted :class:`~repro.ensemble.Ensemble` (defines the
        distribution and the variable layout).
    runs:
        The experimental :class:`~repro.runtime.RunResult` values the
        consistency test failed.
    graph:
        The control model's :class:`MetaGraph`; built from ``source``
        when omitted.
    source:
        The control :class:`ModelSource`; built from ``ensemble.spec.model``
        when omitted.  Supplies the ``outfld`` seed map and the
        module-to-file map.
    coverage:
        Executed-line evidence (:class:`CoverageTrace` or
        :class:`CoverageReport`) of the failing configuration; falls back
        to the merged coverage of ``runs``, then to the ensemble's.
    ect_result:
        Optional :class:`~repro.ect.EctResult`; when given, only its
        ``failing_variables`` are candidate seeds.
    top_k:
        Number of most-affected output variables to slice from.
    decay:
        Per-BFS-level attenuation of a variable's evidence (0 < decay <= 1).
    max_module_fraction:
        Hard cap on the slice size as a fraction of all graph modules
        (default 0.45 — the acceptance bar is "below half the modules").
    variables:
        Deprecated spelling of ``evidence`` — a bare sequence of output
        field names.  Emits a :class:`DeprecationWarning`; pass an
        :class:`~repro.selection.EvidenceSelection` as ``evidence=``
        instead (bit-identical result).
    evidence:
        Explicit affected-variable override: an
        :class:`~repro.selection.EvidenceSelection` (anything with an
        ordered ``variables`` attribute works).  When given, the internal
        top-k most-deviant-variable heuristic (and the ``ect_result``
        seed filter) is bypassed and exactly these output fields are
        sliced from, each weighted by its own deviation evidence
        (``@first`` suffixes are normalized; fields with no deviation or
        no seed nodes contribute nothing).  This is the injection point
        for :mod:`repro.refine` and the :mod:`repro.selection` stage.
    """
    if variables is not None:
        if evidence is not None:
            raise ValueError(
                "pass either evidence= or the deprecated variables=, not both"
            )
        warnings.warn(
            "slice_failing_runs(variables=...) is deprecated; pass "
            "evidence=EvidenceSelection(variables=...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        requested_names: Optional[Sequence[str]] = variables
    elif evidence is not None:
        requested_names = list(getattr(evidence, "variables"))
    else:
        requested_names = None
    if not runs:
        raise ValueError("slice_failing_runs needs at least one failing run")
    if not 0.0 < decay <= 1.0:
        raise ValueError(f"decay must be in (0, 1], got {decay}")
    if not 0.0 < max_module_fraction <= 1.0:
        raise ValueError(
            f"max_module_fraction must be in (0, 1], got {max_module_fraction}"
        )
    if source is None:
        from ..model.builder import build_model_source

        source = build_model_source(ensemble.spec.model)
    if graph is None:
        from ..graphs import build_metagraph

        graph = build_metagraph(source)
    if coverage is None:
        merged = None
        for run in runs:
            if run.coverage:
                merged = (
                    run.coverage if merged is None else merged.merged(run.coverage)
                )
        coverage = merged if merged is not None else (
            ensemble.coverage if ensemble.coverage else None
        )
    module_files = module_file_map(source)
    seed_map = output_field_seeds(source, graph)

    if requested_names is not None:
        weights = variable_weights(ensemble, runs, None)
        requested: list[str] = []
        for name in requested_names:
            base = name.replace("@first", "")
            if base not in requested:
                requested.append(base)
        top = [
            (name, weights[name]) for name in requested if weights.get(name)
        ]
    else:
        failing = (
            list(ect_result.failing_variables)
            if ect_result is not None
            else None
        )
        weights = variable_weights(ensemble, runs, failing)
        top = sorted(weights.items(), key=lambda kv: (-kv[1], kv[0]))[:top_k]

    scores: dict[str, float] = {}
    slices: dict[str, BackwardSlice] = {}
    for name, weight in top:
        seeds = seed_map.get(name)
        if not seeds:
            continue
        sl = backward_slice(
            graph, seeds, coverage=coverage, module_files=module_files
        )
        slices[name] = sl
        for module, depth in sl.module_depths().items():
            scores[module] = scores.get(module, 0.0) + weight * (decay ** depth)

    ranking = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
    total = len(graph.modules())
    cap = max(1, math.floor(max_module_fraction * total))
    if cap >= total:
        cap = total - 1 if total > 1 else 1  # "slice" must exclude something
    modules = [module for module, _ in ranking[:cap]]
    return RankedSlice(
        modules=modules,
        ranking=ranking,
        variable_weights=dict(top),
        slices=slices,
        total_modules=total,
    )

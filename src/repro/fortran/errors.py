"""Exception types raised by the Fortran-subset front end.

The paper reports that existing Fortran parsers (fparser, KGen helpers)
fail on a small number of CESM statements and that a fallback string parser
is used for those.  We mirror that structure: the primary recursive-descent
parser raises :class:`ParseError` with precise source locations, and the
driver may hand the offending statement to the regex fallback parser
(:mod:`repro.fortran.fallback`) before giving up.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ReproError


class FortranFrontEndError(ReproError):
    """Base class for all errors raised by :mod:`repro.fortran`."""


@dataclass
class SourceLocation:
    """A location in a Fortran source file.

    Attributes
    ----------
    filename:
        Name of the source file (module file) being processed.
    line:
        1-based physical line number in the original (pre-preprocessing)
        source, so error messages point at what the developer wrote.
    column:
        1-based column of the offending token, or 0 when unknown.
    """

    filename: str = "<string>"
    line: int = 0
    column: int = 0

    def __str__(self) -> str:  # pragma: no cover - trivial formatting
        if self.column:
            return f"{self.filename}:{self.line}:{self.column}"
        return f"{self.filename}:{self.line}"


class LexError(FortranFrontEndError):
    """Raised when the lexer encounters a character it cannot tokenize."""

    def __init__(self, message: str, location: SourceLocation | None = None):
        self.location = location or SourceLocation()
        super().__init__(f"{self.location}: {message}")


class ParseError(FortranFrontEndError):
    """Raised when the recursive-descent parser cannot parse a statement."""

    def __init__(self, message: str, location: SourceLocation | None = None):
        self.location = location or SourceLocation()
        super().__init__(f"{self.location}: {message}")


class UnsupportedStatementError(ParseError):
    """Raised for statements outside the supported Fortran subset.

    The statement may still be handled by the fallback parser; callers
    should catch this error and decide whether to degrade gracefully
    (the paper tolerates 10 unparsed assignments out of 660k lines).
    """


class PreprocessorError(FortranFrontEndError):
    """Raised for malformed preprocessor directives (#if/#endif mismatch)."""

    def __init__(self, message: str, location: SourceLocation | None = None):
        self.location = location or SourceLocation()
        super().__init__(f"{self.location}: {message}")

"""Recursive-descent parser for the Fortran subset.

This is the primary parser in the paper's three-parser strategy
(fparser / KGen helpers / regex fallback).  It converts preprocessed logical
lines into the AST defined in :mod:`repro.fortran.ast_nodes`.  Statements it
cannot handle raise :class:`UnsupportedStatementError`; the driver
(:func:`parse_source`) retries them with the regex fallback parser before
recording them as :class:`UnparsedStmt`.
"""

from __future__ import annotations

from typing import Optional

from .ast_nodes import (
    AccessStmt,
    Apply,
    Assignment,
    BinOp,
    CallStmt,
    CaseItem,
    ContinueStmt,
    CycleStmt,
    Declaration,
    DerivedRef,
    DoLoop,
    DoWhile,
    EntityDecl,
    ExitStmt,
    Expr,
    IfBlock,
    InterfaceBlock,
    LogicalLit,
    ModuleNode,
    NumberLit,
    PointerAssignment,
    Rename,
    ReturnStmt,
    SectionRange,
    SelectCase,
    SourceFileAST,
    Stmt,
    StopStmt,
    StringLit,
    Subprogram,
    TypeDef,
    UnaryOp,
    UnparsedStmt,
    UseStmt,
    VarRef,
    WhereBlock,
)
from .errors import (
    FortranFrontEndError,
    ParseError,
    SourceLocation,
    UnsupportedStatementError,
)
from .lexer import tokenize_line
from .preprocessor import LogicalLine, preprocess
from .tokens import Token, TokenType

__all__ = ["ExpressionParser", "Parser", "parse_source", "parse_expression"]


# --------------------------------------------------------------------------- #
# Expression parsing (precedence climbing)
# --------------------------------------------------------------------------- #
_BINARY_PRECEDENCE: dict[str, int] = {
    ".or.": 1,
    ".and.": 2,
    "==": 4,
    "/=": 4,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "//": 5,
    "+": 6,
    "-": 6,
    "*": 7,
    "/": 7,
    "**": 9,
}

#: right-associative operators
_RIGHT_ASSOC = {"**"}


class ExpressionParser:
    """Parse an expression from a token list starting at ``pos``."""

    def __init__(self, tokens: list[Token], pos: int = 0):
        self.tokens = tokens
        self.pos = pos

    # ----------------------------------------------------------------- utils
    def peek(self, offset: int = 0) -> Token:
        idx = self.pos + offset
        if idx < len(self.tokens):
            return self.tokens[idx]
        return self.tokens[-1]  # EOL token

    def advance(self) -> Token:
        tok = self.peek()
        if tok.type is not TokenType.EOL:
            self.pos += 1
        return tok

    def expect_op(self, op: str) -> Token:
        tok = self.peek()
        if not tok.is_op(op):
            raise ParseError(f"expected {op!r}, found {tok.value!r}", tok.location)
        return self.advance()

    def at_end(self) -> bool:
        return self.peek().type is TokenType.EOL

    # ------------------------------------------------------------ components
    def parse_expression(self, min_prec: int = 0) -> Expr:
        left = self.parse_unary()
        while True:
            tok = self.peek()
            op = None
            if tok.type is TokenType.OPERATOR and tok.value in _BINARY_PRECEDENCE:
                op = tok.value
            elif tok.type is TokenType.DOTOP and tok.value in _BINARY_PRECEDENCE:
                op = tok.value
            if op is None:
                break
            prec = _BINARY_PRECEDENCE[op]
            if prec < min_prec:
                break
            self.advance()
            next_min = prec if op in _RIGHT_ASSOC else prec + 1
            right = self.parse_expression(next_min)
            left = BinOp(op=op, left=left, right=right)
        return left

    def parse_unary(self) -> Expr:
        tok = self.peek()
        if tok.is_op("-") or tok.is_op("+"):
            self.advance()
            # Fortran gives ** higher precedence than unary minus: -a**b is
            # -(a**b).  Parse the operand at the precedence of ** so the
            # exponentiation binds to the operand before the sign applies.
            operand = self.parse_expression(_BINARY_PRECEDENCE["**"])
            if tok.value == "+":
                return operand
            return UnaryOp(op="-", operand=operand)
        if tok.type is TokenType.DOTOP and tok.value == ".not.":
            self.advance()
            # .not. binds tighter than .and./.or. but looser than the
            # relational operators: .not. a == b is .not. (a == b).
            operand = self.parse_expression(_BINARY_PRECEDENCE[".and."] + 1)
            return UnaryOp(op=".not.", operand=operand)
        return self.parse_power_operand()

    def parse_power_operand(self) -> Expr:
        """Parse a primary followed by ``%`` component references."""
        expr = self.parse_primary()
        while self.peek().is_op("%"):
            self.advance()
            comp_tok = self.peek()
            if comp_tok.type is not TokenType.NAME:
                raise ParseError(
                    f"expected component name after '%', found {comp_tok.value!r}",
                    comp_tok.location,
                )
            self.advance()
            args: list[Expr] = []
            if self.peek().is_op("("):
                args = self.parse_argument_list()[0]
            expr = DerivedRef(base=expr, component=comp_tok.value, args=args)
        return expr

    def parse_primary(self) -> Expr:
        tok = self.peek()
        if tok.type is TokenType.INTEGER:
            self.advance()
            body, _, kind = tok.value.partition("_")
            return NumberLit(value=float(int(body)), kind=kind or None, is_integer=True)
        if tok.type is TokenType.REAL:
            self.advance()
            body, _, kind = tok.value.partition("_")
            body = body.replace("d", "e")
            return NumberLit(value=float(body), kind=kind or None, is_integer=False)
        if tok.type is TokenType.STRING:
            self.advance()
            return StringLit(value=tok.value)
        if tok.type is TokenType.LOGICAL:
            self.advance()
            return LogicalLit(value=tok.value == ".true.")
        if tok.is_op("("):
            self.advance()
            inner = self.parse_expression()
            self.expect_op(")")
            return inner
        if tok.type is TokenType.NAME:
            self.advance()
            if self.peek().is_op("("):
                args, keywords = self.parse_argument_list()
                return Apply(name=tok.value, args=args, keywords=keywords)
            return VarRef(name=tok.value)
        raise ParseError(f"unexpected token {tok.value!r} in expression", tok.location)

    def parse_argument_list(self) -> tuple[list[Expr], dict[str, Expr]]:
        """Parse ``( arg, arg, kw=arg, ... )`` including array sections."""
        self.expect_op("(")
        args: list[Expr] = []
        keywords: dict[str, Expr] = {}
        if self.peek().is_op(")"):
            self.advance()
            return args, keywords
        while True:
            arg = self.parse_argument()
            if isinstance(arg, tuple):
                keywords[arg[0]] = arg[1]
            else:
                args.append(arg)
            tok = self.peek()
            if tok.is_op(","):
                self.advance()
                continue
            self.expect_op(")")
            break
        return args, keywords

    def parse_argument(self):
        """One actual argument: expression, section range, or keyword=expr."""
        tok = self.peek()
        # keyword argument: NAME '=' (not '==')
        if tok.type is TokenType.NAME and self.peek(1).is_op("="):
            name = tok.value
            self.advance()
            self.advance()
            return (name, self.parse_expression())
        # bare ':' or leading ':' section
        if tok.is_op(":"):
            self.advance()
            upper = None
            if not (self.peek().is_op(",") or self.peek().is_op(")")):
                upper = self.parse_expression()
            return SectionRange(lower=None, upper=upper)
        expr = self.parse_expression()
        if self.peek().is_op(":"):
            self.advance()
            upper = None
            if not (self.peek().is_op(",") or self.peek().is_op(")")):
                upper = self.parse_expression()
            stride = None
            if self.peek().is_op(":"):
                self.advance()
                stride = self.parse_expression()
            return SectionRange(lower=expr, upper=upper, stride=stride)
        return expr


def parse_expression(text: str) -> Expr:
    """Parse a standalone expression from source text (testing helper)."""
    tokens = tokenize_line(text)
    parser = ExpressionParser(tokens)
    expr = parser.parse_expression()
    if not parser.at_end():
        tok = parser.peek()
        raise ParseError(f"trailing tokens after expression: {tok.value!r}", tok.location)
    return expr


# --------------------------------------------------------------------------- #
# Statement / program-unit parsing
# --------------------------------------------------------------------------- #
_DECL_KEYWORDS = {"real", "integer", "logical", "character", "type", "class"}
_ATTRIBUTE_NAMES = {
    "parameter",
    "save",
    "public",
    "private",
    "allocatable",
    "pointer",
    "target",
    "optional",
    "dimension",
    "intent",
    "external",
    "intrinsic",
}
_SUBPROGRAM_PREFIXES = {"elemental", "pure", "recursive"}


class Parser:
    """Parse the logical lines of one source file into a :class:`SourceFileAST`."""

    def __init__(self, lines: list[LogicalLine], filename: str = "<string>",
                 use_fallback: bool = True):
        self.lines = lines
        self.filename = filename
        self.index = 0
        self.use_fallback = use_fallback
        #: statements the primary parser failed on and the fallback recovered
        self.fallback_statements: list[SourceLocation] = []
        #: statements no parser could handle
        self.unparsed: list[UnparsedStmt] = []

    # ----------------------------------------------------------------- lines
    def _current(self) -> Optional[LogicalLine]:
        if self.index < len(self.lines):
            return self.lines[self.index]
        return None

    def _advance_line(self) -> LogicalLine:
        line = self.lines[self.index]
        self.index += 1
        return line

    def _tokens(self, line: LogicalLine) -> list[Token]:
        return tokenize_line(line.text, filename=self.filename, line=line.line)

    @staticmethod
    def _loc(line: LogicalLine) -> SourceLocation:
        return SourceLocation(line.filename, line.line)

    # ------------------------------------------------------------------ file
    def parse_file(self) -> SourceFileAST:
        ast = SourceFileAST(filename=self.filename)
        while self._current() is not None:
            line = self._current()
            tokens = self._tokens(line)
            first = tokens[0]
            if first.is_name("module") and not (
                len(tokens) > 1 and tokens[1].is_name("procedure")
            ):
                ast.modules.append(self.parse_module())
            else:
                # Anything outside a module (bare programs) is out of scope.
                raise UnsupportedStatementError(
                    f"top-level statement outside a module: {line.text!r}",
                    self._loc(line),
                )
        return ast

    # ---------------------------------------------------------------- module
    def parse_module(self) -> ModuleNode:
        header = self._advance_line()
        tokens = self._tokens(header)
        if len(tokens) < 2 or tokens[1].type is not TokenType.NAME:
            raise ParseError("malformed module header", self._loc(header))
        module = ModuleNode(name=tokens[1].value, filename=self.filename)

        in_contains = False
        while True:
            line = self._current()
            if line is None:
                raise ParseError(
                    f"unexpected end of file inside module {module.name!r}",
                    SourceLocation(self.filename, header.line),
                )
            tokens = self._tokens(line)
            first = tokens[0]

            if self._is_end_of(tokens, "module"):
                self._advance_line()
                break
            if first.is_name("contains"):
                in_contains = True
                self._advance_line()
                continue
            if first.is_name("subroutine", "function") or (
                first.value in _SUBPROGRAM_PREFIXES
                and any(t.is_name("subroutine", "function") for t in tokens[1:3])
            ) or (
                first.is_name("real", "integer", "logical")
                and any(t.is_name("function") for t in tokens[1:4])
            ):
                sub = self.parse_subprogram()
                module.subprograms[sub.name] = sub
                continue
            if in_contains:
                raise ParseError(
                    f"unexpected statement in contains section: {line.text!r}",
                    self._loc(line),
                )
            # -------------------------- module header (specification) region
            self._advance_line()
            stmt = self._parse_specification_statement(tokens, line)
            if isinstance(stmt, UseStmt):
                module.uses.append(stmt)
            elif isinstance(stmt, TypeDef):
                module.type_defs[stmt.name] = stmt
            elif isinstance(stmt, InterfaceBlock):
                module.interfaces[stmt.name] = stmt
            elif stmt is not None:
                module.declarations.append(stmt)
        module.unparsed = list(self.unparsed)
        return module

    def _is_end_of(self, tokens: list[Token], unit: str) -> bool:
        first = tokens[0]
        if first.is_name(f"end{unit}"):
            return True
        if first.is_name("end"):
            if len(tokens) == 1 or tokens[1].type is TokenType.EOL:
                # a bare "end" closes the innermost unit; callers only ask
                # about the unit they are currently parsing.
                return True
            return tokens[1].is_name(unit)
        return False

    # ---------------------------------------------------- specification part
    def _parse_specification_statement(
        self, tokens: list[Token], line: LogicalLine
    ) -> Optional[Stmt]:
        first = tokens[0]
        loc = self._loc(line)
        if first.is_name("use"):
            return self._parse_use(tokens, loc)
        if first.is_name("implicit"):
            return None
        if first.is_name("save"):
            return None
        if first.is_name("public", "private"):
            names = [t.value for t in tokens[1:] if t.type is TokenType.NAME]
            return AccessStmt(access=first.value, names=names, location=loc)
        if first.is_name("type") and not (len(tokens) > 1 and tokens[1].is_op("(")):
            return self._parse_type_def(tokens, line)
        if first.is_name("interface"):
            return self._parse_interface(tokens, line)
        if first.value in _DECL_KEYWORDS:
            return self._parse_declaration(tokens, loc)
        raise UnsupportedStatementError(
            f"unsupported specification statement: {line.text!r}", loc
        )

    def _parse_use(self, tokens: list[Token], loc: SourceLocation) -> UseStmt:
        if len(tokens) < 2 or tokens[1].type is not TokenType.NAME:
            raise ParseError("malformed use statement", loc)
        stmt = UseStmt(module=tokens[1].value, location=loc)
        idx = 2
        if idx < len(tokens) and tokens[idx].is_op(","):
            idx += 1
            if idx < len(tokens) and tokens[idx].is_name("only"):
                stmt.has_only = True
                idx += 1
                if idx < len(tokens) and tokens[idx].is_op(":"):
                    idx += 1
                # parse rename list: a, b => c, d
                while idx < len(tokens) and tokens[idx].type is TokenType.NAME:
                    local = tokens[idx].value
                    idx += 1
                    if idx < len(tokens) and tokens[idx].is_op("=>"):
                        idx += 1
                        if idx >= len(tokens) or tokens[idx].type is not TokenType.NAME:
                            raise ParseError("malformed rename in use statement", loc)
                        remote = tokens[idx].value
                        idx += 1
                        stmt.only.append(Rename(local=local, remote=remote))
                    else:
                        stmt.only.append(Rename.plain(local))
                    if idx < len(tokens) and tokens[idx].is_op(","):
                        idx += 1
        return stmt

    def _parse_type_def(self, tokens: list[Token], line: LogicalLine) -> TypeDef:
        loc = self._loc(line)
        # header: "type name" or "type :: name" or "type, public :: name"
        name = None
        for tok in tokens[1:]:
            if tok.type is TokenType.NAME and tok.value not in _ATTRIBUTE_NAMES:
                name = tok.value
        if name is None:
            raise ParseError("malformed derived type definition", loc)
        typedef = TypeDef(name=name, location=loc)
        while True:
            inner = self._current()
            if inner is None:
                raise ParseError(f"unterminated type definition {name!r}", loc)
            itokens = self._tokens(inner)
            if self._is_end_of(itokens, "type"):
                self._advance_line()
                break
            self._advance_line()
            if itokens[0].value in _DECL_KEYWORDS:
                typedef.components.append(
                    self._parse_declaration(itokens, self._loc(inner))
                )
            # access statements inside type defs are ignored
        return typedef

    def _parse_interface(self, tokens: list[Token], line: LogicalLine) -> InterfaceBlock:
        loc = self._loc(line)
        name = tokens[1].value if len(tokens) > 1 and tokens[1].type is TokenType.NAME else ""
        block = InterfaceBlock(name=name, location=loc)
        while True:
            inner = self._current()
            if inner is None:
                raise ParseError(f"unterminated interface block {name!r}", loc)
            itokens = self._tokens(inner)
            if self._is_end_of(itokens, "interface"):
                self._advance_line()
                break
            self._advance_line()
            if itokens[0].is_name("module") and len(itokens) > 1 and itokens[1].is_name("procedure"):
                block.procedures.extend(
                    t.value for t in itokens[2:] if t.type is TokenType.NAME
                )
            elif itokens[0].is_name("procedure"):
                block.procedures.extend(
                    t.value for t in itokens[1:] if t.type is TokenType.NAME
                )
        return block

    # ------------------------------------------------------------ declaration
    def _parse_declaration(self, tokens: list[Token], loc: SourceLocation) -> Declaration:
        parser = ExpressionParser(tokens)
        decl = Declaration(location=loc)
        first = parser.advance()
        decl.base_type = first.value
        # kind / len spec / derived type name
        if parser.peek().is_op("("):
            parser.advance()
            depth = 1
            spec_tokens: list[Token] = []
            while depth > 0:
                tok = parser.advance()
                if tok.type is TokenType.EOL:
                    raise ParseError("unterminated type spec", loc)
                if tok.is_op("("):
                    depth += 1
                elif tok.is_op(")"):
                    depth -= 1
                    if depth == 0:
                        break
                spec_tokens.append(tok)
            spec_names = [t.value for t in spec_tokens if t.type is TokenType.NAME]
            spec_text = "".join(t.value for t in spec_tokens)
            if decl.base_type in ("type", "class"):
                decl.type_name = spec_names[0] if spec_names else None
            elif decl.base_type == "character":
                decl.kind = spec_text or None
            else:
                # real(r8), real(kind=r8), integer(i8)...
                decl.kind = spec_names[-1] if spec_names else spec_text or None
        # attributes up to '::'
        while parser.peek().is_op(","):
            parser.advance()
            attr_tok = parser.advance()
            if attr_tok.type is not TokenType.NAME:
                raise ParseError(f"malformed attribute near {attr_tok.value!r}", loc)
            attr = attr_tok.value
            if attr == "intent":
                parser.expect_op("(")
                intent_tok = parser.advance()
                decl.intent = intent_tok.value
                # allow "in out"
                if parser.peek().type is TokenType.NAME:
                    decl.intent += parser.advance().value
                parser.expect_op(")")
            elif attr == "dimension":
                args, _ = parser.parse_argument_list()
                decl.attributes.append("dimension")
                decl.attributes.append(f"dims:{len(args)}")
            else:
                if attr == "parameter":
                    decl.is_parameter = True
                decl.attributes.append(attr)
        if parser.peek().is_op("::"):
            parser.advance()
        # entity list
        while True:
            name_tok = parser.peek()
            if name_tok.type is not TokenType.NAME:
                break
            parser.advance()
            entity = EntityDecl(name=name_tok.value)
            if parser.peek().is_op("("):
                args, _ = parser.parse_argument_list()
                entity.dims = args
            if parser.peek().is_op("=") or parser.peek().is_op("=>"):
                parser.advance()
                entity.init = parser.parse_expression()
            decl.entities.append(entity)
            if parser.peek().is_op(","):
                parser.advance()
                continue
            break
        return decl

    # ------------------------------------------------------------ subprogram
    def parse_subprogram(self) -> Subprogram:
        header = self._advance_line()
        tokens = self._tokens(header)
        loc = self._loc(header)
        parser = ExpressionParser(tokens)
        prefixes: list[str] = []
        while parser.peek().type is TokenType.NAME and (
            parser.peek().value in _SUBPROGRAM_PREFIXES
            or parser.peek().value in ("real", "integer", "logical")
        ):
            tok = parser.peek()
            if tok.value in ("subroutine", "function"):
                break
            prefixes.append(tok.value)
            parser.advance()
            # skip a kind spec after a type prefix, e.g. "real(r8) function f(x)"
            if parser.peek().is_op("("):
                depth = 0
                while True:
                    t = parser.advance()
                    if t.is_op("("):
                        depth += 1
                    elif t.is_op(")"):
                        depth -= 1
                        if depth == 0:
                            break
        kind_tok = parser.advance()
        if not kind_tok.is_name("subroutine", "function"):
            raise ParseError(
                f"expected subroutine/function, found {kind_tok.value!r}", loc
            )
        kind = kind_tok.value
        name_tok = parser.advance()
        if name_tok.type is not TokenType.NAME:
            raise ParseError("missing subprogram name", loc)
        sub = Subprogram(name=name_tok.value, kind=kind, prefixes=prefixes, location=loc)
        if parser.peek().is_op("("):
            parser.advance()
            while not parser.peek().is_op(")"):
                arg_tok = parser.advance()
                if arg_tok.type is TokenType.NAME:
                    sub.args.append(arg_tok.value)
                elif arg_tok.type is TokenType.EOL:
                    raise ParseError("unterminated argument list", loc)
            parser.advance()  # ')'
        if parser.peek().is_name("result"):
            parser.advance()
            parser.expect_op("(")
            res_tok = parser.advance()
            sub.result_name = res_tok.value
            parser.expect_op(")")

        # ------------------------------------------------ declarations + body
        body_started = False
        while True:
            line = self._current()
            if line is None:
                raise ParseError(f"unterminated {kind} {sub.name!r}", loc)
            try:
                tokens = self._tokens(line)
            except FortranFrontEndError:
                # untokenizable statement inside the body: fallback directly
                self._advance_line()
                if not self.use_fallback:
                    raise
                body_started = True
                stmt = self._fallback(line)
                if stmt is not None:
                    sub.body.append(stmt)
                continue
            first = tokens[0]
            if self._is_end_of(tokens, kind):
                self._advance_line()
                break
            if first.is_name("contains"):
                self._advance_line()
                while True:
                    inner = self._current()
                    if inner is None:
                        raise ParseError(f"unterminated {kind} {sub.name!r}", loc)
                    itokens = self._tokens(inner)
                    if self._is_end_of(itokens, kind):
                        self._advance_line()
                        return sub
                    sub.contains.append(self.parse_subprogram())
                # not reached
            if not body_started and (
                first.value in _DECL_KEYWORDS
                or first.is_name("use", "implicit", "save", "public", "private", "external", "intrinsic")
            ) and not (first.is_name("type") and len(tokens) > 1 and tokens[1].is_op("(") is False and any(
                t.is_op("%") for t in tokens
            )):
                self._advance_line()
                try:
                    stmt = self._parse_specification_statement(tokens, line)
                except UnsupportedStatementError:
                    stmt = None
                if stmt is not None:
                    sub.declarations.append(stmt)
                continue
            body_started = True
            stmt = self._parse_executable(line)
            if stmt is not None:
                sub.body.append(stmt)
        return sub

    # ----------------------------------------------------------- executables
    def _parse_executable(self, line: LogicalLine) -> Optional[Stmt]:
        """Parse one executable statement (possibly a whole block)."""
        try:
            tokens = self._tokens(line)
        except FortranFrontEndError:
            # the lexer itself rejected the statement (e.g. an unsupported
            # character); hand the raw text to the fallback parser.
            self._advance_line()
            if not self.use_fallback:
                raise
            return self._fallback(line)
        first = tokens[0]
        if first.is_name("if") and self._has_then(tokens):
            return self._parse_if_block()
        if first.is_name("do"):
            return self._parse_do()
        if first.is_name("selectcase") or (
            first.is_name("select")
            and len(tokens) > 1
            and tokens[1].is_name("case")
        ):
            # only select *case*; `select type` stays on the simple-statement
            # path so it degrades to the fallback parser like any other
            # out-of-subset construct
            return self._parse_select_case()
        if first.is_name("where") and self._is_where_block(tokens):
            return self._parse_where_block()
        self._advance_line()
        return self._parse_simple_statement(tokens, line)

    @staticmethod
    def _has_then(tokens: list[Token]) -> bool:
        for tok in reversed(tokens):
            if tok.type is TokenType.EOL:
                continue
            return tok.is_name("then")
        return False

    @staticmethod
    def _is_where_block(tokens: list[Token]) -> bool:
        """A block ``where`` has nothing after the closing paren of the mask."""
        depth = 0
        seen_open = False
        for tok in tokens[1:]:
            if tok.is_op("("):
                depth += 1
                seen_open = True
            elif tok.is_op(")"):
                depth -= 1
                if depth == 0 and seen_open:
                    idx = tokens.index(tok)
                    rest = tokens[idx + 1:]
                    return all(t.type is TokenType.EOL for t in rest)
        return False

    def _parse_if_block(self) -> IfBlock:
        header = self._advance_line()
        tokens = self._tokens(header)
        loc = self._loc(header)
        block = IfBlock(location=loc)
        cond = self._parse_paren_condition(tokens, skip=1, loc=loc)
        current_body: list[Stmt] = []
        block.branches.append((cond, current_body))
        while True:
            line = self._current()
            if line is None:
                raise ParseError("unterminated if block", loc)
            tokens = self._tokens(line)
            first = tokens[0]
            if self._is_end_of(tokens, "if"):
                self._advance_line()
                break
            if first.is_name("elseif") or (
                first.is_name("else") and len(tokens) > 1 and tokens[1].is_name("if")
            ):
                self._advance_line()
                skip = 1 if first.is_name("elseif") else 2
                cond = self._parse_paren_condition(tokens, skip=skip, loc=self._loc(line))
                current_body = []
                block.branches.append((cond, current_body))
                continue
            if first.is_name("else"):
                self._advance_line()
                current_body = []
                block.branches.append((None, current_body))
                continue
            stmt = self._parse_executable(line)
            if stmt is not None:
                current_body.append(stmt)
        return block

    def _parse_paren_condition(
        self, tokens: list[Token], skip: int, loc: SourceLocation
    ) -> Expr:
        parser = ExpressionParser(tokens, pos=skip)
        parser.expect_op("(")
        cond = parser.parse_expression()
        parser.expect_op(")")
        return cond

    def _parse_do(self) -> Stmt:
        header = self._advance_line()
        tokens = self._tokens(header)
        loc = self._loc(header)
        # do while (cond)
        if len(tokens) > 1 and tokens[1].is_name("while"):
            cond = self._parse_paren_condition(tokens, skip=2, loc=loc)
            loop = DoWhile(condition=cond, location=loc)
            loop.body.extend(self._parse_do_body(loc))
            return loop
        # do var = start, stop [, step]
        parser = ExpressionParser(tokens, pos=1)
        var_tok = parser.advance()
        if var_tok.type is not TokenType.NAME:
            raise ParseError("malformed do statement", loc)
        parser.expect_op("=")
        start = parser.parse_expression()
        parser.expect_op(",")
        stop = parser.parse_expression()
        step = None
        if parser.peek().is_op(","):
            parser.advance()
            step = parser.parse_expression()
        loop = DoLoop(var=var_tok.value, start=start, stop=stop, step=step, location=loc)
        loop.body.extend(self._parse_do_body(loc))
        return loop

    def _parse_do_body(self, loc: SourceLocation) -> list[Stmt]:
        body: list[Stmt] = []
        while True:
            line = self._current()
            if line is None:
                raise ParseError("unterminated do loop", loc)
            tokens = self._tokens(line)
            if self._is_end_of(tokens, "do"):
                self._advance_line()
                break
            stmt = self._parse_executable(line)
            if stmt is not None:
                body.append(stmt)
        return body

    def _parse_where_block(self) -> WhereBlock:
        header = self._advance_line()
        tokens = self._tokens(header)
        loc = self._loc(header)
        mask = self._parse_paren_condition(tokens, skip=1, loc=loc)
        block = WhereBlock(mask=mask, location=loc)
        target = block.body
        while True:
            line = self._current()
            if line is None:
                raise ParseError("unterminated where block", loc)
            tokens = self._tokens(line)
            first = tokens[0]
            if self._is_end_of(tokens, "where"):
                self._advance_line()
                break
            if first.is_name("elsewhere") or (
                first.is_name("else") and len(tokens) > 1 and tokens[1].is_name("where")
            ):
                self._advance_line()
                target = block.else_body
                continue
            stmt = self._parse_executable(line)
            if stmt is not None:
                target.append(stmt)
        return block

    def _parse_select_case(self) -> SelectCase:
        header = self._advance_line()
        tokens = self._tokens(header)
        loc = self._loc(header)
        # "select case (expr)" or the squashed "selectcase (expr)"; the
        # dispatch in _parse_executable guarantees one of the two shapes
        skip = 1 if tokens[0].is_name("selectcase") else 2
        selector = self._parse_paren_condition(tokens, skip=skip, loc=loc)
        block = SelectCase(selector=selector, location=loc)
        current_body: Optional[list[Stmt]] = None
        while True:
            line = self._current()
            if line is None:
                raise ParseError("unterminated select case block", loc)
            tokens = self._tokens(line)
            first = tokens[0]
            if self._is_end_of(tokens, "select"):
                self._advance_line()
                break
            if first.is_name("case"):
                self._advance_line()
                case_loc = self._loc(line)
                if len(tokens) > 1 and tokens[1].is_name("default"):
                    current_body = []
                    block.cases.append((None, current_body))
                    continue
                items = self._parse_case_items(tokens, case_loc)
                current_body = []
                block.cases.append((items, current_body))
                continue
            if current_body is None:
                raise ParseError(
                    f"statement before first case in select case: {line.text!r}",
                    self._loc(line),
                )
            stmt = self._parse_executable(line)
            if stmt is not None:
                current_body.append(stmt)
        return block

    def _parse_case_items(
        self, tokens: list[Token], loc: SourceLocation
    ) -> list[CaseItem]:
        """Parse the selector list of one ``case (...)`` statement.

        Reuses the argument-list parser: plain expressions become value items
        and array-section-style ranges (``1:5``, ``:0``, ``7:``) become
        inclusive range items.
        """
        parser = ExpressionParser(tokens, pos=1)
        args, keywords = parser.parse_argument_list()
        if keywords:
            raise ParseError("keyword syntax is not valid in a case list", loc)
        if not args:
            raise ParseError("empty case selector list", loc)
        items: list[CaseItem] = []
        for arg in args:
            if isinstance(arg, SectionRange):
                if arg.stride is not None:
                    raise ParseError("a case range cannot carry a stride", loc)
                items.append(
                    CaseItem(lower=arg.lower, upper=arg.upper, is_range=True)
                )
            else:
                items.append(CaseItem(value=arg))
        return items

    def _parse_simple_statement(
        self, tokens: list[Token], line: LogicalLine
    ) -> Optional[Stmt]:
        loc = self._loc(line)
        first = tokens[0]
        try:
            if first.is_name("call"):
                return self._parse_call(tokens, loc)
            if first.is_name("return"):
                return ReturnStmt(location=loc)
            if first.is_name("exit"):
                return ExitStmt(location=loc)
            if first.is_name("cycle"):
                return CycleStmt(location=loc)
            if first.is_name("continue"):
                return ContinueStmt(location=loc)
            if first.is_name("stop"):
                msg = None
                if len(tokens) > 1 and tokens[1].type is TokenType.STRING:
                    msg = tokens[1].value
                return StopStmt(message=msg, location=loc)
            if first.is_name("if"):
                # one-line if: if (cond) statement
                parser = ExpressionParser(tokens, pos=1)
                parser.expect_op("(")
                cond = parser.parse_expression()
                parser.expect_op(")")
                rest_tokens = tokens[parser.pos:]
                rest_line = LogicalLine(
                    text="", line=line.line, filename=line.filename
                )
                inner = self._parse_simple_statement(rest_tokens, rest_line)
                block = IfBlock(location=loc)
                block.branches.append((cond, [inner] if inner is not None else []))
                return block
            if first.is_name("allocate", "deallocate", "nullify"):
                # memory management has no dataflow meaning for the digraph
                return ContinueStmt(location=loc)
            if first.is_name("where"):
                # one-line where: where (mask) assignment
                parser = ExpressionParser(tokens, pos=1)
                parser.expect_op("(")
                mask = parser.parse_expression()
                parser.expect_op(")")
                rest_tokens = tokens[parser.pos:]
                inner = self._parse_simple_statement(rest_tokens, line)
                block = WhereBlock(mask=mask, location=loc)
                if inner is not None:
                    block.body.append(inner)
                return block
            return self._parse_assignment(tokens, loc, line)
        except ParseError:
            if not self.use_fallback:
                raise
            return self._fallback(line)

    def _parse_call(self, tokens: list[Token], loc: SourceLocation) -> CallStmt:
        parser = ExpressionParser(tokens, pos=1)
        name_tok = parser.advance()
        if name_tok.type is not TokenType.NAME:
            raise ParseError("malformed call statement", loc)
        args: list[Expr] = []
        keywords: dict[str, Expr] = {}
        if parser.peek().is_op("("):
            args, keywords = parser.parse_argument_list()
        return CallStmt(name=name_tok.value, args=args, keywords=keywords, location=loc)

    def _parse_assignment(
        self, tokens: list[Token], loc: SourceLocation, line: LogicalLine
    ) -> Stmt:
        parser = ExpressionParser(tokens)
        target = parser.parse_power_operand()
        tok = parser.peek()
        if tok.is_op("=>"):
            parser.advance()
            value = parser.parse_expression()
            return PointerAssignment(target=target, value=value, location=loc)
        if not tok.is_op("="):
            raise UnsupportedStatementError(
                f"expected assignment, found {line.text!r}", loc
            )
        parser.advance()
        value = parser.parse_expression()
        if not parser.at_end():
            trailing = parser.peek()
            raise ParseError(
                f"trailing tokens after assignment: {trailing.value!r}", trailing.location
            )
        return Assignment(target=target, value=value, location=loc)

    def _fallback(self, line: LogicalLine) -> Optional[Stmt]:
        """Attempt the regex fallback parser; record unparsed statements."""
        from .fallback import parse_statement_fallback  # local import: avoid cycle

        loc = self._loc(line)
        stmt = parse_statement_fallback(line.text, loc)
        if stmt is not None:
            self.fallback_statements.append(loc)
            return stmt
        unparsed = UnparsedStmt(text=line.text, location=loc)
        self.unparsed.append(unparsed)
        return unparsed


# --------------------------------------------------------------------------- #
# Public driver
# --------------------------------------------------------------------------- #
def parse_source(
    source: str,
    filename: str = "<string>",
    macros: dict[str, str] | None = None,
    use_fallback: bool = True,
) -> SourceFileAST:
    """Preprocess and parse one Fortran source file.

    Parameters
    ----------
    source:
        Text of the Fortran file.
    filename:
        Name carried into source locations and node metadata.
    macros:
        Preprocessor macros considered defined for this build configuration.
    use_fallback:
        When True (default) statements the recursive-descent parser rejects
        are retried with the regex fallback parser before being recorded as
        unparsed, mirroring the paper's multi-parser strategy.
    """
    pre = preprocess(source, filename=filename, macros=macros)
    parser = Parser(pre.lines, filename=filename, use_fallback=use_fallback)
    return parser.parse_file()

"""Lexer for the Fortran subset used by the synthetic CESM-like model.

The lexer operates on a single *logical* line (continuations already merged
by the preprocessor) and produces a flat list of :class:`~repro.fortran.tokens.Token`
objects.  Fortran is case-insensitive, so identifiers are lower-cased on the
way in; string literal contents are preserved verbatim.
"""

from __future__ import annotations

from .errors import LexError, SourceLocation
from .tokens import (
    DOT_OPERATORS,
    DOT_RELATIONAL_EQUIVALENTS,
    MULTI_CHAR_OPERATORS,
    SINGLE_CHAR_OPERATORS,
    Token,
    TokenType,
)

_NAME_START = set("abcdefghijklmnopqrstuvwxyz_")
_NAME_CHARS = _NAME_START | set("0123456789")
_DIGITS = set("0123456789")

#: Every dot-delimited word the lexer must not mistake for a decimal point:
#: logical constants plus the operators (``1.eq.2`` is INTEGER DOTOP INTEGER).
_DOT_WORDS: tuple[str, ...] = (".true.", ".false.", *DOT_OPERATORS)


class Lexer:
    """Tokenize one logical Fortran line.

    Parameters
    ----------
    text:
        The logical line text (no trailing comment, no continuation marks).
    filename, line:
        Used to build :class:`SourceLocation` objects for diagnostics.
    """

    def __init__(self, text: str, filename: str = "<string>", line: int = 0):
        self.text = text
        self.filename = filename
        self.line = line
        self.pos = 0
        self.tokens: list[Token] = []

    # ------------------------------------------------------------------ utils
    def _loc(self, column: int | None = None) -> SourceLocation:
        col = (self.pos + 1) if column is None else column
        return SourceLocation(self.filename, self.line, col)

    def _peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        return self.text[idx] if idx < len(self.text) else ""

    def _emit(self, type_: TokenType, value: str, column: int) -> None:
        self.tokens.append(Token(type_, value, self._loc(column)))

    # ------------------------------------------------------------------ rules
    def _lex_name(self) -> None:
        start = self.pos
        while self._peek() and self._peek().lower() in _NAME_CHARS:
            self.pos += 1
        value = self.text[start : self.pos].lower()
        self._emit(TokenType.NAME, value, start + 1)

    def _lex_number(self) -> None:
        """Lex integer and real literals.

        Handles Fortran forms: ``42``, ``3.14``, ``1.e-3``, ``1.0d0``,
        ``8.1328e-3_r8``, ``0.20_r8``, ``.5`` (leading dot followed by digit).
        """
        start = self.pos
        is_real = False
        # integral part
        while self._peek() in _DIGITS:
            self.pos += 1
        # fractional part: a dot is part of the number unless it starts a
        # dot-operator such as ".and." or ".eq." — an exponent marker alone
        # is not enough (``1.eq.2`` must not lex as ``1.`` ``eq`` ``.2``).
        if self._peek() == ".":
            nxt = self._peek(1).lower()
            if (nxt not in _NAME_START or nxt in {"e", "d"}) and not self._at_dot_word():
                is_real = True
                self.pos += 1
                while self._peek() in _DIGITS:
                    self.pos += 1
        # exponent
        if self._peek().lower() in {"e", "d"}:
            look = 1
            if self._peek(look) in {"+", "-"}:
                look += 1
            if self._peek(look) in _DIGITS:
                is_real = True
                self.pos += 1  # e/d
                if self._peek() in {"+", "-"}:
                    self.pos += 1
                while self._peek() in _DIGITS:
                    self.pos += 1
        # kind suffix, e.g. _r8
        if self._peek() == "_" and self._peek(1).lower() in _NAME_START | _DIGITS:
            self.pos += 1
            while self._peek().lower() in _NAME_CHARS:
                self.pos += 1
            # a kind suffix implies a typed literal; reals keep is_real as set,
            # integers with kind (e.g. 1_i8) remain integers.
        value = self.text[start : self.pos].lower()
        type_ = TokenType.REAL if (is_real or "." in value.split("_")[0]) else TokenType.INTEGER
        self._emit(type_, value, start + 1)

    def _at_dot_word(self) -> bool:
        """True when the current ``.`` begins a dot-operator or logical literal."""
        rest = self.text[self.pos :].lower()
        return rest.startswith(_DOT_WORDS)

    def _lex_string(self) -> None:
        quote = self._peek()
        start = self.pos
        self.pos += 1
        chars: list[str] = []
        while True:
            ch = self._peek()
            if not ch:
                raise LexError("unterminated string literal", self._loc(start + 1))
            if ch == quote:
                # doubled quote is an escaped quote
                if self._peek(1) == quote:
                    chars.append(quote)
                    self.pos += 2
                    continue
                self.pos += 1
                break
            chars.append(ch)
            self.pos += 1
        self._emit(TokenType.STRING, "".join(chars), start + 1)

    def _lex_dot(self) -> bool:
        """Try to lex a dot-delimited operator or logical constant.

        Returns True when a token was produced.
        """
        rest = self.text[self.pos :].lower()
        for word in (".true.", ".false."):
            if rest.startswith(word):
                self._emit(TokenType.LOGICAL, word, self.pos + 1)
                self.pos += len(word)
                return True
        for op in sorted(DOT_OPERATORS, key=len, reverse=True):
            if rest.startswith(op):
                value = DOT_RELATIONAL_EQUIVALENTS.get(op)
                if value is not None:
                    self._emit(TokenType.OPERATOR, value, self.pos + 1)
                else:
                    self._emit(TokenType.DOTOP, op, self.pos + 1)
                self.pos += len(op)
                return True
        return False

    # ------------------------------------------------------------------ main
    def tokenize(self) -> list[Token]:
        """Return the token list for the line, terminated by an EOL token."""
        while self.pos < len(self.text):
            ch = self._peek()
            if ch in " \t":
                self.pos += 1
                continue
            if ch == "!":
                break  # comment until end of line
            lower = ch.lower()
            if lower in _NAME_START:
                self._lex_name()
                continue
            if ch in _DIGITS:
                self._lex_number()
                continue
            if ch == "." and self._peek(1) in _DIGITS:
                self._lex_number()
                continue
            if ch == ".":
                if self._lex_dot():
                    continue
                raise LexError(f"unexpected character {ch!r}", self._loc())
            if ch in {"'", '"'}:
                self._lex_string()
                continue
            if ch == ";":
                self._emit(TokenType.EOL, ";", self.pos + 1)
                self.pos += 1
                continue
            matched = False
            for op in MULTI_CHAR_OPERATORS:
                if self.text.startswith(op, self.pos):
                    self._emit(TokenType.OPERATOR, op, self.pos + 1)
                    self.pos += len(op)
                    matched = True
                    break
            if matched:
                continue
            if ch in SINGLE_CHAR_OPERATORS:
                self._emit(TokenType.OPERATOR, ch, self.pos + 1)
                self.pos += 1
                continue
            raise LexError(f"unexpected character {ch!r}", self._loc())
        self.tokens.append(Token(TokenType.EOL, "", self._loc()))
        return self.tokens


def tokenize_line(text: str, filename: str = "<string>", line: int = 0) -> list[Token]:
    """Convenience wrapper: tokenize a single logical line."""
    return Lexer(text, filename=filename, line=line).tokenize()

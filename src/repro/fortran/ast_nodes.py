"""Abstract syntax tree node classes for the Fortran subset.

The AST intentionally keeps the same shape the paper's pipeline relies on:

* every *assignment statement* is preserved with its left-hand side and
  right-hand side expression trees (these become digraph edges);
* subroutine/function *calls* keep their argument expression trees so the
  graph builder can map call arguments onto dummy arguments;
* ``use`` statements keep only-lists and renames so module-local names can
  be resolved to their defining module;
* derived-type component references keep the full component path so a
  *canonical name* (the trailing component, e.g. ``omega`` for
  ``state%omega``) can be computed;
* every node records its source location so graph nodes carry
  (module, subprogram, line) metadata.

The same AST is consumed by two very different clients: the digraph builder
(:mod:`repro.graphs.build`) and the numerical interpreter
(:mod:`repro.runtime.interpreter`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from .errors import SourceLocation


# --------------------------------------------------------------------------- #
# Expressions
# --------------------------------------------------------------------------- #
@dataclass
class Expr:
    """Base class of all expression nodes."""

    def walk(self) -> Iterator["Expr"]:
        """Yield this node and all sub-expressions, depth first."""
        yield self


@dataclass
class NumberLit(Expr):
    """Integer or real literal, e.g. ``8.1328e-3_r8``.

    ``value`` is the parsed Python float/int; ``kind`` keeps the kind suffix
    (``r8``) when present so source can be round-tripped.
    """

    value: float
    kind: Optional[str] = None
    is_integer: bool = False


@dataclass
class StringLit(Expr):
    """Character literal, e.g. the output name in ``call outfld('QRL', qrl)``."""

    value: str


@dataclass
class LogicalLit(Expr):
    """``.true.`` or ``.false.``"""

    value: bool


@dataclass
class VarRef(Expr):
    """A bare variable reference, e.g. ``gravit``."""

    name: str


@dataclass
class Apply(Expr):
    """A name applied to an argument list: ``foo(a, b)``.

    Fortran syntax cannot distinguish an array reference from a function
    call; the paper resolves this after parsing all files using a hash table
    of known function names.  The parser therefore emits a single ``Apply``
    node and downstream passes (graph builder, interpreter) resolve it.
    """

    name: str
    args: list[Expr] = field(default_factory=list)
    #: Named (keyword) arguments, e.g. ``qsat(t, p, es=esat)``.
    keywords: dict[str, Expr] = field(default_factory=dict)

    def walk(self) -> Iterator[Expr]:
        yield self
        for a in self.args:
            yield from a.walk()
        for a in self.keywords.values():
            yield from a.walk()


@dataclass
class SectionRange(Expr):
    """An array section bound pair, e.g. the ``1:ncol`` in ``t(1:ncol, k)``.

    Either bound may be ``None`` for ``:`` (whole dimension).
    """

    lower: Optional[Expr] = None
    upper: Optional[Expr] = None
    stride: Optional[Expr] = None

    def walk(self) -> Iterator[Expr]:
        yield self
        for part in (self.lower, self.upper, self.stride):
            if part is not None:
                yield from part.walk()


@dataclass
class DerivedRef(Expr):
    """A derived-type component reference: ``state%omega(i, k)``.

    ``base`` is the leading expression (usually a :class:`VarRef` or
    :class:`Apply` such as ``elem(ie)``); ``component`` is a single component
    name; chains like ``elem(ie)%derived%omega_p`` nest ``DerivedRef`` nodes.
    ``args`` holds trailing subscripts applied to the component itself.
    """

    base: Expr
    component: str
    args: list[Expr] = field(default_factory=list)

    def walk(self) -> Iterator[Expr]:
        yield self
        yield from self.base.walk()
        for a in self.args:
            yield from a.walk()

    @property
    def canonical_name(self) -> str:
        """The paper's canonical name: the trailing component name."""
        return self.component


@dataclass
class UnaryOp(Expr):
    """Unary operator application: ``-x`` or ``.not. flag``."""

    op: str
    operand: Expr

    def walk(self) -> Iterator[Expr]:
        yield self
        yield from self.operand.walk()


@dataclass
class BinOp(Expr):
    """Binary operator application.

    ``op`` is one of ``** * / + - // == /= < <= > >= .and. .or.``.
    The interpreter treats ``a*b + c`` specially when the FPU model has FMA
    enabled for the enclosing module (see :mod:`repro.runtime.fpu`).
    """

    op: str
    left: Expr
    right: Expr

    def walk(self) -> Iterator[Expr]:
        yield self
        yield from self.left.walk()
        yield from self.right.walk()


# --------------------------------------------------------------------------- #
# Statements
# --------------------------------------------------------------------------- #
@dataclass
class Stmt:
    """Base class of all statement nodes."""

    location: SourceLocation = field(default_factory=SourceLocation, kw_only=True)

    def children(self) -> Sequence["Stmt"]:
        """Nested statements (bodies of if/do); flat statements return ()."""
        return ()

    def walk(self) -> Iterator["Stmt"]:
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass
class Assignment(Stmt):
    """``lhs = rhs`` — the fundamental unit of the paper's digraph."""

    target: Expr
    value: Expr
    #: True when this was parsed by the regex fallback parser rather than the
    #: recursive-descent parser (mirrors the paper's multi-parser strategy).
    from_fallback: bool = False


@dataclass
class PointerAssignment(Stmt):
    """``ptr => target`` — treated like a normal assignment (paper §4.2)."""

    target: Expr
    value: Expr


@dataclass
class CallStmt(Stmt):
    """``call sub(a, b, c)``."""

    name: str
    args: list[Expr] = field(default_factory=list)
    keywords: dict[str, Expr] = field(default_factory=dict)


@dataclass
class IfBlock(Stmt):
    """``if (...) then / else if (...) then / else / end if``.

    ``branches`` is a list of (condition, body) pairs; the final ``else``
    branch has condition ``None``.
    """

    branches: list[tuple[Optional[Expr], list[Stmt]]] = field(default_factory=list)

    def children(self) -> Sequence[Stmt]:
        out: list[Stmt] = []
        for _, body in self.branches:
            out.extend(body)
        return out


@dataclass
class DoLoop(Stmt):
    """``do var = start, stop [, step]`` ... ``end do``."""

    var: str
    start: Expr
    stop: Expr
    step: Optional[Expr] = None
    body: list[Stmt] = field(default_factory=list)

    def children(self) -> Sequence[Stmt]:
        return self.body


@dataclass
class DoWhile(Stmt):
    """``do while (cond)`` ... ``end do``."""

    condition: Expr = None  # type: ignore[assignment]
    body: list[Stmt] = field(default_factory=list)

    def children(self) -> Sequence[Stmt]:
        return self.body


@dataclass
class CaseItem:
    """One item of a ``case`` selector list: a single value or a range.

    ``case (3)`` is a value item; ``case (1:5)``, ``case (:0)`` and
    ``case (7:)`` are (inclusive) range items with the absent bound ``None``.
    """

    value: Optional[Expr] = None
    lower: Optional[Expr] = None
    upper: Optional[Expr] = None
    is_range: bool = False

    def exprs(self) -> Iterator[Expr]:
        for part in (self.value, self.lower, self.upper):
            if part is not None:
                yield part


@dataclass
class SelectCase(Stmt):
    """``select case (expr)`` ... ``case (...)`` / ``case default`` ... ``end select``.

    ``cases`` is a list of (items, body) pairs in source order; the
    ``case default`` branch has items ``None``.
    """

    selector: Expr = None  # type: ignore[assignment]
    cases: list[tuple[Optional[list[CaseItem]], list[Stmt]]] = field(
        default_factory=list
    )

    def children(self) -> Sequence[Stmt]:
        out: list[Stmt] = []
        for _, body in self.cases:
            out.extend(body)
        return out


@dataclass
class WhereBlock(Stmt):
    """``where (mask)`` ... ``end where`` (masked array assignment block)."""

    mask: Expr = None  # type: ignore[assignment]
    body: list[Stmt] = field(default_factory=list)
    else_body: list[Stmt] = field(default_factory=list)

    def children(self) -> Sequence[Stmt]:
        return list(self.body) + list(self.else_body)


@dataclass
class ReturnStmt(Stmt):
    """``return``"""


@dataclass
class ExitStmt(Stmt):
    """``exit`` — leave the innermost do loop."""


@dataclass
class CycleStmt(Stmt):
    """``cycle`` — next iteration of the innermost do loop."""


@dataclass
class StopStmt(Stmt):
    """``stop`` or ``stop 'message'``."""

    message: Optional[str] = None


@dataclass
class ContinueStmt(Stmt):
    """``continue`` — no-op."""


@dataclass
class UnparsedStmt(Stmt):
    """A statement neither parser could handle; kept for bookkeeping.

    The paper reports 10 such assignments out of 660k lines; we keep them in
    the AST so the metagraph can report how many statements were skipped.
    """

    text: str = ""


# --------------------------------------------------------------------------- #
# Declarations and program units
# --------------------------------------------------------------------------- #
@dataclass
class Rename:
    """One item of a use-only list: ``local => remote`` or plain ``name``."""

    local: str
    remote: str

    @classmethod
    def plain(cls, name: str) -> "Rename":
        return cls(local=name, remote=name)


@dataclass
class UseStmt(Stmt):
    """``use mod, only: a, b => c``; ``only`` empty means "use everything"."""

    module: str = ""
    only: list[Rename] = field(default_factory=list)
    has_only: bool = False


@dataclass
class EntityDecl:
    """One declared entity: name, array spec, optional initializer."""

    name: str
    dims: list[Expr] = field(default_factory=list)
    init: Optional[Expr] = None


@dataclass
class Declaration(Stmt):
    """A type declaration statement.

    Examples::

        real(r8), parameter :: gravit = 9.80616_r8
        real(r8), intent(in) :: t(pcols, pver)
        type(physics_state) :: state
        integer :: i, k
    """

    base_type: str = "real"          # real / integer / logical / character / type
    kind: Optional[str] = None        # r8, i8, len spec for character
    type_name: Optional[str] = None   # derived type name for ``type(x)``
    attributes: list[str] = field(default_factory=list)
    intent: Optional[str] = None
    is_parameter: bool = False
    entities: list[EntityDecl] = field(default_factory=list)


@dataclass
class AccessStmt(Stmt):
    """``public`` / ``private`` [:: names] — kept for fidelity, not semantics."""

    access: str = "public"
    names: list[str] = field(default_factory=list)


@dataclass
class TypeDef(Stmt):
    """A derived type definition: ``type physics_state ... end type``."""

    name: str = ""
    components: list[Declaration] = field(default_factory=list)


@dataclass
class InterfaceBlock(Stmt):
    """``interface name ... module procedure a, b ... end interface``.

    The paper notes static analysis cannot know which specific procedure an
    interface call executes, so all possible connections are mapped; we keep
    the procedure list for that purpose.
    """

    name: str = ""
    procedures: list[str] = field(default_factory=list)


@dataclass
class Subprogram:
    """A subroutine or function."""

    name: str
    kind: str                                    # "subroutine" | "function"
    args: list[str] = field(default_factory=list)
    result_name: Optional[str] = None            # functions only
    prefixes: list[str] = field(default_factory=list)  # elemental, pure, recursive
    declarations: list[Stmt] = field(default_factory=list)
    body: list[Stmt] = field(default_factory=list)
    location: SourceLocation = field(default_factory=SourceLocation)
    #: Nested (contained) subprograms.
    contains: list["Subprogram"] = field(default_factory=list)

    @property
    def is_function(self) -> bool:
        return self.kind == "function"

    @property
    def result(self) -> str:
        """The name that holds a function's return value."""
        return self.result_name or self.name

    def walk_statements(self) -> Iterator[Stmt]:
        """Yield all executable statements (recursing into control flow)."""
        for stmt in self.body:
            yield from stmt.walk()

    def assignments(self) -> Iterator[Assignment]:
        for stmt in self.walk_statements():
            if isinstance(stmt, Assignment):
                yield stmt


@dataclass
class ModuleNode:
    """A parsed Fortran module: the unit of the paper's quotient graph."""

    name: str
    uses: list[UseStmt] = field(default_factory=list)
    declarations: list[Stmt] = field(default_factory=list)
    type_defs: dict[str, TypeDef] = field(default_factory=dict)
    interfaces: dict[str, InterfaceBlock] = field(default_factory=dict)
    subprograms: dict[str, Subprogram] = field(default_factory=dict)
    filename: str = "<string>"
    #: statements that could not be parsed by any parser
    unparsed: list[UnparsedStmt] = field(default_factory=list)

    def module_variable_names(self) -> list[str]:
        """Names of module-level variables (including parameters)."""
        names: list[str] = []
        for decl in self.declarations:
            if isinstance(decl, Declaration):
                names.extend(e.name for e in decl.entities)
        return names

    def all_assignments(self) -> Iterator[tuple[Subprogram, Assignment]]:
        """Yield (subprogram, assignment) pairs for every assignment,
        including assignments in contained subprograms."""
        for sub, stmt in self.walk_statements():
            if isinstance(stmt, Assignment):
                yield sub, stmt

    def walk_statements(self) -> Iterator[tuple[Subprogram, Stmt]]:
        """Yield (subprogram, statement) for every executable statement.

        Recurses into control-flow bodies and contained subprograms; this is
        the walk the metagraph builder compiles edges from.
        """
        for sub in self.subprograms.values():
            stack = [sub]
            while stack:
                current = stack.pop()
                for stmt in current.walk_statements():
                    yield current, stmt
                stack.extend(current.contains)


@dataclass
class SourceFileAST:
    """The AST of one source file (one or more modules)."""

    filename: str
    modules: list[ModuleNode] = field(default_factory=list)

    def walk_statements(self) -> Iterator[tuple[ModuleNode, Subprogram, Stmt]]:
        """Yield (module, subprogram, statement) over the whole file."""
        for mod in self.modules:
            for sub, stmt in mod.walk_statements():
                yield mod, sub, stmt

"""Fortran-subset front end: preprocessor, lexer, parser, AST.

This package is the analogue of the paper's fparser/KGen/regex parsing stack
(§4.1–4.2): it turns Fortran source text into abstract syntax trees that the
metagraph builder (:mod:`repro.graphs`) compiles into a directed graph of
variable dependencies and that the runtime (:mod:`repro.runtime`) executes
numerically.
"""

from .ast_nodes import (
    Apply,
    Assignment,
    BinOp,
    CallStmt,
    CaseItem,
    Declaration,
    DerivedRef,
    DoLoop,
    Expr,
    IfBlock,
    ModuleNode,
    NumberLit,
    SelectCase,
    SourceFileAST,
    Stmt,
    StringLit,
    Subprogram,
    TypeDef,
    UnaryOp,
    UseStmt,
    VarRef,
)
from .errors import (
    FortranFrontEndError,
    LexError,
    ParseError,
    PreprocessorError,
    SourceLocation,
    UnsupportedStatementError,
)
from .intrinsics import ALL_INTRINSICS, EXPRESSION_INTRINSICS, is_intrinsic
from .lexer import Lexer, tokenize_line
from .parser import parse_expression, parse_source
from .preprocessor import preprocess

__all__ = [
    "ALL_INTRINSICS",
    "Apply",
    "Assignment",
    "BinOp",
    "CallStmt",
    "CaseItem",
    "Declaration",
    "DerivedRef",
    "DoLoop",
    "EXPRESSION_INTRINSICS",
    "Expr",
    "FortranFrontEndError",
    "IfBlock",
    "LexError",
    "Lexer",
    "ModuleNode",
    "NumberLit",
    "ParseError",
    "PreprocessorError",
    "SelectCase",
    "SourceFileAST",
    "SourceLocation",
    "Stmt",
    "StringLit",
    "Subprogram",
    "TypeDef",
    "UnaryOp",
    "UnsupportedStatementError",
    "UseStmt",
    "VarRef",
    "is_intrinsic",
    "parse_expression",
    "parse_source",
    "preprocess",
    "tokenize_line",
]

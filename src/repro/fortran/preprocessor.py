"""Source preprocessing for the Fortran subset.

The paper relies on KGen to replace preprocessor directives with their
compile-time values before parsing.  We implement the equivalent directly:

* strip comments (``!`` to end of line, respecting string literals);
* merge continuation lines (trailing ``&``, optional leading ``&``);
* evaluate a small set of C-preprocessor directives (``#ifdef``, ``#ifndef``,
  ``#else``, ``#endif``, ``#define``) against the build configuration's
  macro set, dropping code that is not compiled into the executable;
* keep a mapping from each resulting *logical line* back to the physical
  line number of its first statement so AST nodes (and therefore digraph
  nodes) carry accurate line metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import PreprocessorError, SourceLocation


@dataclass
class LogicalLine:
    """One logical statement line after preprocessing."""

    text: str
    line: int           # physical 1-based line number of the first piece
    filename: str = "<string>"


@dataclass
class PreprocessResult:
    """Output of :func:`preprocess`."""

    lines: list[LogicalLine] = field(default_factory=list)
    #: macros defined during processing (input macros plus #define'd ones)
    macros: dict[str, str] = field(default_factory=dict)
    #: physical line count of the input
    physical_lines: int = 0


def strip_comment(text: str) -> str:
    """Remove a trailing ``!`` comment, ignoring ``!`` inside string literals."""
    out = []
    quote: str | None = None
    for ch in text:
        if quote:
            out.append(ch)
            if ch == quote:
                quote = None
            continue
        if ch in ("'", '"'):
            quote = ch
            out.append(ch)
            continue
        if ch == "!":
            break
        out.append(ch)
    return "".join(out)


def _directive_parts(line: str) -> tuple[str, list[str]]:
    parts = line.strip().split()
    name = parts[0][1:].lower()  # drop leading '#'
    return name, parts[1:]


def preprocess(
    source: str,
    filename: str = "<string>",
    macros: dict[str, str] | None = None,
) -> PreprocessResult:
    """Preprocess ``source`` and return logical lines ready for the lexer.

    Parameters
    ----------
    source:
        Full text of the Fortran file.
    filename:
        Name used in locations / diagnostics.
    macros:
        CPP macros considered defined for this build (e.g. the compset
        configuration).  Only presence is tested by ``#ifdef``.
    """
    macros = dict(macros or {})
    raw_lines = source.splitlines()
    result = PreprocessResult(macros=macros, physical_lines=len(raw_lines))

    # ----------------------------------------------------------------- CPP
    # condition stack: each entry is [taking_branch, any_branch_taken, else_seen]
    stack: list[list[bool]] = []
    kept: list[tuple[int, str]] = []  # (physical line number, text)
    for idx, raw in enumerate(raw_lines, start=1):
        stripped = raw.strip()
        if stripped.startswith("#"):
            name, args = _directive_parts(stripped)
            loc = SourceLocation(filename, idx)
            if name == "define":
                if all(s[0] for s in stack):
                    key = args[0] if args else ""
                    macros[key] = args[1] if len(args) > 1 else "1"
            elif name == "undef":
                if all(s[0] for s in stack) and args:
                    macros.pop(args[0], None)
            elif name in ("ifdef", "ifndef"):
                defined = bool(args) and args[0] in macros
                take = defined if name == "ifdef" else not defined
                stack.append([take, take, False])
            elif name == "if":
                # minimal support: "#if defined(X)" / "#if 0" / "#if 1"
                expr = " ".join(args)
                take = _eval_if_expression(expr, macros)
                stack.append([take, take, False])
            elif name == "else":
                if not stack:
                    raise PreprocessorError("#else without #if", loc)
                if stack[-1][2]:
                    raise PreprocessorError("duplicate #else in #if block", loc)
                stack[-1][2] = True
                stack[-1][0] = not stack[-1][1]
                stack[-1][1] = stack[-1][1] or stack[-1][0]
            elif name == "endif":
                if not stack:
                    raise PreprocessorError("#endif without #if", loc)
                stack.pop()
            elif name == "include":
                # includes are not used by the synthetic model; ignore.
                pass
            else:
                raise PreprocessorError(f"unsupported directive #{name}", loc)
            continue
        if all(s[0] for s in stack):
            kept.append((idx, raw))
    if stack:
        raise PreprocessorError(
            "unterminated #if block", SourceLocation(filename, len(raw_lines))
        )

    # ------------------------------------------------- comments/continuation
    pending_text: str | None = None
    pending_line = 0
    for lineno, raw in kept:
        text = strip_comment(raw).rstrip()
        if not text.strip():
            continue
        body = text.strip()
        if pending_text is not None:
            # merge continuation: drop a leading '&' on the continued line
            if body.startswith("&"):
                body = body[1:].lstrip()
            merged = pending_text + " " + body
        else:
            merged = body
            pending_line = lineno
        if merged.rstrip().endswith("&"):
            pending_text = merged.rstrip()[:-1].rstrip()
            continue
        result.lines.append(LogicalLine(text=merged, line=pending_line, filename=filename))
        pending_text = None
    if pending_text is not None:
        # trailing continuation with no following line: keep what we have
        result.lines.append(
            LogicalLine(text=pending_text, line=pending_line, filename=filename)
        )
    return result


def _eval_if_expression(expr: str, macros: dict[str, str]) -> bool:
    """Evaluate the tiny subset of ``#if`` expressions the model uses."""
    expr = expr.strip()
    if expr in {"0", "1"}:
        return expr == "1"
    expr_l = expr.replace(" ", "").lower()
    if expr_l.startswith("defined(") and expr_l.endswith(")"):
        return expr[expr.index("(") + 1 : expr.rindex(")")].strip() in macros
    if expr_l.startswith("!defined(") and expr_l.endswith(")"):
        return expr[expr.index("(") + 1 : expr.rindex(")")].strip() not in macros
    # Fall back: a bare macro name is true when defined and non-zero.
    value = macros.get(expr)
    if value is None:
        return False
    try:
        return int(value) != 0
    except ValueError:
        return True

"""Fortran intrinsic procedures known to the front end and downstream passes.

The graph builder needs to know which ``Apply`` nodes are intrinsic calls so
it can localize them (paper §4.2: intrinsics are given unique per-call-site
names such as ``min_100__modname`` to avoid spurious hub nodes), and the
interpreter needs a runtime implementation for each (see
:mod:`repro.runtime.intrinsics`).
"""

from __future__ import annotations

#: Numeric / array intrinsics that appear in expressions.
EXPRESSION_INTRINSICS: frozenset[str] = frozenset(
    {
        "abs",
        "acos",
        "aint",
        "asin",
        "atan",
        "atan2",
        "cos",
        "cosh",
        "dble",
        "dim",
        "epsilon",
        "exp",
        "floor",
        "huge",
        "int",
        "log",
        "log10",
        "max",
        "maxval",
        "merge",
        "min",
        "minval",
        "mod",
        "nint",
        "real",
        "sign",
        "sin",
        "sinh",
        "size",
        "sqrt",
        "sum",
        "tan",
        "tanh",
        "tiny",
        "gamma",
        "erf",
        "erfc",
        "spread",
        "reshape",
        "matmul",
        "dot_product",
        "count",
        "any",
        "all",
        "present",
        "trim",
        "adjustl",
        "len_trim",
    }
)

#: Intrinsic subroutines invoked with ``call``.
SUBROUTINE_INTRINSICS: frozenset[str] = frozenset(
    {
        "random_seed",
        "random_number",
        "system_clock",
        "cpu_time",
        "date_and_time",
        "get_command_argument",
    }
)

ALL_INTRINSICS: frozenset[str] = EXPRESSION_INTRINSICS | SUBROUTINE_INTRINSICS


def is_intrinsic(name: str) -> bool:
    """True when ``name`` (case-insensitive) is a recognised Fortran intrinsic."""
    return name.lower() in ALL_INTRINSICS

"""Regex/string fallback parser for statements the primary parser rejects.

The paper employs three parsers per assignment (fparser, KGen helpers, and a
custom regular-expression/string tool) because CESM contains thousands of
expressions that exceed any single parser's capabilities.  This module is the
analogue of the third tool: it extracts a *conservative* approximation of the
data flow of an assignment or call statement — the left-hand-side variable and
the set of right-hand-side identifiers — which is all the digraph needs.

The resulting :class:`~repro.fortran.ast_nodes.Assignment` uses plain
:class:`VarRef` nodes for every identifier found on the right-hand side, so a
statement recovered here still contributes correct edges to the metagraph even
though its exact expression structure is lost (the interpreter never sees
fallback statements because the synthetic model is fully parseable by the
primary parser; the fallback exists for robustness and is exercised in tests
with deliberately pathological statements).
"""

from __future__ import annotations

import re
from typing import Optional

from .ast_nodes import Apply, Assignment, CallStmt, DerivedRef, Expr, Stmt, VarRef
from .errors import SourceLocation

#: Identifiers that are Fortran keywords or literal-ish tokens, never variables.
_NON_VARIABLE_WORDS = frozenset(
    {
        "if", "then", "else", "end", "endif", "do", "enddo", "call", "return",
        "true", "false", "and", "or", "not", "min", "max", "sqrt", "exp", "log",
        "abs", "sum", "where", "while",
    }
)

_IDENTIFIER_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_STRING_RE = re.compile(r"('([^']|'')*'|\"([^\"]|\"\")*\")")
_CALL_RE = re.compile(r"^\s*call\s+([A-Za-z_][A-Za-z0-9_]*)\s*(\((.*)\))?\s*$", re.I)


def _strip_strings(text: str) -> str:
    """Replace string literals with spaces so their contents are not parsed."""
    return _STRING_RE.sub(lambda m: " " * len(m.group(0)), text)


def _split_top_level_assignment(text: str) -> Optional[tuple[str, str]]:
    """Split ``text`` at the first top-level ``=`` that is a plain assignment."""
    depth = 0
    cleaned = _strip_strings(text)
    i = 0
    while i < len(cleaned):
        ch = cleaned[i]
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        elif ch == "=" and depth == 0:
            prev = cleaned[i - 1] if i > 0 else ""
            nxt = cleaned[i + 1] if i + 1 < len(cleaned) else ""
            if prev in "<>=/!" or nxt in "=>":
                i += 1
                continue
            return text[:i], text[i + 1 :]
        i += 1
    return None


def _rhs_identifiers(rhs: str) -> list[str]:
    """Every identifier appearing on the right-hand side, in order, deduplicated."""
    seen: list[str] = []
    for match in _IDENTIFIER_RE.finditer(_strip_strings(rhs)):
        name = match.group(0).lower()
        if name in _NON_VARIABLE_WORDS:
            continue
        # skip pure kind suffixes such as the r8 in 1.0_r8
        start = match.start()
        if start > 0 and rhs[start - 1] == "_" and start > 1 and rhs[start - 2].isdigit():
            continue
        if start > 0 and rhs[start - 1] == "_":
            continue
        if name not in seen:
            seen.append(name)
    return seen


def _lhs_expression(lhs: str) -> Optional[Expr]:
    """Build an lvalue expression from the left-hand-side text."""
    lhs = lhs.strip()
    if not lhs:
        return None
    # derived type reference a%b%c(...) -> nested DerivedRef with canonical name c
    no_args = re.sub(r"\([^()]*\)", "", lhs)
    parts = [p.strip() for p in no_args.split("%")]
    if not parts or not _IDENTIFIER_RE.fullmatch(parts[0]):
        return None
    base: Expr = VarRef(name=parts[0].lower())
    for comp in parts[1:]:
        if not _IDENTIFIER_RE.fullmatch(comp):
            return None
        base = DerivedRef(base=base, component=comp.lower())
    return base


def parse_statement_fallback(text: str, loc: SourceLocation) -> Optional[Stmt]:
    """Parse ``text`` into an approximate Assignment or CallStmt, or None.

    Only data-flow-relevant statements are recovered; anything else returns
    ``None`` so the caller records it as unparsed.
    """
    call_match = _CALL_RE.match(text)
    if call_match:
        name = call_match.group(1).lower()
        arg_text = call_match.group(3) or ""
        args: list[Expr] = [
            VarRef(name=ident) for ident in _rhs_identifiers(arg_text)
        ]
        return CallStmt(name=name, args=args, location=loc)

    split = _split_top_level_assignment(text)
    if split is None:
        return None
    lhs_text, rhs_text = split
    target = _lhs_expression(lhs_text)
    if target is None:
        return None
    idents = _rhs_identifiers(rhs_text)
    if not idents:
        # constant assignment: still useful (defines the LHS node)
        value: Expr = Apply(name="__fallback_const__", args=[])
    elif len(idents) == 1:
        value = VarRef(name=idents[0])
    else:
        value = Apply(name="__fallback_expr__", args=[VarRef(name=i) for i in idents])
    return Assignment(target=target, value=value, location=loc, from_fallback=True)

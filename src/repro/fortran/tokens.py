"""Token definitions for the Fortran-subset lexer.

The subset covers the language features that the synthetic CESM-like model
(:mod:`repro.model`) uses and that the paper's digraph construction must
understand: modules, ``use`` statements (with renames and only-lists),
derived-type definitions, declarations with attributes, subroutines,
functions, assignments, ``call`` statements, ``if``/``do`` control flow,
numeric literals with kind suffixes, strings, array/function references,
derived-type component references (``state%omega``), and the usual
arithmetic/relational/logical operators.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .errors import SourceLocation


class TokenType(enum.Enum):
    """Lexical categories produced by :class:`repro.fortran.lexer.Lexer`."""

    NAME = "name"            # identifiers and keywords (keywords resolved by parser)
    INTEGER = "integer"      # 42
    REAL = "real"            # 1.0, 1.0e-3, 1.d0, 8.1328e-3_r8
    STRING = "string"        # 'QRL' or "QRL"
    OPERATOR = "operator"    # + - * / ** // == /= < <= > >= = => % :: : , ( )
    LOGICAL = "logical"      # .true. .false.
    DOTOP = "dotop"          # .and. .or. .not. .eqv. .neqv.
    EOL = "eol"              # end of statement (newline or ';')
    EOF = "eof"              # end of file


#: Multi-character operators, longest first so the lexer can greedily match.
MULTI_CHAR_OPERATORS: tuple[str, ...] = (
    "::",
    "**",
    "//",
    "==",
    "/=",
    "<=",
    ">=",
    "=>",
)

#: Single character operators / punctuation.
SINGLE_CHAR_OPERATORS: tuple[str, ...] = (
    "+", "-", "*", "/", "=", "<", ">", "(", ")", ",", ":", "%", ";",
)

#: Dot-delimited operators (Fortran logical/relational spellings).
DOT_OPERATORS: frozenset[str] = frozenset(
    {
        ".and.",
        ".or.",
        ".not.",
        ".eqv.",
        ".neqv.",
        ".lt.",
        ".le.",
        ".gt.",
        ".ge.",
        ".eq.",
        ".ne.",
    }
)

#: Mapping from old-style dot relational operators to modern spellings.
DOT_RELATIONAL_EQUIVALENTS: dict[str, str] = {
    ".lt.": "<",
    ".le.": "<=",
    ".gt.": ">",
    ".ge.": ">=",
    ".eq.": "==",
    ".ne.": "/=",
}

#: Statement keywords recognised by the parser.  The lexer emits them as
#: NAME tokens; keeping the set here lets the parser and the fallback parser
#: share a single definition.
KEYWORDS: frozenset[str] = frozenset(
    {
        "module",
        "end",
        "endmodule",
        "endsubroutine",
        "endfunction",
        "endif",
        "enddo",
        "endtype",
        "contains",
        "use",
        "only",
        "implicit",
        "none",
        "integer",
        "real",
        "logical",
        "character",
        "type",
        "parameter",
        "intent",
        "in",
        "out",
        "inout",
        "save",
        "public",
        "private",
        "allocatable",
        "pointer",
        "target",
        "dimension",
        "optional",
        "elemental",
        "pure",
        "recursive",
        "subroutine",
        "function",
        "result",
        "call",
        "if",
        "then",
        "else",
        "elseif",
        "do",
        "while",
        "return",
        "stop",
        "exit",
        "cycle",
        "select",
        "case",
        "where",
        "interface",
        "procedure",
        "intrinsic",
        "external",
        "data",
        "allocate",
        "deallocate",
        "nullify",
        "continue",
    }
)


@dataclass
class Token:
    """A single lexical token.

    Attributes
    ----------
    type:
        The :class:`TokenType` category.
    value:
        The token text.  Names are lower-cased (Fortran is case-insensitive);
        strings keep their original content without the surrounding quotes.
    location:
        Position of the first character of the token.
    """

    type: TokenType
    value: str
    location: SourceLocation = field(default_factory=SourceLocation)

    def is_name(self, *names: str) -> bool:
        """Return True when this token is a NAME matching any of ``names``."""
        return self.type is TokenType.NAME and self.value in names

    def is_op(self, *ops: str) -> bool:
        """Return True when this token is an OPERATOR matching any of ``ops``."""
        return self.type is TokenType.OPERATOR and self.value in ops

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.value!r}, {self.location})"

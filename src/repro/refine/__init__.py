"""repro.refine — Algorithm 5.4 iterative slice refinement (paper §5.4).

The last reduction stage of the root-cause pipeline: take the ranked
backward slice (below half the modules, but plateaued), partition the
module quotient graph into communities, and iteratively *test* candidate
scope subsets against scoped consistency tests on a small regenerated
accepted ensemble — pruning every scope whose exclusion leaves the failure
signal intact, keeping the ones the signal collapses without.

>>> from repro.ensemble import generate_ensemble
>>> from repro.ect import UltraFastECT
>>> from repro.model import ModelConfig
>>> from repro.runtime import RunConfig, run_model
>>> from repro.slicing import slice_failing_runs
>>> from repro.refine import refine_slice
>>> ens = generate_ensemble(n=30)
>>> bad = ModelConfig(patches=("wsubbug",))
>>> runs = [run_model(ens.spec.experimental_config(i, model=bad))
...         for i in range(3)]
>>> verdict = UltraFastECT(ens).test(runs)       # inconsistent
>>> sl = slice_failing_runs(ens, runs, ect_result=verdict)
>>> result = refine_slice(sl, ens, runs)
>>> "microp_aero" in result and len(result) <= 10
True

:class:`IterativeRefinement` is the fitted object (control graph,
communities, refinement ensemble) for refining many slices;
:func:`refine_slice` the one-shot wrapper; :class:`RefinementConfig` the
knobs; :class:`RefinementResult` the refined module set plus the full
iteration trajectory.
"""

from __future__ import annotations

from .algorithm import (
    IterativeRefinement,
    RefinementConfig,
    RefinementResult,
    RefinementStep,
    refine_slice,
)

__all__ = [
    "IterativeRefinement",
    "RefinementConfig",
    "RefinementResult",
    "RefinementStep",
    "refine_slice",
]

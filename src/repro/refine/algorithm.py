"""Algorithm 5.4: community-guided iterative refinement of a ranked slice.

The backward slice (:mod:`repro.slicing`) reduces the search space below
half the modules, but it plateaus there: chaotic error growth makes every
output variable deviate eventually, so reachability alone cannot tell a
culprit from a conduit.  The paper's answer is iterative refinement — keep
*testing* candidate scope subsets against the consistency test and discard
the ones the failure signal does not need:

1.  Partition the module quotient graph into communities (Girvan-Newman,
    :mod:`repro.analysis`) — scopes in one community share data tightly and
    are exonerated or retained together.
2.  Regenerate a *small* accepted ensemble (a deterministic prefix of the
    full one, so the content-addressed artifact cache makes per-iteration
    regeneration nearly free) and re-derive the per-variable deviation
    evidence from it.
3.  Iterate: sample a candidate scope subset from the weakest-evidence
    community chunk, project ensemble and experimental runs onto the output
    variables still attributable to the *remaining* suspects, and re-run
    the ECT on that scoped view.  If the verdict is still inconsistent —
    the failure signal is intact without the candidate — the candidate is
    exonerated and pruned; if the signal collapses, the candidate is
    essential and stays for good.
4.  Stop at the target size, on convergence, or at the iteration cap.

Scopes sitting within ``slack`` BFS levels of the strongest evidence
variables (the broken invariants / gross outliers) are *protected*: they
are what the sharpest part of the signal points at, and Algorithm 5.4 never
samples them for exclusion.  This is what lets refinement rescue a bug
module that diffuse chaotic evidence ranked low — e.g. the biased PRNG of
``rand-mt`` sits at depth 2 behind the ``RHPERT`` raw-draw diagnostic and
survives even though half the physics outranks it in the initial slice.
"""

from __future__ import annotations

import dataclasses
import math
import random
from dataclasses import dataclass, field
from types import SimpleNamespace
from typing import Optional, Sequence

import numpy as np

from ..analysis import CommunityResult, girvan_newman_communities, quotient_graph
from ..ect import EctConfig, EctResult, UltraFastECT
from ..ensemble import Ensemble, generate_ensemble
from ..ensemble.generate import FIRST_SUFFIX
from ..graphs import MetaGraph, build_metagraph
from ..obs import get_metrics, get_tracer
from ..selection.evidence import EvidenceSelection
from ..slicing import RankedSlice, slice_failing_runs, variable_weights

__all__ = [
    "IterativeRefinement",
    "RefinementConfig",
    "RefinementResult",
    "RefinementStep",
    "refine_slice",
]


@dataclass(frozen=True)
class RefinementConfig:
    """Knobs of Algorithm 5.4 (defaults tuned on the five paper patches)."""

    #: refinement-ensemble size: a deterministic prefix of the accepted
    #: ensemble's members (16 is the smallest that still detects every
    #: registered patch), regenerated through the backend registry
    members: int = 16
    #: stop pruning once the suspect set is at most this fraction of all
    #: graph modules (0.25 of 40 modules = the paper-scale 10-module bar)
    target_fraction: float = 0.25
    #: protection radius, in BFS levels: suspects within ``slack`` of a
    #: top evidence variable's seed nodes are never sampled for exclusion
    slack: int = 2
    #: number of strongest evidence variables whose neighbourhood is
    #: protected from exclusion sampling
    top_variables: int = 4
    #: number of deviating output variables carried as refinement evidence
    evidence_variables: int = 12
    #: maximum scopes sampled into one exclusion candidate (Algorithm 5.4's
    #: subset sampling width)
    sample_size: int = 4
    #: hard cap on exclusion tests per refinement
    max_iterations: int = 64
    #: per-BFS-level evidence attenuation (matches the slicer's default)
    decay: float = 0.5
    #: seed of the candidate-sampling PRNG — the only stochastic input, so
    #: one seed fixes the whole refinement trajectory
    seed: int = 1729
    #: configuration of the scoped consistency tests (None = ECT defaults)
    ect: Optional[EctConfig] = None

    def __post_init__(self) -> None:
        if self.members < 3:
            raise ValueError(
                f"refinement ensembles need >= 3 members, got {self.members}"
            )
        if not 0.0 < self.target_fraction <= 1.0:
            raise ValueError(
                f"target_fraction must be in (0, 1], got {self.target_fraction}"
            )
        if self.slack < 0:
            raise ValueError(f"slack must be >= 0, got {self.slack}")
        if self.sample_size < 1:
            raise ValueError(
                f"sample_size must be >= 1, got {self.sample_size}"
            )
        if not 0.0 < self.decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {self.decay}")
        if self.top_variables < 1 or self.evidence_variables < 1:
            raise ValueError("variable counts must be >= 1")


@dataclass(frozen=True)
class RefinementStep:
    """One exclusion test: the candidate, the scoped verdict, the action."""

    iteration: int
    #: scopes sampled for exclusion this iteration
    candidate: tuple[str, ...]
    #: the community chunk the candidate was sampled from
    community: tuple[str, ...]
    #: evidence variables still attributable to the remaining suspects
    kept_variables: tuple[str, ...]
    #: scoped ECT verdict on the kept variables (None = nothing testable)
    consistent: Optional[bool]
    #: ``"pruned"`` (signal intact without the candidate) or ``"essential"``
    action: str


@dataclass
class RefinementResult:
    """The refined suspect set plus the full refinement trajectory."""

    #: final suspect scopes, strongest evidence first
    modules: list[str]
    #: the slice the refinement started from
    initial_modules: list[str]
    #: scopes shielded from exclusion by top-evidence proximity
    protected: frozenset[str]
    #: scopes whose exclusion collapsed the failure signal
    essential: frozenset[str]
    steps: list[RefinementStep]
    #: refreshed per-module evidence scores (refinement-ensemble based)
    scores: dict[str, float]
    #: refreshed per-variable deviation weights
    variable_weights: dict[str, float]
    communities: CommunityResult
    #: baseline verdict of the refinement ensemble on the failing runs
    #: (None when the ensemble had nothing testable to fit on)
    verdict: Optional[EctResult]
    target: int
    total_modules: int
    ensemble_cache_hits: int = 0
    ensemble_cache_misses: int = 0
    extra: dict = field(default_factory=dict)

    def __contains__(self, module: str) -> bool:
        return module in self.modules

    def __len__(self) -> int:
        return len(self.modules)

    @property
    def n_iterations(self) -> int:
        return len(self.steps)

    @property
    def fraction(self) -> float:
        """Final suspect set as a fraction of all graph modules."""
        return len(self.modules) / self.total_modules if self.total_modules else 0.0

    @property
    def pruned(self) -> list[str]:
        """Scopes the refinement exonerated, sorted."""
        return sorted(set(self.initial_modules) - set(self.modules))

    def summary(self) -> str:
        head = ", ".join(self.modules[:6])
        return (
            f"RefinementResult({len(self.initial_modules)} -> "
            f"{len(self.modules)}/{self.total_modules} modules in "
            f"{self.n_iterations} iterations: {head}"
            f"{'...' if len(self.modules) > 6 else ''})"
        )


class IterativeRefinement:
    """Algorithm 5.4, fitted once and applicable to many failing slices.

    Construction builds (or accepts) the control metagraph, its quotient
    communities, and the small refinement ensemble — regenerated through
    the pluggable backend registry, with ``cache_dir`` giving the
    per-iteration artifact caching that makes repeated refinement cheap
    (the refinement members are a deterministic prefix of the accepted
    ensemble's, so a shared cache directory satisfies them instantly).

    :meth:`refine` then runs the sampling loop for one
    :class:`~repro.slicing.RankedSlice` and its ECT-failing runs.
    """

    def __init__(
        self,
        ensemble: Ensemble,
        *,
        config: Optional[RefinementConfig] = None,
        source=None,
        graph: Optional[MetaGraph] = None,
        communities: Optional[CommunityResult] = None,
        backend=None,
        cache_dir=None,
        max_workers: Optional[int] = None,
    ):
        self.config = config or RefinementConfig()
        self.accepted = ensemble
        if source is None:
            from ..model.builder import build_model_source

            source = build_model_source(ensemble.spec.model)
        self.source = source
        self.graph = graph if graph is not None else build_metagraph(source)
        self.quotient = quotient_graph(self.graph)
        self.communities = (
            communities
            if communities is not None
            else girvan_newman_communities(self.quotient)
        )
        spec = dataclasses.replace(
            ensemble.spec, n_members=self.config.members
        )
        #: the small accepted ensemble the scoped tests are fitted on
        self.ensemble = generate_ensemble(
            spec,
            source=source,
            backend=backend,
            cache_dir=cache_dir,
            max_workers=max_workers,
        )
        self._ect_cache: dict[frozenset[str], Optional[UltraFastECT]] = {}

    # ------------------------------------------------------------ scoping
    def _columns(self, bases: frozenset[str]) -> list[int]:
        return [
            j
            for j, name in enumerate(self.ensemble.variable_names)
            if name.replace(FIRST_SUFFIX, "") in bases
        ]

    def scoped_ect(self, variables: Sequence[str]) -> Optional[UltraFastECT]:
        """An ECT fitted on the ensemble columns of ``variables`` only.

        Each base name brings its ``@first`` twin.  Returns ``None`` when
        the scope has no testable columns (no names matched, or the
        submatrix carries no variance at all).
        """
        bases = frozenset(
            name.replace(FIRST_SUFFIX, "") for name in variables
        )
        if bases in self._ect_cache:
            return self._ect_cache[bases]
        columns = self._columns(bases)
        ect: Optional[UltraFastECT] = None
        if columns:
            scoped = SimpleNamespace(
                matrix=self.ensemble.matrix[:, columns],
                variable_names=[
                    self.ensemble.variable_names[j] for j in columns
                ],
            )
            try:
                ect = UltraFastECT(scoped, self.config.ect)
            except ValueError:
                ect = None  # scope has no variance to decompose
        self._ect_cache[bases] = ect
        return ect

    def scoped_verdict(
        self,
        variables: Sequence[str],
        vectors: Sequence[np.ndarray],
    ) -> Optional[EctResult]:
        """ECT verdict of full run ``vectors`` projected onto ``variables``."""
        ect = self.scoped_ect(variables)
        if ect is None:
            return None
        bases = frozenset(
            name.replace(FIRST_SUFFIX, "") for name in variables
        )
        columns = self._columns(bases)
        return ect.test([vector[columns] for vector in vectors])

    # ---------------------------------------------------------- refinement
    def refine(
        self,
        slice_: RankedSlice,
        runs: Sequence,
        *,
        coverage=None,
        selection=None,
    ) -> RefinementResult:
        """Shrink ``slice_`` by iterative exclusion testing (Algorithm 5.4).

        ``runs`` are the ECT-failing experimental runs the slice was built
        from; ``coverage`` the executed-line evidence of the failing
        configuration (falls back to the runs' merged traces, like the
        slicer).  ``selection``, when given (a non-empty
        :class:`~repro.selection.SelectionResult`), warm-starts the loop:
        the initial suspects are the set-cover optimum instead of the full
        slice, so refinement begins at (often below) its target and spends
        iterations only when the optimizer kept more than the target.
        Deterministic for a fixed :class:`RefinementConfig`.
        """
        config = self.config
        total = len(self.graph.modules())
        target = max(1, math.floor(config.target_fraction * total))

        # refreshed evidence from the refinement ensemble: weights first,
        # then one slicer pass over exactly the top evidence variables
        # (the `variables=` injection point) for scores + depths
        all_weights = variable_weights(self.ensemble, runs)
        evidence = [
            name
            for name, _ in sorted(
                all_weights.items(), key=lambda kv: (-kv[1], kv[0])
            )[: config.evidence_variables]
        ]
        ranked = slice_failing_runs(
            self.ensemble,
            runs,
            graph=self.graph,
            source=self.source,
            coverage=coverage,
            decay=config.decay,
            evidence=EvidenceSelection(variables=tuple(evidence)),
        )
        weights = ranked.variable_weights
        depths = {
            name: sl.module_depths() for name, sl in ranked.slices.items()
        }
        scores = dict(ranked.ranking)

        vectors = [self.ensemble.run_vector(run) for run in runs]
        baseline = self.scoped_verdict(
            [n.replace(FIRST_SUFFIX, "") for n in self.ensemble.variable_names],
            vectors,
        )

        warm_started = selection is not None and bool(
            getattr(selection, "modules", ())
        )
        if warm_started:
            initial = list(selection.modules)
        else:
            initial = list(slice_.modules)
        suspects = set(initial)
        protected = self._protected(weights, depths, suspects)
        steps: list[RefinementStep] = []
        extra = (
            {"warm_start": "selection", "selection_modules": len(initial)}
            if warm_started
            else {}
        )

        if baseline is None or baseline.consistent:
            # the refinement ensemble cannot even see the failure: refuse
            # to prune anything on no evidence
            return self._result(
                suspects, initial, protected, frozenset(), steps, scores,
                weights, baseline, target, total, extra,
            )

        essential: set[str] = set()
        rng = random.Random(config.seed)
        tracer = get_tracer()
        metrics = get_metrics()

        with tracer.span(
            "refine.run",
            lambda: {"suspects": len(suspects), "target": target},
        ) as refine_span:
            progress = True
            while (
                len(suspects) > target
                and progress
                and len(steps) < config.max_iterations
            ):
                progress = False
                for chunk in self._chunks(suspects, scores):
                    removable = sorted(
                        (m for m in chunk if m not in essential and m not in protected),
                        key=lambda m: (scores.get(m, 0.0), m),
                    )
                    if not removable:
                        continue
                    candidate = self._sample(rng, removable)
                    metrics.inc("refine.iters")
                    with tracer.span(
                        "refine.iteration",
                        lambda: {"iteration": len(steps),
                                 "candidate": list(candidate)},
                    ) as iter_span:
                        remaining = suspects - set(candidate)
                        kept = self._attributed(weights, depths, remaining)
                        scoped = (
                            self.scoped_verdict(kept, vectors) if kept else None
                        )
                        intact = scoped is not None and not scoped.consistent
                        iter_span.annotate(
                            action="pruned" if intact else "essential"
                        )
                    steps.append(
                        RefinementStep(
                            iteration=len(steps),
                            candidate=tuple(candidate),
                            community=tuple(sorted(chunk)),
                            kept_variables=tuple(kept),
                            consistent=None if scoped is None else scoped.consistent,
                            action="pruned" if intact else "essential",
                        )
                    )
                    if intact:
                        suspects = remaining
                        progress = True
                        break  # re-chunk against the shrunk suspect set
                    essential.update(candidate)
                    if len(steps) >= config.max_iterations:
                        break
            refine_span.annotate(
                iterations=len(steps), final_suspects=len(suspects)
            )

        return self._result(
            suspects, initial, protected, frozenset(essential), steps,
            scores, weights, baseline, target, total, extra,
        )

    # ------------------------------------------------------------- helpers
    def _protected(
        self,
        weights: dict[str, float],
        depths: dict[str, dict[str, int]],
        suspects: set[str],
    ) -> frozenset[str]:
        """Suspects within ``slack`` of a top evidence variable's seeds."""
        top = [
            name
            for name, _ in sorted(
                weights.items(), key=lambda kv: (-kv[1], kv[0])
            )[: self.config.top_variables]
        ]
        out: set[str] = set()
        for name in top:
            for module, depth in depths.get(name, {}).items():
                if module in suspects and depth <= self.config.slack:
                    out.add(module)
        return frozenset(out)

    def _attributed(
        self,
        weights: dict[str, float],
        depths: dict[str, dict[str, int]],
        suspects: set[str],
    ) -> list[str]:
        """Evidence variables still attributable to ``suspects`` — their
        coverage-filtered backward slice reaches at least one remaining
        suspect (strongest weight first).  Variables attributable to no
        suspect cannot discriminate between candidates and drop out of the
        scoped tests."""
        return [
            name
            for name, _ in sorted(
                weights.items(), key=lambda kv: (-kv[1], kv[0])
            )
            if any(module in suspects for module in depths.get(name, ()))
        ]

    def _chunks(
        self, suspects: set[str], scores: dict[str, float]
    ) -> list[frozenset[str]]:
        """Current suspects grouped by community, weakest evidence first."""
        grouped: dict[frozenset[str], set[str]] = {}
        for module in suspects:
            try:
                community = self.communities.community_of(module)
            except KeyError:
                community = frozenset((module,))
            grouped.setdefault(community, set()).add(module)
        chunks = [frozenset(members) for members in grouped.values()]
        # sum in sorted member order: float addition is order-sensitive,
        # and frozenset iteration order varies with PYTHONHASHSEED
        chunks.sort(
            key=lambda c: (
                sum(scores.get(m, 0.0) for m in sorted(c)),
                sorted(c)[0],
            )
        )
        return chunks

    def _sample(
        self, rng: random.Random, removable: list[str]
    ) -> list[str]:
        """Sample an exclusion candidate from the weak half of a chunk.

        ``removable`` arrives sorted by ascending evidence score; the
        candidate is a seeded-random subset of its weaker half (Algorithm
        5.4's subset sampling), returned sorted for determinism.
        """
        k = min(self.config.sample_size, len(removable))
        pool = removable[: max(k, (len(removable) + 1) // 2)]
        return sorted(rng.sample(pool, k))

    def _result(
        self,
        suspects: set[str],
        initial: list[str],
        protected: frozenset[str],
        essential: frozenset[str],
        steps: list[RefinementStep],
        scores: dict[str, float],
        weights: dict[str, float],
        verdict: Optional[EctResult],
        target: int,
        total: int,
        extra: Optional[dict] = None,
    ) -> RefinementResult:
        modules = sorted(
            suspects, key=lambda m: (-scores.get(m, 0.0), m)
        )
        return RefinementResult(
            modules=modules,
            initial_modules=initial,
            protected=protected,
            essential=essential,
            steps=steps,
            scores={m: scores.get(m, 0.0) for m in modules},
            variable_weights=dict(weights),
            communities=self.communities,
            verdict=verdict,
            target=target,
            total_modules=total,
            ensemble_cache_hits=self.ensemble.cache_hits,
            ensemble_cache_misses=self.ensemble.cache_misses,
            extra=dict(extra or {}),
        )


def refine_slice(
    slice_: RankedSlice,
    ensemble: Ensemble,
    runs: Sequence,
    *,
    config: Optional[RefinementConfig] = None,
    graph: Optional[MetaGraph] = None,
    source=None,
    coverage=None,
    communities: Optional[CommunityResult] = None,
    backend=None,
    cache_dir=None,
    max_workers: Optional[int] = None,
    selection=None,
) -> RefinementResult:
    """One-shot Algorithm 5.4: fit :class:`IterativeRefinement` and refine.

    Parameters mirror :func:`~repro.slicing.slice_failing_runs` —
    ``ensemble`` is the accepted ensemble (its spec seeds the small
    refinement ensemble), ``runs`` the ECT-failing experimental runs,
    ``coverage`` the failing configuration's executed-line evidence.
    ``backend`` / ``cache_dir`` flow into the refinement-ensemble
    regeneration through the standard backend registry and artifact cache.
    ``selection`` (a :class:`~repro.selection.SelectionResult`) warm-starts
    the loop from the set-cover optimum — see
    :meth:`IterativeRefinement.refine`.
    """
    refiner = IterativeRefinement(
        ensemble,
        config=config,
        source=source,
        graph=graph,
        communities=communities,
        backend=backend,
        cache_dir=cache_dir,
        max_workers=max_workers,
    )
    return refiner.refine(slice_, runs, coverage=coverage, selection=selection)

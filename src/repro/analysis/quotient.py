"""The quotient (module-level) graph of a variable metagraph (paper §5).

The refinement stage reasons about *modules*, not individual variables: the
paper collapses the variable-dependency metagraph into its quotient graph —
one node per Fortran module, one directed edge per pair of modules linked by
at least one cross-module variable edge, weighted by how many variable edges
the pair carries.  Community detection, centralities and the degree
statistics of Table 1 all operate on this graph, so it is the shared
substrate of :mod:`repro.analysis` and :mod:`repro.refine`.

:class:`QuotientGraph` is deliberately independent of :class:`MetaGraph`
construction: it can be built from any metagraph via :func:`quotient_graph`
or assembled directly (``add_edge``) for synthetic community tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from ..graphs.metagraph import MetaGraph

__all__ = ["QuotientGraph", "quotient_graph"]


class QuotientGraph:
    """Directed, weighted module-level graph.

    ``weight(u, v)`` counts the variable-dependency edges flowing from
    module ``u`` into module ``v``; ``node_size(m)`` the variable nodes
    module ``m`` contributed.  Undirected views (``undirected_weight``,
    ``neighbors``) serve community detection, which ignores direction.
    """

    def __init__(self) -> None:
        self._nodes: dict[str, int] = {}
        self._out: dict[str, dict[str, float]] = {}
        self._in: dict[str, dict[str, float]] = {}

    # ------------------------------------------------------------ mutation
    def add_node(self, name: str, size: int = 0) -> None:
        """Get-or-create a module node, accumulating its variable count."""
        self._nodes[name] = self._nodes.get(name, 0) + size
        self._out.setdefault(name, {})
        self._in.setdefault(name, {})

    def add_edge(self, src: str, dst: str, weight: float = 1.0) -> None:
        """Accumulate ``weight`` onto the directed edge ``src -> dst``."""
        if src == dst:
            return  # intra-module flow is the node, not an edge
        if weight <= 0:
            raise ValueError(f"edge weight must be positive, got {weight}")
        self.add_node(src)
        self.add_node(dst)
        self._out[src][dst] = self._out[src].get(dst, 0.0) + weight
        self._in[dst][src] = self._in[dst].get(src, 0.0) + weight

    # ------------------------------------------------------------- queries
    @property
    def nodes(self) -> list[str]:
        """Module names, sorted (the canonical iteration order)."""
        return sorted(self._nodes)

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def edge_count(self) -> int:
        """Number of directed edges."""
        return sum(len(dsts) for dsts in self._out.values())

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __iter__(self) -> Iterator[str]:
        return iter(self.nodes)

    def node_size(self, name: str) -> int:
        """Variable nodes the module contributed to the metagraph."""
        return self._nodes[name]

    def weight(self, src: str, dst: str) -> float:
        """Directed edge weight (0.0 when absent)."""
        return self._out.get(src, {}).get(dst, 0.0)

    def undirected_weight(self, u: str, v: str) -> float:
        """Symmetrized weight: ``weight(u, v) + weight(v, u)``."""
        return self.weight(u, v) + self.weight(v, u)

    def successors(self, name: str) -> list[str]:
        return sorted(self._out[name])

    def predecessors(self, name: str) -> list[str]:
        return sorted(self._in[name])

    def neighbors(self, name: str) -> list[str]:
        """Distinct modules adjacent in either direction, sorted."""
        return sorted(set(self._out[name]) | set(self._in[name]))

    def in_weight(self, name: str) -> float:
        """Total weight of incoming edges."""
        return sum(self._in[name].values())

    def out_weight(self, name: str) -> float:
        """Total weight of outgoing edges."""
        return sum(self._out[name].values())

    def in_degree(self, name: str) -> int:
        return len(self._in[name])

    def out_degree(self, name: str) -> int:
        return len(self._out[name])

    def degree(self, name: str) -> int:
        """Undirected degree: number of distinct neighbours."""
        return len(set(self._out[name]) | set(self._in[name]))

    def edges(self) -> Iterator[tuple[str, str, float]]:
        """Directed ``(src, dst, weight)`` triples in sorted order."""
        for src in self.nodes:
            for dst in sorted(self._out[src]):
                yield src, dst, self._out[src][dst]

    def undirected_edges(self) -> Iterator[tuple[str, str, float]]:
        """Each undirected pair once (``u < v``) with symmetrized weight."""
        seen: set[tuple[str, str]] = set()
        for src in self.nodes:
            for dst in self.neighbors(src):
                pair = (src, dst) if src < dst else (dst, src)
                if pair in seen:
                    continue
                seen.add(pair)
                yield pair[0], pair[1], self.undirected_weight(*pair)

    def total_undirected_weight(self) -> float:
        """Sum of symmetrized weights over undirected edges (the ``m`` of
        weighted modularity)."""
        return sum(w for _, _, w in self.undirected_edges())

    def subgraph(self, keep: Iterable[str]) -> "QuotientGraph":
        """The induced subgraph on ``keep`` (unknown names ignored)."""
        wanted = {name for name in keep if name in self._nodes}
        sub = QuotientGraph()
        for name in sorted(wanted):
            sub.add_node(name, self._nodes[name])
        for src, dst, weight in self.edges():
            if src in wanted and dst in wanted:
                sub.add_edge(src, dst, weight)
        return sub

    def adjacency(self) -> Mapping[str, Mapping[str, float]]:
        """Read-only view of the directed adjacency (for reports/tests)."""
        return {src: dict(dsts) for src, dsts in self._out.items()}


def quotient_graph(graph: MetaGraph) -> QuotientGraph:
    """Collapse a variable :class:`MetaGraph` to its module quotient.

    Every metagraph node contributes to its module's ``node_size``; every
    cross-module variable edge adds unit weight to the corresponding
    directed module edge.  Intra-module edges vanish (they are the node).
    """
    q = QuotientGraph()
    for node in graph:
        q.add_node(node.module, 1)
    for (src_mod, _, _), (dst_mod, _, _) in graph.edges():
        if src_mod != dst_mod:
            q.add_edge(src_mod, dst_mod, 1.0)
    return q

"""Girvan-Newman community detection with modularity tracking (paper §5.2).

The paper partitions the module quotient graph into communities by
iteratively removing the edge with the highest betweenness (Girvan-Newman)
and keeps the partition maximizing Newman's modularity; Algorithm 5.4 then
refines the root-cause suspect set community by community.

The implementation is pure Python and fully deterministic: edge betweenness
comes from Brandes' algorithm over unweighted shortest paths (hop counts —
the convention Girvan-Newman itself uses), ties in the edge-removal choice
break lexicographically, and modularity is evaluated with the *original*
symmetrized edge weights, so heavier couplings pull modules into the same
community even though path counting ignores them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Union

from ..graphs.metagraph import MetaGraph
from .quotient import QuotientGraph, quotient_graph

__all__ = [
    "CommunityLevel",
    "CommunityResult",
    "edge_betweenness",
    "girvan_newman_communities",
    "modularity",
]

GraphLike = Union[QuotientGraph, MetaGraph]


def as_quotient(graph: GraphLike) -> QuotientGraph:
    """Pass a :class:`QuotientGraph` through; collapse a :class:`MetaGraph`."""
    if isinstance(graph, QuotientGraph):
        return graph
    return quotient_graph(graph)


def _undirected_adjacency(
    graph: QuotientGraph,
) -> dict[str, list[str]]:
    return {node: graph.neighbors(node) for node in graph.nodes}


def brandes_sssp(
    adj: Mapping[str, list[str]], source: str
) -> tuple[list[str], dict[str, list[str]], dict[str, float]]:
    """Brandes' single-source stage: BFS shortest paths with path counts.

    Returns ``(stack, preds, sigma)`` — nodes in non-decreasing distance
    order, each node's shortest-path predecessors, and its shortest-path
    count.  Both the edge-betweenness sweep here and the node betweenness
    in :mod:`repro.analysis.centrality` accumulate dependencies over this
    common traversal.
    """
    stack: list[str] = []
    preds: dict[str, list[str]] = {v: [] for v in adj}
    sigma: dict[str, float] = {v: 0.0 for v in adj}
    dist: dict[str, int] = {source: 0}
    sigma[source] = 1.0
    queue: deque[str] = deque([source])
    while queue:
        v = queue.popleft()
        stack.append(v)
        for w in adj[v]:
            if w not in dist:
                dist[w] = dist[v] + 1
                queue.append(w)
            if dist[w] == dist[v] + 1:
                sigma[w] += sigma[v]
                preds[w].append(v)
    return stack, preds, sigma


def edge_betweenness(
    graph: GraphLike,
    adjacency: Optional[Mapping[str, list[str]]] = None,
) -> dict[tuple[str, str], float]:
    """Brandes edge betweenness over unweighted undirected shortest paths.

    Returns ``{(u, v): score}`` with ``u < v``.  ``adjacency`` overrides the
    graph's own neighbour lists (the Girvan-Newman loop passes its
    progressively thinned adjacency).
    """
    q = as_quotient(graph)
    adj = dict(adjacency) if adjacency is not None else _undirected_adjacency(q)
    betweenness: dict[tuple[str, str], float] = {}
    for node in adj:
        for other in adj[node]:
            pair = (node, other) if node < other else (other, node)
            betweenness.setdefault(pair, 0.0)

    for source in sorted(adj):
        stack, preds, sigma = brandes_sssp(adj, source)
        # dependency accumulation, credited to edges
        delta: dict[str, float] = {v: 0.0 for v in adj}
        while stack:
            w = stack.pop()
            for v in preds[w]:
                share = (sigma[v] / sigma[w]) * (1.0 + delta[w])
                pair = (v, w) if v < w else (w, v)
                betweenness[pair] += share
                delta[v] += share
    # each undirected path counted from both endpoints
    return {pair: score / 2.0 for pair, score in betweenness.items()}


def _components(adj: Mapping[str, list[str]]) -> list[frozenset[str]]:
    seen: set[str] = set()
    out: list[frozenset[str]] = []
    for start in sorted(adj):
        if start in seen:
            continue
        comp = {start}
        queue = deque([start])
        seen.add(start)
        while queue:
            v = queue.popleft()
            for w in adj[v]:
                if w not in seen:
                    seen.add(w)
                    comp.add(w)
                    queue.append(w)
        out.append(frozenset(comp))
    return out


def modularity(
    graph: GraphLike, communities: Iterable[Iterable[str]]
) -> float:
    """Newman's weighted modularity of a partition of the graph's nodes.

    ``Q = Σ_c [ w_in(c)/W - (w_deg(c)/(2W))² ]`` with ``W`` the total
    symmetrized edge weight, ``w_in(c)`` the weight inside community ``c``
    and ``w_deg(c)`` the symmetrized degree weight of its members.
    """
    q = as_quotient(graph)
    total = q.total_undirected_weight()
    if total <= 0.0:
        return 0.0
    member_of: dict[str, int] = {}
    for index, community in enumerate(communities):
        for name in community:
            if name in member_of:
                raise ValueError(f"module {name!r} appears in two communities")
            member_of[name] = index
    missing = set(q.nodes) - set(member_of)
    if missing:
        raise ValueError(
            f"partition does not cover modules: {sorted(missing)[:5]}"
        )
    n_comms = max(member_of.values(), default=-1) + 1
    w_in = [0.0] * n_comms
    w_deg = [0.0] * n_comms
    for u, v, weight in q.undirected_edges():
        cu, cv = member_of[u], member_of[v]
        w_deg[cu] += weight
        w_deg[cv] += weight
        if cu == cv:
            w_in[cu] += weight
    return sum(
        w_in[c] / total - (w_deg[c] / (2.0 * total)) ** 2
        for c in range(n_comms)
    )


@dataclass(frozen=True)
class CommunityLevel:
    """One level of the Girvan-Newman dendrogram."""

    communities: tuple[frozenset[str], ...]
    modularity: float
    removed_edges: int  #: edges removed from the graph to reach this level

    @property
    def n_communities(self) -> int:
        return len(self.communities)


@dataclass
class CommunityResult:
    """The dendrogram plus the modularity-optimal partition.

    ``levels`` records every distinct partition the edge-removal sweep
    produced (coarsest first); ``best`` is the level maximizing modularity
    (earliest level on ties, i.e. the coarsest of the equally good ones).
    """

    levels: list[CommunityLevel]
    best: CommunityLevel
    _member_of: dict[str, frozenset[str]] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        if not self._member_of:
            for community in self.best.communities:
                for name in community:
                    self._member_of[name] = community

    @property
    def communities(self) -> tuple[frozenset[str], ...]:
        """The best partition's communities, largest first."""
        return self.best.communities

    @property
    def modularity(self) -> float:
        return self.best.modularity

    def community_of(self, name: str) -> frozenset[str]:
        """The best-partition community containing ``name``."""
        try:
            return self._member_of[name]
        except KeyError:
            raise KeyError(f"module {name!r} is not in the graph") from None

    def __len__(self) -> int:
        return len(self.best.communities)

    def summary(self) -> str:
        sizes = sorted(
            (len(c) for c in self.best.communities), reverse=True
        )
        return (
            f"CommunityResult({len(sizes)} communities, "
            f"modularity={self.best.modularity:.3f}, sizes={sizes})"
        )


def girvan_newman_communities(
    graph: GraphLike,
    *,
    max_communities: Optional[int] = None,
) -> CommunityResult:
    """Girvan-Newman community detection with per-level modularity.

    Repeatedly removes the highest-betweenness edge (lexicographic smallest
    on ties) from the undirected view of ``graph``, recording a dendrogram
    level every time the component count grows, until every edge is gone or
    ``max_communities`` components exist.  The returned
    :class:`CommunityResult` exposes every level and the modularity-optimal
    partition.
    """
    q = as_quotient(graph)
    if q.node_count == 0:
        raise ValueError("cannot detect communities of an empty graph")
    adj = {node: list(neigh) for node, neigh in _undirected_adjacency(q).items()}

    def record(removed: int) -> CommunityLevel:
        comms = _components(adj)
        comms.sort(key=lambda c: (-len(c), sorted(c)[0]))
        return CommunityLevel(
            communities=tuple(comms),
            modularity=modularity(q, comms),
            removed_edges=removed,
        )

    levels = [record(0)]
    removed = 0
    while any(adj[v] for v in adj):
        if (
            max_communities is not None
            and levels[-1].n_communities >= max_communities
        ):
            break
        scores = edge_betweenness(q, adj)
        # max betweenness, ties to the lexicographically smallest pair
        u, v = min(scores, key=lambda pair: (-scores[pair], pair))
        adj[u].remove(v)
        adj[v].remove(u)
        removed += 1
        level = record(removed)
        if level.n_communities > levels[-1].n_communities:
            levels.append(level)

    best = max(
        levels, key=lambda lv: (lv.modularity, -lv.removed_edges)
    )
    return CommunityResult(levels=levels, best=best)

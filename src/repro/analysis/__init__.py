"""repro.analysis — module-level graph analysis (paper §5.1-5.2, Table 1).

The refinement stage of the paper works on the *quotient* of the variable
metagraph: one node per Fortran module.  This package supplies everything
Algorithm 5.4 consumes from that graph:

``quotient_graph(metagraph) -> QuotientGraph``
    Collapse a :class:`~repro.graphs.MetaGraph` to its weighted module
    graph (edge weight = number of cross-module variable dependencies).
``girvan_newman_communities(graph) -> CommunityResult``
    Girvan-Newman edge-betweenness community detection with per-level
    modularity tracking; ``result.communities`` is the modularity-optimal
    partition Algorithm 5.4 samples candidate scopes from.
``degree_centrality`` / ``betweenness_centrality`` / ``closeness_centrality``
/ ``eigenvector_in_centrality``
    Module rankings; the eigenvector centrality of the incoming adjacency
    is the paper's "where does computation accumulate" ordering.
``degree_stats`` / ``degree_distribution``
    The Table 1 summary row and the raw degree histograms.

Everything accepts either a :class:`QuotientGraph` or a raw
:class:`~repro.graphs.MetaGraph` (collapsed on the fly), is pure Python,
and is deterministic — ties break lexicographically, never by hash order.

>>> from repro.analysis import girvan_newman_communities, quotient_graph
>>> from repro.graphs import build_metagraph
>>> from repro.model import ModelConfig, build_model_source
>>> q = quotient_graph(build_metagraph(build_model_source(ModelConfig())))
>>> result = girvan_newman_communities(q)
>>> result.community_of("micro_mg") == result.community_of("microp_aero")
True
"""

from __future__ import annotations

from .centrality import (
    DegreeStats,
    betweenness_centrality,
    closeness_centrality,
    degree_centrality,
    degree_distribution,
    degree_stats,
    eigenvector_in_centrality,
)
from .communities import (
    CommunityLevel,
    CommunityResult,
    edge_betweenness,
    girvan_newman_communities,
    modularity,
)
from .quotient import QuotientGraph, quotient_graph

__all__ = [
    "CommunityLevel",
    "CommunityResult",
    "DegreeStats",
    "QuotientGraph",
    "betweenness_centrality",
    "closeness_centrality",
    "degree_centrality",
    "degree_distribution",
    "degree_stats",
    "edge_betweenness",
    "eigenvector_in_centrality",
    "girvan_newman_communities",
    "modularity",
    "quotient_graph",
]

"""Module centralities and degree-distribution statistics (paper Table 1).

The paper characterizes the metagraph with degree statistics and ranks
modules by centrality to decide where refinement attention goes first.
Everything here operates on the module quotient graph (a
:class:`~repro.analysis.quotient.QuotientGraph`; a raw
:class:`~repro.graphs.metagraph.MetaGraph` is collapsed automatically) and
is pure Python, deterministic, and normalized to ``[0, 1]`` where the
classical definition admits it.

``eigenvector_in_centrality`` is the paper's headline ranking: the
eigenvector centrality of the *incoming* weighted adjacency, i.e. a module
is important when important modules feed data into it — exactly the notion
of "many computations end up here" that makes output-adjacent physics
modules rank high.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from .communities import GraphLike, as_quotient, brandes_sssp

__all__ = [
    "DegreeStats",
    "betweenness_centrality",
    "closeness_centrality",
    "degree_centrality",
    "degree_distribution",
    "degree_stats",
    "eigenvector_in_centrality",
]


def degree_centrality(graph: GraphLike) -> dict[str, float]:
    """Undirected degree over ``n - 1`` (fraction of reachable peers)."""
    q = as_quotient(graph)
    n = q.node_count
    if n <= 1:
        return {name: 0.0 for name in q.nodes}
    return {name: q.degree(name) / (n - 1) for name in q.nodes}


def betweenness_centrality(graph: GraphLike) -> dict[str, float]:
    """Brandes node betweenness over unweighted undirected shortest paths,
    normalized by ``(n-1)(n-2)/2`` (the undirected pair count)."""
    q = as_quotient(graph)
    adj = {node: q.neighbors(node) for node in q.nodes}
    centrality = {node: 0.0 for node in adj}
    for source in sorted(adj):
        stack, preds, sigma = brandes_sssp(adj, source)
        # dependency accumulation, credited to interior nodes
        delta = {v: 0.0 for v in adj}
        while stack:
            w = stack.pop()
            for v in preds[w]:
                delta[v] += (sigma[v] / sigma[w]) * (1.0 + delta[w])
            if w != source:
                centrality[w] += delta[w]
    n = q.node_count
    if n > 2:
        scale = 1.0 / ((n - 1) * (n - 2))  # undirected: paths counted twice
        return {node: score * scale for node, score in centrality.items()}
    return {node: 0.0 for node in centrality}


def closeness_centrality(graph: GraphLike) -> dict[str, float]:
    """Wasserman-Faust closeness on the undirected view.

    ``C(v) = ((r-1)/(n-1)) · ((r-1)/Σ d(v, u))`` with ``r`` the size of
    ``v``'s connected component — the standard correction that keeps
    disconnected graphs comparable.
    """
    q = as_quotient(graph)
    n = q.node_count
    out: dict[str, float] = {}
    for source in q.nodes:
        dist = {source: 0}
        queue: deque[str] = deque([source])
        total = 0
        while queue:
            v = queue.popleft()
            for w in q.neighbors(v):
                if w not in dist:
                    dist[w] = dist[v] + 1
                    total += dist[w]
                    queue.append(w)
        r = len(dist)
        if total > 0 and n > 1:
            out[source] = ((r - 1) / (n - 1)) * ((r - 1) / total)
        else:
            out[source] = 0.0
    return out


def eigenvector_in_centrality(
    graph: GraphLike,
    *,
    max_iterations: int = 200,
    tolerance: float = 1.0e-10,
) -> dict[str, float]:
    """Eigenvector centrality of the weighted *incoming* adjacency.

    Power iteration of ``x ← Aᵀ x`` (``A[u][v]`` the u→v edge weight):
    a module scores high when high-scoring modules feed data into it.
    Normalized to unit maximum.  Falls back to normalized weighted
    in-degree if the iteration collapses (e.g. a DAG with no recurrent
    mass), so the ranking is always defined.
    """
    q = as_quotient(graph)
    nodes = q.nodes
    if not nodes:
        return {}
    x = {node: 1.0 / len(nodes) for node in nodes}
    collapsed = False
    for _ in range(max_iterations):
        nxt = {node: 0.0 for node in nodes}
        for node in nodes:
            for pred in q.predecessors(node):
                nxt[node] += q.weight(pred, node) * x[pred]
        norm = sum(value * value for value in nxt.values()) ** 0.5
        if norm <= tolerance:
            collapsed = True  # nilpotent adjacency: no eigenvector to find
            break
        nxt = {node: value / norm for node, value in nxt.items()}
        if max(abs(nxt[node] - x[node]) for node in nodes) < tolerance:
            x = nxt
            break
        x = nxt
    if collapsed:
        # degenerate (e.g. pure DAG): weighted in-degree as the ranking
        x = {node: q.in_weight(node) for node in nodes}
    peak = max(x.values())
    if peak <= 0.0:
        return {node: 0.0 for node in nodes}
    return {node: value / peak for node, value in x.items()}


def degree_distribution(graph: GraphLike) -> dict[str, dict[int, int]]:
    """``{"in": {degree: count}, "out": ..., "undirected": ...}``."""
    q = as_quotient(graph)
    dists: dict[str, dict[int, int]] = {"in": {}, "out": {}, "undirected": {}}
    for node in q.nodes:
        for key, degree in (
            ("in", q.in_degree(node)),
            ("out", q.out_degree(node)),
            ("undirected", q.degree(node)),
        ):
            dists[key][degree] = dists[key].get(degree, 0) + 1
    return dists


@dataclass(frozen=True)
class DegreeStats:
    """Summary statistics of the quotient graph (the paper's Table 1 row)."""

    n_modules: int
    n_edges: int            #: directed module-pair edges
    total_weight: float     #: summed directed edge weights (variable edges)
    density: float          #: directed edges over n(n-1)
    mean_in_degree: float
    max_in_degree: int
    mean_out_degree: float
    max_out_degree: int
    mean_degree: float      #: undirected
    max_degree: int


def degree_stats(graph: GraphLike) -> DegreeStats:
    """Degree statistics of the module quotient graph."""
    q = as_quotient(graph)
    n = q.node_count
    in_degrees = [q.in_degree(v) for v in q.nodes]
    out_degrees = [q.out_degree(v) for v in q.nodes]
    degrees = [q.degree(v) for v in q.nodes]
    edges = q.edge_count
    return DegreeStats(
        n_modules=n,
        n_edges=edges,
        total_weight=sum(w for _, _, w in q.edges()),
        density=(edges / (n * (n - 1))) if n > 1 else 0.0,
        mean_in_degree=(sum(in_degrees) / n) if n else 0.0,
        max_in_degree=max(in_degrees, default=0),
        mean_out_degree=(sum(out_degrees) / n) if n else 0.0,
        max_out_degree=max(out_degrees, default=0),
        mean_degree=(sum(degrees) / n) if n else 0.0,
        max_degree=max(degrees, default=0),
    )

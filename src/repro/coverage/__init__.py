"""repro.coverage — codecov-style report writing/parsing and filtering.

The runtime half of coverage lives in :mod:`repro.runtime.coverage`: the
interpreter records every executed statement into a
:class:`~repro.runtime.CoverageTrace`.  This package is the *analysis*
half — the paper's "export the codecov data and filter the source tree
with it" step (§4.3):

>>> from repro.coverage import CoverageReport
>>> from repro.ensemble import generate_ensemble
>>> ens = generate_ensemble(n=4)
>>> report = CoverageReport.from_trace(ens.coverage, meta={"runs": 4})
>>> report.write("coverage.json")          # codecov-style JSON
>>> again = CoverageReport.read("coverage.json")
>>> again == report                        # byte-stable round trip
True
>>> mg = report.restricted_to(["micro_mg", "microp_aero.F90"])

Reports combine with set algebra — ``a | b`` (union across members),
``a & b`` (lines both runs executed), ``a - b`` (lines only ``a``
executed) — which is what the slicing stage uses to intersect static
backward slices with what actually ran.
"""

from __future__ import annotations

from .report import CoverageReport, CoverageReportError

__all__ = ["CoverageReport", "CoverageReportError"]

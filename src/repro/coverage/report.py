"""Codecov-style coverage reports over :class:`CoverageTrace` data.

The paper compiles CESM with Intel codecov, runs a few time steps, and
exports per-file line execution data; filtering the ~820 compiled modules
down to the ~230 actually executed is what makes graph construction and
slicing tractable (§4.3).  :class:`CoverageReport` is that exported object
for the synthetic pipeline: a per-file ``{line: hits}`` map with metadata,
written from any :class:`~repro.runtime.CoverageTrace` (a single run or an
ensemble's merged trace), serialized to a stable JSON layout that parses
back bit-for-bit.

Reports are *set-algebraic*: ``union`` (lines executed in any run, hits
summed), ``intersect`` (lines executed in every run, hits by minimum) and
``subtract`` (lines executed here but not there) combine reports across
ensemble members or between a failing run and the control, and
``restricted_to`` filters a report to a set of modules — both fundamental
moves of the root-cause pipeline (slicing intersects executed lines with
the static backward slice; differencing isolates what only the failing
configuration touched).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..errors import ReproError
from ..runtime import CoverageTrace

__all__ = ["CoverageReport", "CoverageReportError"]

#: serialization format marker/version
REPORT_FORMAT = "repro-coverage"
REPORT_VERSION = 1


class CoverageReportError(ReproError, ValueError):
    """Raised when a serialized report cannot be parsed."""


def _normalize_module(name: str) -> str:
    """Filter key for a module/file name: the file stem, lower-cased.

    Accepts Fortran file names (``"micro_mg.F90"``), bare module names
    (``"micro_mg"``) and mixed case; all map to the same key.
    """
    base = name.rsplit("/", 1)[-1]
    stem = base.rsplit(".", 1)[0] if "." in base else base
    return stem.lower()


@dataclass
class CoverageReport:
    """Per-file line-hit maps of one (or several combined) runs."""

    #: ``{filename: {line: hits}}`` — only executed lines appear
    files: dict[str, dict[int, int]] = field(default_factory=dict)
    #: free-form metadata carried through serialization (label, n_runs ...)
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        # drop empty per-file maps so value equality is canonical
        self.files = {
            name: dict(lines) for name, lines in self.files.items() if lines
        }

    # ------------------------------------------------------------- creation
    @classmethod
    def from_trace(
        cls, trace: CoverageTrace, meta: dict | None = None
    ) -> "CoverageReport":
        """Write a report from a runtime trace (single run or merged)."""
        files: dict[str, dict[int, int]] = {}
        for (filename, line), count in trace.counts.items():
            files.setdefault(filename, {})[line] = count
        return cls(files=files, meta=dict(meta or {}))

    def to_trace(self) -> CoverageTrace:
        """The equivalent runtime trace (exact inverse of ``from_trace``)."""
        counts = {
            (filename, line): hits
            for filename, lines in self.files.items()
            for line, hits in lines.items()
        }
        return CoverageTrace(counts)

    # -------------------------------------------------------------- queries
    def filenames(self) -> list[str]:
        """Sorted names of every file with at least one executed line."""
        return sorted(self.files)

    def lines(self, filename: str) -> dict[int, int]:
        """``{line: hits}`` for one file (empty when never executed)."""
        return dict(self.files.get(filename, {}))

    def executed_lines(self, filename: str) -> list[int]:
        """Sorted executed line numbers of one file."""
        return sorted(self.files.get(filename, {}))

    def hits(self, filename: str, line: int) -> int:
        return self.files.get(filename, {}).get(line, 0)

    @property
    def total_lines(self) -> int:
        """Number of distinct executed (file, line) pairs."""
        return sum(len(lines) for lines in self.files.values())

    @property
    def total_hits(self) -> int:
        """Total execution count over all lines."""
        return sum(
            hits for lines in self.files.values() for hits in lines.values()
        )

    def __bool__(self) -> bool:
        return bool(self.files)

    def __iter__(self) -> Iterator[tuple[str, int, int]]:
        """Iterate ``(filename, line, hits)`` in sorted order."""
        for filename in self.filenames():
            for line in self.executed_lines(filename):
                yield filename, line, self.files[filename][line]

    # ---------------------------------------------------------- set algebra
    def union(self, *others: "CoverageReport") -> "CoverageReport":
        """Lines executed in *any* report; hits are summed.

        Union is the cross-member merge: the ensemble's report is the
        union of its members' reports, independent of member order.
        """
        files: dict[str, dict[int, int]] = {
            name: dict(lines) for name, lines in self.files.items()
        }
        for other in others:
            for name, lines in other.files.items():
                mine = files.setdefault(name, {})
                for line, hits in lines.items():
                    mine[line] = mine.get(line, 0) + hits
        return CoverageReport(files=files, meta=dict(self.meta))

    def intersect(self, *others: "CoverageReport") -> "CoverageReport":
        """Lines executed in *every* report; hits by minimum."""
        files: dict[str, dict[int, int]] = {
            name: dict(lines) for name, lines in self.files.items()
        }
        for other in others:
            pruned: dict[str, dict[int, int]] = {}
            for name, lines in files.items():
                theirs = other.files.get(name)
                if not theirs:
                    continue
                kept = {
                    line: min(hits, theirs[line])
                    for line, hits in lines.items()
                    if line in theirs
                }
                if kept:
                    pruned[name] = kept
            files = pruned
        return CoverageReport(files=files, meta=dict(self.meta))

    def subtract(self, *others: "CoverageReport") -> "CoverageReport":
        """Lines executed here but in *none* of the other reports.

        Hit counts are kept from ``self`` — subtraction answers "what did
        only this configuration execute", the differencing move that
        isolates configuration-specific code paths.
        """
        files: dict[str, dict[int, int]] = {}
        for name, lines in self.files.items():
            kept = {
                line: hits
                for line, hits in lines.items()
                if not any(line in o.files.get(name, {}) for o in others)
            }
            if kept:
                files[name] = kept
        return CoverageReport(files=files, meta=dict(self.meta))

    def __or__(self, other: "CoverageReport") -> "CoverageReport":
        return self.union(other)

    def __and__(self, other: "CoverageReport") -> "CoverageReport":
        return self.intersect(other)

    def __sub__(self, other: "CoverageReport") -> "CoverageReport":
        return self.subtract(other)

    # ------------------------------------------------------------ filtering
    def restricted_to(self, modules: Iterable[str]) -> "CoverageReport":
        """A report keeping only files belonging to the given modules.

        ``modules`` may mix Fortran module names (``"micro_mg"``) and file
        names (``"micro_mg.F90"``), case-insensitively.  Unknown names
        simply match nothing — filtering a report to modules it never
        executed yields an empty report, not an error, because "was this
        ever executed?" is exactly the question the filter answers.
        """
        keep = {_normalize_module(m) for m in modules}
        return CoverageReport(
            files={
                name: dict(lines)
                for name, lines in self.files.items()
                if _normalize_module(name) in keep
            },
            meta=dict(self.meta),
        )

    def executed_modules(self) -> list[str]:
        """Sorted normalized module names with at least one executed line."""
        return sorted({_normalize_module(name) for name in self.files})

    # -------------------------------------------------------- serialization
    def to_json(self, indent: int | None = 2) -> str:
        """The canonical JSON form (sorted keys — byte-stable round trips)."""
        payload = {
            "format": REPORT_FORMAT,
            "version": REPORT_VERSION,
            "meta": self.meta,
            "coverage": {
                filename: {
                    str(line): self.files[filename][line]
                    for line in sorted(self.files[filename])
                }
                for filename in sorted(self.files)
            },
        }
        return json.dumps(payload, indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CoverageReport":
        """Parse a report serialized by :meth:`to_json`."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CoverageReportError(f"not valid JSON: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("format") != REPORT_FORMAT:
            raise CoverageReportError(
                f"not a {REPORT_FORMAT} report (format="
                f"{payload.get('format')!r})"
                if isinstance(payload, dict)
                else "not a coverage report object"
            )
        version = payload.get("version")
        if version != REPORT_VERSION:
            raise CoverageReportError(
                f"unsupported report version {version!r} "
                f"(expected {REPORT_VERSION})"
            )
        coverage = payload.get("coverage", {})
        if not isinstance(coverage, dict):
            raise CoverageReportError("'coverage' must be an object")
        files: dict[str, dict[int, int]] = {}
        try:
            for filename, lines in coverage.items():
                files[str(filename)] = {
                    int(line): int(hits) for line, hits in lines.items()
                }
        except (TypeError, ValueError, AttributeError) as exc:
            raise CoverageReportError(
                f"malformed line-hit map: {exc}"
            ) from exc
        meta = payload.get("meta", {})
        if not isinstance(meta, dict):
            raise CoverageReportError("'meta' must be an object")
        return cls(files=files, meta=meta)

    def write(self, path: str | os.PathLike) -> None:
        """Serialize to ``path`` (UTF-8 JSON)."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")

    @classmethod
    def read(cls, path: str | os.PathLike) -> "CoverageReport":
        """Parse the report at ``path``."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def summary(self) -> str:
        return (
            f"CoverageReport(files={len(self.files)}, "
            f"lines={self.total_lines}, hits={self.total_hits})"
        )

"""Which extracted kernels the vectorized runtime is allowed to trust.

The fused runtime (:mod:`repro.runtime.vec`) only swaps an interpreted
call-site body for a generated numpy kernel when that kernel sits in a
:class:`KernelRegistry`, and a kernel only enters a registry after
clearing three gates:

* **conformance** — :func:`~repro.kgen.extract.verify_kernel` must
  measure ``nrms == 0`` against the scalar interpreter *of the exact
  source build being run* (the paper's normalized-RMS criterion, with
  the tolerance pinned to zero: fused execution must be bit-identical,
  not merely close);
* **patch isolation** — a kernel whose defining module, extracted
  callees, or baked-in constants come from a *patched* module is
  refused, so an injected bug is always executed by the interpreter and
  can never be masked (or accidentally reproduced) by a stale kernel;
* **FP-model compatibility** — generated kernels use plain numpy
  operators, so any :class:`~repro.runtime.fpu.FPConfig` that enables
  FMA contraction or flush-to-zero rejects every kernel and the run
  falls back to full interpretation.

Rejections are not errors: they increment the ``kgen.fallbacks`` counter
and the runtime interprets the call as before.  The registry for a given
``(source, fp)`` pair is memoized process-wide — extraction and the
256-sample verification sweep run once, not once per batch.
"""

from __future__ import annotations

import threading
from typing import Optional

from ..model.builder import ModelConfig, ModelSource, build_model_source
from ..model.patches import get_patch
from ..obs.metrics import get_metrics
from ..runtime.interpreter import Interpreter
from .extract import (
    DEFAULT_KERNEL_TARGETS,
    Kernel,
    KernelError,
    KernelReport,
    KernelTarget,
    extract_kernel,
    verify_kernel,
)

__all__ = ["KernelRegistry", "build_kernel_registry", "kernel_registry_for"]


class KernelRegistry:
    """Conformant kernels indexed by ``(module, function)``.

    ``tol`` is the admission bound on a kernel's verified nrms; the
    default of ``0.0`` is the fused runtime's bit-identity bar.
    ``rejected`` records every candidate that failed a gate with the
    reason, for observability and tests.
    """

    def __init__(self, tol: float = 0.0):
        self.tol = tol
        self._kernels: dict[tuple[str, str], Kernel] = {}
        self.reports: dict[tuple[str, str], KernelReport] = {}
        self.rejected: dict[tuple[str, str], str] = {}

    def __len__(self) -> int:
        return len(self._kernels)

    def add(self, kernel: Kernel, report: KernelReport) -> bool:
        """Admit ``kernel`` iff its verified nrms is within ``tol``.

        Returns True on admission; on failure the kernel lands in
        ``rejected`` and ``kgen.fallbacks`` is incremented.
        """
        key = (kernel.module, kernel.function)
        if report.nrms > self.tol:
            self.reject(
                kernel.module,
                kernel.function,
                f"nrms {report.nrms:.3e} exceeds tolerance {self.tol:.3e}",
            )
            return False
        self._kernels[key] = kernel
        self.reports[key] = report
        return True

    def reject(self, module: str, function: str, reason: str) -> None:
        self.rejected[(module, function)] = reason
        get_metrics().inc("kgen.fallbacks")

    def lookup(self, module: str, function: str) -> Optional[Kernel]:
        return self._kernels.get((module, function))

    def kernels(self) -> list[Kernel]:
        return list(self._kernels.values())


def _patched_modules(source: ModelSource) -> set[str]:
    """Module names whose source text a patch in ``source.config`` touches."""
    filenames = {
        get_patch(name).filename for name in source.config.patches
    }
    if not filenames:
        return set()
    out: set[str] = set()
    for filename, ast in source.parse().items():
        if filename in filenames:
            out.update(mod.name for mod in ast.modules)
    return out


def build_kernel_registry(
    source=None,
    fp=None,
    targets: tuple[KernelTarget, ...] = DEFAULT_KERNEL_TARGETS,
    tol: float = 0.0,
) -> KernelRegistry:
    """Extract, verify, and gate every target against one source build.

    ``source`` is a :class:`~repro.model.builder.ModelSource`,
    :class:`~repro.model.ModelConfig`, or ``None`` (control build); ``fp``
    the run's :class:`~repro.runtime.fpu.FPConfig`.  Every rejection —
    non-default FP model, patched module overlap, extraction failure,
    nonzero nrms — is recorded in ``registry.rejected`` and counted in
    ``kgen.fallbacks``; the returned registry holds only kernels the
    fused runtime may execute in place of interpretation.
    """
    if source is None or isinstance(source, ModelConfig):
        source = build_model_source(source)
    registry = KernelRegistry(tol=tol)
    if fp is not None and (fp.fma or fp.flush_to_zero):
        # kernels are plain-numpy; a contracted/FTZ FP model would diverge
        for target in targets:
            registry.reject(
                target.module,
                target.function,
                f"fp model {fp!r} is incompatible with plain-numpy kernels",
            )
        return registry
    patched = _patched_modules(source)
    interp = Interpreter(source.parse(), collect_coverage=False)
    for target in targets:
        try:
            kernel = extract_kernel(interp, target.module, target.function)
        except KernelError as err:
            registry.reject(target.module, target.function, str(err))
            continue
        if patched & set(kernel.source_modules):
            touched = ", ".join(sorted(patched & set(kernel.source_modules)))
            registry.reject(
                kernel.module,
                kernel.function,
                f"depends on patched module(s): {touched}",
            )
            continue
        report = verify_kernel(
            kernel, interp, ranges=target.ranges, tol=tol
        )
        registry.add(kernel, report)
    return registry


#: (source digest, fp identity) -> registry; bounded small — a sweep
#: touches six builds x two fp models at most
_REGISTRY_CACHE: dict[tuple, KernelRegistry] = {}
_REGISTRY_LOCK = threading.Lock()
_REGISTRY_CACHE_MAX = 16


def _fp_key(fp) -> tuple:
    if fp is None:
        return ()
    return (
        bool(fp.fma),
        None if fp.fma_modules is None else tuple(sorted(fp.fma_modules)),
        bool(fp.flush_to_zero),
    )


def kernel_registry_for(source: ModelSource, fp=None) -> KernelRegistry:
    """The memoized default-target registry for one ``(source, fp)`` pair."""
    key = (source.content_digest(), _fp_key(fp))
    with _REGISTRY_LOCK:
        hit = _REGISTRY_CACHE.get(key)
    if hit is not None:
        return hit
    registry = build_kernel_registry(source, fp)
    with _REGISTRY_LOCK:
        if len(_REGISTRY_CACHE) >= _REGISTRY_CACHE_MAX:
            _REGISTRY_CACHE.pop(next(iter(_REGISTRY_CACHE)))
        _REGISTRY_CACHE[key] = registry
    return registry

"""AST-to-numpy kernel extraction.

The extractor walks a subprogram's cached AST (the same parse the
interpreter and the metagraph builder share) and emits the source of a
standalone numpy function: straight-line assignments become array
expressions, ``if``/``elseif``/``else`` blocks become sequential
``np.where`` merges under accumulated branch masks, bounded ``do`` loops
with compile-time-constant bounds are unrolled (a sequential fold, so
accumulate-style bodies keep the interpreter's exact rounding — an axis
reduction would reassociate and fail the ``nrms == 0`` gate), references
to ``use``-associated constants are resolved through a scalar
interpreter's module scopes and baked in as literals, and calls to other
extractable functions become calls to recursively extracted kernels.
``elemental`` subroutines extract too: their ``intent(out)`` /
``intent(inout)`` dummies become a returned tuple.

Everything outside that subset — unbounded or member-varying loops,
non-elemental subroutine calls, array subscripts, I/O — raises
:class:`KernelError`: a kernel either fully vectorizes or is not
generated at all.  Generated kernels are *candidates* until
:func:`verify_kernel` has measured their normalized RMS deviation from
the scalar interpreter over a sample grid and found it within the
conformance bound.

Kernels double as drop-in bodies for the member-batched runtime
(:mod:`repro.runtime.vec`): every generated function takes a keyword-only
``_acct`` hook (default ``None``, zero cost when absent) through which it
replays the vectorized interpreter's per-statement accounting — shared
statement counter, per-member mask corrections, per-line coverage — so a
fused call site stays bit-identical to the interpreted body *including*
``statements_executed`` and coverage counts.  See
:class:`KernelAccounting`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from ..fortran.ast_nodes import (
    Apply,
    Assignment,
    BinOp,
    Declaration,
    DoLoop,
    Expr,
    IfBlock,
    LogicalLit,
    NumberLit,
    Stmt,
    Subprogram,
    UnaryOp,
    VarRef,
)
from ..errors import ReproError
from ..model.builder import ModelConfig, ModelSource, build_model_source
from ..runtime.interpreter import Frame, Interpreter
from ..runtime.values import Scope, StatementLimitExceeded

__all__ = [
    "DEFAULT_KERNEL_TARGETS",
    "Kernel",
    "KernelAccounting",
    "KernelError",
    "KernelReport",
    "KernelTarget",
    "extract_default_kernels",
    "extract_kernel",
    "nrms",
    "verify_kernel",
]


class KernelError(ReproError, ValueError):
    """The subprogram uses a construct the kernel extractor cannot express."""


#: Fortran intrinsic -> numpy callable name in the kernel namespace
_INTRINSIC_MAP = {
    "abs": "np.abs",
    "acos": "np.arccos",
    "asin": "np.arcsin",
    "atan": "np.arctan",
    "atan2": "np.arctan2",
    "cos": "np.cos",
    "cosh": "np.cosh",
    "exp": "np.exp",
    "log": "np.log",
    "log10": "np.log10",
    "mod": "np.fmod",
    "sin": "np.sin",
    "sinh": "np.sinh",
    "sqrt": "np.sqrt",
    "tan": "np.tan",
    "tanh": "np.tanh",
}

#: n-ary fold intrinsics
_FOLD_MAP = {"max": "np.maximum", "min": "np.minimum"}

_BINOPS = {
    "+": "+",
    "-": "-",
    "*": "*",
    "/": "/",
    "**": "**",
    "==": "==",
    "/=": "!=",
    "<": "<",
    "<=": "<=",
    ">": ">",
    ">=": ">=",
}

_SCALAR_INITS = {"real": "0.0", "integer": "0", "logical": "False"}

#: unrolling bound for constant do loops — beyond this the generated source
#: would dwarf the interpreted body it replaces
_UNROLL_LIMIT = 64


# --------------------------------------------------------------------------- #
# Accounting replay (the hook fused kernels drive)
# --------------------------------------------------------------------------- #
class KernelAccounting:
    """Replays the vectorized interpreter's statement accounting.

    A generated kernel calls ``_acct.hit(filename, line, mask)`` once per
    executed statement; ``hit`` mirrors
    :meth:`repro.runtime.vec.VecNodeCompiler._account_fn` exactly: the
    shared ``statements_executed`` counter advances (with the statement
    budget checked), under a member mask the per-member
    ``_extra_statements`` corrections and per-line coverage counts absorb
    the mask, and a statement no member executes (an untaken branch)
    accounts nothing — matching the interpreted runtime, which never
    enters an all-false branch.  Dependency kernels called under a branch
    mask receive a derived accounting context (:meth:`under`), so nested
    kernels account under the combined mask like an interpreted callee
    executing under ``interp._mask``.
    """

    __slots__ = ("interp", "mask")

    def __init__(self, interp, mask: Optional[np.ndarray] = None):
        self.interp = interp
        self.mask = mask

    def under(self, mask) -> "KernelAccounting":
        """A derived context whose statements also run under ``mask``."""
        if mask is None:
            return self
        m = np.asarray(mask, dtype=bool)
        if self.mask is not None:
            m = self.mask & m
        return KernelAccounting(self.interp, m)

    def hit(self, filename: str, line: int, mask=None) -> None:
        interp = self.interp
        m = self.mask
        if mask is not None:
            mask = np.asarray(mask, dtype=bool)
            m = mask if m is None else (m & mask)
        om = interp._mask
        if om is not None:
            m = om if m is None else (m & om)
        if m is not None and m.ndim == 0:
            if not bool(m):
                return  # a branch no member takes: never executed
            m = None
        limit = interp.max_statements
        if m is None:
            n = interp.statements_executed + 1
            interp.statements_executed = n
            if n > limit:
                raise StatementLimitExceeded(
                    f"statement budget of {limit} exhausted "
                    f"(in fused kernel at {filename}:{line})"
                )
            cov = interp._cov_counts
            if cov is not None and line > 0:
                key = (filename, line)
                cov[key] = cov.get(key, 0) + 1
            return
        mi = np.broadcast_to(m, (interp.n_members,))
        if not mi.any():
            return  # ditto, member-varying shape
        n = interp.statements_executed + 1
        interp.statements_executed = n
        if n > limit:
            raise StatementLimitExceeded(
                f"statement budget of {limit} exhausted "
                f"(in fused kernel at {filename}:{line})"
            )
        mi = mi.astype(np.int64)
        interp._extra_statements += mi - 1
        cov = interp._cov_counts
        if cov is not None and line > 0:
            key = (filename, line)
            cov[key] = cov.get(key, 0) + mi


def _sub_acct(acct: Optional[KernelAccounting], mask):
    """Derive a dependency-call accounting context (None passes through)."""
    return None if acct is None else acct.under(mask)


@dataclass
class Kernel:
    """One generated, executable numpy kernel.

    ``fn(*args, _acct=None)`` evaluates the kernel; functions return their
    result value, elemental subroutines return a tuple of their
    ``intent(out)``/``intent(inout)`` dummies (``out_names`` order).
    ``source_modules`` names every module the generated code depends on —
    the defining module, recursively extracted callees' modules, and
    modules whose constants were baked in as literals — so callers can
    refuse kernels whose inputs a source patch may have changed.
    """

    module: str
    function: str
    arg_names: list[str]
    source: str
    fn: Callable
    out_names: list[str] = field(default_factory=list)
    source_modules: frozenset[str] = frozenset()

    @property
    def is_subroutine(self) -> bool:
        return bool(self.out_names)

    def __call__(self, *args, **kwargs):
        return self.fn(*args, **kwargs)


@dataclass
class KernelReport:
    """Conformance measurement of a kernel against the scalar interpreter."""

    kernel: Kernel
    n_samples: int
    nrms: float
    tol: float

    @property
    def conformant(self) -> bool:
        return self.nrms <= self.tol


@dataclass(frozen=True)
class KernelTarget:
    """A named extraction target with plausible per-argument sample ranges."""

    module: str
    function: str
    ranges: tuple[tuple[str, float, float], ...]


#: the model's hot elemental functions (microphysics / radiation inner loops)
DEFAULT_KERNEL_TARGETS: tuple[KernelTarget, ...] = (
    KernelTarget(
        "wv_saturation", "goffgratch_svp", (("t", 180.0, 330.0),)
    ),
    KernelTarget("wv_saturation", "svp_ice", (("t", 180.0, 280.0),)),
    KernelTarget(
        "wv_saturation",
        "qsat_water",
        (("t", 180.0, 330.0), ("p", 5.0e3, 1.1e5)),
    ),
    KernelTarget("radsw", "gravity_norm", (("pdel", 0.5, 1.0e4),)),
)


def nrms(a: np.ndarray, b: np.ndarray) -> float:
    """Normalized RMS deviation of ``a`` from the reference ``b``:
    ``sqrt(mean((a-b)**2)) / max(|b|)`` (denominator 1 when ``b`` is all
    zero), the conformance metric kernels are gated on."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    scale = float(np.max(np.abs(b))) if b.size else 0.0
    if scale == 0.0:
        scale = 1.0
    return float(np.sqrt(np.mean(np.square(a - b)))) / scale


class _Extractor:
    """Translates one subprogram AST into numpy function source."""

    def __init__(self, interp: Interpreter, module: str):
        self.interp = interp
        self.mrt = interp.module(module)
        self.module = module
        self.deps: dict[str, "Kernel"] = {}
        self.locals: set[str] = set()
        self.lines: list[str] = []
        self._mask_n = 0
        #: branch mask (as a source expression) the statement currently
        #: being emitted runs under — dependency-kernel calls anywhere in
        #: its expressions must account under it
        self._stmt_mask: Optional[str] = None
        #: modules the generated code depends on (constants + callees)
        self.source_modules: set[str] = {module}

    # ------------------------------------------------------- expressions
    def expr(self, node: Expr) -> str:
        if isinstance(node, NumberLit):
            if node.is_integer:
                return repr(int(node.value))
            return repr(float(node.value))
        if isinstance(node, LogicalLit):
            return "True" if node.value else "False"
        if isinstance(node, VarRef):
            if node.name in self.locals:
                return node.name
            return self._constant(node.name)
        if isinstance(node, UnaryOp):
            if node.op == "-":
                return f"(-{self.expr(node.operand)})"
            if node.op == "+":
                return self.expr(node.operand)
            if node.op == ".not.":
                return f"np.logical_not({self.expr(node.operand)})"
            raise KernelError(f"unsupported unary operator {node.op!r}")
        if isinstance(node, BinOp):
            if node.op == ".and.":
                return f"({self.expr(node.left)}) & ({self.expr(node.right)})"
            if node.op == ".or.":
                return f"({self.expr(node.left)}) | ({self.expr(node.right)})"
            op = _BINOPS.get(node.op)
            if op is None:
                raise KernelError(
                    f"unsupported binary operator {node.op!r}"
                )
            return f"({self.expr(node.left)} {op} {self.expr(node.right)})"
        if isinstance(node, Apply):
            return self._apply(node)
        raise KernelError(
            f"unsupported expression node {type(node).__name__}"
        )

    def _apply(self, node: Apply) -> str:
        if node.keywords:
            raise KernelError(
                f"keyword arguments in call to {node.name!r} are not "
                "supported"
            )
        args = [self.expr(a) for a in node.args]
        lowered = node.name.lower()
        fold = _FOLD_MAP.get(lowered)
        if fold is not None:
            if not args:
                raise KernelError(f"{lowered}() needs arguments")
            out = args[0]
            for a in args[1:]:
                out = f"{fold}({out}, {a})"
            return out
        mapped = _INTRINSIC_MAP.get(lowered)
        if mapped is not None:
            return f"{mapped}({', '.join(args)})"
        resolved = self.interp._lookup_proc(self.mrt, node.name, frozenset())
        if resolved is not None:
            target_mrt, sub = resolved
            dep = self.deps.get(sub.name)
            if dep is None:
                dep = extract_kernel(
                    self.interp, target_mrt.node.name, sub.name,
                    _deps=self.deps,
                )
                self.deps[sub.name] = dep
            self.source_modules |= set(dep.source_modules)
            # the callee's statements account under the call site's mask,
            # exactly like an interpreted callee running under interp._mask
            mask = self._stmt_mask
            acct = "_acct" if mask is None else f"_sub_acct(_acct, {mask})"
            return f"_k_{sub.name}({', '.join(args)}, _acct={acct})"
        raise KernelError(
            f"cannot extract reference {node.name!r} (array subscript, "
            "unknown function, or unsupported intrinsic)"
        )

    def _constant(self, name: str) -> str:
        """A module-level or use-associated constant, baked as a literal."""
        scope = None
        if name in self.mrt.scope:
            scope = self.mrt.scope
            rname = name
        else:
            found = self.interp._resolve_use_var(self.mrt, name, frozenset())
            if found is not None:
                scope, rname = found
        if scope is None:
            raise KernelError(
                f"unresolvable name {name!r} in {self.module!r}"
            )
        if scope.name:
            self.source_modules.add(scope.name)
        value = scope.get(rname)
        if isinstance(value, (bool, np.bool_)):
            return "True" if value else "False"
        if isinstance(value, (int, np.integer)):
            return repr(int(value))
        if isinstance(value, (float, np.floating)):
            return repr(float(value))
        raise KernelError(
            f"constant {name!r} is not a scalar (got "
            f"{type(value).__name__})"
        )

    def _const_int(self, node: Expr) -> int:
        """Fold a do-loop bound to a compile-time integer, or refuse."""
        if isinstance(node, NumberLit):
            if not node.is_integer:
                raise KernelError("do-loop bounds must be integers")
            return int(node.value)
        if isinstance(node, VarRef) and node.name not in self.locals:
            text = self._constant(node.name)
            try:
                return int(text)
            except ValueError:
                raise KernelError(
                    f"do-loop bound {node.name!r} is not an integer constant"
                ) from None
        if isinstance(node, UnaryOp):
            if node.op == "-":
                return -self._const_int(node.operand)
            if node.op == "+":
                return self._const_int(node.operand)
        if isinstance(node, BinOp):
            left = self._const_int(node.left)
            right = self._const_int(node.right)
            if node.op == "+":
                return left + right
            if node.op == "-":
                return left - right
            if node.op == "*":
                return left * right
        raise KernelError(
            "do-loop bounds must fold to compile-time integer constants "
            "(member-varying or runtime bounds cannot be unrolled)"
        )

    # -------------------------------------------------------- statements
    def _hit(self, stmt: Stmt, mask: Optional[str], indent: str) -> None:
        """Emit the accounting call replaying this statement's execution."""
        loc = stmt.location
        args = f"{loc.filename!r}, {int(loc.line)}"
        if mask is not None:
            args += f", {mask}"
        self.lines.append(
            f"{indent}if _acct is not None: _acct.hit({args})"
        )

    def emit(self, stmts: list[Stmt], mask: Optional[str], indent: str):
        for stmt in stmts:
            if isinstance(stmt, Assignment):
                self._emit_assignment(stmt, mask, indent)
            elif isinstance(stmt, IfBlock):
                self._emit_if(stmt, mask, indent)
            elif isinstance(stmt, DoLoop):
                self._emit_do(stmt, mask, indent)
            else:
                raise KernelError(
                    f"unsupported statement {type(stmt).__name__} at "
                    f"{stmt.location}"
                )

    def _emit_assignment(
        self, stmt: Assignment, mask: Optional[str], indent: str
    ):
        if not isinstance(stmt.target, VarRef):
            raise KernelError(
                f"only scalar assignment targets are supported (at "
                f"{stmt.location})"
            )
        name = stmt.target.name
        if name not in self.locals:
            raise KernelError(
                f"assignment to non-local {name!r} at {stmt.location}"
            )
        self._hit(stmt, mask, indent)
        prev_mask, self._stmt_mask = self._stmt_mask, mask
        try:
            value = self.expr(stmt.value)
        finally:
            self._stmt_mask = prev_mask
        if mask is None:
            self.lines.append(f"{indent}{name} = {value}")
        else:
            self.lines.append(
                f"{indent}{name} = np.where({mask}, {value}, {name})"
            )

    def _emit_if(self, stmt: IfBlock, mask: Optional[str], indent: str):
        # one accounting hit for the if statement itself, under the
        # enclosing mask (branch bodies account per statement below);
        # conditions are evaluated under the enclosing mask too
        self._hit(stmt, mask, indent)
        prev_mask, self._stmt_mask = self._stmt_mask, mask
        try:
            self._emit_if_branches(stmt, mask, indent)
        finally:
            self._stmt_mask = prev_mask

    def _emit_if_branches(
        self, stmt: IfBlock, mask: Optional[str], indent: str
    ):
        remaining: Optional[str] = mask
        first = True
        for cond, body in stmt.branches:
            if cond is None:
                # else branch: everything still remaining
                branch = remaining if remaining is not None else "True"
                if branch == "True":
                    self.emit(body, None, indent)
                else:
                    self.emit(body, branch, indent)
                return
            n = self._mask_n
            self._mask_n += 1
            cond_src = self.expr(cond)
            if first and remaining is None:
                self.lines.append(f"{indent}_m{n} = np.asarray({cond_src})")
            else:
                self.lines.append(
                    f"{indent}_m{n} = np.asarray({cond_src}) & {remaining}"
                    if remaining is not None
                    else f"{indent}_m{n} = np.asarray({cond_src})"
                )
            self.emit(body, f"_m{n}", indent)
            prev = remaining
            if prev is None:
                remaining = f"~_m{n}"
            else:
                remaining = f"(~_m{n} & {prev})"
            first = False

    def _emit_do(self, stmt: DoLoop, mask: Optional[str], indent: str):
        """Unroll a bounded do loop with compile-time-constant bounds.

        Unrolling (not an axis reduction) is deliberate: an accumulate
        body like ``y = y + x`` unrolls into the same sequential fold the
        interpreter executes, so rounding is bit-identical; ``np.sum``
        would reassociate and fail the ``nrms == 0`` conformance gate.
        """
        if stmt.var not in self.locals:
            raise KernelError(
                f"do-loop variable {stmt.var!r} is not a declared local at "
                f"{stmt.location}"
            )
        start = self._const_int(stmt.start)
        stop = self._const_int(stmt.stop)
        step = 1 if stmt.step is None else self._const_int(stmt.step)
        if step == 0:
            raise KernelError(f"zero do-loop step at {stmt.location}")
        count = int(np.trunc((stop - start + step) / step))
        if count < 0:
            count = 0
        if count > _UNROLL_LIMIT:
            raise KernelError(
                f"do loop at {stmt.location} spans {count} iterations — "
                f"beyond the {_UNROLL_LIMIT}-iteration unrolling bound"
            )
        # the do statement accounts once per loop execution (as in the
        # interpreter's _build_do); body statements account per iteration
        self._hit(stmt, mask, indent)
        value = start
        for _ in range(count):
            self.lines.append(f"{indent}{stmt.var} = {value}")
            self.emit(stmt.body, mask, indent)
            value += step
        # Fortran leaves the loop variable one step past the last value
        self.lines.append(f"{indent}{stmt.var} = {start + count * step}")


def _declared_entities(sub: Subprogram) -> dict[str, tuple[str, Optional[str]]]:
    """name -> (base type, intent) of every declared entity (args included)."""
    out: dict[str, tuple[str, Optional[str]]] = {}
    for decl in sub.declarations:
        if not isinstance(decl, Declaration):
            continue
        for entity in decl.entities:
            if entity.dims:
                raise KernelError(
                    f"array local {entity.name!r} is not supported"
                )
            out[entity.name] = (decl.base_type, decl.intent)
    return out


def extract_kernel(
    source,
    module: str,
    function: str,
    _deps: Optional[dict] = None,
) -> Kernel:
    """Extract ``module::function`` into a standalone numpy kernel.

    ``source`` is a :class:`~repro.model.builder.ModelSource`, a
    :class:`~repro.model.ModelConfig`, ``None`` (the control build) — or an
    already-constructed scalar :class:`Interpreter` when extracting several
    kernels against one build.  Functions extract to result-returning
    kernels; ``elemental`` subroutines extract to kernels taking the
    ``intent(in)``/``intent(inout)`` dummies and returning the
    ``intent(out)``/``intent(inout)`` dummies as a tuple.  Raises
    :class:`KernelError` when the subprogram falls outside the
    vectorizable subset.
    """
    if isinstance(source, Interpreter):
        interp = source
    else:
        if source is None or isinstance(source, ModelConfig):
            source = build_model_source(source)
        interp = Interpreter(source.parse(), collect_coverage=False)
    resolved = interp._lookup_proc(
        interp.module(module), function, frozenset()
    )
    if resolved is None:
        raise KernelError(f"no function {function!r} in module {module!r}")
    target_mrt, sub = resolved
    out_names: list[str] = []
    decls = _declared_entities(sub)
    if not sub.is_function:
        if "elemental" not in sub.prefixes:
            raise KernelError(
                f"{function!r} is a non-elemental subroutine; only "
                "elemental subroutines are extractable"
            )
        for name in sub.args:
            _, intent = decls.get(name, ("real", None))
            if intent is None:
                raise KernelError(
                    f"elemental subroutine dummy {name!r} has no declared "
                    "intent"
                )
            if intent in ("out", "inout"):
                out_names.append(name)
        if not out_names:
            raise KernelError(
                f"elemental subroutine {function!r} has no intent(out) or "
                "intent(inout) dummies — nothing to return"
            )
    # re-anchor on the defining module (function may be use-associated)
    ex = _Extractor(interp, target_mrt.node.name)
    if _deps is not None:
        ex.deps = _deps

    in_args = [
        name
        for name in sub.args
        if decls.get(name, ("real", None))[1] != "out"
    ]
    ex.locals = set(sub.args) | set(decls)
    if sub.is_function:
        ex.locals.add(sub.result)
    header = f"def _kernel({', '.join(in_args)}, *, _acct=None):"
    ex.lines.append(header)
    for name, (base_type, intent) in decls.items():
        if name in in_args:
            continue
        init = _SCALAR_INITS.get(base_type)
        if init is None:
            raise KernelError(
                f"local {name!r} has unsupported type {base_type!r}"
            )
        ex.lines.append(f"    {name} = {init}")
    if (
        sub.is_function
        and sub.result not in decls
        and sub.result not in sub.args
    ):
        ex.lines.append(f"    {sub.result} = 0.0")
    ex.emit(sub.body, None, "    ")
    if sub.is_function:
        ex.lines.append(f"    return {sub.result}")
    else:
        ex.lines.append(f"    return ({', '.join(out_names)},)")
    text = "\n".join(ex.lines) + "\n"

    namespace: dict = {"np": np, "_sub_acct": _sub_acct}
    for dep_name, dep in ex.deps.items():
        namespace[f"_k_{dep_name}"] = dep.fn
    exec(compile(text, f"<kernel {module}::{function}>", "exec"), namespace)
    return Kernel(
        module=target_mrt.node.name,
        function=function,
        arg_names=in_args,
        source=text,
        fn=namespace["_kernel"],
        out_names=out_names,
        source_modules=frozenset(ex.source_modules),
    )


def _reference_outputs(
    interp: Interpreter, kernel: Kernel, scalars: list[float]
) -> tuple:
    """One scalar-interpreter evaluation of the kernel's subprogram."""
    mrt = interp.module(kernel.module)
    resolved = interp._lookup_proc(mrt, kernel.function, frozenset())
    if resolved is None:  # pragma: no cover - kernel came from this interp
        raise KernelError(
            f"no function {kernel.function!r} in module {kernel.module!r}"
        )
    target_mrt, sub = resolved
    if sub.is_function:
        return (
            float(interp.call(kernel.module, kernel.function, scalars)),
        )
    # elemental subroutine: bind scratch variables so intent(out)/inout
    # copy-back lands somewhere we can read it back from
    scratch = Frame(target_mrt, sub, Scope("<kernel-verify>"), None)
    decls = _declared_entities(sub)
    values = dict(zip(kernel.arg_names, scalars))
    for name in sub.args:
        base_type, _ = decls.get(name, ("real", None))
        init = {"real": 0.0, "integer": 0, "logical": False}[base_type]
        scratch.scope.define(name, values.get(name, init))
    interp._call_subprogram(
        target_mrt,
        sub,
        [VarRef(name) for name in sub.args],
        {},
        scratch,
        want_result=False,
    )
    return tuple(float(scratch.scope.get(name)) for name in kernel.out_names)


def verify_kernel(
    kernel: Kernel,
    source=None,
    samples: Optional[dict[str, np.ndarray]] = None,
    ranges: Optional[tuple[tuple[str, float, float], ...]] = None,
    n_samples: int = 256,
    seed: int = 20190624,
    tol: float = 1.0e-12,
) -> KernelReport:
    """Measure a kernel's normalized-RMS deviation from the scalar
    interpreter over a sample grid.

    ``samples`` maps argument names to equal-length 1-D arrays; without it,
    ``ranges`` (``(name, lo, hi)`` triples, e.g. from a
    :class:`KernelTarget`) drive a deterministic uniform draw.  Subroutine
    kernels compare every returned output against the interpreter's
    copy-back values; the reported ``nrms`` is the worst output's.  The
    kernel is conformant when ``nrms <= tol`` — the default bound of
    ``1e-12`` admits only reassociation-level deviations, and in practice
    the extracted kernels reproduce the interpreter bit-for-bit.
    """
    if isinstance(source, Interpreter):
        interp = source
    else:
        if source is None or isinstance(source, ModelConfig):
            source = build_model_source(source)
        interp = Interpreter(source.parse(), collect_coverage=False)
    if samples is None:
        if ranges is None:
            raise ValueError("verify_kernel needs samples or ranges")
        rng = np.random.default_rng(seed)
        samples = {
            name: rng.uniform(lo, hi, size=n_samples)
            for name, lo, hi in ranges
        }
    columns = [np.asarray(samples[name], float) for name in kernel.arg_names]
    count = len(columns[0]) if columns else 0
    raw = kernel.fn(*columns)
    got = raw if kernel.is_subroutine else (raw,)
    got = tuple(
        np.broadcast_to(np.asarray(g, dtype=np.float64), (count,))
        for g in got
    )
    n_outputs = len(got)
    want = np.empty((n_outputs, count), dtype=np.float64)
    for i in range(count):
        refs = _reference_outputs(
            interp, kernel, [float(col[i]) for col in columns]
        )
        for j, ref in enumerate(refs):
            want[j, i] = ref
    worst = max(nrms(g, w) for g, w in zip(got, want)) if count else 0.0
    return KernelReport(
        kernel=kernel, n_samples=count, nrms=worst, tol=tol
    )


def extract_default_kernels(
    source=None, tol: float = 1.0e-12
) -> list[KernelReport]:
    """Extract and verify every :data:`DEFAULT_KERNEL_TARGETS` entry
    against one shared build; non-conformant kernels are still returned
    (``report.conformant`` is False) so callers decide the gate."""
    if source is None or isinstance(source, ModelConfig):
        source = build_model_source(source)
    interp = Interpreter(source.parse(), collect_coverage=False)
    reports = []
    for target in DEFAULT_KERNEL_TARGETS:
        kernel = extract_kernel(interp, target.module, target.function)
        reports.append(
            verify_kernel(kernel, interp, ranges=target.ranges, tol=tol)
        )
    return reports

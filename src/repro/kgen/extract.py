"""AST-to-numpy kernel extraction.

The extractor walks a subprogram's cached AST (the same parse the
interpreter and the metagraph builder share) and emits the source of a
standalone numpy function: straight-line assignments become array
expressions, ``if``/``elseif``/``else`` blocks become sequential
``np.where`` merges under accumulated branch masks, references to
``use``-associated constants are resolved through a scalar interpreter's
module scopes and baked in as literals, and calls to other extractable
functions become calls to recursively extracted kernels.

Everything outside that subset — loops, subroutine calls, array
subscripts, I/O — raises :class:`KernelError`: a kernel either fully
vectorizes or is not generated at all.  Generated kernels are *candidates*
until :func:`verify_kernel` has measured their normalized RMS deviation
from the scalar interpreter over a sample grid and found it within the
conformance bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..fortran.ast_nodes import (
    Apply,
    Assignment,
    BinOp,
    Declaration,
    Expr,
    IfBlock,
    LogicalLit,
    NumberLit,
    Stmt,
    Subprogram,
    UnaryOp,
    VarRef,
)
from ..model.builder import ModelConfig, ModelSource, build_model_source
from ..runtime.interpreter import Interpreter

__all__ = [
    "DEFAULT_KERNEL_TARGETS",
    "Kernel",
    "KernelError",
    "KernelReport",
    "KernelTarget",
    "extract_default_kernels",
    "extract_kernel",
    "nrms",
    "verify_kernel",
]


class KernelError(ValueError):
    """The subprogram uses a construct the kernel extractor cannot express."""


#: Fortran intrinsic -> numpy callable name in the kernel namespace
_INTRINSIC_MAP = {
    "abs": "np.abs",
    "acos": "np.arccos",
    "asin": "np.arcsin",
    "atan": "np.arctan",
    "atan2": "np.arctan2",
    "cos": "np.cos",
    "cosh": "np.cosh",
    "exp": "np.exp",
    "log": "np.log",
    "log10": "np.log10",
    "mod": "np.fmod",
    "sin": "np.sin",
    "sinh": "np.sinh",
    "sqrt": "np.sqrt",
    "tan": "np.tan",
    "tanh": "np.tanh",
}

#: n-ary fold intrinsics
_FOLD_MAP = {"max": "np.maximum", "min": "np.minimum"}

_BINOPS = {
    "+": "+",
    "-": "-",
    "*": "*",
    "/": "/",
    "**": "**",
    "==": "==",
    "/=": "!=",
    "<": "<",
    "<=": "<=",
    ">": ">",
    ">=": ">=",
}

_SCALAR_INITS = {"real": "0.0", "integer": "0", "logical": "False"}


@dataclass
class Kernel:
    """One generated, executable numpy kernel."""

    module: str
    function: str
    arg_names: list[str]
    source: str
    fn: Callable

    def __call__(self, *args, **kwargs):
        return self.fn(*args, **kwargs)


@dataclass
class KernelReport:
    """Conformance measurement of a kernel against the scalar interpreter."""

    kernel: Kernel
    n_samples: int
    nrms: float
    tol: float

    @property
    def conformant(self) -> bool:
        return self.nrms <= self.tol


@dataclass(frozen=True)
class KernelTarget:
    """A named extraction target with plausible per-argument sample ranges."""

    module: str
    function: str
    ranges: tuple[tuple[str, float, float], ...]


#: the model's hot elemental functions (microphysics / radiation inner loops)
DEFAULT_KERNEL_TARGETS: tuple[KernelTarget, ...] = (
    KernelTarget(
        "wv_saturation", "goffgratch_svp", (("t", 180.0, 330.0),)
    ),
    KernelTarget("wv_saturation", "svp_ice", (("t", 180.0, 280.0),)),
    KernelTarget(
        "wv_saturation",
        "qsat_water",
        (("t", 180.0, 330.0), ("p", 5.0e3, 1.1e5)),
    ),
    KernelTarget("radsw", "gravity_norm", (("pdel", 0.5, 1.0e4),)),
)


def nrms(a: np.ndarray, b: np.ndarray) -> float:
    """Normalized RMS deviation of ``a`` from the reference ``b``:
    ``sqrt(mean((a-b)**2)) / max(|b|)`` (denominator 1 when ``b`` is all
    zero), the conformance metric kernels are gated on."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    scale = float(np.max(np.abs(b))) if b.size else 0.0
    if scale == 0.0:
        scale = 1.0
    return float(np.sqrt(np.mean(np.square(a - b)))) / scale


class _Extractor:
    """Translates one subprogram AST into numpy function source."""

    def __init__(self, interp: Interpreter, module: str):
        self.interp = interp
        self.mrt = interp.module(module)
        self.module = module
        self.deps: dict[str, "Kernel"] = {}
        self.locals: set[str] = set()
        self.lines: list[str] = []
        self._mask_n = 0

    # ------------------------------------------------------- expressions
    def expr(self, node: Expr) -> str:
        if isinstance(node, NumberLit):
            if node.is_integer:
                return repr(int(node.value))
            return repr(float(node.value))
        if isinstance(node, LogicalLit):
            return "True" if node.value else "False"
        if isinstance(node, VarRef):
            if node.name in self.locals:
                return node.name
            return self._constant(node.name)
        if isinstance(node, UnaryOp):
            if node.op == "-":
                return f"(-{self.expr(node.operand)})"
            if node.op == "+":
                return self.expr(node.operand)
            if node.op == ".not.":
                return f"np.logical_not({self.expr(node.operand)})"
            raise KernelError(f"unsupported unary operator {node.op!r}")
        if isinstance(node, BinOp):
            if node.op == ".and.":
                return f"({self.expr(node.left)}) & ({self.expr(node.right)})"
            if node.op == ".or.":
                return f"({self.expr(node.left)}) | ({self.expr(node.right)})"
            op = _BINOPS.get(node.op)
            if op is None:
                raise KernelError(
                    f"unsupported binary operator {node.op!r}"
                )
            return f"({self.expr(node.left)} {op} {self.expr(node.right)})"
        if isinstance(node, Apply):
            return self._apply(node)
        raise KernelError(
            f"unsupported expression node {type(node).__name__}"
        )

    def _apply(self, node: Apply) -> str:
        if node.keywords:
            raise KernelError(
                f"keyword arguments in call to {node.name!r} are not "
                "supported"
            )
        args = [self.expr(a) for a in node.args]
        lowered = node.name.lower()
        fold = _FOLD_MAP.get(lowered)
        if fold is not None:
            if not args:
                raise KernelError(f"{lowered}() needs arguments")
            out = args[0]
            for a in args[1:]:
                out = f"{fold}({out}, {a})"
            return out
        mapped = _INTRINSIC_MAP.get(lowered)
        if mapped is not None:
            return f"{mapped}({', '.join(args)})"
        resolved = self.interp._lookup_proc(self.mrt, node.name, frozenset())
        if resolved is not None:
            target_mrt, sub = resolved
            dep = self.deps.get(sub.name)
            if dep is None:
                dep = extract_kernel(
                    self.interp, target_mrt.node.name, sub.name,
                    _deps=self.deps,
                )
                self.deps[sub.name] = dep
            return f"_k_{sub.name}({', '.join(args)})"
        raise KernelError(
            f"cannot extract reference {node.name!r} (array subscript, "
            "unknown function, or unsupported intrinsic)"
        )

    def _constant(self, name: str) -> str:
        """A module-level or use-associated constant, baked as a literal."""
        scope = None
        if name in self.mrt.scope:
            scope = self.mrt.scope
            rname = name
        else:
            found = self.interp._resolve_use_var(self.mrt, name, frozenset())
            if found is not None:
                scope, rname = found
        if scope is None:
            raise KernelError(
                f"unresolvable name {name!r} in {self.module!r}"
            )
        value = scope.get(rname)
        if isinstance(value, (bool, np.bool_)):
            return "True" if value else "False"
        if isinstance(value, (int, np.integer)):
            return repr(int(value))
        if isinstance(value, (float, np.floating)):
            return repr(float(value))
        raise KernelError(
            f"constant {name!r} is not a scalar (got "
            f"{type(value).__name__})"
        )

    # -------------------------------------------------------- statements
    def emit(self, stmts: list[Stmt], mask: Optional[str], indent: str):
        for stmt in stmts:
            if isinstance(stmt, Assignment):
                self._emit_assignment(stmt, mask, indent)
            elif isinstance(stmt, IfBlock):
                self._emit_if(stmt, mask, indent)
            else:
                raise KernelError(
                    f"unsupported statement {type(stmt).__name__} at "
                    f"{stmt.location}"
                )

    def _emit_assignment(
        self, stmt: Assignment, mask: Optional[str], indent: str
    ):
        if not isinstance(stmt.target, VarRef):
            raise KernelError(
                f"only scalar assignment targets are supported (at "
                f"{stmt.location})"
            )
        name = stmt.target.name
        if name not in self.locals:
            raise KernelError(
                f"assignment to non-local {name!r} at {stmt.location}"
            )
        value = self.expr(stmt.value)
        if mask is None:
            self.lines.append(f"{indent}{name} = {value}")
        else:
            self.lines.append(
                f"{indent}{name} = np.where({mask}, {value}, {name})"
            )

    def _emit_if(self, stmt: IfBlock, mask: Optional[str], indent: str):
        remaining: Optional[str] = mask
        first = True
        for cond, body in stmt.branches:
            if cond is None:
                # else branch: everything still remaining
                branch = remaining if remaining is not None else "True"
                if branch == "True":
                    self.emit(body, None, indent)
                else:
                    self.emit(body, branch, indent)
                return
            n = self._mask_n
            self._mask_n += 1
            cond_src = self.expr(cond)
            if first and remaining is None:
                self.lines.append(f"{indent}_m{n} = np.asarray({cond_src})")
            else:
                self.lines.append(
                    f"{indent}_m{n} = np.asarray({cond_src}) & {remaining}"
                    if remaining is not None
                    else f"{indent}_m{n} = np.asarray({cond_src})"
                )
            self.emit(body, f"_m{n}", indent)
            prev = remaining
            if prev is None:
                remaining = f"~_m{n}"
            else:
                remaining = f"(~_m{n} & {prev})"
            first = False


def _declared_locals(sub: Subprogram) -> dict[str, str]:
    """name -> base type of every declared entity (args included)."""
    out: dict[str, str] = {}
    for decl in sub.declarations:
        if not isinstance(decl, Declaration):
            continue
        for entity in decl.entities:
            if entity.dims:
                raise KernelError(
                    f"array local {entity.name!r} is not supported"
                )
            out[entity.name] = decl.base_type
    return out


def extract_kernel(
    source,
    module: str,
    function: str,
    _deps: Optional[dict] = None,
) -> Kernel:
    """Extract ``module::function`` into a standalone numpy kernel.

    ``source`` is a :class:`~repro.model.builder.ModelSource`, a
    :class:`~repro.model.ModelConfig`, ``None`` (the control build) — or an
    already-constructed scalar :class:`Interpreter` when extracting several
    kernels against one build.  Raises :class:`KernelError` when the
    function falls outside the vectorizable subset.
    """
    if isinstance(source, Interpreter):
        interp = source
    else:
        if source is None or isinstance(source, ModelConfig):
            source = build_model_source(source)
        interp = Interpreter(source.parse(), collect_coverage=False)
    resolved = interp._lookup_proc(
        interp.module(module), function, frozenset()
    )
    if resolved is None:
        raise KernelError(f"no function {function!r} in module {module!r}")
    target_mrt, sub = resolved
    if not sub.is_function:
        raise KernelError(f"{function!r} is a subroutine, not a function")
    # re-anchor on the defining module (function may be use-associated)
    ex = _Extractor(interp, target_mrt.node.name)
    if _deps is not None:
        ex.deps = _deps

    decls = _declared_locals(sub)
    ex.locals = set(sub.args) | set(decls) | {sub.result}
    header = f"def _kernel({', '.join(sub.args)}):"
    ex.lines.append(header)
    for name, base_type in decls.items():
        if name in sub.args:
            continue
        init = _SCALAR_INITS.get(base_type)
        if init is None:
            raise KernelError(
                f"local {name!r} has unsupported type {base_type!r}"
            )
        ex.lines.append(f"    {name} = {init}")
    if sub.result not in decls and sub.result not in sub.args:
        ex.lines.append(f"    {sub.result} = 0.0")
    ex.emit(sub.body, None, "    ")
    ex.lines.append(f"    return {sub.result}")
    text = "\n".join(ex.lines) + "\n"

    namespace: dict = {"np": np}
    for dep_name, dep in ex.deps.items():
        namespace[f"_k_{dep_name}"] = dep.fn
    exec(compile(text, f"<kernel {module}::{function}>", "exec"), namespace)
    return Kernel(
        module=target_mrt.node.name,
        function=function,
        arg_names=list(sub.args),
        source=text,
        fn=namespace["_kernel"],
    )


def verify_kernel(
    kernel: Kernel,
    source=None,
    samples: Optional[dict[str, np.ndarray]] = None,
    ranges: Optional[tuple[tuple[str, float, float], ...]] = None,
    n_samples: int = 256,
    seed: int = 20190624,
    tol: float = 1.0e-12,
) -> KernelReport:
    """Measure a kernel's normalized-RMS deviation from the scalar
    interpreter over a sample grid.

    ``samples`` maps argument names to equal-length 1-D arrays; without it,
    ``ranges`` (``(name, lo, hi)`` triples, e.g. from a
    :class:`KernelTarget`) drive a deterministic uniform draw.  The kernel
    is conformant when ``nrms <= tol`` — the default bound of ``1e-12``
    admits only reassociation-level deviations, and in practice the
    extracted kernels reproduce the interpreter bit-for-bit.
    """
    if isinstance(source, Interpreter):
        interp = source
    else:
        if source is None or isinstance(source, ModelConfig):
            source = build_model_source(source)
        interp = Interpreter(source.parse(), collect_coverage=False)
    if samples is None:
        if ranges is None:
            raise ValueError("verify_kernel needs samples or ranges")
        rng = np.random.default_rng(seed)
        samples = {
            name: rng.uniform(lo, hi, size=n_samples)
            for name, lo, hi in ranges
        }
    columns = [np.asarray(samples[name], float) for name in kernel.arg_names]
    count = len(columns[0]) if columns else 0
    got = np.asarray(kernel.fn(*columns), dtype=np.float64)
    want = np.empty(count, dtype=np.float64)
    for i in range(count):
        want[i] = float(
            interp.call(
                kernel.module,
                kernel.function,
                [float(col[i]) for col in columns],
            )
        )
    return KernelReport(
        kernel=kernel, n_samples=count, nrms=nrms(got, want), tol=tol
    )


def extract_default_kernels(
    source=None, tol: float = 1.0e-12
) -> list[KernelReport]:
    """Extract and verify every :data:`DEFAULT_KERNEL_TARGETS` entry
    against one shared build; non-conformant kernels are still returned
    (``report.conformant`` is False) so callers decide the gate."""
    if source is None or isinstance(source, ModelConfig):
        source = build_model_source(source)
    interp = Interpreter(source.parse(), collect_coverage=False)
    reports = []
    for target in DEFAULT_KERNEL_TARGETS:
        kernel = extract_kernel(interp, target.module, target.function)
        reports.append(
            verify_kernel(kernel, interp, ranges=target.ranges, tol=tol)
        )
    return reports

"""Kernel generation: hot inner loops extracted into vectorized numpy.

The scalar interpreter spends most of its time in a handful of elemental
functions called from the microphysics and radiation inner loops.  This
package lifts those subprograms out of the *cached* ASTs — the same parse
the interpreter executes — and generates standalone numpy kernels:
straight-line math becomes array expressions, branches become sequential
``np.where`` merges, ``use``-associated constants are baked in as
literals, and calls between extractable functions compose.

A generated kernel is only trusted after :func:`verify_kernel` measures
its normalized RMS deviation (:func:`nrms`) from the scalar interpreter
over a sampled input grid and finds it within the conformance bound
(default ``1e-12``; the shipped targets reproduce the interpreter
bit-for-bit, nrms = 0).  Anything outside the vectorizable subset raises
:class:`KernelError` at extraction time instead of generating a kernel
that silently disagrees.

>>> from repro.kgen import extract_kernel, verify_kernel
>>> k = extract_kernel(None, "wv_saturation", "qsat_water")
>>> report = verify_kernel(k, ranges=(("t", 200.0, 320.0), ("p", 1e4, 1e5)))
>>> report.conformant
True
"""

from .extract import (
    DEFAULT_KERNEL_TARGETS,
    Kernel,
    KernelAccounting,
    KernelError,
    KernelReport,
    KernelTarget,
    extract_default_kernels,
    extract_kernel,
    nrms,
    verify_kernel,
)
from .registry import (
    KernelRegistry,
    build_kernel_registry,
    kernel_registry_for,
)

__all__ = [
    "DEFAULT_KERNEL_TARGETS",
    "Kernel",
    "KernelAccounting",
    "KernelError",
    "KernelRegistry",
    "KernelReport",
    "KernelTarget",
    "build_kernel_registry",
    "extract_default_kernels",
    "extract_kernel",
    "kernel_registry_for",
    "nrms",
    "verify_kernel",
]

"""Synthetic CESM/CAM-like climate model.

The paper's pipeline operates on the CESM Fortran source tree.  This package
provides the stand-in: a small but structurally faithful atmosphere model
written in the Fortran subset understood by :mod:`repro.fortran`, organised
into the same kinds of modules CAM has (a dynamical core, a tightly-coupled
physics "core" — saturation vapor pressure, cloud fraction, macro/microphysics,
radiation, vertical diffusion — surface components, infrastructure modules,
and modules that are not compiled or not executed).

The source is generated as text (see :mod:`repro.model.modules`) so that the
entire paper pipeline — parsing, digraph construction, slicing, community
detection, centrality ranking, runtime sampling — runs on real Fortran input,
and the experiments inject bugs by patching that text
(:mod:`repro.model.patches`).
"""

from .builder import ModelConfig, ModelSource, build_model_source
from .patches import (
    PatchError,
    SourcePatch,
    UnknownPatchError,
    get_patch,
    list_patches,
)
from .registry import (
    COMPSET_FC5,
    CompsetSpec,
    ModuleSpec,
    OUTPUT_FIELDS,
    OUTPUT_FIELD_NAMES,
    OutputField,
    iter_module_specs,
    iter_output_fields,
)

__all__ = [
    "COMPSET_FC5",
    "CompsetSpec",
    "ModelConfig",
    "ModelSource",
    "ModuleSpec",
    "OUTPUT_FIELDS",
    "OUTPUT_FIELD_NAMES",
    "OutputField",
    "PatchError",
    "SourcePatch",
    "UnknownPatchError",
    "build_model_source",
    "get_patch",
    "iter_module_specs",
    "iter_output_fields",
    "list_patches",
]

"""Derived-type container modules: the physics state/tendency structures and
the atmosphere/surface exchange types, plus the module that owns the single
global instances the driver passes around (CAM keeps these in chunked arrays;
one chunk suffices here).
"""

PHYSICS_TYPES = """
module physics_types
  use shr_kind_mod, only: r8 => shr_kind_r8
  use ppgrid,       only: pcols, pver, pverp
  use physconst,    only: cpair, gravit
  implicit none
  private
  public :: physics_state, physics_tend, physics_ptend
  public :: physics_update, physics_ptend_init, physics_tend_init

  type physics_state
    integer  :: ncol
    real(r8) :: ps(pcols)
    real(r8) :: phis(pcols)
    real(r8) :: t(pcols, pver)
    real(r8) :: u(pcols, pver)
    real(r8) :: v(pcols, pver)
    real(r8) :: q(pcols, pver)
    real(r8) :: qc(pcols, pver)
    real(r8) :: qi(pcols, pver)
    real(r8) :: nc(pcols, pver)
    real(r8) :: ni(pcols, pver)
    real(r8) :: omega(pcols, pver)
    real(r8) :: pmid(pcols, pver)
    real(r8) :: pdel(pcols, pver)
    real(r8) :: pint(pcols, pverp)
    real(r8) :: lnpmid(pcols, pver)
    real(r8) :: zm(pcols, pver)
    real(r8) :: zi(pcols, pverp)
    real(r8) :: exner(pcols, pver)
  end type physics_state

  type physics_tend
    real(r8) :: dtdt(pcols, pver)
    real(r8) :: dudt(pcols, pver)
    real(r8) :: dvdt(pcols, pver)
    real(r8) :: flx_net(pcols)
  end type physics_tend

  type physics_ptend
    real(r8) :: s(pcols, pver)
    real(r8) :: q(pcols, pver)
    real(r8) :: qc(pcols, pver)
    real(r8) :: qi(pcols, pver)
    real(r8) :: nc(pcols, pver)
    real(r8) :: ni(pcols, pver)
    real(r8) :: u(pcols, pver)
    real(r8) :: v(pcols, pver)
  end type physics_ptend

contains

  subroutine physics_tend_init(tend)
    type(physics_tend), intent(inout) :: tend
    tend%dtdt = 0.0_r8
    tend%dudt = 0.0_r8
    tend%dvdt = 0.0_r8
    tend%flx_net = 0.0_r8
  end subroutine physics_tend_init

  subroutine physics_ptend_init(ptend)
    type(physics_ptend), intent(inout) :: ptend
    ptend%s = 0.0_r8
    ptend%q = 0.0_r8
    ptend%qc = 0.0_r8
    ptend%qi = 0.0_r8
    ptend%nc = 0.0_r8
    ptend%ni = 0.0_r8
    ptend%u = 0.0_r8
    ptend%v = 0.0_r8
  end subroutine physics_ptend_init

  subroutine physics_update(state, ptend, dt)
    type(physics_state), intent(inout) :: state
    type(physics_ptend), intent(inout) :: ptend
    real(r8), intent(in) :: dt
    state%t = state%t + dt * ptend%s / cpair
    state%q = max(1.0e-12_r8, state%q + dt * ptend%q)
    state%qc = max(0.0_r8, state%qc + dt * ptend%qc)
    state%qi = max(0.0_r8, state%qi + dt * ptend%qi)
    state%nc = max(0.0_r8, state%nc + dt * ptend%nc)
    state%ni = max(0.0_r8, state%ni + dt * ptend%ni)
    state%u = state%u + dt * ptend%u
    state%v = state%v + dt * ptend%v
    call physics_ptend_init(ptend)
  end subroutine physics_update

end module physics_types
"""

CAMSRFEXCH = """
module camsrfexch
  use shr_kind_mod, only: r8 => shr_kind_r8
  use ppgrid,       only: pcols
  implicit none
  private
  public :: cam_in_t, cam_out_t, hub2atm_alloc, atm2hub_alloc

  type cam_in_t
    real(r8) :: ts(pcols)
    real(r8) :: sst(pcols)
    real(r8) :: shf(pcols)
    real(r8) :: lhf(pcols)
    real(r8) :: wsx(pcols)
    real(r8) :: wsy(pcols)
    real(r8) :: snowhland(pcols)
    real(r8) :: icefrac(pcols)
    real(r8) :: u10(pcols)
    real(r8) :: tref(pcols)
  end type cam_in_t

  type cam_out_t
    real(r8) :: flwds(pcols)
    real(r8) :: netsw(pcols)
    real(r8) :: precl(pcols)
    real(r8) :: precsl(pcols)
    real(r8) :: tbot(pcols)
    real(r8) :: ubot(pcols)
    real(r8) :: vbot(pcols)
    real(r8) :: qbot(pcols)
    real(r8) :: pbot(pcols)
    real(r8) :: zbot(pcols)
  end type cam_out_t

contains

  subroutine hub2atm_alloc(cam_in)
    type(cam_in_t), intent(inout) :: cam_in
    cam_in%ts = 288.0_r8
    cam_in%sst = 290.0_r8
    cam_in%shf = 0.0_r8
    cam_in%lhf = 0.0_r8
    cam_in%wsx = 0.0_r8
    cam_in%wsy = 0.0_r8
    cam_in%snowhland = 0.0_r8
    cam_in%icefrac = 0.0_r8
    cam_in%u10 = 0.0_r8
    cam_in%tref = 288.0_r8
  end subroutine hub2atm_alloc

  subroutine atm2hub_alloc(cam_out)
    type(cam_out_t), intent(inout) :: cam_out
    cam_out%flwds = 0.0_r8
    cam_out%netsw = 0.0_r8
    cam_out%precl = 0.0_r8
    cam_out%precsl = 0.0_r8
    cam_out%tbot = 288.0_r8
    cam_out%ubot = 0.0_r8
    cam_out%vbot = 0.0_r8
    cam_out%qbot = 0.0_r8
    cam_out%pbot = 100000.0_r8
    cam_out%zbot = 50.0_r8
  end subroutine atm2hub_alloc

end module camsrfexch
"""

CAMSTATE = """
module camstate
  use shr_kind_mod,  only: r8 => shr_kind_r8
  use physics_types, only: physics_state, physics_tend, physics_ptend
  use camsrfexch,    only: cam_in_t, cam_out_t
  implicit none
  public
  type(physics_state) :: state
  type(physics_tend)  :: tend
  type(physics_ptend) :: ptend
  type(cam_in_t)      :: cam_in
  type(cam_out_t)     :: cam_out
end module camstate
"""

SOURCES: dict[str, str] = {
    "physics_types.F90": PHYSICS_TYPES,
    "camsrfexch.F90": CAMSRFEXCH,
    "camstate.F90": CAMSTATE,
}

"""Fortran source text of the synthetic CAM-like model, one Python module per
model subsystem.  Each Python module exposes a ``SOURCES`` mapping from
Fortran file name to source text; :mod:`repro.model.registry` assembles them
into the full source tree.
"""

from . import (
    convection,
    driver,
    dynamics,
    infrastructure,
    microphysics,
    physics_wv,
    radiation,
    surface,
    types as type_modules,
    unused,
    vertical_diffusion,
)

#: All source providers in build order (infrastructure first).
SOURCE_PROVIDERS = (
    infrastructure,
    type_modules,
    dynamics,
    physics_wv,
    microphysics,
    convection,
    radiation,
    vertical_diffusion,
    surface,
    driver,
    unused,
)


def all_sources() -> dict[str, str]:
    """Merge every provider's ``SOURCES`` mapping into one dict."""
    merged: dict[str, str] = {}
    for provider in SOURCE_PROVIDERS:
        for name, text in provider.SOURCES.items():
            if name in merged:
                raise ValueError(f"duplicate Fortran file name {name!r}")
            merged[name] = text
    return merged


__all__ = ["SOURCE_PROVIDERS", "all_sources"]

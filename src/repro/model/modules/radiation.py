"""Radiation modules: longwave (produces FLDS/``flwds``, FLNS/``flns`` and the
longwave heating rate QRL/``qrl``), shortwave (FSDS/``fsds``, FSNS and the
shortwave heating rate QRS/``qrs``), and the driver that applies the heating
to the physics tendencies.  These are the modules the RAND-MT experiment's
affected output variables (flds, flns, qrl) are computed in.
"""

RADLW = """
module radlw
  use shr_kind_mod,   only: r8 => shr_kind_r8
  use ppgrid,         only: pcols, pver
  use physconst,      only: stebol, cpair, gravit
  use physics_types,  only: physics_state
  use cam_history,    only: outfld, outfld2d
  implicit none
  private
  public :: radlw_run
  real(r8), parameter :: emis_clear = 0.72_r8
  real(r8), parameter :: emis_cloud_factor = 0.25_r8
  real(r8), parameter :: lw_cool_coef = 2.0e-7_r8
contains
  subroutine radlw_run(state, cld, ts, flwds, flns, qrl, ncol)
    type(physics_state), intent(in) :: state
    real(r8), intent(in) :: cld(pcols, pver)
    real(r8), intent(in) :: ts(pcols)
    integer, intent(in) :: ncol
    real(r8), intent(out) :: flwds(pcols)
    real(r8), intent(out) :: flns(pcols)
    real(r8), intent(out) :: qrl(pcols, pver)
    integer :: i, k
    real(r8) :: cldtot_col, emis_eff, tmean, flux_up, cooling

    do i = 1, ncol
      cldtot_col = 0.0_r8
      tmean = 0.0_r8
      do k = 1, pver
        cldtot_col = max(cldtot_col, cld(i,k))
        tmean = tmean + state%t(i,k) * state%pdel(i,k)
      end do
      tmean = tmean / (state%pint(i,pver+1) - state%pint(i,1))
      emis_eff = emis_clear + emis_cloud_factor * cldtot_col
      flwds(i) = emis_eff * stebol * tmean ** 4
      flux_up = stebol * ts(i) ** 4
      flns(i) = flux_up - flwds(i)
    end do

    do k = 1, pver
      do i = 1, ncol
        cooling = lw_cool_coef * (state%t(i,k) - 180.0_r8) * (1.0_r8 - 0.4_r8 * cld(i,k))
        qrl(i,k) = -cooling * cpair
      end do
    end do

    call outfld('FLDS', flwds)
    call outfld('FLNS', flns)
    call outfld2d('QRL', qrl)
  end subroutine radlw_run
end module radlw
"""

RADSW = """
module radsw
  use shr_kind_mod,   only: r8 => shr_kind_r8
  use ppgrid,         only: pcols, pver
  use physconst,      only: cpair, pi
  use phys_grid,      only: clat
  use physics_types,  only: physics_state
  use cam_history,    only: outfld, outfld2d
  implicit none
  private
  public :: radsw_run
  real(r8), parameter :: solar_constant = 1361.0_r8
  real(r8), parameter :: cloud_albedo = 0.45_r8
  real(r8), parameter :: surface_albedo = 0.15_r8
contains
  subroutine radsw_run(state, cld, fsds, fsns, qrs, sols, ncol)
    type(physics_state), intent(in) :: state
    real(r8), intent(in) :: cld(pcols, pver)
    integer, intent(in) :: ncol
    real(r8), intent(out) :: fsds(pcols)
    real(r8), intent(out) :: fsns(pcols)
    real(r8), intent(out) :: qrs(pcols, pver)
    real(r8), intent(out) :: sols(pcols)
    integer :: i, k
    real(r8) :: coszrs, cldtot_col, transmission, absorbed

    do i = 1, ncol
      coszrs = max(0.05_r8, cos(clat(i)) * 0.7_r8)
      cldtot_col = 0.0_r8
      do k = 1, pver
        cldtot_col = max(cldtot_col, cld(i,k))
      end do
      transmission = 1.0_r8 - cloud_albedo * cldtot_col
      sols(i) = solar_constant * coszrs
      fsds(i) = sols(i) * transmission * 0.75_r8
      fsns(i) = fsds(i) * (1.0_r8 - surface_albedo)
    end do

    do k = 1, pver
      do i = 1, ncol
        absorbed = 0.02_r8 * fsds(i) * state%q(i,k) / 0.01_r8 * (1.0_r8 + 0.2_r8 * cld(i,k))
        qrs(i,k) = absorbed * gravity_norm(state%pdel(i,k))
      end do
    end do

    call outfld('FSDS', fsds)
    call outfld('FSNS', fsns)
    call outfld2d('QRS', qrs)
  end subroutine radsw_run

  elemental function gravity_norm(pdel) result(norm)
    real(r8), intent(in) :: pdel
    real(r8) :: norm
    norm = 9.80616_r8 / max(pdel, 1.0_r8)
  end function gravity_norm
end module radsw
"""

RADIATION = """
module radiation
  use shr_kind_mod,   only: r8 => shr_kind_r8
  use ppgrid,         only: pcols, pver
  use physconst,      only: cpair
  use physics_types,  only: physics_state, physics_ptend
  use physics_buffer, only: pbuf_cld
  use radlw,          only: radlw_run
  use radsw,          only: radsw_run
  implicit none
  private
  public :: radiation_tend
contains
  subroutine radiation_tend(state, ptend, ts, flwds, flns, fsds, fsns, qrl, qrs, ncol)
    type(physics_state), intent(in) :: state
    type(physics_ptend), intent(inout) :: ptend
    real(r8), intent(in) :: ts(pcols)
    integer, intent(in) :: ncol
    real(r8), intent(out) :: flwds(pcols)
    real(r8), intent(out) :: flns(pcols)
    real(r8), intent(out) :: fsds(pcols)
    real(r8), intent(out) :: fsns(pcols)
    real(r8), intent(out) :: qrl(pcols, pver)
    real(r8), intent(out) :: qrs(pcols, pver)
    real(r8) :: sols(pcols)
    integer :: i, k

    call radlw_run(state, pbuf_cld, ts, flwds, flns, qrl, ncol)
    call radsw_run(state, pbuf_cld, fsds, fsns, qrs, sols, ncol)

    do k = 1, pver
      do i = 1, ncol
        ptend%s(i,k) = ptend%s(i,k) + qrl(i,k) + qrs(i,k)
      end do
    end do
  end subroutine radiation_tend
end module radiation
"""

SOURCES: dict[str, str] = {
    "radlw.F90": RADLW,
    "radsw.F90": RADSW,
    "radiation.F90": RADIATION,
}

"""Planetary-boundary-layer / vertical diffusion module.  Produces the
surface exchange quantities the AVX2 and RAND-MT experiments select
(TAUX/``wsx``, SHFLX/``shf``, TREFHT/``tref``, U10/``u10``) plus the TKE
profile stored in the physics buffer.
"""

VERTICAL_DIFFUSION = """
module vertical_diffusion
  use shr_kind_mod,   only: r8 => shr_kind_r8
  use ppgrid,         only: pcols, pver, pverp
  use physconst,      only: cpair, latvap, karman, gravit, rair, zvir
  use physics_types,  only: physics_state, physics_ptend
  use physics_buffer, only: pbuf_tke
  use camsrfexch,     only: cam_in_t
  use cam_history,    only: outfld
  implicit none
  private
  public :: vertical_diffusion_tend
  real(r8), parameter :: z0m = 0.05_r8
  real(r8), parameter :: zref = 10.0_r8
  real(r8), parameter :: diff_min = 0.1_r8
contains
  subroutine vertical_diffusion_tend(state, ptend, cam_in, ts, dt, ncol)
    type(physics_state), intent(in) :: state
    type(physics_ptend), intent(inout) :: ptend
    type(cam_in_t), intent(inout) :: cam_in
    real(r8), intent(in) :: ts(pcols)
    real(r8), intent(in) :: dt
    integer, intent(in) :: ncol
    integer :: i, k
    real(r8) :: wsx(pcols)
    real(r8) :: wsy(pcols)
    real(r8) :: shf(pcols)
    real(r8) :: lhf(pcols)
    real(r8) :: tref(pcols)
    real(r8) :: u10(pcols)
    real(r8) :: ustar, wind_bot, rhobot, drag, stability, kdiff
    real(r8) :: dtdz, dudz, dvdz, dqdz

    do i = 1, ncol
      wind_bot = sqrt(state%u(i,pver) ** 2 + state%v(i,pver) ** 2) + 1.0_r8
      rhobot = state%pmid(i,pver) / (rair * state%t(i,pver))
      drag = (karman / log(state%zm(i,pver) / z0m)) ** 2
      stability = 1.0_r8 + 0.2_r8 * (ts(i) - state%t(i,pver))
      stability = max(0.5_r8, min(2.0_r8, stability))
      ustar = sqrt(drag * stability) * wind_bot
      wsx(i) = -rhobot * drag * stability * wind_bot * state%u(i,pver)
      wsy(i) = -rhobot * drag * stability * wind_bot * state%v(i,pver)
      shf(i) = rhobot * cpair * drag * stability * wind_bot * (ts(i) - state%t(i,pver))
      lhf(i) = rhobot * latvap * drag * stability * wind_bot * max(0.0_r8, 0.015_r8 - state%q(i,pver)) * 0.3_r8
      tref(i) = state%t(i,pver) + (ts(i) - state%t(i,pver)) * (1.0_r8 - log(zref / z0m) / log(state%zm(i,pver) / z0m))
      u10(i) = wind_bot * log(zref / z0m) / log(state%zm(i,pver) / z0m)
      pbuf_tke(i,pverp) = max(0.01_r8, 3.9_r8 * ustar ** 2)
      cam_in%wsx(i) = wsx(i)
      cam_in%wsy(i) = wsy(i)
      cam_in%shf(i) = shf(i)
      cam_in%lhf(i) = lhf(i)
      cam_in%tref(i) = tref(i)
      cam_in%u10(i) = u10(i)
    end do

    do k = pver, 1, -1
      do i = 1, ncol
        pbuf_tke(i,k) = pbuf_tke(i,pverp) * exp(-(pverp - k) * 0.7_r8)
      end do
    end do

    do k = 2, pver
      do i = 1, ncol
        kdiff = diff_min + 30.0_r8 * pbuf_tke(i,k)
        dtdz = (state%t(i,k-1) - state%t(i,k)) / max(state%zm(i,k-1) - state%zm(i,k), 1.0_r8)
        dudz = (state%u(i,k-1) - state%u(i,k)) / max(state%zm(i,k-1) - state%zm(i,k), 1.0_r8)
        dvdz = (state%v(i,k-1) - state%v(i,k)) / max(state%zm(i,k-1) - state%zm(i,k), 1.0_r8)
        dqdz = (state%q(i,k-1) - state%q(i,k)) / max(state%zm(i,k-1) - state%zm(i,k), 1.0_r8)
        ptend%s(i,k) = ptend%s(i,k) + cpair * kdiff * dtdz * 1.0e-4_r8
        ptend%u(i,k) = ptend%u(i,k) + kdiff * dudz * 1.0e-4_r8
        ptend%v(i,k) = ptend%v(i,k) + kdiff * dvdz * 1.0e-4_r8
        ptend%q(i,k) = ptend%q(i,k) + kdiff * dqdz * 1.0e-4_r8
      end do
    end do

    do i = 1, ncol
      ptend%s(i,pver) = ptend%s(i,pver) + gravit * shf(i) / state%pdel(i,pver)
      ptend%q(i,pver) = ptend%q(i,pver) + gravit * lhf(i) / (latvap * state%pdel(i,pver))
      ptend%u(i,pver) = ptend%u(i,pver) + gravit * wsx(i) / state%pdel(i,pver) * dt * 0.001_r8
      ptend%v(i,pver) = ptend%v(i,pver) + gravit * wsy(i) / state%pdel(i,pver) * dt * 0.001_r8
    end do

    call outfld('TAUX', wsx)
    call outfld('TAUY', wsy)
    call outfld('SHFLX', shf)
    call outfld('LHFLX', lhf)
    call outfld('TREFHT', tref)
    call outfld('U10', u10)
  end subroutine vertical_diffusion_tend
end module vertical_diffusion
"""

SOURCES: dict[str, str] = {
    "vertical_diffusion.F90": VERTICAL_DIFFUSION,
}

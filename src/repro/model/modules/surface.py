"""Surface component models: a simple land model (snow depth SNOWHLND /
``snowhland``, land surface temperature), a data ocean, a thermodynamic sea
ice fraction, and the surface merge that combines them into the ``ts`` the
atmosphere sees.  The land model is included because the paper notes the
method also located bugs in the land module; the AVX2 "unrestricted" subgraph
(Fig. 15) includes these nodes.
"""

LND_COMP = """
module lnd_comp
  use shr_kind_mod, only: r8 => shr_kind_r8
  use ppgrid,       only: pcols
  use physconst,    only: tmelt, latice, stebol
  use phys_grid,    only: landfrac
  use camsrfexch,   only: cam_in_t, cam_out_t
  use cam_history,  only: outfld
  implicit none
  private
  public :: lnd_init, lnd_run
  real(r8), parameter :: soil_heat_capacity = 2.0e6_r8
  real(r8), parameter :: snow_melt_rate = 2.0e-7_r8
  real(r8) :: ts_land(pcols)
  real(r8) :: snowhland(pcols)
  real(r8) :: soil_moisture(pcols)
contains
  subroutine lnd_init()
    integer :: i
    do i = 1, pcols
      ts_land(i) = 284.0_r8 + 6.0_r8 * landfrac(i)
      snowhland(i) = 0.05_r8 * max(0.0_r8, 1.0_r8 - landfrac(i) * 0.5_r8)
      soil_moisture(i) = 0.3_r8
    end do
  end subroutine lnd_init

  subroutine lnd_run(cam_out, cam_in, dt, ncol)
    type(cam_out_t), intent(in) :: cam_out
    type(cam_in_t), intent(inout) :: cam_in
    real(r8), intent(in) :: dt
    integer, intent(in) :: ncol
    integer :: i
    real(r8) :: net_energy, snowfall, melt, sublimation

    do i = 1, ncol
      net_energy = cam_out%flwds(i) + cam_out%netsw(i) - stebol * ts_land(i) ** 4 - cam_in%shf(i) - cam_in%lhf(i)
      ts_land(i) = ts_land(i) + dt * net_energy / soil_heat_capacity
      snowfall = cam_out%precsl(i) * dt
      melt = snow_melt_rate * dt * max(0.0_r8, ts_land(i) - tmelt)
      sublimation = 1.0e-10_r8 * dt * cam_in%lhf(i)
      snowhland(i) = max(0.0_r8, snowhland(i) + snowfall - melt - sublimation)
      soil_moisture(i) = max(0.05_r8, min(0.5_r8, soil_moisture(i) + cam_out%precl(i) * dt - 1.0e-9_r8 * dt))
      cam_in%snowhland(i) = snowhland(i) * landfrac(i)
      cam_in%ts(i) = ts_land(i)
    end do

    call outfld('SNOWHLND', cam_in%snowhland)
    call outfld('TSLAND', ts_land)
  end subroutine lnd_run
end module lnd_comp
"""

DOCN_COMP = """
module docn_comp
  use shr_kind_mod, only: r8 => shr_kind_r8
  use ppgrid,       only: pcols
  use phys_grid,    only: clat
  use camsrfexch,   only: cam_in_t
  implicit none
  private
  public :: docn_init, docn_run
  real(r8) :: sst_clim(pcols)
contains
  subroutine docn_init()
    integer :: i
    do i = 1, pcols
      sst_clim(i) = 271.0_r8 + 29.0_r8 * cos(clat(i)) ** 2
    end do
  end subroutine docn_init

  subroutine docn_run(cam_in, ncol)
    type(cam_in_t), intent(inout) :: cam_in
    integer, intent(in) :: ncol
    integer :: i
    do i = 1, ncol
      cam_in%sst(i) = sst_clim(i)
    end do
  end subroutine docn_run
end module docn_comp
"""

ICE_COMP = """
module ice_comp
  use shr_kind_mod, only: r8 => shr_kind_r8
  use ppgrid,       only: pcols
  use physconst,    only: tmelt
  use camsrfexch,   only: cam_in_t
  implicit none
  private
  public :: ice_run
contains
  subroutine ice_run(cam_in, ncol)
    type(cam_in_t), intent(inout) :: cam_in
    integer, intent(in) :: ncol
    integer :: i
    real(r8) :: freezing_deficit
    do i = 1, ncol
      freezing_deficit = max(0.0_r8, (tmelt - 1.8_r8) - cam_in%sst(i))
      cam_in%icefrac(i) = min(1.0_r8, freezing_deficit * 0.5_r8)
    end do
  end subroutine ice_run
end module ice_comp
"""

SURFACE_MERGE = """
module surface_merge
  use shr_kind_mod, only: r8 => shr_kind_r8
  use ppgrid,       only: pcols
  use phys_grid,    only: landfrac
  use physconst,    only: tmelt
  use camsrfexch,   only: cam_in_t
  use cam_history,  only: outfld
  implicit none
  private
  public :: merge_surface_state
contains
  subroutine merge_surface_state(cam_in, ts_merged, ncol)
    type(cam_in_t), intent(in) :: cam_in
    integer, intent(in) :: ncol
    real(r8), intent(out) :: ts_merged(pcols)
    integer :: i
    real(r8) :: ocnfrac, ts_ocean
    do i = 1, ncol
      ocnfrac = 1.0_r8 - landfrac(i)
      ts_ocean = cam_in%sst(i) * (1.0_r8 - cam_in%icefrac(i)) + (tmelt - 2.0_r8) * cam_in%icefrac(i)
      ts_merged(i) = landfrac(i) * cam_in%ts(i) + ocnfrac * ts_ocean
    end do
    call outfld('TS', ts_merged)
  end subroutine merge_surface_state
end module surface_merge
"""

SOURCES: dict[str, str] = {
    "lnd_comp.F90": LND_COMP,
    "docn_comp.F90": DOCN_COMP,
    "ice_comp.F90": ICE_COMP,
    "surface_merge.F90": SURFACE_MERGE,
}

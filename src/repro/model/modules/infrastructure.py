"""Infrastructure modules: kinds, grid constants, physical constants,
time manager, history buffer, PRNG shim, logging/abort utilities.

These mirror CESM's ``csm_share`` / CAM control modules.  Several of the
subprograms here are deliberately never called (``endrun_with_code``,
``log_verbose`` ...) so that the coverage-filtering step of the pipeline has
real work to do, exactly as the Intel codecov step does for CESM.
"""

SHR_KIND_MOD = """
module shr_kind_mod
  implicit none
  public
  integer, parameter :: shr_kind_r8 = 8
  integer, parameter :: shr_kind_r4 = 4
  integer, parameter :: shr_kind_i8 = 8
  integer, parameter :: shr_kind_in = 4
end module shr_kind_mod
"""

PPGRID = """
module ppgrid
  implicit none
  public
  integer, parameter :: pcols = 16
  integer, parameter :: pver  = 8
  integer, parameter :: pverp = 9
  integer, parameter :: begchunk = 1
  integer, parameter :: endchunk = 1
end module ppgrid
"""

PHYSCONST = """
module physconst
  use shr_kind_mod, only: r8 => shr_kind_r8
  implicit none
  public
  real(r8), parameter :: pi      = 3.14159265358979323846_r8
  real(r8), parameter :: gravit  = 9.80616_r8
  real(r8), parameter :: rair    = 287.04_r8
  real(r8), parameter :: cpair   = 1004.64_r8
  real(r8), parameter :: rh2o    = 461.50_r8
  real(r8), parameter :: latvap  = 2.501e6_r8
  real(r8), parameter :: latice  = 3.337e5_r8
  real(r8), parameter :: tmelt   = 273.15_r8
  real(r8), parameter :: stebol  = 5.67e-8_r8
  real(r8), parameter :: karman  = 0.4_r8
  real(r8), parameter :: rhoh2o  = 1000.0_r8
  real(r8), parameter :: epsilo  = 0.622_r8
  real(r8), parameter :: zvir    = 0.608_r8
  real(r8), parameter :: cappa   = 0.28571_r8
  real(r8), parameter :: rearth  = 6.37122e6_r8
  real(r8), parameter :: omega_earth = 7.292e-5_r8
  real(r8), parameter :: p0      = 100000.0_r8
end module physconst
"""

TIME_MANAGER = """
module time_manager
  use shr_kind_mod, only: r8 => shr_kind_r8
  implicit none
  private
  public :: get_nstep, advance_timestep, get_step_size, is_first_step, timemgr_init
  integer :: nstep = 0
  real(r8) :: dtime = 1800.0_r8
contains
  subroutine timemgr_init(dt)
    real(r8), intent(in) :: dt
    dtime = dt
    nstep = 0
  end subroutine timemgr_init

  function get_nstep() result(n)
    integer :: n
    n = nstep
  end function get_nstep

  function get_step_size() result(dt)
    real(r8) :: dt
    dt = dtime
  end function get_step_size

  function is_first_step() result(flag)
    logical :: flag
    flag = nstep == 0
  end function is_first_step

  subroutine advance_timestep()
    nstep = nstep + 1
  end subroutine advance_timestep
end module time_manager
"""

PHYS_GRID = """
module phys_grid
  use shr_kind_mod, only: r8 => shr_kind_r8
  use ppgrid,       only: pcols
  use physconst,    only: pi
  implicit none
  private
  public :: phys_grid_init, get_ncols_p, get_area_all_p
  public :: clat, clon, landfrac, area_weight
  real(r8) :: clat(pcols)
  real(r8) :: clon(pcols)
  real(r8) :: landfrac(pcols)
  real(r8) :: area_weight(pcols)
  integer :: ncols_active = 16
contains
  subroutine phys_grid_init()
    integer :: i
    real(r8) :: dlat
    dlat = pi / (pcols + 1)
    do i = 1, pcols
      clat(i) = -0.5_r8 * pi + dlat * i
      clon(i) = 2.0_r8 * pi * (i - 1) / pcols
      landfrac(i) = 0.5_r8 + 0.5_r8 * sin(3.0_r8 * clon(i)) * cos(clat(i))
      landfrac(i) = max(0.0_r8, min(1.0_r8, landfrac(i)))
      area_weight(i) = cos(clat(i))
    end do
  end subroutine phys_grid_init

  function get_ncols_p() result(ncol)
    integer :: ncol
    ncol = ncols_active
  end function get_ncols_p

  subroutine get_area_all_p(wt)
    real(r8), intent(out) :: wt(pcols)
    wt = area_weight
  end subroutine get_area_all_p
end module phys_grid
"""

CAM_LOGFILE = """
module cam_logfile
  implicit none
  public
  integer :: iulog = 6
  integer :: log_level = 1
contains
  subroutine set_log_level(level)
    integer, intent(in) :: level
    log_level = level
  end subroutine set_log_level

  subroutine log_verbose(level)
    integer, intent(in) :: level
    log_level = log_level + level
  end subroutine log_verbose
end module cam_logfile
"""

ABORTUTILS = """
module abortutils
  use cam_logfile, only: iulog
  implicit none
  private
  public :: endrun
  integer :: abort_count = 0
contains
  subroutine endrun(msg)
    character(len=*), intent(in) :: msg
    abort_count = abort_count + 1
    stop 'endrun'
  end subroutine endrun

  subroutine endrun_with_code(code)
    integer, intent(in) :: code
    abort_count = abort_count + code
    stop 'endrun'
  end subroutine endrun_with_code
end module abortutils
"""

SPMD_UTILS = """
module spmd_utils
  implicit none
  public
  integer :: masterprocid = 0
  integer :: npes = 1
  logical :: masterproc = .true.
contains
  subroutine spmd_init(ntasks)
    integer, intent(in) :: ntasks
    npes = ntasks
    masterproc = .true.
  end subroutine spmd_init

  function get_npes() result(n)
    integer :: n
    n = npes
  end function get_npes
end module spmd_utils
"""

CAM_HISTORY = """
module cam_history
  use shr_kind_mod, only: r8 => shr_kind_r8
  use ppgrid,       only: pcols, pver
  implicit none
  private
  public :: addfld, outfld, history_init, nfld_registered, nout_calls
  integer :: nfld_registered = 0
  integer :: nout_calls = 0
contains
  subroutine history_init()
    nfld_registered = 0
    nout_calls = 0
  end subroutine history_init

  subroutine addfld(fname, units)
    character(len=*), intent(in) :: fname
    character(len=*), intent(in) :: units
    nfld_registered = nfld_registered + 1
  end subroutine addfld

  subroutine outfld(fname, field)
    character(len=*), intent(in) :: fname
    real(r8), intent(in) :: field(pcols)
    nout_calls = nout_calls + 1
  end subroutine outfld

  subroutine outfld2d(fname, field)
    character(len=*), intent(in) :: fname
    real(r8), intent(in) :: field(pcols, pver)
    nout_calls = nout_calls + 1
  end subroutine outfld2d
end module cam_history
"""

SHR_RANDOM_MOD = """
module shr_random_mod
  use shr_kind_mod, only: r8 => shr_kind_r8
  implicit none
  private
  public :: shr_random_setseed, shr_random_uniform, random_call_count
  integer :: seed_state = 12345
  integer :: random_call_count = 0
contains
  subroutine shr_random_setseed(seed)
    integer, intent(in) :: seed
    seed_state = seed
  end subroutine shr_random_setseed

  subroutine shr_random_raw(harvest, n)
    ! raw generator core: replaced by the runtime's stream-per-module PRNG
    integer, intent(in) :: n
    real(r8), intent(out) :: harvest(n)
    harvest = 0.5_r8
  end subroutine shr_random_raw

  subroutine shr_random_uniform(harvest, n)
    integer, intent(in) :: n
    real(r8), intent(out) :: harvest(n)
    integer :: i
    random_call_count = random_call_count + 1
    call shr_random_raw(harvest, n)
    do i = 1, n
      harvest(i) = min(harvest(i), 0.99999999999999989_r8)
    end do
  end subroutine shr_random_uniform
end module shr_random_mod
"""

CONSTITUENTS = """
module constituents
  use shr_kind_mod, only: r8 => shr_kind_r8
  implicit none
  public
  integer, parameter :: pcnst = 4
  integer, parameter :: ixq   = 1
  integer, parameter :: ixcldliq = 2
  integer, parameter :: ixcldice = 3
  integer, parameter :: ixnumliq = 4
  real(r8), parameter :: qmin_vapor = 1.0e-12_r8
  real(r8), parameter :: qmin_cld   = 1.0e-14_r8
contains
  function cnst_get_ind(name) result(ind)
    character(len=*), intent(in) :: name
    integer :: ind
    ind = 1
  end function cnst_get_ind
end module constituents
"""

PHYSICS_BUFFER = """
module physics_buffer
  use shr_kind_mod, only: r8 => shr_kind_r8
  use ppgrid,       only: pcols, pver, pverp
  implicit none
  private
  public :: pbuf_init, pbuf_cld, pbuf_concld, pbuf_tke, pbuf_qcwat, pbuf_tcwat, pbuf_relhum, pbuf_rhpert
  real(r8), public :: pbuf_cld(pcols, pver)
  real(r8), public :: pbuf_concld(pcols, pver)
  real(r8), public :: pbuf_tke(pcols, pverp)
  real(r8), public :: pbuf_qcwat(pcols, pver)
  real(r8), public :: pbuf_tcwat(pcols, pver)
  real(r8), public :: pbuf_relhum(pcols, pver)
  real(r8), public :: pbuf_rhpert(pcols, pver)
contains
  subroutine pbuf_init()
    pbuf_cld = 0.0_r8
    pbuf_concld = 0.0_r8
    pbuf_tke = 0.01_r8
    pbuf_qcwat = 0.0_r8
    pbuf_tcwat = 0.0_r8
    pbuf_relhum = 0.0_r8
    pbuf_rhpert = 0.0_r8
  end subroutine pbuf_init
end module physics_buffer
"""

#: Mapping from Fortran file name to source text.
SOURCES: dict[str, str] = {
    "shr_kind_mod.F90": SHR_KIND_MOD,
    "ppgrid.F90": PPGRID,
    "physconst.F90": PHYSCONST,
    "time_manager.F90": TIME_MANAGER,
    "phys_grid.F90": PHYS_GRID,
    "cam_logfile.F90": CAM_LOGFILE,
    "abortutils.F90": ABORTUTILS,
    "spmd_utils.F90": SPMD_UTILS,
    "cam_history.F90": CAM_HISTORY,
    "shr_random_mod.F90": SHR_RANDOM_MOD,
    "constituents.F90": CONSTITUENTS,
    "physics_buffer.F90": PHYSICS_BUFFER,
}

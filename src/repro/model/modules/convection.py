"""Convection modules: a deep convection scheme with a CAPE-like nonlinear
trigger (the main source of perturbation growth in the synthetic model, as
deep convection is in CAM) and a shallow convection / boundary-layer cloud
adjustment.
"""

CONVECT_DEEP = """
module convect_deep
  use shr_kind_mod,  only: r8 => shr_kind_r8
  use ppgrid,        only: pcols, pver
  use physconst,     only: cpair, latvap, gravit, rair
  use wv_saturation, only: qsat_water
  use physics_types, only: physics_state, physics_ptend
  use cam_history,   only: outfld
  implicit none
  private
  public :: convect_deep_tend
  real(r8), parameter :: tau_deep = 3600.0_r8
  real(r8), parameter :: cape_threshold = 70.0_r8
contains
  subroutine convect_deep_tend(state, ptend, precc, dt, ncol)
    type(physics_state), intent(in) :: state
    type(physics_ptend), intent(inout) :: ptend
    real(r8), intent(out) :: precc(pcols)
    real(r8), intent(in) :: dt
    integer, intent(in) :: ncol
    integer :: i, k
    real(r8) :: cape(pcols)
    real(r8) :: buoyancy, parcel_t, env_t, qsat_env
    real(r8) :: trigger, heating, drying, rain_production

    do i = 1, ncol
      cape(i) = 0.0_r8
      parcel_t = state%t(i,pver) + 0.5_r8
      do k = pver, 1, -1
        env_t = state%t(i,k)
        parcel_t = parcel_t - 6.5e-3_r8 * (state%zm(i,max(k-1,1)) - state%zm(i,k))
        buoyancy = gravit * (parcel_t - env_t) / env_t
        cape(i) = cape(i) + max(0.0_r8, buoyancy) * (state%zm(i,max(k-1,1)) - state%zm(i,k))
      end do
    end do

    do i = 1, ncol
      trigger = max(0.0_r8, cape(i) - cape_threshold)
      trigger = trigger ** 1.5_r8 / (1.0_r8 + trigger)
      rain_production = 0.0_r8
      do k = 1, pver
        qsat_env = qsat_water(state%t(i,k), state%pmid(i,k))
        heating = trigger * 1.0e-5_r8 * cpair * max(0.0_r8, state%q(i,k) / max(qsat_env, 1.0e-10_r8) - 0.2_r8)
        drying = heating / (latvap + cpair)
        ptend%s(i,k) = ptend%s(i,k) + heating
        ptend%q(i,k) = ptend%q(i,k) - drying
        rain_production = rain_production + drying * state%pdel(i,k) / gravit
      end do
      precc(i) = max(0.0_r8, rain_production) / 1000.0_r8
    end do

    call outfld('PRECC', precc)
    call outfld('CAPE', cape)
  end subroutine convect_deep_tend
end module convect_deep
"""

CONVECT_SHALLOW = """
module convect_shallow
  use shr_kind_mod,  only: r8 => shr_kind_r8
  use ppgrid,        only: pcols, pver
  use physconst,     only: cpair, latvap
  use wv_saturation, only: qsat_water
  use physics_types, only: physics_state, physics_ptend
  implicit none
  private
  public :: convect_shallow_tend
  real(r8), parameter :: tau_shallow = 7200.0_r8
contains
  subroutine convect_shallow_tend(state, ptend, cmfmc, dt, ncol)
    type(physics_state), intent(in) :: state
    type(physics_ptend), intent(inout) :: ptend
    real(r8), intent(out) :: cmfmc(pcols, pver)
    real(r8), intent(in) :: dt
    integer, intent(in) :: ncol
    integer :: i, k
    real(r8) :: qsat_low, instability, moist_flux

    do i = 1, ncol
      qsat_low = qsat_water(state%t(i,pver), state%pmid(i,pver))
      instability = max(0.0_r8, state%q(i,pver) / max(qsat_low, 1.0e-10_r8) - 0.7_r8)
      do k = 1, pver
        moist_flux = instability * exp(-(pver - k) * 0.8_r8) / tau_shallow
        cmfmc(i,k) = moist_flux * 1000.0_r8
        ptend%q(i,k) = ptend%q(i,k) + moist_flux * 0.002_r8
        ptend%s(i,k) = ptend%s(i,k) - moist_flux * 0.002_r8 * latvap
      end do
    end do
  end subroutine convect_shallow_tend
end module convect_shallow
"""

SOURCES: dict[str, str] = {
    "convect_deep.F90": CONVECT_DEEP,
    "convect_shallow.F90": CONVECT_SHALLOW,
}

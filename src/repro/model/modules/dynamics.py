"""Dynamical core modules: hybrid vertical grid, hydrostatic/geopotential
computation, the prognostic wind/surface-pressure/temperature update, and a
total-energy fixer.  This is the "dynamics" half of the CAM core in the paper's
community structure; the DYN3BUG and RANDOMBUG experiments patch lines here.
"""

DYN_GRID = """
module dyn_grid
  use shr_kind_mod, only: r8 => shr_kind_r8
  use ppgrid,       only: pcols, pver, pverp
  use physconst,    only: p0
  implicit none
  private
  public :: dyn_grid_init, hyai, hybi, hyam, hybm, nbr_east, nbr_west, rdx
  real(r8) :: hyai(pverp)
  real(r8) :: hybi(pverp)
  real(r8) :: hyam(pver)
  real(r8) :: hybm(pver)
  integer  :: nbr_east(pcols)
  integer  :: nbr_west(pcols)
  real(r8), parameter :: rdx = 5.0e-7_r8
contains
  subroutine dyn_grid_init()
    integer :: i, k
    real(r8) :: eta
    do k = 1, pverp
      eta = (k - 1.0_r8) / pver
      hyai(k) = (1.0_r8 - eta) ** 2 * 0.2_r8
      hybi(k) = eta ** 1.3_r8
    end do
    do k = 1, pver
      hyam(k) = 0.5_r8 * (hyai(k) + hyai(k+1))
      hybm(k) = 0.5_r8 * (hybi(k) + hybi(k+1))
    end do
    do i = 1, pcols
      nbr_east(i) = i + 1
      nbr_west(i) = i - 1
    end do
    nbr_east(pcols) = 1
    nbr_west(1) = pcols
  end subroutine dyn_grid_init
end module dyn_grid
"""

DYN_HYDROSTATIC = """
module dyn_hydrostatic
  use shr_kind_mod, only: r8 => shr_kind_r8
  use ppgrid,       only: pcols, pver, pverp
  use physconst,    only: rair, gravit, zvir, p0, cappa
  use dyn_grid,     only: hyai, hybi, hyam, hybm
  use physics_types, only: physics_state
  implicit none
  private
  public :: compute_hydrostatic
contains
  subroutine compute_hydrostatic(state, ncol)
    type(physics_state), intent(inout) :: state
    integer, intent(in) :: ncol
    integer :: i, k
    real(r8) :: tv(pcols, pver)
    real(r8) :: dlnp(pcols, pver)
    real(r8) :: thickness
    do k = 1, pverp
      do i = 1, ncol
        state%pint(i,k) = hyai(k) * p0 + hybi(k) * state%ps(i)
      end do
    end do
    do k = 1, pver
      do i = 1, ncol
        state%pmid(i,k) = hyam(k) * p0 + hybm(k) * state%ps(i)
        state%pdel(i,k) = state%pint(i,k+1) - state%pint(i,k)
        state%lnpmid(i,k) = log(state%pmid(i,k))
        state%exner(i,k) = (state%pmid(i,k) / p0) ** cappa
        tv(i,k) = state%t(i,k) * (1.0_r8 + zvir * state%q(i,k))
        dlnp(i,k) = log(state%pint(i,k+1) / state%pint(i,k))
      end do
    end do
    do i = 1, ncol
      state%zi(i,pverp) = 0.0_r8
    end do
    do k = pver, 1, -1
      do i = 1, ncol
        thickness = rair * tv(i,k) * dlnp(i,k) / gravit
        state%zi(i,k) = state%zi(i,k+1) + thickness
        state%zm(i,k) = state%zi(i,k+1) + 0.5_r8 * thickness
      end do
    end do
  end subroutine compute_hydrostatic
end module dyn_hydrostatic
"""

DYN_COMP = """
module dyn_comp
  use shr_kind_mod,  only: r8 => shr_kind_r8
  use ppgrid,        only: pcols, pver
  use physconst,     only: rair, gravit, cpair, omega_earth, p0
  use phys_grid,     only: clat
  use dyn_grid,      only: nbr_east, nbr_west, rdx, hybm
  use dyn_hydrostatic, only: compute_hydrostatic
  use physics_types, only: physics_state, physics_tend
  implicit none
  private
  public :: dyn_init, dyn_run
  real(r8), parameter :: diffusion_coef = 0.02_r8
  real(r8) :: fcor(pcols)
contains
  subroutine dyn_init()
    integer :: i
    do i = 1, pcols
      fcor(i) = 2.0_r8 * omega_earth * sin(clat(i))
    end do
  end subroutine dyn_init

  subroutine dyn_run(state, tend, dt, ncol)
    type(physics_state), intent(inout) :: state
    type(physics_tend),  intent(inout) :: tend
    real(r8), intent(in) :: dt
    integer, intent(in) :: ncol
    integer :: i, k, ie, iw
    real(r8) :: dudx(pcols, pver)
    real(r8) :: dvdx(pcols, pver)
    real(r8) :: dtdx(pcols, pver)
    real(r8) :: dpdx(pcols, pver)
    real(r8) :: divg(pcols, pver)
    real(r8) :: omga(pcols, pver)
    real(r8) :: unew(pcols, pver)
    real(r8) :: vnew(pcols, pver)
    real(r8) :: tnew(pcols, pver)
    real(r8) :: psdot(pcols)
    real(r8) :: adv_u, adv_v, adv_t, heat_adiabatic

    call compute_hydrostatic(state, ncol)

    do k = 1, pver
      do i = 1, ncol
        ie = nbr_east(i)
        iw = nbr_west(i)
        dudx(i,k) = (state%u(ie,k) - state%u(iw,k)) * rdx
        dvdx(i,k) = (state%v(ie,k) - state%v(iw,k)) * rdx
        dtdx(i,k) = (state%t(ie,k) - state%t(iw,k)) * rdx
        dpdx(i,k) = (state%pmid(ie,k) - state%pmid(iw,k)) * rdx
        divg(i,k) = dudx(i,k) + 0.3_r8 * dvdx(i,k)
      end do
    end do

    do k = 1, pver
      do i = 1, ncol
        omga(i,k) = -state%pdel(i,k) * divg(i,k) + 0.05_r8 * state%omega(i,k)
      end do
    end do

    do k = 1, pver
      do i = 1, ncol
        state%omega(i,k) = omga(i,k)
      end do
    end do

    psdot = 0.0_r8
    do k = 1, pver
      do i = 1, ncol
        psdot(i) = psdot(i) - divg(i,k) * state%pdel(i,k)
      end do
    end do

    do k = 1, pver
      do i = 1, ncol
        ie = nbr_east(i)
        iw = nbr_west(i)
        adv_u = -state%u(i,k) * dudx(i,k)
        adv_v = -state%u(i,k) * dvdx(i,k)
        adv_t = -state%u(i,k) * dtdx(i,k)
        heat_adiabatic = rair * state%t(i,k) * state%omega(i,k) / (cpair * state%pmid(i,k))
        unew(i,k) = state%u(i,k) + dt * (adv_u + fcor(i) * state%v(i,k) - dpdx(i,k) / 1.2_r8)
        vnew(i,k) = state%v(i,k) + dt * (adv_v - fcor(i) * state%u(i,k))
        tnew(i,k) = state%t(i,k) + dt * (adv_t + heat_adiabatic)
        unew(i,k) = unew(i,k) + diffusion_coef * (state%u(ie,k) - 2.0_r8 * state%u(i,k) + state%u(iw,k))
        vnew(i,k) = vnew(i,k) + diffusion_coef * (state%v(ie,k) - 2.0_r8 * state%v(i,k) + state%v(iw,k))
        tnew(i,k) = tnew(i,k) + diffusion_coef * (state%t(ie,k) - 2.0_r8 * state%t(i,k) + state%t(iw,k))
      end do
    end do

    do k = 1, pver
      do i = 1, ncol
        tend%dudt(i,k) = (unew(i,k) - state%u(i,k)) / dt
        tend%dvdt(i,k) = (vnew(i,k) - state%v(i,k)) / dt
        tend%dtdt(i,k) = (tnew(i,k) - state%t(i,k)) / dt
        state%u(i,k) = unew(i,k)
        state%v(i,k) = vnew(i,k)
        state%t(i,k) = tnew(i,k)
      end do
    end do

    do i = 1, ncol
      state%ps(i) = state%ps(i) + 0.02_r8 * dt * psdot(i)
    end do

    call compute_hydrostatic(state, ncol)
  end subroutine dyn_run
end module dyn_comp
"""

TE_MAP = """
module te_map
  use shr_kind_mod,  only: r8 => shr_kind_r8
  use ppgrid,        only: pcols, pver
  use physconst,     only: cpair, gravit
  use physics_types, only: physics_state
  implicit none
  private
  public :: te_fixer
contains
  subroutine te_fixer(state, ncol)
    type(physics_state), intent(inout) :: state
    integer, intent(in) :: ncol
    integer :: i, k
    real(r8) :: te_before(pcols)
    real(r8) :: mass(pcols)
    real(r8) :: te_mean, mass_total, correction
    te_before = 0.0_r8
    mass = 0.0_r8
    do k = 1, pver
      do i = 1, ncol
        te_before(i) = te_before(i) + (cpair * state%t(i,k) + 0.5_r8 * (state%u(i,k)**2 + state%v(i,k)**2)) * state%pdel(i,k) / gravit
        mass(i) = mass(i) + state%pdel(i,k) / gravit
      end do
    end do
    te_mean = sum(te_before) / ncol
    mass_total = sum(mass) / ncol
    correction = 1.0e-9_r8 * te_mean / (cpair * mass_total)
    do k = 1, pver
      do i = 1, ncol
        state%t(i,k) = state%t(i,k) - correction
      end do
    end do
  end subroutine te_fixer
end module te_map
"""

SOURCES: dict[str, str] = {
    "dyn_grid.F90": DYN_GRID,
    "dyn_hydrostatic.F90": DYN_HYDROSTATIC,
    "dyn_comp.F90": DYN_COMP,
    "te_map.F90": TE_MAP,
}

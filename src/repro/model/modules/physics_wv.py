"""Water-vapour / cloud macrophysics modules: Goff–Gratch saturation vapour
pressure (GOFFGRATCH experiment target), relative humidity, stochastic cloud
fraction (the module whose PRNG-derived variables are the RAND-MT "bug"
locations), and a simple macrophysics / large-scale condensation scheme.
"""

WV_SATURATION = """
module wv_saturation
  use shr_kind_mod, only: r8 => shr_kind_r8
  use ppgrid,       only: pcols, pver
  use physconst,    only: epsilo, tmelt
  implicit none
  private
  public :: goffgratch_svp, svp_ice, qsat_water, aqsat, rh_calc
contains
  elemental function goffgratch_svp(t) result(es)
    real(r8), intent(in) :: t
    real(r8) :: es
    real(r8) :: ts, logterm, term1, term2, term3
    ts = 373.16_r8
    term1 = -7.90298_r8 * (ts / t - 1.0_r8) + 5.02808_r8 * log10(ts / t)
    term2 = -1.3816e-7_r8 * (10.0_r8 ** (11.344_r8 * (1.0_r8 - t / ts)) - 1.0_r8)
    term3 = 8.1328e-3_r8 * (10.0_r8 ** (-3.49149_r8 * (ts / t - 1.0_r8)) - 1.0_r8)
    logterm = term1 + term2 + term3 + log10(1013.246_r8)
    es = 100.0_r8 * 10.0_r8 ** logterm
  end function goffgratch_svp

  elemental function svp_ice(t) result(es)
    real(r8), intent(in) :: t
    real(r8) :: es
    real(r8) :: ts, logterm
    ts = 273.16_r8
    logterm = -9.09718_r8 * (ts / t - 1.0_r8) - 3.56654_r8 * log10(ts / t) + 0.876793_r8 * (1.0_r8 - t / ts)
    es = 100.0_r8 * 6.1071_r8 * 10.0_r8 ** logterm
  end function svp_ice

  elemental function qsat_water(t, p) result(qs)
    real(r8), intent(in) :: t
    real(r8), intent(in) :: p
    real(r8) :: qs
    real(r8) :: es
    es = goffgratch_svp(t)
    es = min(es, 0.5_r8 * p)
    qs = epsilo * es / (p - (1.0_r8 - epsilo) * es)
  end function qsat_water

  subroutine aqsat(t, p, es, qs, ncol)
    integer, intent(in) :: ncol
    real(r8), intent(in) :: t(pcols, pver)
    real(r8), intent(in) :: p(pcols, pver)
    real(r8), intent(out) :: es(pcols, pver)
    real(r8), intent(out) :: qs(pcols, pver)
    integer :: i, k
    do k = 1, pver
      do i = 1, ncol
        es(i,k) = goffgratch_svp(t(i,k))
        es(i,k) = min(es(i,k), 0.5_r8 * p(i,k))
        qs(i,k) = epsilo * es(i,k) / (p(i,k) - (1.0_r8 - epsilo) * es(i,k))
      end do
    end do
  end subroutine aqsat

  subroutine rh_calc(t, p, q, relhum, ncol)
    integer, intent(in) :: ncol
    real(r8), intent(in) :: t(pcols, pver)
    real(r8), intent(in) :: p(pcols, pver)
    real(r8), intent(in) :: q(pcols, pver)
    real(r8), intent(out) :: relhum(pcols, pver)
    real(r8) :: esat(pcols, pver)
    real(r8) :: qsat(pcols, pver)
    call aqsat(t, p, esat, qsat, ncol)
    relhum = min(1.2_r8, max(0.0_r8, q / qsat))
  end subroutine rh_calc
end module wv_saturation
"""

CLOUD_FRACTION = """
module cloud_fraction
  use shr_kind_mod,   only: r8 => shr_kind_r8
  use ppgrid,         only: pcols, pver
  use physconst,      only: tmelt
  use wv_saturation,  only: rh_calc
  use shr_random_mod, only: shr_random_uniform
  use physics_types,  only: physics_state
  use physics_buffer, only: pbuf_cld, pbuf_concld, pbuf_relhum, pbuf_rhpert
  use cam_history,    only: outfld
  implicit none
  private
  public :: cldfrc_init, cldfrc
  real(r8), parameter :: rhminl = 0.85_r8
  real(r8), parameter :: rhminh = 0.70_r8
  real(r8), parameter :: premib = 70000.0_r8
  real(r8) :: perturbation_scale = 0.02_r8
contains
  subroutine cldfrc_init(scale)
    real(r8), intent(in) :: scale
    perturbation_scale = scale
  end subroutine cldfrc_init

  subroutine cldfrc(state, cld, concld, cltot, cllow, clmed, clhgh, ncol)
    type(physics_state), intent(in) :: state
    integer, intent(in) :: ncol
    real(r8), intent(out) :: cld(pcols, pver)
    real(r8), intent(out) :: concld(pcols, pver)
    real(r8), intent(out) :: cltot(pcols)
    real(r8), intent(out) :: cllow(pcols)
    real(r8), intent(out) :: clmed(pcols)
    real(r8), intent(out) :: clhgh(pcols)
    integer :: i, k
    real(r8) :: relhum(pcols, pver)
    real(r8) :: rhseed(pcols)
    real(r8) :: rhpert(pcols, pver)
    real(r8) :: rhseedm(pcols)
    real(r8) :: rhlim, rhdif, cldrh, clrsky

    call rh_calc(state%t, state%pmid, state%q, relhum, ncol)

    do i = 1, ncol
      rhseedm(i) = 0.0_r8
    end do
    do k = 1, pver
      call shr_random_uniform(rhseed, ncol)
      do i = 1, ncol
        rhpert(i,k) = perturbation_scale * (rhseed(i) - 0.5_r8)
      end do
      ! the macrophysics consumes the same stochastic RH enhancement via the
      ! physics buffer; recomputed from the raw draws so both consumers see
      ! one intended perturbation field
      do i = 1, ncol
        pbuf_rhpert(i,k) = (rhseed(i) - 0.5_r8) * perturbation_scale
        rhseedm(i) = rhseedm(i) + rhseed(i)
      end do
    end do

    do k = 1, pver
      do i = 1, ncol
        if (state%pmid(i,k) > premib) then
          rhlim = rhminl
        else
          rhlim = rhminh
        end if
        rhdif = (relhum(i,k) + rhpert(i,k) - rhlim) / (1.0_r8 - rhlim)
        cldrh = min(0.999_r8, max(rhdif, 0.0_r8)) ** 2
        concld(i,k) = 0.04_r8 * min(1.0_r8, max(0.0_r8, relhum(i,k) + rhpert(i,k)))
        cld(i,k) = min(0.999_r8, cldrh + concld(i,k))
      end do
    end do

    do i = 1, ncol
      cltot(i) = 1.0_r8
      cllow(i) = 1.0_r8
      clmed(i) = 1.0_r8
      clhgh(i) = 1.0_r8
    end do
    do k = 1, pver
      do i = 1, ncol
        clrsky = 1.0_r8 - cld(i,k)
        cltot(i) = cltot(i) * clrsky
        if (state%pmid(i,k) > 70000.0_r8) then
          cllow(i) = cllow(i) * clrsky
        else if (state%pmid(i,k) > 40000.0_r8) then
          clmed(i) = clmed(i) * clrsky
        else
          clhgh(i) = clhgh(i) * clrsky
        end if
      end do
    end do
    do i = 1, ncol
      cltot(i) = 1.0_r8 - cltot(i)
      cllow(i) = 1.0_r8 - cllow(i)
      clmed(i) = 1.0_r8 - clmed(i)
      clhgh(i) = 1.0_r8 - clhgh(i)
    end do

    do k = 1, pver
      do i = 1, ncol
        pbuf_cld(i,k) = cld(i,k)
        pbuf_concld(i,k) = concld(i,k)
        pbuf_relhum(i,k) = relhum(i,k)
      end do
    end do

    ! diagnosed mean RH perturbation, recomputed from the raw draws so the
    ! history record is independent of how rhpert itself was applied
    do i = 1, ncol
      rhseedm(i) = perturbation_scale * (rhseedm(i) / pver - 0.5_r8)
    end do

    call outfld('CLDTOT', cltot)
    call outfld('CLDLOW', cllow)
    call outfld('CLDMED', clmed)
    call outfld('CLDHGH', clhgh)
    call outfld('RHPERT', rhseedm)
  end subroutine cldfrc
end module cloud_fraction
"""

MACROP_DRIVER = """
module macrop_driver
  use shr_kind_mod,  only: r8 => shr_kind_r8
  use ppgrid,        only: pcols, pver
  use physconst,     only: latvap, cpair, tmelt
  use wv_saturation, only: qsat_water
  use physics_types, only: physics_state, physics_ptend
  use physics_buffer, only: pbuf_rhpert
  implicit none
  private
  public :: macrop_driver_tend
  real(r8), parameter :: cond_timescale = 3600.0_r8
contains
  subroutine macrop_driver_tend(state, ptend, cld, dt, ncol)
    type(physics_state), intent(in) :: state
    type(physics_ptend), intent(inout) :: ptend
    real(r8), intent(in) :: cld(pcols, pver)
    real(r8), intent(in) :: dt
    integer, intent(in) :: ncol
    integer :: i, k
    real(r8) :: qsat_local, qexcess, cond_rate, freeze_frac, liq_new, ice_new

    do k = 1, pver
      do i = 1, ncol
        qsat_local = qsat_water(state%t(i,k), state%pmid(i,k))
        qexcess = state%q(i,k) - qsat_local * (1.0_r8 - 0.3_r8 * cld(i,k) - pbuf_rhpert(i,k))
        cond_rate = max(0.0_r8, qexcess) / cond_timescale
        cond_rate = min(cond_rate, state%q(i,k) / dt)
        freeze_frac = min(1.0_r8, max(0.0_r8, (tmelt - state%t(i,k)) / 30.0_r8))
        liq_new = cond_rate * (1.0_r8 - freeze_frac)
        ice_new = cond_rate * freeze_frac
        ptend%q(i,k) = ptend%q(i,k) - cond_rate
        ptend%qc(i,k) = ptend%qc(i,k) + liq_new
        ptend%qi(i,k) = ptend%qi(i,k) + ice_new
        ptend%s(i,k) = ptend%s(i,k) + latvap * cond_rate
        ptend%nc(i,k) = ptend%nc(i,k) + liq_new * 5.0e10_r8
        ptend%ni(i,k) = ptend%ni(i,k) + ice_new * 1.0e9_r8
      end do
    end do
  end subroutine macrop_driver_tend
end module macrop_driver
"""

SOURCES: dict[str, str] = {
    "wv_saturation.F90": WV_SATURATION,
    "cloud_fraction.F90": CLOUD_FRACTION,
    "macrop_driver.F90": MACROP_DRIVER,
}

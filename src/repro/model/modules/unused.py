"""Modules that exist in the source tree but are either not compiled into the
FC5-like configuration at all (chemistry, WACCM, CARMA, CLUBB — the analogue
of the paper's 2400 → 820 module reduction via KGen) or compiled but never
reached during the first time steps.  They give the coverage-filtering and
module-registry stages of the pipeline real work to do.
"""

CAM_CHEMISTRY = """
module cam_chemistry
  use shr_kind_mod, only: r8 => shr_kind_r8
  use ppgrid,       only: pcols, pver
  implicit none
  private
  public :: chem_init, chem_timestep_tend
  real(r8) :: o3_column(pcols)
  real(r8) :: no2_column(pcols)
contains
  subroutine chem_init()
    o3_column = 300.0_r8
    no2_column = 0.2_r8
  end subroutine chem_init

  subroutine chem_timestep_tend(t, o3_tend, ncol)
    integer, intent(in) :: ncol
    real(r8), intent(in) :: t(pcols, pver)
    real(r8), intent(out) :: o3_tend(pcols, pver)
    integer :: i, k
    real(r8) :: photolysis_rate
    do k = 1, pver
      do i = 1, ncol
        photolysis_rate = 1.0e-6_r8 * exp(-(t(i,k) - 250.0_r8) / 50.0_r8)
        o3_tend(i,k) = -photolysis_rate * o3_column(i) / pver
      end do
    end do
  end subroutine chem_timestep_tend
end module cam_chemistry
"""

WACCM_PHYSICS = """
module waccm_physics
  use shr_kind_mod, only: r8 => shr_kind_r8
  use ppgrid,       only: pcols, pver
  implicit none
  private
  public :: waccm_drag_tend
contains
  subroutine waccm_drag_tend(u, v, utend, vtend, ncol)
    integer, intent(in) :: ncol
    real(r8), intent(in) :: u(pcols, pver)
    real(r8), intent(in) :: v(pcols, pver)
    real(r8), intent(out) :: utend(pcols, pver)
    real(r8), intent(out) :: vtend(pcols, pver)
    integer :: i, k
    real(r8) :: ion_drag_coef
    ion_drag_coef = 1.0e-7_r8
    do k = 1, pver
      do i = 1, ncol
        utend(i,k) = -ion_drag_coef * u(i,k)
        vtend(i,k) = -ion_drag_coef * v(i,k)
      end do
    end do
  end subroutine waccm_drag_tend
end module waccm_physics
"""

CARMA_MOD = """
module carma_mod
  use shr_kind_mod, only: r8 => shr_kind_r8
  use ppgrid,       only: pcols, pver
  implicit none
  private
  public :: carma_timestep_tend
  integer, parameter :: nbins = 16
contains
  subroutine carma_timestep_tend(t, q, dust_tend, ncol)
    integer, intent(in) :: ncol
    real(r8), intent(in) :: t(pcols, pver)
    real(r8), intent(in) :: q(pcols, pver)
    real(r8), intent(out) :: dust_tend(pcols, pver)
    integer :: i, k
    real(r8) :: settling_velocity, bin_mass
    bin_mass = 1.0e-15_r8
    do k = 1, pver
      do i = 1, ncol
        settling_velocity = 0.01_r8 * bin_mass * (t(i,k) / 273.0_r8)
        dust_tend(i,k) = -settling_velocity * q(i,k)
      end do
    end do
  end subroutine carma_timestep_tend
end module carma_mod
"""

CLUBB_INTR = """
module clubb_intr
  use shr_kind_mod, only: r8 => shr_kind_r8
  use ppgrid,       only: pcols, pver
  implicit none
  private
  public :: clubb_tend
contains
  subroutine clubb_tend(t, q, wp2, thlp2, ncol)
    integer, intent(in) :: ncol
    real(r8), intent(in) :: t(pcols, pver)
    real(r8), intent(in) :: q(pcols, pver)
    real(r8), intent(out) :: wp2(pcols, pver)
    real(r8), intent(out) :: thlp2(pcols, pver)
    integer :: i, k
    real(r8) :: skewness
    do k = 1, pver
      do i = 1, ncol
        skewness = 0.5_r8 * q(i,k) / 1.0e-2_r8
        wp2(i,k) = 0.2_r8 + 0.1_r8 * skewness
        thlp2(i,k) = 0.04_r8 * t(i,k) / 300.0_r8
      end do
    end do
  end subroutine clubb_tend
end module clubb_intr
"""

SEASALT_OPTICS = """
module seasalt_optics
  use shr_kind_mod, only: r8 => shr_kind_r8
  use ppgrid,       only: pcols, pver
  implicit none
  private
  public :: seasalt_optics_init, seasalt_extinction
  real(r8) :: refractive_index = 1.5_r8
contains
  subroutine seasalt_optics_init(refindex)
    real(r8), intent(in) :: refindex
    refractive_index = refindex
  end subroutine seasalt_optics_init

  subroutine seasalt_extinction(q_seasalt, extinction, ncol)
    integer, intent(in) :: ncol
    real(r8), intent(in) :: q_seasalt(pcols, pver)
    real(r8), intent(out) :: extinction(pcols, pver)
    integer :: i, k
    do k = 1, pver
      do i = 1, ncol
        extinction(i,k) = 3.0_r8 * q_seasalt(i,k) * refractive_index
      end do
    end do
  end subroutine seasalt_extinction
end module seasalt_optics
"""

SOURCES: dict[str, str] = {
    "cam_chemistry.F90": CAM_CHEMISTRY,
    "waccm_physics.F90": WACCM_PHYSICS,
    "carma_mod.F90": CARMA_MOD,
    "clubb_intr.F90": CLUBB_INTR,
    "seasalt_optics.F90": SEASALT_OPTICS,
}

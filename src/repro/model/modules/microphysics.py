"""Microphysics modules: aerosol/sub-grid-velocity preprocessing
(``microp_aero``, the WSUBBUG target) and a Morrison–Gettelman-flavoured
two-moment stratiform microphysics scheme (``micro_mg``, the module whose
variables the AVX2/FMA experiment analyses).

``micro_mg_tend`` deliberately reuses the temporary ``dum`` and the limiter
``ratio`` across many process-rate calculations, as the real MG1 scheme does:
the paper finds ``dum`` to be the node with the largest eigenvector
in-centrality in the AVX2 subgraph.
"""

MICROP_AERO = """
module microp_aero
  use shr_kind_mod,   only: r8 => shr_kind_r8
  use ppgrid,         only: pcols, pver
  use phys_grid,      only: landfrac
  use physics_types,  only: physics_state
  use physics_buffer, only: pbuf_relhum
  use cam_history,    only: outfld, outfld2d
  implicit none
  private
  public :: microp_aero_run
  real(r8), parameter :: wsubmin = 0.20_r8
  real(r8), parameter :: naer_ocean = 1.0e8_r8
  real(r8), parameter :: naer_land  = 3.0e8_r8
contains
  subroutine microp_aero_run(state, wsub, ccn, ncol)
    type(physics_state), intent(in) :: state
    integer, intent(in) :: ncol
    real(r8), intent(out) :: wsub(pcols)
    real(r8), intent(out) :: ccn(pcols, pver)
    integer :: i, k
    real(r8) :: tkebg(pcols)
    real(r8) :: naer(pcols)
    real(r8) :: supersat

    do i = 1, ncol
      tkebg(i) = 0.01_r8 + 0.04_r8 * landfrac(i)
    end do
    do i = 1, ncol
      wsub(i) = 0.20_r8 * sqrt(1.0_r8 + 25.0_r8 * tkebg(i))
    end do
    call outfld('WSUB', wsub)

    do i = 1, ncol
      naer(i) = naer_ocean + (naer_land - naer_ocean) * landfrac(i)
    end do
    do k = 1, pver
      do i = 1, ncol
        supersat = max(0.0_r8, pbuf_relhum(i,k) - 0.95_r8)
        ccn(i,k) = naer(i) * (0.1_r8 + 4.0_r8 * supersat)
      end do
    end do
    call outfld2d('CCN3', ccn)
  end subroutine microp_aero_run
end module microp_aero
"""

MICRO_MG = """
module micro_mg
  use shr_kind_mod,   only: r8 => shr_kind_r8
  use ppgrid,         only: pcols, pver
  use physconst,      only: latvap, latice, cpair, rhoh2o, gravit, tmelt, rair
  use wv_saturation,  only: qsat_water, svp_ice
  use physics_types,  only: physics_state, physics_ptend
  use cam_history,    only: outfld, outfld2d
  implicit none
  private
  public :: micro_mg_init, micro_mg_tend
  real(r8), parameter :: qsmall  = 1.0e-18_r8
  real(r8), parameter :: autoconv_coef = 1350.0_r8
  real(r8), parameter :: accretion_coef = 67.0_r8
  real(r8), parameter :: snow_agg_coef = 0.1_r8
  real(r8) :: mg_dcs = 400.0e-6_r8
contains
  subroutine micro_mg_init(dcs)
    real(r8), intent(in) :: dcs
    mg_dcs = dcs
  end subroutine micro_mg_init

  subroutine micro_mg_tend(state, ptend, cld, ccn, dt, prect, precsl, qsout2, nsout2, freqs, ncol)
    type(physics_state), intent(in) :: state
    type(physics_ptend), intent(inout) :: ptend
    real(r8), intent(in) :: cld(pcols, pver)
    real(r8), intent(in) :: ccn(pcols, pver)
    real(r8), intent(in) :: dt
    integer, intent(in) :: ncol
    real(r8), intent(out) :: prect(pcols)
    real(r8), intent(out) :: precsl(pcols)
    real(r8), intent(out) :: qsout2(pcols, pver)
    real(r8), intent(out) :: nsout2(pcols, pver)
    real(r8), intent(out) :: freqs(pcols, pver)

    integer :: i, k
    real(r8) :: dum, ratio
    real(r8) :: rho(pcols, pver)
    real(r8) :: qcic(pcols, pver)
    real(r8) :: qiic(pcols, pver)
    real(r8) :: ncic(pcols, pver)
    real(r8) :: niic(pcols, pver)
    real(r8) :: qric(pcols, pver)
    real(r8) :: nric(pcols, pver)
    real(r8) :: qniic(pcols, pver)
    real(r8) :: nsic(pcols, pver)
    real(r8) :: qctend(pcols, pver)
    real(r8) :: qitend(pcols, pver)
    real(r8) :: nctend(pcols, pver)
    real(r8) :: nitend(pcols, pver)
    real(r8) :: qvlat(pcols, pver)
    real(r8) :: tlat(pcols, pver)
    real(r8) :: qsout(pcols, pver)
    real(r8) :: nsout(pcols, pver)
    real(r8) :: prc, pra, mnuccc, psacws, prci, prai, prds, pre, nnuccd
    real(r8) :: nprc, npra, nnuccc, nsagg, nsubr, npsacws
    real(r8) :: esi, qvi, berg, cldm, icldm, lcldm
    real(r8) :: rainflux, snowflux, rainnum, snownum

    do k = 1, pver
      do i = 1, ncol
        rho(i,k) = state%pmid(i,k) / (rair * state%t(i,k))
        qctend(i,k) = 0.0_r8
        qitend(i,k) = 0.0_r8
        nctend(i,k) = 0.0_r8
        nitend(i,k) = 0.0_r8
        qvlat(i,k) = 0.0_r8
        tlat(i,k) = 0.0_r8
        qsout(i,k) = 0.0_r8
        nsout(i,k) = 0.0_r8
        qric(i,k) = 0.0_r8
        nric(i,k) = 0.0_r8
        qniic(i,k) = 0.0_r8
        nsic(i,k) = 0.0_r8
      end do
    end do

    do i = 1, ncol
      rainflux = 0.0_r8
      snowflux = 0.0_r8
      rainnum = 0.0_r8
      snownum = 0.0_r8
      do k = 1, pver
        cldm = max(0.001_r8, cld(i,k))
        lcldm = max(0.001_r8, cld(i,k) * (1.0_r8 - 0.3_r8 * min(1.0_r8, max(0.0_r8, (tmelt - state%t(i,k)) / 20.0_r8))))
        icldm = max(0.001_r8, cldm - lcldm + 0.001_r8)

        dum = state%qc(i,k) / lcldm
        qcic(i,k) = min(5.0e-3_r8, max(0.0_r8, dum))
        dum = state%qi(i,k) / icldm
        qiic(i,k) = min(5.0e-3_r8, max(0.0_r8, dum))
        dum = state%nc(i,k) / lcldm
        ncic(i,k) = max(0.0_r8, dum)
        dum = state%ni(i,k) / icldm
        niic(i,k) = max(0.0_r8, dum)

        qric(i,k) = rainflux / (rho(i,k) * 2.0_r8)
        nric(i,k) = rainnum / (rho(i,k) * 2.0_r8)
        qniic(i,k) = snowflux / (rho(i,k) * 2.0_r8)
        nsic(i,k) = snownum / (rho(i,k) * 2.0_r8)

        prc = autoconv_coef * qcic(i,k) ** 2.47_r8 * (max(ncic(i,k), 1.0e6_r8) / 1.0e6_r8) ** (-1.79_r8)
        nprc = prc / (4.0_r8 / 3.0_r8 * 3.14159_r8 * rhoh2o * 25.0e-6_r8 ** 3)
        pra = accretion_coef * (qcic(i,k) * qric(i,k)) ** 1.15_r8
        npra = pra / 2.6e-10_r8
        dum = exp(0.3_r8 * (tmelt - state%t(i,k)))
        mnuccc = 0.005_r8 * qcic(i,k) * min(dum, 100.0_r8) * 1.0e-4_r8
        nnuccc = mnuccc / 4.2e-15_r8
        psacws = 0.05_r8 * qcic(i,k) * qniic(i,k) * rho(i,k)
        npsacws = psacws / 2.6e-10_r8
        prci = 0.001_r8 * max(0.0_r8, qiic(i,k) - 1.0e-5_r8)
        prai = 0.02_r8 * qiic(i,k) * qniic(i,k) * rho(i,k)
        nsagg = snow_agg_coef * qniic(i,k) * rho(i,k) * nsic(i,k) * 1.0e-3_r8
        nnuccd = 0.01_r8 * ccn(i,k) * max(0.0_r8, 1.0_r8 - state%t(i,k) / tmelt)

        esi = svp_ice(state%t(i,k))
        qvi = 0.622_r8 * esi / max(state%pmid(i,k) - 0.378_r8 * esi, 1.0_r8)
        dum = (state%q(i,k) - qvi) / (1.0_r8 + 2.0e6_r8 ** 2 * qvi / (cpair * 461.5_r8 * state%t(i,k) ** 2))
        berg = max(0.0_r8, 0.001_r8 * dum * min(1.0_r8, icldm * 10.0_r8))
        prds = 5.0e-6_r8 * qniic(i,k) * rho(i,k) * (state%q(i,k) / max(qvi, 1.0e-12_r8) - 1.0_r8)
        pre = -2.0e-5_r8 * qric(i,k) * rho(i,k) * max(0.0_r8, 1.0_r8 - state%q(i,k) / max(qsat_water(state%t(i,k), state%pmid(i,k)), 1.0e-12_r8))

        dum = (prc + pra + mnuccc + psacws + berg) * dt
        if (dum > state%qc(i,k)) then
          ratio = state%qc(i,k) / max(dum, qsmall)
          prc = prc * ratio
          pra = pra * ratio
          mnuccc = mnuccc * ratio
          psacws = psacws * ratio
          berg = berg * ratio
        end if

        dum = (prci + prai - mnuccc - berg) * dt
        if (dum > state%qi(i,k)) then
          ratio = state%qi(i,k) / max(dum, qsmall)
          prci = prci * ratio
          prai = prai * ratio
        end if

        qctend(i,k) = qctend(i,k) - (prc + pra + mnuccc + psacws + berg)
        qitend(i,k) = qitend(i,k) + mnuccc + berg - prci - prai
        nctend(i,k) = nctend(i,k) - (nprc + npra + nnuccc + npsacws)
        nitend(i,k) = nitend(i,k) + nnuccc + nnuccd - nsagg
        qvlat(i,k) = qvlat(i,k) - pre - prds
        tlat(i,k) = tlat(i,k) + latvap * (prc + pra + psacws + pre) + (latvap + latice) * (mnuccc + berg + prds)

        rainflux = rainflux + (prc + pra + pre) * rho(i,k) * state%pdel(i,k) / (rho(i,k) * gravit)
        rainflux = max(0.0_r8, rainflux)
        snowflux = snowflux + (prci + prai + psacws + mnuccc + prds) * state%pdel(i,k) / gravit
        snowflux = max(0.0_r8, snowflux)
        rainnum = max(0.0_r8, rainnum + nprc * state%pdel(i,k) / gravit)
        snownum = max(0.0_r8, snownum + nsagg * state%pdel(i,k) / gravit)

        qsout(i,k) = qniic(i,k) * cldm
        nsout(i,k) = nsic(i,k) * cldm
        qsout2(i,k) = qsout(i,k)
        nsout2(i,k) = nsout(i,k)
        if (qsout(i,k) > 1.0e-7_r8) then
          freqs(i,k) = 1.0_r8
        else
          freqs(i,k) = 0.0_r8
        end if
      end do

      prect(i) = (rainflux + snowflux) / rhoh2o
      precsl(i) = snowflux / rhoh2o
    end do

    do k = 1, pver
      do i = 1, ncol
        ptend%qc(i,k) = ptend%qc(i,k) + qctend(i,k)
        ptend%qi(i,k) = ptend%qi(i,k) + qitend(i,k)
        ptend%nc(i,k) = ptend%nc(i,k) + nctend(i,k)
        ptend%ni(i,k) = ptend%ni(i,k) + nitend(i,k)
        ptend%q(i,k)  = ptend%q(i,k) + qvlat(i,k)
        ptend%s(i,k)  = ptend%s(i,k) + tlat(i,k)
      end do
    end do

    call outfld2d('AQSNOW', qsout2)
    call outfld2d('ANSNOW', nsout2)
    call outfld2d('FREQS', freqs)
    call outfld('PRECT', prect)
    call outfld('PRECSL', precsl)
  end subroutine micro_mg_tend
end module micro_mg
"""

SOURCES: dict[str, str] = {
    "microp_aero.F90": MICROP_AERO,
    "micro_mg.F90": MICRO_MG,
}

"""Top-level driver modules: initial conditions, the physics package driver
(the CAM "core" call sequence), state/diagnostic history output, the
component coupler (``cam_comp``), and a restart module that is compiled but
never executed during the first time steps (coverage-filter fodder).
"""

INIDAT = """
module inidat
  use shr_kind_mod,   only: r8 => shr_kind_r8
  use ppgrid,         only: pcols, pver
  use physconst,      only: p0
  use phys_grid,      only: clat, clon
  use physics_types,  only: physics_state
  use shr_random_mod, only: shr_random_uniform
  implicit none
  private
  public :: read_initial_conditions
contains
  subroutine read_initial_conditions(state, pertlim, ncol)
    type(physics_state), intent(inout) :: state
    real(r8), intent(in) :: pertlim
    integer, intent(in) :: ncol
    integer :: i, k
    real(r8) :: sigma, tbase, pert(pcols)

    state%ncol = ncol
    do i = 1, ncol
      state%ps(i) = p0 + 800.0_r8 * cos(2.0_r8 * clon(i)) * cos(clat(i))
      state%phis(i) = 120.0_r8 * max(0.0_r8, sin(3.0_r8 * clon(i)))
    end do

    do k = 1, pver
      sigma = (k - 0.5_r8) / pver
      do i = 1, ncol
        tbase = 212.0_r8 + 76.0_r8 * sigma * cos(clat(i)) ** 0.5_r8
        state%t(i,k) = tbase + 2.0_r8 * sin(clon(i) + k * 0.7_r8)
        state%u(i,k) = 22.0_r8 * (1.0_r8 - sigma) * cos(clat(i)) + 3.0_r8 * sin(2.0_r8 * clon(i))
        state%v(i,k) = 2.5_r8 * sin(clat(i)) * cos(clon(i) + sigma)
        state%q(i,k) = 4.2e-3_r8 * sigma ** 1.5_r8 * cos(clat(i)) + 1.0e-6_r8
        state%qc(i,k) = 1.0e-6_r8 * sigma
        state%qi(i,k) = 2.0e-7_r8 * (1.0_r8 - sigma)
        state%nc(i,k) = 5.0e7_r8 * sigma
        state%ni(i,k) = 1.0e5_r8
        state%omega(i,k) = 0.01_r8 * sin(clon(i) * 3.0_r8 + k)
      end do
    end do

    do k = 1, pver
      call shr_random_uniform(pert, ncol)
      do i = 1, ncol
        state%t(i,k) = state%t(i,k) * (1.0_r8 + pertlim * (2.0_r8 * pert(i) - 1.0_r8))
      end do
    end do
  end subroutine read_initial_conditions
end module inidat
"""

CAM_DIAGNOSTICS = """
module cam_diagnostics
  use shr_kind_mod,   only: r8 => shr_kind_r8
  use ppgrid,         only: pcols, pver
  use physconst,      only: gravit
  use physics_types,  only: physics_state
  use physics_buffer, only: pbuf_cld, pbuf_relhum
  use cam_history,    only: outfld, outfld2d
  implicit none
  private
  public :: diag_phys_writeout
contains
  subroutine diag_phys_writeout(state, ncol)
    type(physics_state), intent(in) :: state
    integer, intent(in) :: ncol
    integer :: i, k
    real(r8) :: z3(pcols, pver)
    real(r8) :: omega(pcols, pver)
    real(r8) :: t(pcols, pver)
    real(r8) :: u(pcols, pver)
    real(r8) :: v(pcols, pver)
    real(r8) :: q(pcols, pver)
    real(r8) :: omegat(pcols, pver)
    real(r8) :: ps(pcols)

    do k = 1, pver
      do i = 1, ncol
        z3(i,k) = state%zm(i,k) + state%phis(i) / gravit
        omega(i,k) = state%omega(i,k)
        t(i,k) = state%t(i,k)
        u(i,k) = state%u(i,k)
        v(i,k) = state%v(i,k)
        q(i,k) = state%q(i,k)
        omegat(i,k) = state%omega(i,k) * state%t(i,k)
      end do
    end do
    do i = 1, ncol
      ps(i) = state%ps(i)
    end do

    call outfld2d('Z3', z3)
    call outfld2d('OMEGA', omega)
    call outfld2d('T', t)
    call outfld2d('UU', u)
    call outfld2d('VV', v)
    call outfld2d('Q', q)
    call outfld2d('OMEGAT', omegat)
    call outfld('PS', ps)
    call outfld2d('CLOUD', pbuf_cld)
    call outfld2d('RELHUM', pbuf_relhum)
  end subroutine diag_phys_writeout
end module cam_diagnostics
"""

PHYSPKG = """
module physpkg
  use shr_kind_mod,       only: r8 => shr_kind_r8
  use ppgrid,             only: pcols, pver
  use physconst,          only: latice, rhoh2o
  use physics_types,      only: physics_state, physics_tend, physics_ptend, physics_update, physics_ptend_init
  use camsrfexch,         only: cam_in_t, cam_out_t
  use cloud_fraction,     only: cldfrc
  use macrop_driver,      only: macrop_driver_tend
  use microp_aero,        only: microp_aero_run
  use micro_mg,           only: micro_mg_tend
  use convect_deep,       only: convect_deep_tend
  use convect_shallow,    only: convect_shallow_tend
  use radiation,          only: radiation_tend
  use vertical_diffusion, only: vertical_diffusion_tend
  use surface_merge,      only: merge_surface_state
  use cam_diagnostics,    only: diag_phys_writeout
  use cam_history,        only: outfld
  implicit none
  private
  public :: tphysbc
contains
  subroutine tphysbc(state, tend, ptend, cam_in, cam_out, dt, ncol)
    type(physics_state), intent(inout) :: state
    type(physics_tend),  intent(inout) :: tend
    type(physics_ptend), intent(inout) :: ptend
    type(cam_in_t),      intent(inout) :: cam_in
    type(cam_out_t),     intent(inout) :: cam_out
    real(r8), intent(in) :: dt
    integer, intent(in) :: ncol
    integer :: i
    real(r8) :: cld(pcols, pver)
    real(r8) :: concld(pcols, pver)
    real(r8) :: cltot(pcols)
    real(r8) :: cllow(pcols)
    real(r8) :: clmed(pcols)
    real(r8) :: clhgh(pcols)
    real(r8) :: wsub(pcols)
    real(r8) :: ccn(pcols, pver)
    real(r8) :: prect(pcols)
    real(r8) :: precsl(pcols)
    real(r8) :: precc(pcols)
    real(r8) :: qsout2(pcols, pver)
    real(r8) :: nsout2(pcols, pver)
    real(r8) :: freqs(pcols, pver)
    real(r8) :: cmfmc(pcols, pver)
    real(r8) :: ts_merged(pcols)
    real(r8) :: flwds(pcols)
    real(r8) :: flns(pcols)
    real(r8) :: fsds(pcols)
    real(r8) :: fsns(pcols)
    real(r8) :: qrl(pcols, pver)
    real(r8) :: qrs(pcols, pver)
    real(r8) :: precl_total(pcols)

    call physics_ptend_init(ptend)
    call merge_surface_state(cam_in, ts_merged, ncol)

    call cldfrc(state, cld, concld, cltot, cllow, clmed, clhgh, ncol)
    call macrop_driver_tend(state, ptend, cld, dt, ncol)
    call physics_update(state, ptend, dt)

    call microp_aero_run(state, wsub, ccn, ncol)
    call micro_mg_tend(state, ptend, cld, ccn, dt, prect, precsl, qsout2, nsout2, freqs, ncol)
    call physics_update(state, ptend, dt)

    call convect_deep_tend(state, ptend, precc, dt, ncol)
    call convect_shallow_tend(state, ptend, cmfmc, dt, ncol)
    call physics_update(state, ptend, dt)

    call radiation_tend(state, ptend, ts_merged, flwds, flns, fsds, fsns, qrl, qrs, ncol)
    call physics_update(state, ptend, dt)

    call vertical_diffusion_tend(state, ptend, cam_in, ts_merged, dt, ncol)
    call physics_update(state, ptend, dt)

    do i = 1, ncol
      precl_total(i) = prect(i) + precc(i)
      cam_out%flwds(i) = flwds(i)
      cam_out%netsw(i) = fsns(i)
      cam_out%precl(i) = precl_total(i)
      cam_out%precsl(i) = precsl(i)
      cam_out%tbot(i) = state%t(i,pver)
      cam_out%ubot(i) = state%u(i,pver)
      cam_out%vbot(i) = state%v(i,pver)
      cam_out%qbot(i) = state%q(i,pver)
      cam_out%pbot(i) = state%pmid(i,pver)
      cam_out%zbot(i) = state%zm(i,pver)
    end do

    call outfld('PRECL', precl_total)
    call diag_phys_writeout(state, ncol)
  end subroutine tphysbc
end module physpkg
"""

CAM_COMP = """
module cam_comp
  use shr_kind_mod,   only: r8 => shr_kind_r8
  use ppgrid,         only: pcols, pver
  use phys_grid,      only: phys_grid_init, get_ncols_p
  use dyn_grid,       only: dyn_grid_init
  use dyn_comp,       only: dyn_init, dyn_run
  use dyn_hydrostatic, only: compute_hydrostatic
  use te_map,         only: te_fixer
  use physics_types,  only: physics_tend_init, physics_ptend_init
  use physics_buffer, only: pbuf_init
  use camsrfexch,     only: hub2atm_alloc, atm2hub_alloc
  use camstate,       only: state, tend, ptend, cam_in, cam_out
  use inidat,         only: read_initial_conditions
  use physpkg,        only: tphysbc
  use lnd_comp,       only: lnd_init, lnd_run
  use docn_comp,      only: docn_init, docn_run
  use ice_comp,       only: ice_run
  use cloud_fraction, only: cldfrc_init
  use micro_mg,       only: micro_mg_init
  use cam_history,    only: history_init, addfld
  use shr_random_mod, only: shr_random_setseed
  use time_manager,   only: timemgr_init, advance_timestep, get_step_size, get_nstep
  implicit none
  private
  public :: cam_init, cam_run_step
contains
  subroutine cam_init(pertlim, seed)
    real(r8), intent(in) :: pertlim
    integer, intent(in) :: seed
    integer :: ncol
    call shr_random_setseed(seed)
    call timemgr_init(1800.0_r8)
    call history_init()
    call addfld('T', 'K')
    call addfld('WSUB', 'm/s')
    call phys_grid_init()
    call dyn_grid_init()
    call dyn_init()
    call pbuf_init()
    call hub2atm_alloc(cam_in)
    call atm2hub_alloc(cam_out)
    call physics_tend_init(tend)
    call physics_ptend_init(ptend)
    call cldfrc_init(0.02_r8)
    call micro_mg_init(400.0e-6_r8)
    call lnd_init()
    call docn_init()
    ncol = get_ncols_p()
    call read_initial_conditions(state, pertlim, ncol)
    call compute_hydrostatic(state, ncol)
  end subroutine cam_init

  subroutine cam_run_step()
    integer :: ncol
    real(r8) :: dt
    ncol = get_ncols_p()
    dt = get_step_size()
    call dyn_run(state, tend, dt, ncol)
    call te_fixer(state, ncol)
    call tphysbc(state, tend, ptend, cam_in, cam_out, dt, ncol)
    call lnd_run(cam_out, cam_in, dt, ncol)
    call docn_run(cam_in, ncol)
    call ice_run(cam_in, ncol)
    call advance_timestep()
  end subroutine cam_run_step
end module cam_comp
"""

RESTART_MOD = """
module restart_mod
  use shr_kind_mod,  only: r8 => shr_kind_r8
  use ppgrid,        only: pcols, pver
  use physics_types, only: physics_state
  implicit none
  private
  public :: write_restart, read_restart
  integer :: restart_count = 0
contains
  subroutine write_restart(state)
    type(physics_state), intent(in) :: state
    real(r8) :: checksum
    checksum = sum(state%t) + sum(state%q) + sum(state%ps)
    restart_count = restart_count + 1
  end subroutine write_restart

  subroutine read_restart(state)
    type(physics_state), intent(inout) :: state
    state%t = state%t + 0.0_r8
    restart_count = restart_count + 1
  end subroutine read_restart
end module restart_mod
"""

SOURCES: dict[str, str] = {
    "inidat.F90": INIDAT,
    "cam_diagnostics.F90": CAM_DIAGNOSTICS,
    "physpkg.F90": PHYSPKG,
    "cam_comp.F90": CAM_COMP,
    "restart_mod.F90": RESTART_MOD,
}

"""Registry of the synthetic model's source modules and build configurations.

The paper starts from the full CESM source tree (~2400 module files) and uses
the build system / KGen to narrow it to the ~820 modules actually compiled
into an FC5 executable before any graph is built.  This module is the
stand-in for that step: it knows every Fortran file the synthetic model
ships (:data:`MODULE_SPECS`), which subsystem provides it, and which files a
given *compset* (component set, CESM's name for a build configuration)
actually compiles (:class:`CompsetSpec`, :data:`COMPSET_FC5`).

Public API
----------
``ModuleSpec``
    One Fortran source file: name, providing subsystem, pipeline role.
``CompsetSpec``
    A named build configuration: the files it excludes from compilation and
    the CPP macros it defines.
``COMPSET_FC5``
    The FC5-like configuration used by all of the paper's experiments.
``iter_module_specs(compset=None, include_uncompiled=True)``
    Iterate specs in build order, optionally restricted to compiled files.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from . import modules as _modules


#: Roles a module plays in the paper's pipeline.  "unused" modules exist so
#: the compset restriction and (later) coverage filtering have real work.
ROLES = (
    "infrastructure",
    "types",
    "dynamics",
    "physics",
    "surface",
    "driver",
    "unused",
)


@dataclass(frozen=True)
class ModuleSpec:
    """One Fortran source file of the synthetic model."""

    filename: str       #: Fortran file name, e.g. ``"micro_mg.F90"``
    provider: str       #: python subsystem module under ``repro.model.modules``
    role: str           #: one of :data:`ROLES`

    def __post_init__(self) -> None:
        if self.role not in ROLES:
            raise ValueError(f"unknown module role {self.role!r}")


@dataclass(frozen=True)
class CompsetSpec:
    """A build configuration: which files compile and which macros hold.

    ``excluded_files`` models the paper's 2400 -> 820 module reduction: the
    listed files ship in the source tree but are not compiled into the
    executable for this compset.
    """

    name: str
    description: str = ""
    excluded_files: frozenset[str] = frozenset()
    macros: dict[str, str] = field(default_factory=dict, hash=False, compare=False)

    def compiles(self, spec: ModuleSpec | str) -> bool:
        """True when this compset compiles ``spec`` (a spec or file name)."""
        filename = spec if isinstance(spec, str) else spec.filename
        return filename not in self.excluded_files


_ROLE_BY_PROVIDER = {
    "infrastructure": "infrastructure",
    "types": "types",
    "dynamics": "dynamics",
    "physics_wv": "physics",
    "microphysics": "physics",
    "convection": "physics",
    "radiation": "physics",
    "vertical_diffusion": "physics",
    "surface": "surface",
    "driver": "driver",
    "unused": "unused",
}


def _build_specs() -> tuple[ModuleSpec, ...]:
    specs: list[ModuleSpec] = []
    for provider in _modules.SOURCE_PROVIDERS:
        provider_name = provider.__name__.rsplit(".", 1)[-1]
        role = _ROLE_BY_PROVIDER[provider_name]
        for filename in provider.SOURCES:
            specs.append(ModuleSpec(filename=filename, provider=provider_name, role=role))
    return tuple(specs)


#: Every source file in build order (infrastructure first, matching
#: :data:`repro.model.modules.SOURCE_PROVIDERS`).
MODULE_SPECS: tuple[ModuleSpec, ...] = _build_specs()

#: The FC5-like configuration of the paper's experiments.  Chemistry, WACCM,
#: CARMA and CLUBB ship in the tree but are not compiled; ``seasalt_optics``
#: and ``restart_mod`` are compiled but never executed in the first steps
#: (coverage-filter fodder for a later pipeline stage).
COMPSET_FC5 = CompsetSpec(
    name="FC5",
    description="CAM5-like physics, prescribed ocean/ice, one chunk",
    excluded_files=frozenset(
        {
            "cam_chemistry.F90",
            "waccm_physics.F90",
            "carma_mod.F90",
            "clubb_intr.F90",
        }
    ),
    macros={"FC5": "1", "CPRINTEL": "1"},
)

#: All registered compsets by name.
COMPSETS: dict[str, CompsetSpec] = {COMPSET_FC5.name: COMPSET_FC5}


@dataclass(frozen=True)
class OutputField:
    """One named history output variable the model writes via ``outfld``.

    This is the registry's contract with the runtime: a full model run must
    produce every declared field (``repro.runtime.run_model`` validates it),
    and the ensemble/ECT stages consume exactly this variable set — the
    analogue of the paper's 120 CAM output variables.
    """

    name: str        #: history field name, e.g. ``"PRECT"``
    filename: str    #: Fortran file whose module writes the field
    rank: int        #: 1 for (pcols) fields, 2 for (pcols, pver) fields

    def __post_init__(self) -> None:
        if self.rank not in (1, 2):
            raise ValueError(f"output field rank must be 1 or 2, got {self.rank}")


#: Every output variable the synthetic model writes, in write order.
OUTPUT_FIELDS: tuple[OutputField, ...] = (
    # cloud fraction diagnostics
    OutputField("CLDTOT", "cloud_fraction.F90", 1),
    OutputField("CLDLOW", "cloud_fraction.F90", 1),
    OutputField("CLDMED", "cloud_fraction.F90", 1),
    OutputField("CLDHGH", "cloud_fraction.F90", 1),
    OutputField("RHPERT", "cloud_fraction.F90", 1),
    # aerosol / sub-grid velocity
    OutputField("WSUB", "microp_aero.F90", 1),
    OutputField("CCN3", "microp_aero.F90", 2),
    # stratiform microphysics
    OutputField("AQSNOW", "micro_mg.F90", 2),
    OutputField("ANSNOW", "micro_mg.F90", 2),
    OutputField("FREQS", "micro_mg.F90", 2),
    OutputField("PRECT", "micro_mg.F90", 1),
    OutputField("PRECSL", "micro_mg.F90", 1),
    # deep convection
    OutputField("PRECC", "convect_deep.F90", 1),
    OutputField("CAPE", "convect_deep.F90", 1),
    # radiation
    OutputField("FLDS", "radlw.F90", 1),
    OutputField("FLNS", "radlw.F90", 1),
    OutputField("QRL", "radlw.F90", 2),
    OutputField("FSDS", "radsw.F90", 1),
    OutputField("FSNS", "radsw.F90", 1),
    OutputField("QRS", "radsw.F90", 2),
    # boundary layer / surface exchange
    OutputField("TAUX", "vertical_diffusion.F90", 1),
    OutputField("TAUY", "vertical_diffusion.F90", 1),
    OutputField("SHFLX", "vertical_diffusion.F90", 1),
    OutputField("LHFLX", "vertical_diffusion.F90", 1),
    OutputField("TREFHT", "vertical_diffusion.F90", 1),
    OutputField("U10", "vertical_diffusion.F90", 1),
    # surface components
    OutputField("SNOWHLND", "lnd_comp.F90", 1),
    OutputField("TSLAND", "lnd_comp.F90", 1),
    OutputField("TS", "surface_merge.F90", 1),
    # physics driver total precipitation
    OutputField("PRECL", "physpkg.F90", 1),
    # state diagnostics
    OutputField("Z3", "cam_diagnostics.F90", 2),
    OutputField("OMEGA", "cam_diagnostics.F90", 2),
    OutputField("T", "cam_diagnostics.F90", 2),
    OutputField("UU", "cam_diagnostics.F90", 2),
    OutputField("VV", "cam_diagnostics.F90", 2),
    OutputField("Q", "cam_diagnostics.F90", 2),
    OutputField("OMEGAT", "cam_diagnostics.F90", 2),
    OutputField("PS", "cam_diagnostics.F90", 1),
    OutputField("CLOUD", "cam_diagnostics.F90", 2),
    OutputField("RELHUM", "cam_diagnostics.F90", 2),
)

#: Field names in declaration order (the paper's output-variable vector).
OUTPUT_FIELD_NAMES: tuple[str, ...] = tuple(f.name for f in OUTPUT_FIELDS)


def iter_output_fields(
    compset: CompsetSpec | str | None = None,
) -> Iterator[OutputField]:
    """Yield declared output fields, restricted to files ``compset`` compiles."""
    if isinstance(compset, str):
        compset = get_compset(compset)
    for fld in OUTPUT_FIELDS:
        if compset is None or compset.compiles(fld.filename):
            yield fld


def get_compset(name: str) -> CompsetSpec:
    """Look up a compset by name, raising ``KeyError`` with the known names."""
    try:
        return COMPSETS[name]
    except KeyError:
        known = ", ".join(sorted(COMPSETS))
        raise KeyError(f"unknown compset {name!r} (known: {known})") from None


def iter_module_specs(
    compset: CompsetSpec | str | None = None,
    include_uncompiled: bool = True,
) -> Iterator[ModuleSpec]:
    """Yield :class:`ModuleSpec` entries in build order.

    Parameters
    ----------
    compset:
        A :class:`CompsetSpec` or compset name.  Required when
        ``include_uncompiled`` is False.
    include_uncompiled:
        When False, skip files the compset does not compile.
    """
    if isinstance(compset, str):
        compset = get_compset(compset)
    for spec in MODULE_SPECS:
        if not include_uncompiled:
            if compset is None:
                raise ValueError("include_uncompiled=False requires a compset")
            if not compset.compiles(spec):
                continue
        yield spec


__all__ = [
    "COMPSETS",
    "COMPSET_FC5",
    "CompsetSpec",
    "MODULE_SPECS",
    "ModuleSpec",
    "OUTPUT_FIELDS",
    "OUTPUT_FIELD_NAMES",
    "OutputField",
    "ROLES",
    "get_compset",
    "iter_module_specs",
    "iter_output_fields",
]

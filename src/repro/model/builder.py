"""Assemble the synthetic model's Fortran source tree for one configuration.

This is the analogue of the paper's "check out CESM, pick a compset, run the
build system" step.  :func:`build_model_source` takes a :class:`ModelConfig`,
collects every Fortran file from the subsystem registry
(:mod:`repro.model.registry`), applies any requested bug-injection patches
(:mod:`repro.model.patches`), and returns a :class:`ModelSource` — the single
object the rest of the pipeline consumes:

>>> src = build_model_source(ModelConfig())
>>> len(src.files) > len(src.compiled_files)   # FC5 excludes some files
True
>>> asts = src.parse()                  # filename -> SourceFileAST

``ModelSource.parse()`` preprocesses with the compset's macros and caches the
ASTs, so the metagraph builder (:mod:`repro.graphs`), the runtime and the
slicer all share one parse of the tree.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..fortran import parse_source
from ..fortran.ast_nodes import ModuleNode, SourceFileAST
from .patches import get_patch
from .registry import CompsetSpec, get_compset, iter_module_specs
from . import modules as _modules


@dataclass(frozen=True)
class ModelConfig:
    """Build configuration for the synthetic model.

    Attributes
    ----------
    compset:
        Name of the registered :class:`~repro.model.registry.CompsetSpec`
        (default ``"FC5"``, the configuration of all paper experiments).
    patches:
        Names of :class:`~repro.model.patches.SourcePatch` bug injections to
        apply, in order (empty for the accepted / control model).
    macros:
        Extra CPP macros defined on top of the compset's own.
    """

    compset: str = "FC5"
    patches: tuple[str, ...] = ()
    #: compares (so run_model's source/config mismatch guard sees macro
    #: differences) but stays out of the hash — dicts are unhashable
    macros: dict[str, str] = field(default_factory=dict, hash=False)

    def __post_init__(self) -> None:
        if not isinstance(self.patches, tuple):
            object.__setattr__(self, "patches", tuple(self.patches))


@dataclass
class ModelSource:
    """The assembled source tree for one :class:`ModelConfig`.

    ``files`` is every file in the tree; ``compiled_files`` the subset the
    compset compiles (the paper's 2400 -> 820 reduction).  ``parse`` returns
    preprocessed + parsed ASTs, cached after the first call.
    """

    config: ModelConfig
    compset: CompsetSpec
    files: dict[str, str]
    compiled_files: tuple[str, ...]
    macros: dict[str, str]
    _asts: dict[str, SourceFileAST] | None = field(default=None, repr=False)
    _digest: str | None = field(default=None, repr=False, compare=False)

    def compiled_sources(self) -> dict[str, str]:
        """Mapping of compiled file name -> source text, in build order."""
        return {name: self.files[name] for name in self.compiled_files}

    def content_digest(self) -> str:
        """SHA-256 over the compiled tree (names + patched text), cached.

        This is the "what would the compiler see" identity the member
        cache keys on; computing it once per instance keeps cache-key
        derivation O(1) per ensemble member instead of re-hashing ~40
        files for each of N members.
        """
        if self._digest is None:
            h = hashlib.sha256()
            for name in self.compiled_files:
                h.update(name.encode())
                h.update(b"\x00")
                h.update(self.files[name].encode())
                h.update(b"\x01")
            self._digest = h.hexdigest()
        return self._digest

    def parse(self, include_uncompiled: bool = False) -> dict[str, SourceFileAST]:
        """Parse the tree into ``{filename: SourceFileAST}``.

        Only compiled files are parsed by default — uncompiled files are not
        part of the executable and therefore not part of the digraph.  The
        result for the default call is cached.
        """
        if include_uncompiled:
            return {
                name: parse_source(text, filename=name, macros=self.macros)
                for name, text in self.files.items()
            }
        if self._asts is None:
            self._asts = {
                name: parse_source(text, filename=name, macros=self.macros)
                for name, text in self.compiled_sources().items()
            }
        return self._asts

    def modules(self) -> dict[str, ModuleNode]:
        """Mapping of Fortran module name -> parsed module (compiled files)."""
        out: dict[str, ModuleNode] = {}
        for ast in self.parse().values():
            for mod in ast.modules:
                out[mod.name] = mod
        return out

    @property
    def total_lines(self) -> int:
        """Physical line count of the whole tree (compiled or not)."""
        return sum(text.count("\n") + 1 for text in self.files.values())


def build_model_source(config: ModelConfig | None = None) -> ModelSource:
    """Assemble (and optionally patch) the model source for ``config``."""
    config = config or ModelConfig()
    compset = get_compset(config.compset)

    files: dict[str, str] = {}
    compiled: list[str] = []
    providers = {
        p.__name__.rsplit(".", 1)[-1]: p.SOURCES for p in _modules.SOURCE_PROVIDERS
    }
    for spec in iter_module_specs():
        files[spec.filename] = providers[spec.provider][spec.filename]
        if compset.compiles(spec):
            compiled.append(spec.filename)

    for patch_name in config.patches:
        files = get_patch(patch_name).apply(files)

    macros = dict(compset.macros)
    macros.update(config.macros)
    return ModelSource(
        config=config,
        compset=compset,
        files=files,
        compiled_files=tuple(compiled),
        macros=macros,
    )


__all__ = ["ModelConfig", "ModelSource", "build_model_source"]

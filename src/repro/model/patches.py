"""Bug-injection patches for the paper's root-cause-analysis experiments.

Each experiment in the paper starts from a known-good model and introduces a
small, realistic source change — a wrong constant, a misused minimum, a
different random stream — then asks the pipeline to locate it.  A
:class:`SourcePatch` is that change: an exact-match text substitution in one
Fortran file, validated to apply exactly once so experiments cannot silently
drift when the model source evolves.

The registered patches mirror the paper's experiment families:

``goffgratch``
    Wrong coefficient in the Goff-Gratch saturation vapour pressure formula
    (the paper's GOFFGRATCH experiment, §6).
``wsubbug``
    Sub-grid vertical velocity clamped to its minimum instead of the
    TKE-derived value (the paper's WSUB-style minimum bug).
``rand-mt``
    Reversed sign of the PRNG-derived relative-humidity perturbation in the
    cloud fraction scheme (stand-in for the RAND-MT stream change).
``mg-autoconv``
    Autoconversion coefficient off by two orders of magnitude in the
    two-moment microphysics.
``cldfrc-premib``
    Shifted low/high-cloud pressure boundary in the cloud fraction scheme.

Use :func:`get_patch` / :func:`list_patches` to look patches up and
``ModelConfig(patches=("goffgratch",))`` to build a patched model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..errors import ReproError


class PatchError(ReproError, ValueError):
    """Raised when a patch cannot be applied exactly once to its file."""


class UnknownPatchError(PatchError, KeyError):
    """Raised for a patch name that is not registered.

    Subclasses both :class:`PatchError` (so ``ModelConfig(patches=...)``
    failures surface as patch errors, not bare ``KeyError`` out of a dict
    lookup) and :class:`KeyError` (for callers treating the registry as a
    mapping).
    """

    def __str__(self) -> str:  # avoid KeyError's repr-quoting of the message
        return self.args[0] if self.args else ""


@dataclass(frozen=True)
class SourcePatch:
    """An exact-match, apply-once text substitution in one Fortran file."""

    name: str           #: experiment-facing identifier, e.g. ``"goffgratch"``
    filename: str       #: Fortran file the patch targets
    description: str    #: one-line description of the injected bug
    old: str            #: text that must occur exactly once in the file
    new: str            #: replacement text

    def apply(self, files: Mapping[str, str]) -> dict[str, str]:
        """Return a copy of ``files`` with this patch applied.

        Raises :class:`PatchError` when the target file is missing or the
        ``old`` text does not occur exactly once.
        """
        if self.filename not in files:
            raise PatchError(
                f"patch {self.name!r} targets missing file {self.filename!r}"
            )
        text = files[self.filename]
        occurrences = text.count(self.old)
        if occurrences == 0:
            known = ", ".join(list_patches())
            raise PatchError(
                f"patch {self.name!r} found no occurrence of its target text "
                f"in {self.filename!r} — the model source has drifted under "
                f"this patch (registered patches: {known})"
            )
        if occurrences != 1:
            raise PatchError(
                f"patch {self.name!r} expected exactly one occurrence of its "
                f"target in {self.filename!r}, found {occurrences}"
            )
        patched = dict(files)
        patched[self.filename] = text.replace(self.old, self.new)
        return patched


_PATCHES: dict[str, SourcePatch] = {}


def _register(patch: SourcePatch) -> SourcePatch:
    if patch.name in _PATCHES:
        raise ValueError(f"duplicate patch name {patch.name!r}")
    _PATCHES[patch.name] = patch
    return patch


_register(
    SourcePatch(
        name="goffgratch",
        filename="wv_saturation.F90",
        description="wrong third coefficient in the Goff-Gratch SVP formula",
        old="term3 = 8.1328e-3_r8",
        new="term3 = 8.1328e-2_r8",
    )
)

_register(
    SourcePatch(
        name="wsubbug",
        filename="microp_aero.F90",
        description="sub-grid vertical velocity clamped to its minimum value",
        old="wsub(i) = 0.20_r8 * sqrt(1.0_r8 + 25.0_r8 * tkebg(i))",
        new="wsub(i) = wsubmin",
    )
)

_register(
    SourcePatch(
        name="rand-mt",
        filename="shr_random_mod.F90",
        description=(
            "swapped-in legacy Mersenne-Twister port scales the raw state "
            "by the wrong power of two, biasing every variate low"
        ),
        old="harvest(i) = min(harvest(i), 0.99999999999999989_r8)",
        new="harvest(i) = 0.5_r8 * harvest(i)",
    )
)

_register(
    SourcePatch(
        name="mg-autoconv",
        filename="micro_mg.F90",
        description="autoconversion coefficient two orders of magnitude low",
        old="autoconv_coef = 1350.0_r8",
        new="autoconv_coef = 13.50_r8",
    )
)

_register(
    SourcePatch(
        name="cldfrc-premib",
        filename="cloud_fraction.F90",
        description="shifted low-cloud pressure boundary in cloud fraction",
        old="premib = 70000.0_r8",
        new="premib = 78000.0_r8",
    )
)


def get_patch(name: str) -> SourcePatch:
    """Look up a registered patch.

    Raises :class:`UnknownPatchError` (a :class:`PatchError` that is also a
    ``KeyError``) naming the known patches, so a typo in
    ``ModelConfig(patches=...)`` fails loudly instead of leaking a bare
    ``KeyError`` out of :func:`repro.model.builder.build_model_source`.
    """
    try:
        return _PATCHES[name]
    except KeyError:
        known = ", ".join(sorted(_PATCHES))
        raise UnknownPatchError(
            f"unknown patch {name!r} (known: {known})"
        ) from None


def list_patches() -> list[str]:
    """Names of all registered patches, sorted."""
    return sorted(_PATCHES)


__all__ = [
    "PatchError",
    "SourcePatch",
    "UnknownPatchError",
    "get_patch",
    "list_patches",
]

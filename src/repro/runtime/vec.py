"""Member-batched (vectorized) execution of the numerical interpreter.

One compiled evaluation advances *all* members of an ensemble at once:
per-member ``pertlim`` draws and PRNG seeds become leading-axis arrays
(:class:`~repro.runtime.values.MemberBatch`), scalar operations broadcast
over the member axis through numpy ufuncs, and near-identical control flow
diverges via ``where``-masked evaluation — an ``if`` whose condition varies
per member executes every branch under a boolean member mask, blending
stores so inactive members keep their old values.

Design rules (enforced, not assumed):

* **Only REAL and LOGICAL arrays carry the member axis.**  INTEGER arrays
  (neighbour tables, index maps) stay member-uniform plain ndarrays so
  they remain usable as subscripts; a member-varying store into one raises
  :class:`~repro.runtime.values.VectorizationError`.
* **Scalars promote on first member-varying store.**  A scalar slot that
  receives a member-varying value is rebound to a fresh ``(n,)``
  :class:`MemberBatch`; the copy-on-rebind keeps ``a = b`` from aliasing.
* **Divergence is masked, never forked.**  A member-batched ``if``
  condition must be a batch *scalar* (shape ``(n,)``); branch bodies run
  under the branch's member mask and every store blends against it.
  Constructs that cannot be expressed under a partial mask — ``return`` /
  ``exit`` / ``cycle`` / ``stop``, PRNG draws, ``outfld`` history writes,
  member-varying loop bounds or ``select`` selectors — raise
  :class:`VectorizationError` instead of silently mixing members.
* **Bit-identity with the scalar interpreter.**  Every arithmetic path
  reuses the scalar runtime's FPU (whose ufunc formulation is batch-safe),
  the batched PRNG reproduces each member's scalar stream exactly, and
  statement/coverage accounting tracks per-member totals under masks — the
  conformance suite checks outputs, coverage and draw counts per member
  against :func:`repro.runtime.run_model`.

The stable entry point is :func:`run_model_batch`, which mirrors
:func:`repro.runtime.run_model` over a list of :class:`RunConfig` members
that share everything but ``pertlim`` and ``seed``, and slices one
:class:`RunResult` per member out of the batch.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..fortran.ast_nodes import (
    Apply,
    DerivedRef,
    DoLoop,
    DoWhile,
    IfBlock,
    SelectCase,
    Stmt,
    VarRef,
    WhereBlock,
)
from .compiler import NodeCompiler, _MISSING
from .coverage import CoverageTrace
from .interpreter import _DTYPES, Interpreter
from .intrinsics import INTRINSIC_FUNCTIONS
from .prng import BatchedPRNGStreams
from .values import (
    ComponentRef,
    DerivedValue,
    ElementRef,
    FortranRuntimeError,
    IntentViolationError,
    MemberBatch,
    Ref,
    ScopeRef,
    StatementLimitExceeded,
    UndefinedNameError,
    VectorizationError,
    _Cycle,
    _Exit,
)

__all__ = [
    "VEC_INTRINSICS",
    "VecInterpreter",
    "VecNodeCompiler",
    "run_model_batch",
]

_INT_HUGE = 2147483647
_F64_MAX = float(np.finfo(np.float64).max)


def _lift(mask: np.ndarray, model_ndim: int) -> np.ndarray:
    """Reshape a ``(n,)`` member mask to ``(n, 1, ..., 1)`` so it broadcasts
    against a batch with ``model_ndim`` model axes."""
    if model_ndim <= 0:
        return mask
    return mask.reshape(mask.shape + (1,) * model_ndim)


def _model_axes(base: np.ndarray) -> tuple[int, ...]:
    return tuple(range(1, base.ndim))


# --------------------------------------------------------------------------- #
# Member-batch-aware intrinsics
# --------------------------------------------------------------------------- #
def _any_batch(*args) -> bool:
    return any(isinstance(a, MemberBatch) for a in args)


def _vec_sum(array, dim=None):
    if isinstance(array, MemberBatch):
        base = np.asarray(array)
        if dim is not None:
            # model axis d (1-based) is base axis d: axis 0 is the member axis
            return np.sum(base, axis=int(dim)).view(MemberBatch)
        return np.sum(base, axis=_model_axes(base)).view(MemberBatch)
    return INTRINSIC_FUNCTIONS["sum"](array, dim)


def _vec_maxval(array):
    if isinstance(array, MemberBatch):
        base = np.asarray(array)
        return np.max(base, axis=_model_axes(base)).view(MemberBatch)
    return INTRINSIC_FUNCTIONS["maxval"](array)


def _vec_minval(array):
    if isinstance(array, MemberBatch):
        base = np.asarray(array)
        return np.min(base, axis=_model_axes(base)).view(MemberBatch)
    return INTRINSIC_FUNCTIONS["minval"](array)


def _vec_size(array, dim=None):
    if isinstance(array, MemberBatch):
        base = np.asarray(array)
        if dim is None:
            size = 1
            for extent in base.shape[1:]:
                size *= extent
            return size
        return int(base.shape[int(dim)])
    return INTRINSIC_FUNCTIONS["size"](array, dim)


def _vec_count(mask):
    if isinstance(mask, MemberBatch):
        base = np.asarray(mask)
        if base.ndim == 1:
            return base.astype(np.int64).view(MemberBatch)
        out = np.count_nonzero(base, axis=_model_axes(base))
        return np.asarray(out, dtype=np.int64).view(MemberBatch)
    return INTRINSIC_FUNCTIONS["count"](mask)


def _vec_any(mask):
    if isinstance(mask, MemberBatch):
        base = np.asarray(mask)
        return np.any(base, axis=_model_axes(base)).view(MemberBatch)
    return INTRINSIC_FUNCTIONS["any"](mask)


def _vec_all(mask):
    if isinstance(mask, MemberBatch):
        base = np.asarray(mask)
        return np.all(base, axis=_model_axes(base)).view(MemberBatch)
    return INTRINSIC_FUNCTIONS["all"](mask)


def _vec_merge(tsource, fsource, mask):
    if _any_batch(tsource, fsource, mask):
        # np.where is not a ufunc: lift batches by hand and re-wrap
        target = 0
        for v in (tsource, fsource, mask):
            if isinstance(v, MemberBatch):
                target = max(target, v.ndim - 1)
            elif isinstance(v, np.ndarray):
                target = max(target, v.ndim)
        t, f, m = (
            v._lifted(target) if isinstance(v, MemberBatch) else v
            for v in (tsource, fsource, mask)
        )
        return np.where(m, t, f).view(MemberBatch)
    return INTRINSIC_FUNCTIONS["merge"](tsource, fsource, mask)


def _vec_huge(x):
    if isinstance(x, MemberBatch):
        if np.issubdtype(np.asarray(x).dtype, np.integer):
            return _INT_HUGE
        return _F64_MAX
    return INTRINSIC_FUNCTIONS["huge"](x)


def _rewrap_math(name: str):
    base = INTRINSIC_FUNCTIONS[name]

    def wrapped(x):
        # np.vectorize drops the subclass; restore the member axis marker
        result = base(x)
        if isinstance(x, MemberBatch) and isinstance(result, np.ndarray):
            return result.view(MemberBatch)
        return result

    return wrapped


def _batch_unsupported(name: str):
    base = INTRINSIC_FUNCTIONS[name]

    def wrapped(*args, **kwargs):
        if _any_batch(*args, *kwargs.values()):
            raise VectorizationError(
                f"intrinsic {name!r} over a member batch is not supported "
                "by the vectorized runtime"
            )
        return base(*args, **kwargs)

    return wrapped


#: INTRINSIC_FUNCTIONS with member-batch-aware replacements for every
#: implementation that reduces, reshapes, or otherwise collapses the array
#: it is given (and so would silently fold the member axis into the model).
VEC_INTRINSICS: dict[str, object] = {
    **INTRINSIC_FUNCTIONS,
    "sum": _vec_sum,
    "maxval": _vec_maxval,
    "minval": _vec_minval,
    "size": _vec_size,
    "count": _vec_count,
    "any": _vec_any,
    "all": _vec_all,
    "merge": _vec_merge,
    "huge": _vec_huge,
    "gamma": _rewrap_math("gamma"),
    "erf": _rewrap_math("erf"),
    "erfc": _rewrap_math("erfc"),
    "spread": _batch_unsupported("spread"),
    "reshape": _batch_unsupported("reshape"),
    "matmul": _batch_unsupported("matmul"),
    "dot_product": _batch_unsupported("dot_product"),
}


# --------------------------------------------------------------------------- #
# Compiler: masked control flow and member-aware stores
# --------------------------------------------------------------------------- #
class VecNodeCompiler(NodeCompiler):
    """Closure compiler whose control flow and stores honour member masks.

    All divergence state lives on the interpreter (``interp._mask``,
    ``interp._extra_statements``), so the compiled closures stay shareable
    per AST node exactly like the scalar compiler's.
    """

    __slots__ = ()

    _intrinsic_table = VEC_INTRINSICS

    # ------------------------------------------------------- accounting
    def _account_fn(self, node: Stmt) -> Callable[[], None]:
        interp = self.interp
        base_account = NodeCompiler._account_fn(self, node)
        loc = node.location
        key = (loc.filename, loc.line) if loc.line > 0 else None
        cov = interp._cov_counts
        limit = interp.max_statements

        def account():
            mask = interp._mask
            if mask is None:
                base_account()
                return
            n = interp.statements_executed + 1
            interp.statements_executed = n
            if n > limit:
                raise StatementLimitExceeded(
                    f"statement budget of {limit} exhausted "
                    f"(possible runaway loop at {loc})"
                )
            mi = mask.astype(np.int64)
            interp._extra_statements += mi - 1
            if cov is not None and key is not None:
                cov[key] = cov.get(key, 0) + mi

        return account

    # ----------------------------------------------------- kernel fusion
    def _specialize_apply(self, node: Apply, frame) -> Callable:
        """Swap a conformant kgen kernel in for an elemental function call.

        The swap happens at call-site specialization time and only when
        every gate holds: the interpreter carries a
        :class:`~repro.kgen.registry.KernelRegistry`, the name resolves to
        an ``elemental`` function (not an array or subroutine), the call is
        fully positional, and the registry holds a verified kernel for the
        resolved ``(module, function)``.  Even then each *execution*
        re-checks runtime shapes: the kernel runs only for batch-scalar
        ``(n,)``/scalar arguments, and anything else — plain model arrays,
        model-shaped batches — takes the interpreted elemental path and
        counts a ``kgen.fallbacks``.  Accounting is replayed through the
        kernel's ``_acct`` hook, so statement counts and coverage stay
        bit-identical to interpretation.
        """
        interp = self.interp
        base = NodeCompiler._specialize_apply(self, node, frame)
        registry = interp.kernels
        if registry is None or node.keywords:
            return base
        if interp._lookup_var(frame, node.name) is not None:
            return base
        resolved = interp._lookup_proc(frame.module, node.name, frozenset())
        if resolved is None:
            return base
        target_mrt, sub = resolved
        if (
            not sub.is_function
            or "elemental" not in sub.prefixes
            or len(node.args) != len(sub.args)
        ):
            return base
        kernel = registry.lookup(target_mrt.node.name, sub.name)
        if kernel is None:
            return base
        arg_fns = [self.expr(a) for a in node.args]
        fn = kernel.fn
        dispatch = interp._dispatch_elemental

        def run(f):
            values = [a(f) for a in arg_fns]
            fusable = False
            for v in values:
                if isinstance(v, MemberBatch):
                    if np.asarray(v).ndim != 1:
                        fusable = False
                        break
                    fusable = True
                elif isinstance(v, np.ndarray):
                    fusable = False
                    break
            if not fusable:
                # scalar or model-array call: interpret, exactly like the
                # elemental guard in _call_subprogram (args already
                # evaluated once, so side effects and accounting match)
                interp.kernel_fallbacks += 1
                return dispatch(target_mrt, sub, values, f)
            interp.kernel_calls += 1
            out = fn(*values, _acct=interp._kernel_acct)
            return np.asarray(out).view(MemberBatch)

        return run

    # ----------------------------------------------------- control flow
    def _build_if(self, node: IfBlock) -> Callable:
        interp = self.interp
        account = self._account_fn(node)
        branches = [
            (None if cond is None else self.expr(cond), self.body(body))
            for cond, body in node.branches
        ]
        loc = node.location

        def run(frame):
            account()
            base = interp._mask
            remaining: Optional[np.ndarray] = None  # None => all active
            try:
                for cond_fn, body_fns in branches:
                    cond = True if cond_fn is None else cond_fn(frame)
                    if isinstance(cond, np.ndarray):
                        # member-divergent condition: the batch collapses to
                        # masked execution here; counted for `vec.mask_collapses`
                        interp.mask_divergences += 1
                        cond = np.asarray(cond, dtype=bool)
                        if (
                            cond.ndim != 1
                            or cond.shape[0] != interp.n_members
                        ):
                            raise VectorizationError(
                                f"if-condition at {loc} is a model array; "
                                "only member-batched scalars may diverge"
                            )
                        eligible = remaining if remaining is not None else base
                        if eligible is None:
                            branch = cond
                            remaining = ~cond
                        else:
                            branch = cond & eligible
                            remaining = ~cond & eligible
                        if branch.any():
                            interp._mask = (
                                None
                                if eligible is None and branch.all()
                                else branch
                            )
                            try:
                                for fn in body_fns:
                                    fn(frame)
                            finally:
                                interp._mask = base
                        if not remaining.any():
                            return
                    else:
                        if not cond:
                            continue
                        interp._mask = (
                            remaining if remaining is not None else base
                        )
                        try:
                            for fn in body_fns:
                                fn(frame)
                        finally:
                            interp._mask = base
                        return
            finally:
                interp._mask = base

        return run

    def _build_flow_stmt(self, node: Stmt, account: Callable) -> Callable:
        interp = self.interp
        base_run = NodeCompiler._build_flow_stmt(self, node, account)
        kind = type(node).__name__.replace("Stmt", "").lower()
        loc = node.location

        def run(frame):
            if interp._mask is not None:
                raise VectorizationError(
                    f"'{kind}' under diverged member control flow at {loc}"
                )
            base_run(frame)

        return run

    def _build_do(self, node: DoLoop) -> Callable:
        interp = self.interp
        account = self._account_fn(node)
        start_fn = self.expr(node.start)
        stop_fn = self.expr(node.stop)
        step_fn = None if node.step is None else self.expr(node.step)
        body_fns = self.body(node.body)
        var = node.var
        loc = node.location

        def uniform(value):
            # int() on a promoted batch scalar yields a batch even when
            # every member agrees: collapse value-uniform bounds, refuse
            # genuinely member-varying ones
            if not isinstance(value, np.ndarray):
                return value
            base = np.asarray(value)
            first = base.flat[0]
            if base.ndim != 1 or not bool(np.all(base == first)):
                raise VectorizationError(
                    f"member-varying do-loop bounds at {loc}"
                )
            return first.item()

        def run(frame):
            account()
            start = uniform(start_fn(frame))
            stop = uniform(stop_fn(frame))
            step = uniform(step_fn(frame)) if step_fn is not None else 1
            if step == 0:
                raise FortranRuntimeError(f"zero do-loop step at {loc}")
            found = interp._lookup_var(frame, var)
            scope = found[0] if found is not None else frame.scope
            var_name = found[1] if found is not None else var
            count = int(np.trunc((stop - start + step) / step))
            if count < 0:
                count = 0
            value = start
            completed = True
            store = scope.store
            for _ in range(count):
                store(var_name, value)
                try:
                    for fn in body_fns:
                        fn(frame)
                except _Cycle:
                    pass
                except _Exit:
                    completed = False
                    break
                value = value + step
            if completed:
                store(var_name, start + count * step)

        return run

    def _build_do_while(self, node: DoWhile) -> Callable:
        account = self._account_fn(node)
        cond_fn = self.expr(node.condition)
        body_fns = self.body(node.body)
        loc = node.location

        def run(frame):
            account()
            while True:
                cond = cond_fn(frame)
                if isinstance(cond, np.ndarray):
                    raise VectorizationError(
                        f"member-varying do-while condition at {loc}"
                    )
                if not cond:
                    break
                try:
                    for fn in body_fns:
                        fn(frame)
                except _Cycle:
                    continue
                except _Exit:
                    break
                account()  # charge each condition re-evaluation

        return run

    def _build_select(self, node: SelectCase) -> Callable:
        account = self._account_fn(node)
        selector_fn = self.expr(node.selector)
        loc = node.location
        compiled_cases: list[tuple[Optional[list], list[Callable]]] = []
        for items, body in node.cases:
            if items is None:
                compiled_cases.append((None, self.body(body)))
                continue
            matchers = [self._build_case_item(item) for item in items]
            compiled_cases.append((matchers, self.body(body)))

        def run(frame):
            account()
            selector = selector_fn(frame)
            if isinstance(selector, np.ndarray):
                raise VectorizationError(
                    f"member-varying select-case selector at {loc}"
                )
            default_fns = None
            for matchers, body_fns in compiled_cases:
                if matchers is None:
                    default_fns = body_fns
                    continue
                for matches in matchers:
                    if matches(selector, frame):
                        for fn in body_fns:
                            fn(frame)
                        return
            if default_fns is not None:
                for fn in default_fns:
                    fn(frame)

        return run

    def _build_where(self, node: WhereBlock) -> Callable:
        interp = self.interp
        account = self._account_fn(node)
        mask_fn = self.expr(node.mask)

        def compile_masked(body):
            items = []
            for stmt in body:
                from ..fortran.ast_nodes import Assignment

                if not isinstance(stmt, Assignment):
                    raise FortranRuntimeError(
                        "only assignments are supported inside where blocks "
                        f"(at {stmt.location})"
                    )
                items.append(
                    (self._account_fn(stmt), self.expr(stmt.value), stmt)
                )
            return items

        body_items = compile_masked(node.body)
        else_items = compile_masked(node.else_body) if node.else_body else None

        def exec_masked(items, mask_val, frame):
            member = interp._mask
            for stmt_account, value_fn, stmt in items:
                stmt_account()
                value = value_fn(frame)
                ref = interp._resolve_target(stmt.target, frame)
                target = ref.load()
                if not isinstance(target, np.ndarray):
                    raise FortranRuntimeError(
                        f"where-assignment target is not an array at "
                        f"{stmt.location}"
                    )
                if interp._ref_readonly(ref):
                    raise IntentViolationError(
                        f"cannot assign through read-only target at "
                        f"{stmt.location}"
                    )
                if isinstance(target, MemberBatch):
                    tbase = np.asarray(target)
                    tmodel = tbase.ndim - 1
                    if isinstance(mask_val, MemberBatch):
                        where = np.asarray(mask_val._lifted(tmodel), bool)
                    else:
                        where = np.asarray(mask_val, dtype=bool)
                    if member is not None:
                        where = where & _lift(member, tmodel)
                    v = (
                        value._lifted(tmodel)
                        if isinstance(value, MemberBatch)
                        else value
                    )
                    np.copyto(tbase, v, where=where, casting="unsafe")
                    continue
                if (
                    isinstance(mask_val, MemberBatch)
                    or isinstance(value, MemberBatch)
                    or member is not None
                ):
                    raise VectorizationError(
                        "member-varying where-assignment into member-"
                        f"uniform storage at {stmt.location}"
                    )
                np.copyto(
                    target,
                    value,
                    where=np.asarray(mask_val, dtype=bool),
                    casting="unsafe",
                )

        def run(frame):
            account()
            mask_val = mask_fn(frame)
            exec_masked(body_items, mask_val, frame)
            if else_items:
                inverted = (
                    np.logical_not(mask_val)
                    if isinstance(mask_val, np.ndarray)
                    else not mask_val
                )
                exec_masked(else_items, inverted, frame)

        return run

    # ------------------------------------------------------------ stores
    def _build_store_var(self, name: str) -> Callable:
        interp = self.interp
        base_store = NodeCompiler._build_store_var(self, name)
        cell: list[tuple] = []

        def store(frame, value):
            mask = interp._mask
            current_scope = frame.scope
            rname = name
            if name not in current_scope.values:
                if cell:
                    current_scope, rname = cell[0]
                else:
                    found = interp._lookup_nonlocal(frame, name)
                    if found is not None:
                        current_scope, rname = found
                        cell.append(found)
            current = current_scope.values.get(rname, _MISSING)
            if (
                mask is None
                and not isinstance(value, MemberBatch)
                and not isinstance(current, MemberBatch)
            ):
                base_store(frame, value)
                return
            if current is _MISSING:
                current_scope = frame.scope
                rname = name
                current_scope.define(name, 0)
                current = 0
            interp._store_slot(current_scope, rname, current, value, mask)

        return store

    def _build_store_element(self, target: Apply) -> Callable:
        interp = self.interp
        name = target.name
        index_fn = self._build_index(target.args)
        cell: list[tuple] = []

        def store(frame, value):
            scope = frame.scope
            rname = name
            container = scope.values.get(name, _MISSING)
            if container is _MISSING:
                if cell:
                    scope, rname = cell[0]
                    container = scope.values.get(rname, _MISSING)
                if container is _MISSING:
                    found = interp._lookup_nonlocal(frame, name)
                    if found is None:
                        raise UndefinedNameError(
                            f"assignment to unknown array {name!r}"
                        )
                    scope, rname = found
                    if not cell:
                        cell.append(found)
                    container = scope.values[rname]
            if not isinstance(container, np.ndarray):
                raise FortranRuntimeError(
                    f"subscripted assignment to non-array {rname!r}"
                )
            index = index_fn(frame)
            if rname in scope.readonly:
                raise IntentViolationError(
                    f"cannot assign through read-only name {rname!r}"
                )
            interp._store_into_array(
                container, index, value, interp._mask, rname
            )

        return store

    def _build_store_component(self, target: DerivedRef) -> Callable:
        interp = self.interp
        root = target
        while isinstance(root, DerivedRef):
            root = root.base
        root_name = root.name if isinstance(root, (VarRef, Apply)) else ""
        base_fn = self.expr(target.base)
        component = target.component
        index_fn = self._build_index(target.args) if target.args else None

        def store(frame, value):
            guard = None
            if root_name:
                found = interp._lookup_var(frame, root_name)
                if found is not None:
                    guard = found[0].readonly
            base = base_fn(frame)
            if not isinstance(base, DerivedValue):
                raise FortranRuntimeError(
                    f"component reference into non-derived value "
                    f"{component!r}"
                )
            mask = interp._mask
            if index_fn is not None:
                array = base.get(component)
                if not isinstance(array, np.ndarray):
                    raise FortranRuntimeError(
                        f"subscripted non-array component {component!r}"
                    )
                index = index_fn(frame)
                if guard is not None and root_name in guard:
                    raise IntentViolationError(
                        f"cannot assign through read-only name {root_name!r}"
                    )
                interp._store_into_array(array, index, value, mask, component)
                return
            if guard is not None and root_name in guard:
                raise IntentViolationError(
                    f"cannot assign through read-only name {root_name!r}"
                )
            current = base.get(component)
            if isinstance(current, np.ndarray):
                interp._store_into_array(current, None, value, mask, component)
                return
            if isinstance(value, MemberBatch) or mask is not None:
                raise VectorizationError(
                    f"member-varying store into scalar component "
                    f"{component!r}"
                )
            base.set(component, value)

        return store


# --------------------------------------------------------------------------- #
# Interpreter
# --------------------------------------------------------------------------- #
class VecInterpreter(Interpreter):
    """Interpreter whose REAL/LOGICAL storage carries a member axis.

    ``seeds`` gives one base PRNG seed per ensemble member and fixes the
    batch width ``n_members``.  The member axis is invisible to model
    code; per-member values enter through the ``cam_init`` arguments
    (``pertlim``/``seed`` batches) and the per-member PRNG streams.

    ``kernels`` optionally carries a
    :class:`~repro.kgen.registry.KernelRegistry`; call sites whose
    resolved elemental function has a verified kernel execute the fused
    numpy body instead of interpreting (see
    :meth:`VecNodeCompiler._specialize_apply`), counted in
    ``kernel_calls``/``kernel_fallbacks``.
    """

    _compiler_factory = VecNodeCompiler

    def __init__(
        self,
        asts,
        seeds,
        fp=None,
        collect_coverage: bool = True,
        max_statements: int = 50_000_000,
        compile: bool = True,
        kernels=None,
    ):
        if not compile:
            raise ValueError(
                "the vectorized runtime requires the compiled path "
                "(compile=True)"
            )
        seed_list = [int(s) for s in np.asarray(seeds).reshape(-1).tolist()]
        if not seed_list:
            raise ValueError("at least one member seed is required")
        self.n_members = len(seed_list)
        #: active-member mask (None => all members active, the fast path)
        self._mask: Optional[np.ndarray] = None
        #: per-member statement-count corrections accumulated under masks
        self._extra_statements = np.zeros(self.n_members, dtype=np.int64)
        #: member-divergent `if` conditions seen (batch collapsed to a mask)
        self.mask_divergences = 0
        #: verified-kernel registry (None => interpret everything)
        self.kernels = kernels
        #: fused kernel executions / interpreted fallbacks at kernel sites
        self.kernel_calls = 0
        self.kernel_fallbacks = 0
        from ..kgen.extract import KernelAccounting

        self._kernel_acct = KernelAccounting(self)
        super().__init__(
            asts,
            fp=fp,
            seed=seed_list[0],
            collect_coverage=collect_coverage,
            max_statements=max_statements,
            compile=True,
        )
        self.prng = BatchedPRNGStreams(seed_list)

    # ------------------------------------------------------- declarations
    def _create_value(self, frame, decl, entity):
        if entity.dims and decl.base_type in ("real", "logical"):
            shape = tuple(self._dim_extent(d, frame) for d in entity.dims)
            dtype = _DTYPES[decl.base_type]
            array = np.zeros((self.n_members, *shape), dtype=dtype).view(
                MemberBatch
            )
            if entity.init is not None:
                array[...] = self.eval(entity.init, frame)
            return array
        return super()._create_value(frame, decl, entity)

    # ------------------------------------------------------------- stores
    def _store_slot(self, scope, rname, current, value, mask) -> None:
        """Member-aware store into a whole-variable slot, promoting scalar
        slots to ``(n,)`` batches on the first member-varying write."""
        if isinstance(current, MemberBatch):
            if mask is None:
                scope.store(rname, value)  # writes through; __setitem__ lifts
                return
            if rname in scope.readonly:
                raise IntentViolationError(
                    f"cannot assign to read-only name {rname!r} in scope "
                    f"{scope.name!r}"
                )
            tbase = np.asarray(current)
            where = _lift(mask, tbase.ndim - 1)
            v = (
                value._lifted(tbase.ndim - 1)
                if isinstance(value, MemberBatch)
                else value
            )
            np.copyto(tbase, v, where=where, casting="unsafe")
            return
        if isinstance(current, np.ndarray):
            if isinstance(value, MemberBatch) or mask is not None:
                raise VectorizationError(
                    f"member-varying store into member-uniform array "
                    f"{rname!r}"
                )
            scope.store(rname, value)
            return
        # scalar slot
        if isinstance(current, (bool, np.bool_)):
            dtype = np.bool_
        elif isinstance(current, (int, np.integer)):
            dtype = np.int64
        elif isinstance(current, (float, np.floating)):
            dtype = np.float64
        else:
            dtype = None
        if isinstance(value, MemberBatch) or mask is not None:
            if dtype is None:
                raise VectorizationError(
                    f"member-varying store into non-numeric scalar {rname!r}"
                )
            new = np.empty(self.n_members, dtype=dtype)
            # numpy's unsafe float->int cast truncates toward zero, the
            # same coercion the scalar runtime applies per element
            new[...] = np.asarray(value) if isinstance(value, MemberBatch) else value
            if mask is not None:
                new = np.where(mask, new, current).astype(dtype, copy=False)
            scope.store(rname, new.view(MemberBatch))
            return
        # plain scalar store: the scalar runtime's coercion rules
        if dtype is np.int64:
            if isinstance(value, (float, np.floating)):
                value = int(np.trunc(value))
            else:
                value = int(value)
        elif dtype is np.float64 and not isinstance(value, np.ndarray):
            value = float(value)
        elif dtype is np.bool_:
            value = bool(value)
        scope.store(rname, value)

    def _store_into_array(
        self, array, index, value, mask, name: str = ""
    ) -> None:
        """Member-aware element/section/whole store into an array
        (``index=None`` addresses the whole array)."""
        if isinstance(array, MemberBatch):
            if mask is None:
                if index is None:
                    array[...] = value
                else:
                    array[index] = value
                return
            base = np.asarray(array)
            dest = (
                base if index is None else base[(slice(None),) + tuple(index)]
            )
            where = _lift(mask, dest.ndim - 1)
            v = (
                value._lifted(dest.ndim - 1)
                if isinstance(value, MemberBatch)
                else value
            )
            np.copyto(dest, v, where=where, casting="unsafe")
            return
        if isinstance(value, MemberBatch) or mask is not None:
            raise VectorizationError(
                f"member-varying store into member-uniform array {name!r}"
            )
        if index is None:
            array[...] = value
        else:
            array[index] = value

    def _coerce_store(self, ref: Ref, value) -> None:
        mask = self._mask
        if mask is None and not isinstance(value, MemberBatch):
            if not (
                isinstance(ref, ScopeRef)
                and isinstance(ref.scope.values.get(ref.name), MemberBatch)
            ):
                super()._coerce_store(ref, value)
                return
        if isinstance(ref, ScopeRef):
            current = ref.scope.values.get(ref.name)
            self._store_slot(ref.scope, ref.name, current, value, mask)
            return
        if isinstance(ref, ElementRef):
            if ref.guard is not None and ref.guard_name in ref.guard:
                raise IntentViolationError(
                    f"cannot assign through read-only name {ref.guard_name!r}"
                )
            self._store_into_array(
                ref.array, ref.index, value, mask, ref.guard_name
            )
            return
        if isinstance(ref, ComponentRef):
            if ref.guard is not None and ref.guard_name in ref.guard:
                raise IntentViolationError(
                    f"cannot assign through read-only name {ref.guard_name!r}"
                )
            if ref.index is not None:
                self._store_into_array(
                    ref.derived.get(ref.component),
                    ref.index,
                    value,
                    mask,
                    ref.component,
                )
                return
            current = ref.derived.get(ref.component)
            if isinstance(current, np.ndarray):
                self._store_into_array(current, None, value, mask, ref.component)
                return
            if isinstance(value, MemberBatch) or mask is not None:
                raise VectorizationError(
                    f"member-varying store into scalar component "
                    f"{ref.component!r}"
                )
            ref.derived.set(ref.component, value)
            return
        ref.store(value)

    # ----------------------------------------------------------- elemental
    def _dispatch_elemental(self, mrt, sub, values, caller_frame):
        if any(isinstance(v, MemberBatch) for v in values):
            # elemental bodies are scalar arithmetic: ufunc broadcasting
            # over the member axis evaluates all members in one pass
            return self._call_with_values(mrt, sub, values, caller_frame)
        return super()._dispatch_elemental(mrt, sub, values, caller_frame)

    # ----------------------------------------------------------- intercepts
    def _intercept_outfld(self, frame, arg_exprs, kw_exprs, mrt, sub):
        if self._mask is not None:
            raise VectorizationError(
                "history write (outfld) under diverged member control flow"
            )
        super()._intercept_outfld(frame, arg_exprs, kw_exprs, mrt, sub)

    def _intercept_random_raw(self, frame, arg_exprs, kw_exprs, mrt, sub):
        if self._mask is not None:
            raise VectorizationError(
                "PRNG draw under diverged member control flow"
            )
        kind, payload, writable = self._bind_actual(arg_exprs[0], frame)
        if kind != "share" or not isinstance(payload, np.ndarray):
            raise FortranRuntimeError(
                "shr_random_raw requires a whole-array harvest argument"
            )
        if not writable:
            raise IntentViolationError(
                "shr_random_raw harvest argument is read-only here"
            )
        if not isinstance(payload, MemberBatch):
            raise VectorizationError(
                "PRNG harvest into a member-uniform array"
            )
        n = None
        if len(arg_exprs) > 1:
            n = self.eval(arg_exprs[1], frame)
            if isinstance(n, np.ndarray):
                raise VectorizationError(
                    "member-varying PRNG draw count"
                )
            n = int(n)
        owner = frame
        while owner is not None and owner.module.node.name == mrt.node.name:
            owner = owner.caller
        owner_name = (owner or frame).module.node.name
        stream = self.prng.stream(owner_name)
        stream.fill(payload, n)

    def _intercept_setseed(self, frame, arg_exprs, kw_exprs, mrt, sub):
        if self._mask is not None:
            raise VectorizationError(
                "PRNG reseed under diverged member control flow"
            )
        seed = self.eval(arg_exprs[0], frame)
        if not isinstance(seed, np.ndarray):
            self.prng.reseed(int(seed))
            if "seed_state" in mrt.scope:
                mrt.scope.store("seed_state", int(seed))
            return
        base = np.asarray(seed)
        if not isinstance(seed, MemberBatch) or base.ndim != 1:
            raise VectorizationError(
                "setseed requires a scalar (or member-batched scalar) seed"
            )
        self.prng.reseed([int(s) for s in base.tolist()])
        if "seed_state" in mrt.scope:
            self._store_slot(
                mrt.scope,
                "seed_state",
                mrt.scope.values.get("seed_state"),
                seed,
                None,
            )

    def _call_intrinsic_subroutine(self, name, arg_exprs, kw_exprs, frame):
        if name == "random_number":
            if self._mask is not None:
                raise VectorizationError(
                    "PRNG draw under diverged member control flow"
                )
            kind, payload, writable = self._bind_actual(arg_exprs[0], frame)
            stream = self.prng.stream(frame.module.node.name)
            if kind == "share" and isinstance(payload, np.ndarray):
                if not isinstance(payload, MemberBatch):
                    raise VectorizationError(
                        "random_number into a member-uniform array"
                    )
                stream.fill(payload)
            elif kind == "ref":
                self._coerce_store(
                    payload, stream.uniform().view(MemberBatch)
                )
            else:
                raise FortranRuntimeError(
                    "random_number requires a variable argument"
                )
            return
        if name == "random_seed":
            put = kw_exprs.get("put")
            if put is not None:
                if self._mask is not None:
                    raise VectorizationError(
                        "PRNG reseed under diverged member control flow"
                    )
                value = self.eval(put, frame)
                if isinstance(value, MemberBatch):
                    base = np.asarray(value)
                    first = (
                        base
                        if base.ndim == 1
                        else base[(slice(None),) + (0,) * (base.ndim - 1)]
                    )
                    self.prng.reseed([int(v) for v in first.tolist()])
                else:
                    self.prng.reseed(int(np.asarray(value).reshape(-1)[0]))
            return
        super()._call_intrinsic_subroutine(name, arg_exprs, kw_exprs, frame)

    # ----------------------------------------------------------- accounting
    def member_statements(self, m: int) -> int:
        """Total statements member ``m`` executed (mask-corrected)."""
        return self.statements_executed + int(self._extra_statements[m])

    def member_coverage(self, m: int) -> CoverageTrace:
        """Member ``m``'s per-line execution counts (zero entries dropped,
        so lines a member never reached are absent — exactly as in that
        member's scalar run)."""
        if self.coverage is None:
            return CoverageTrace()
        counts: dict[tuple[str, int], int] = {}
        for key, count in self.coverage.counts.items():
            hits = (
                int(np.asarray(count)[m])
                if isinstance(count, np.ndarray)
                else int(count)
            )
            if hits:
                counts[key] = hits
        return CoverageTrace(counts)


# --------------------------------------------------------------------------- #
# Batched run entry point
# --------------------------------------------------------------------------- #
def _member_value(value, m: int) -> np.ndarray:
    if isinstance(value, MemberBatch):
        return value.lane(m)
    return np.asarray(value)


def run_model_batch(configs, source=None, kernels="auto"):
    """Run every member of ``configs`` in one vectorized evaluation.

    The configs must agree on the model build, ``nsteps`` and fp model —
    those shape the single fused evaluation — while ``pertlim``/``seed``
    vary per (config, member) lane and ``collect_coverage`` /
    ``max_statements`` may differ per lane too: coverage is gathered when
    any lane wants it (lanes that opted out still get an empty trace, as
    in their scalar runs) and the batch runs under the widest statement
    budget with each lane's own budget re-checked afterwards.  Returns
    one :class:`~repro.runtime.RunResult` per config, each bit-identical
    to what :func:`repro.runtime.run_model` produces for the same config.

    ``kernels`` selects kernel fusion: ``"auto"`` (default) builds or
    reuses the memoized conformant-kernel registry for this source build
    and fp model (disabled when the ``REPRO_KGEN_FUSION`` environment
    variable is ``0``), ``None`` interprets everything, and an explicit
    :class:`~repro.kgen.registry.KernelRegistry` is used as given.
    """
    import os

    from ..model.builder import build_model_source
    from ..model.registry import iter_output_fields
    from . import RunResult

    configs = list(configs)
    if not configs:
        raise ValueError("run_model_batch needs at least one RunConfig")
    head = configs[0]
    for config in configs[1:]:
        if (
            config.model != head.model
            or config.nsteps != head.nsteps
            or config.fp != head.fp
        ):
            raise ValueError(
                "run_model_batch members must share the model build, "
                "nsteps and fp model (pertlim, seed, coverage flag and "
                "statement budget may vary per lane)"
            )
    if source is None:
        source = build_model_source(head.model)
    elif source.config != head.model:
        raise ValueError(
            "the provided ModelSource was built from a different ModelConfig "
            "than config.model"
        )
    asts = source.parse()

    if kernels == "auto":
        if os.environ.get("REPRO_KGEN_FUSION", "").strip() == "0":
            kernels = None
        else:
            from ..kgen.registry import kernel_registry_for

            kernels = kernel_registry_for(source, head.fp)

    collect_coverage = any(c.collect_coverage for c in configs)
    budget = max(c.max_statements for c in configs)
    config_shapes = {(c.collect_coverage, c.max_statements) for c in configs}

    interp = VecInterpreter(
        asts,
        seeds=[int(c.seed) for c in configs],
        fp=head.fp,
        collect_coverage=collect_coverage,
        max_statements=budget,
        kernels=kernels,
    )
    pert = np.array(
        [float(c.pertlim) for c in configs], dtype=np.float64
    ).view(MemberBatch)
    seed = np.array([int(c.seed) for c in configs], dtype=np.int64).view(
        MemberBatch
    )
    interp.call("cam_comp", "cam_init", [pert, seed])
    for _ in range(head.nsteps):
        interp.call("cam_comp", "cam_run_step", [])

    declared = [f.name for f in iter_output_fields(source.compset)]
    missing = [name for name in declared if name not in interp.history.fields]
    if missing:
        raise FortranRuntimeError(
            "run completed but declared output fields were never written: "
            + ", ".join(missing)
        )
    names = list(declared)
    names += sorted(set(interp.history.fields) - set(declared))

    prng_draws = interp.prng.total_draws()
    results = []
    total_statements = 0
    for m, config in enumerate(configs):
        outputs = {
            name: _member_value(interp.history.fields[name], m)
            for name in names
        }
        first_outputs = {
            name: _member_value(interp.history.first[name], m)
            for name in names
        }
        statements = interp.member_statements(m)
        if statements > config.max_statements:
            # the batch ran under the widest lane budget; a lane whose own
            # budget was exceeded must fail exactly as its scalar run would
            raise StatementLimitExceeded(
                f"statement budget of {config.max_statements} exhausted "
                f"for batch lane {m} (executed {statements})"
            )
        total_statements += statements
        results.append(
            RunResult(
                config=config,
                outputs=outputs,
                coverage=(
                    interp.member_coverage(m)
                    if config.collect_coverage
                    else CoverageTrace()
                ),
                statements_executed=statements,
                prng_draws=prng_draws,
                first_outputs=first_outputs,
            )
        )

    from ..obs import get_metrics

    metrics = get_metrics()
    metrics.inc("vec.batches")
    metrics.inc("vec.members", len(configs))
    metrics.inc("vec.mask_collapses", interp.mask_divergences)
    metrics.inc("interpreter.statements", total_statements)
    if len(config_shapes) > 1:
        metrics.inc("vec.fused_configs", len(config_shapes) - 1)
    if interp.kernel_calls:
        metrics.inc("kgen.kernel_calls", interp.kernel_calls)
    if interp.kernel_fallbacks:
        metrics.inc("kgen.fallbacks", interp.kernel_fallbacks)
    return results

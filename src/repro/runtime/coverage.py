"""Execution-coverage instrumentation for the numerical interpreter.

The paper's pipeline compiles CESM with Intel codecov, runs a few time steps,
and uses the resulting per-line execution data to discard the large part of
the compiled source that is never executed before building/slicing the
digraph (§4.3, the 820 → ~230 module reduction).  :class:`CoverageTrace` is
the runtime half of that step: the interpreter records every executed
statement as a ``(filename, line) -> count`` entry; ``repro.coverage``
turns traces into codecov-style :class:`~repro.coverage.CoverageReport`
objects and ``repro.slicing`` filters backward slices against the
executed lines.

Traces compare by value (bit-identical runs produce equal traces), merge
across runs (ensemble members), and can be reduced to the per-file line sets
a codecov-style report needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

__all__ = ["CoverageTrace"]


@dataclass
class CoverageTrace:
    """Per-(file, line) execution counts of one (or several merged) runs."""

    counts: dict[tuple[str, int], int] = field(default_factory=dict)

    # ------------------------------------------------------------ recording
    def record(self, filename: str, line: int, hits: int = 1) -> None:
        """Count one execution of ``filename:line`` (no-op for line <= 0)."""
        if line <= 0:
            return
        key = (filename, line)
        self.counts[key] = self.counts.get(key, 0) + hits

    # -------------------------------------------------------------- queries
    def hits(self, filename: str, line: int) -> int:
        return self.counts.get((filename, line), 0)

    def files(self) -> list[str]:
        """Sorted names of every file with at least one executed line."""
        return sorted({filename for filename, _ in self.counts})

    def lines(self, filename: str) -> dict[int, int]:
        """``line -> count`` for one file."""
        return {
            line: count
            for (name, line), count in self.counts.items()
            if name == filename
        }

    def executed_lines(self, filename: str) -> list[int]:
        """Sorted executed line numbers of one file."""
        return sorted(self.lines(filename))

    @property
    def total_statements(self) -> int:
        """Total statement executions recorded (sum of all counts)."""
        return sum(self.counts.values())

    @property
    def total_lines(self) -> int:
        """Number of distinct (file, line) pairs executed at least once."""
        return len(self.counts)

    def __bool__(self) -> bool:
        return bool(self.counts)

    def __iter__(self) -> Iterator[tuple[str, int]]:
        return iter(self.counts)

    # ------------------------------------------------------------ combining
    def merged(self, *others: "CoverageTrace") -> "CoverageTrace":
        """A new trace with the counts of ``self`` and every other trace."""
        out = CoverageTrace(dict(self.counts))
        for other in others:
            for (filename, line), count in other.counts.items():
                out.record(filename, line, count)
        return out

    def restricted_to(self, filenames: Iterable[str]) -> "CoverageTrace":
        """A new trace keeping only entries for the given files."""
        keep = set(filenames)
        return CoverageTrace(
            {key: count for key, count in self.counts.items() if key[0] in keep}
        )

"""Value model of the numerical interpreter: scopes, arrays, derived types.

Fortran's storage semantics drive every design choice here:

* arrays are mutable aggregates passed by reference — a dummy argument bound
  to a whole array aliases the caller's storage, so they are represented as
  shared :class:`numpy.ndarray` objects and whole-array assignment writes
  *through* the array (``arr[...] = value``) instead of rebinding the name;
* scalars are copied in at a call and copied back out for ``intent(out)`` /
  ``intent(inout)`` dummies;
* derived-type values are :class:`DerivedValue` component records shared by
  reference, with the components allocated from the defining module's
  ``type`` definition;
* every name lives in exactly one :class:`Scope` (a subprogram frame or a
  module), and a scope knows which of its names are read-only — parameters
  and ``intent(in)`` dummies — so the interpreter can enforce the paper's
  intent semantics at store time.

Assignment targets resolve to small :class:`Ref` objects (scope slot, array
element/section, derived component) that know how to load and store, which
keeps argument copy-back and ``intent`` protection in one place.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ReproError

__all__ = [
    "DerivedValue",
    "ElementRef",
    "FortranRuntimeError",
    "IntentViolationError",
    "MemberBatch",
    "Ref",
    "Scope",
    "ScopeRef",
    "ComponentRef",
    "StatementLimitExceeded",
    "StopModel",
    "UndefinedNameError",
    "VectorizationError",
    "fortran_index",
    "fortran_slices",
]


class FortranRuntimeError(ReproError):
    """Base class for errors raised while executing model code."""


class IntentViolationError(FortranRuntimeError):
    """A statement stored into an ``intent(in)`` dummy or a ``parameter``."""


class UndefinedNameError(FortranRuntimeError):
    """A reference to a name no scope, module, or use-association defines."""


class StopModel(FortranRuntimeError):
    """The model executed a ``stop`` statement (e.g. via ``endrun``)."""

    def __init__(self, message: Optional[str] = None):
        self.message = message
        super().__init__(message or "stop")


class StatementLimitExceeded(FortranRuntimeError):
    """The configured ``max_statements`` budget was exhausted."""


class VectorizationError(FortranRuntimeError):
    """A construct the vectorized (member-batched) runtime cannot express.

    Raised as a safety rail instead of silently producing member-mixed
    results: PRNG draws or history writes under diverged control flow,
    member-varying loop bounds, batch stores into member-uniform storage.
    The scalar interpreter remains the fallback for such models.
    """


class _Return(Exception):
    """Internal control flow: ``return``."""


class _Exit(Exception):
    """Internal control flow: ``exit`` (leave innermost do loop)."""


class _Cycle(Exception):
    """Internal control flow: ``cycle`` (next do iteration)."""


class DerivedValue:
    """An instance of a Fortran derived type: named, typed components."""

    __slots__ = ("type_name", "components")

    def __init__(self, type_name: str, components: dict[str, object]):
        self.type_name = type_name
        self.components = components

    def get(self, name: str):
        try:
            return self.components[name]
        except KeyError:
            raise UndefinedNameError(
                f"type({self.type_name}) has no component {name!r}"
            ) from None

    def set(self, name: str, value) -> None:
        if name not in self.components:
            raise UndefinedNameError(
                f"type({self.type_name}) has no component {name!r}"
            )
        current = self.components[name]
        if isinstance(current, np.ndarray):
            current[...] = value
        else:
            self.components[name] = value

    def copy(self) -> "DerivedValue":
        out: dict[str, object] = {}
        for name, value in self.components.items():
            if isinstance(value, np.ndarray):
                out[name] = value.copy()
            elif isinstance(value, DerivedValue):
                out[name] = value.copy()
            else:
                out[name] = value
        return DerivedValue(self.type_name, out)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DerivedValue({self.type_name}, {sorted(self.components)})"


class Scope:
    """One name environment: a module's variables or a call frame's locals."""

    __slots__ = ("name", "values", "readonly")

    def __init__(self, name: str):
        self.name = name
        self.values: dict[str, object] = {}
        self.readonly: set[str] = set()

    def __contains__(self, name: str) -> bool:
        return name in self.values

    def get(self, name: str):
        return self.values[name]

    def define(self, name: str, value, readonly: bool = False) -> None:
        self.values[name] = value
        if readonly:
            self.readonly.add(name)

    def store(self, name: str, value) -> None:
        """Assign to a whole variable, writing through arrays in place."""
        if name in self.readonly:
            raise IntentViolationError(
                f"cannot assign to read-only name {name!r} in scope {self.name!r}"
            )
        current = self.values.get(name)
        if isinstance(current, np.ndarray):
            current[...] = value
        else:
            self.values[name] = value


# --------------------------------------------------------------------------- #
# Subscript helpers (Fortran is 1-based, bounds inclusive)
# --------------------------------------------------------------------------- #
def fortran_index(subscripts: list[int]) -> tuple[int, ...]:
    """Convert 1-based scalar subscripts to a numpy index tuple."""
    return tuple(int(s) - 1 for s in subscripts)


def fortran_slices(parts: list[object]) -> tuple[object, ...]:
    """Convert a mixed subscript list (ints and (lo, hi, stride) triples from
    ``SectionRange``) to a numpy index; section bounds are inclusive.

    For a negative stride the first bound is the *start* (``a(5:2:-1)``
    walks 5, 4, 3, 2), so the exclusive numpy stop is ``upper - 2`` — and
    ``None`` once it passes the first element, which plain ``-1`` would
    wrap around to the end of the array.
    """
    out: list[object] = []
    for part in parts:
        if isinstance(part, tuple):
            lower, upper, stride = part
            start = None if lower is None else int(lower) - 1
            step = None if stride is None else int(stride)
            if step is not None and step < 0:
                if upper is None:
                    stop = None
                else:
                    stop = int(upper) - 2
                    if stop < 0:
                        stop = None
            else:
                stop = None if upper is None else int(upper)
            out.append(slice(start, stop, step))
        else:
            out.append(int(part) - 1)
    return tuple(out)


# --------------------------------------------------------------------------- #
# References (assignment targets and argument copy-back)
# --------------------------------------------------------------------------- #
class Ref:
    """An assignable storage location."""

    def load(self):  # pragma: no cover - interface
        raise NotImplementedError

    def store(self, value) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class ScopeRef(Ref):
    """A whole variable in one scope."""

    __slots__ = ("scope", "name")

    def __init__(self, scope: Scope, name: str):
        self.scope = scope
        self.name = name

    def load(self):
        return self.scope.get(self.name)

    def store(self, value) -> None:
        self.scope.store(self.name, value)


class ElementRef(Ref):
    """An element or section of an array (readonly enforced by the owner)."""

    __slots__ = ("array", "index", "guard", "guard_name")

    def __init__(
        self,
        array: np.ndarray,
        index: tuple,
        guard: Optional[set[str]] = None,
        guard_name: str = "",
    ):
        self.array = array
        self.index = index
        self.guard = guard
        self.guard_name = guard_name

    def load(self):
        value = self.array[self.index]
        if isinstance(value, np.ndarray):
            return value
        return value.item() if hasattr(value, "item") else value

    def store(self, value) -> None:
        if self.guard is not None and self.guard_name in self.guard:
            raise IntentViolationError(
                f"cannot assign through read-only name {self.guard_name!r}"
            )
        self.array[self.index] = value


class ComponentRef(Ref):
    """A component of a derived-type value, optionally subscripted."""

    __slots__ = ("derived", "component", "index", "guard", "guard_name")

    def __init__(
        self,
        derived: DerivedValue,
        component: str,
        index: Optional[tuple] = None,
        guard: Optional[set[str]] = None,
        guard_name: str = "",
    ):
        self.derived = derived
        self.component = component
        self.index = index
        self.guard = guard
        self.guard_name = guard_name

    def load(self):
        value = self.derived.get(self.component)
        if self.index is not None:
            value = value[self.index]
            if not isinstance(value, np.ndarray):
                value = value.item() if hasattr(value, "item") else value
        return value

    def store(self, value) -> None:
        if self.guard is not None and self.guard_name in self.guard:
            raise IntentViolationError(
                f"cannot assign through read-only name {self.guard_name!r}"
            )
        if self.index is None:
            self.derived.set(self.component, value)
        else:
            self.derived.get(self.component)[self.index] = value


# --------------------------------------------------------------------------- #
# Member-batched values (the vectorized runtime's array type)
# --------------------------------------------------------------------------- #
class MemberBatch(np.ndarray):
    """An array whose *leading* axis is the ensemble-member axis.

    A ``MemberBatch`` of shape ``(n, *model_shape)`` holds one model-space
    value per member.  Model code never sees the member axis: subscripts
    written against ``model_shape`` are transparently prefixed with
    ``slice(None)`` on load and store, and ufuncs align operands on the
    *trailing* (model) axes by re-inserting length-1 dimensions after the
    member axis, so a promoted batch scalar of shape ``(n,)`` broadcasts
    against a batch array of shape ``(n, pcols, pver)`` the way a Fortran
    scalar broadcasts against an array.

    Plain ndarrays (member-uniform model values) broadcast from the right,
    exactly as numpy would without the member axis.

    The leading axis is really a *(config, member) lane* axis: nothing in
    the batched runtime requires two lanes to come from the same run
    configuration, only that lanes agree on whatever shapes the shared
    evaluation (the model build, ``nsteps``, the fp model).  A
    cross-config batch — e.g. the fused patch sweep packing several
    experiments' members side by side — is therefore just a
    ``MemberBatch`` whose lanes map to heterogeneous configs; use
    :meth:`lane` to slice one config's value back out.
    """

    # win ufunc dispatch against plain ndarrays regardless of operand order
    __array_priority__ = 100.0

    @property
    def n_members(self) -> int:
        return self.shape[0]

    @property
    def model_ndim(self) -> int:
        return self.ndim - 1

    def member(self, m: int) -> np.ndarray:
        """Member ``m``'s model-space value (a plain-ndarray view)."""
        return np.asarray(self)[m]

    def lane(self, m: int) -> np.ndarray:
        """Lane ``m``'s model-space value as an independent copy.

        Unlike :meth:`member` this never aliases the batch, so a
        per-config result sliced from a cross-config batch — including a
        scalar-promoted ``(n,)`` slot, where ``member`` would hand back a
        0-d view into shared storage — can outlive and never write back
        into the fused evaluation."""
        return np.asarray(self)[m].copy()

    def _lifted(self, target_model_ndim: int) -> np.ndarray:
        """The base array with length-1 axes inserted after the member axis
        so its model axes right-align at ``target_model_ndim`` dims."""
        base = np.asarray(self)
        pad = target_model_ndim - self.model_ndim
        if pad <= 0:
            return base
        return base.reshape(base.shape[:1] + (1,) * pad + base.shape[1:])

    def __array_ufunc__(self, ufunc, method, *inputs, **kwargs):
        out = kwargs.get("out")
        if out is not None:
            kwargs["out"] = tuple(
                np.asarray(o) if isinstance(o, MemberBatch) else o
                for o in out
            )
        if method != "__call__":
            # reductions / accumulations collapse or reorder axes in ways
            # the member-axis convention cannot track: compute on the base
            # arrays and return plain ndarrays (callers re-wrap knowingly).
            plain = tuple(
                np.asarray(x) if isinstance(x, MemberBatch) else x
                for x in inputs
            )
            return getattr(ufunc, method)(*plain, **kwargs)
        target = 0
        for x in inputs:
            if isinstance(x, MemberBatch):
                target = max(target, x.model_ndim)
            elif isinstance(x, np.ndarray):
                target = max(target, x.ndim)
        plain = tuple(
            x._lifted(target) if isinstance(x, MemberBatch) else x
            for x in inputs
        )
        result = getattr(ufunc, method)(*plain, **kwargs)
        if isinstance(result, tuple):
            return tuple(
                r.view(MemberBatch) if isinstance(r, np.ndarray) else r
                for r in result
            )
        if isinstance(result, np.ndarray):
            return result.view(MemberBatch)
        return result

    def __getitem__(self, key):
        if key is Ellipsis:
            return self
        if not isinstance(key, tuple):
            key = (key,)
        result = np.asarray(self)[(slice(None),) + key]
        if result.ndim == 1:
            # fully-indexed element: Fortran loads scalars by value, so a
            # promoted (n,) batch scalar must not alias the array storage
            return result.copy().view(MemberBatch)
        return result.view(MemberBatch)

    def __setitem__(self, key, value) -> None:
        base = np.asarray(self)
        if key is Ellipsis:
            dest = base
        else:
            if not isinstance(key, tuple):
                key = (key,)
            dest = base[(slice(None),) + key]
        if isinstance(value, MemberBatch):
            value = value._lifted(dest.ndim - 1)
        dest[...] = value

"""AST-walking numerical interpreter for the Fortran-subset model.

This is the runtime half of the paper's pipeline: it executes the *same*
cached ASTs that :meth:`repro.model.builder.ModelSource.parse` hands to the
metagraph builder, so the digraph and the numbers always describe the same
build.  The interpreter provides

* module storage with use-association (including renames) and lazily
  initialised module variables/parameters;
* intent-aware argument binding — whole arrays and derived-type values are
  shared by reference, scalars are copied in and copied back for
  ``intent(out)``/``intent(inout)``, and stores through ``intent(in)``
  dummies or ``parameter`` names raise :class:`IntentViolationError`;
* the full executable-statement subset: assignments, ``if``/``else if``,
  ``do`` (with step/``exit``/``cycle``), ``do while``, ``select case``
  (values and ranges), ``where``, ``return``/``stop``;
* a floating-point model (:mod:`repro.runtime.fpu`) with optional FMA
  contraction of ``a*b + c`` patterns, the paper's compiler-flag knob;
* reproducible stream-per-module PRNGs (:mod:`repro.runtime.prng`) wired
  into ``shr_random_mod`` and the ``random_number`` intrinsic;
* per-(file, line) execution counts (:mod:`repro.runtime.coverage`) for the
  later coverage-filtering pipeline stages;
* interception of the model's history layer (``outfld``/``outfld2d``) so a
  run yields named output-variable fields without any I/O.

The interpreter is deliberately strict: unknown names, unparsed statements
and writes through read-only bindings raise immediately rather than
producing silently wrong physics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

import numpy as np

from ..fortran.ast_nodes import (
    Apply,
    Assignment,
    BinOp,
    CallStmt,
    ContinueStmt,
    CycleStmt,
    Declaration,
    DerivedRef,
    DoLoop,
    DoWhile,
    EntityDecl,
    ExitStmt,
    Expr,
    IfBlock,
    LogicalLit,
    ModuleNode,
    NumberLit,
    PointerAssignment,
    ReturnStmt,
    SectionRange,
    SelectCase,
    SourceFileAST,
    Stmt,
    StopStmt,
    StringLit,
    Subprogram,
    TypeDef,
    UnaryOp,
    UnparsedStmt,
    UseStmt,
    VarRef,
    WhereBlock,
)
from ..fortran.intrinsics import SUBROUTINE_INTRINSICS
from ..fortran.parser import parse_source
from .compiler import NodeCompiler
from .coverage import CoverageTrace
from .fpu import FPU, FPConfig
from .intrinsics import INTRINSIC_FUNCTIONS
from .prng import PRNGStreams
from .values import (
    ComponentRef,
    DerivedValue,
    ElementRef,
    FortranRuntimeError,
    IntentViolationError,
    Ref,
    Scope,
    ScopeRef,
    StatementLimitExceeded,
    StopModel,
    UndefinedNameError,
    _Cycle,
    _Exit,
    _Return,
    fortran_slices,
)

__all__ = [
    "History",
    "Interpreter",
    "StatementLimitExceeded",
    "StopModel",
]


@dataclass
class ModuleRuntime:
    """Runtime state of one Fortran module."""

    node: ModuleNode
    scope: Scope
    renames: dict[str, tuple[str, str]] = field(default_factory=dict)
    blanket: list[str] = field(default_factory=list)
    subprograms: dict[str, Subprogram] = field(default_factory=dict)


class Frame:
    """One execution frame: a subprogram activation or a module context."""

    __slots__ = ("module", "sub", "scope", "optional_missing", "caller")

    def __init__(
        self,
        module: ModuleRuntime,
        sub: Optional[Subprogram],
        scope: Scope,
        caller: Optional["Frame"] = None,
    ):
        self.module = module
        self.sub = sub
        self.scope = scope
        self.optional_missing: set[str] = set()
        self.caller = caller


@dataclass
class _EntityInfo:
    """Declaration metadata of one entity, indexed once per subprogram."""

    decl: Declaration
    entity: EntityDecl

    @property
    def intent(self) -> Optional[str]:
        return self.decl.intent

    @property
    def optional(self) -> bool:
        return "optional" in self.decl.attributes


class History:
    """Named output fields captured from ``outfld``/``outfld2d`` calls.

    ``fields`` holds the *latest* write of every field (the end-of-run
    state); ``first`` holds the *first* write (the end of the first model
    step, since the model writes every field exactly once per step).  The
    first-write snapshot is the consistency-testing layer's "ultra-fast"
    view: after one step many fields are still untouched by the random
    physics, so ULP-level effects (FMA contraction) remain bit-visible
    there long after chaos has swamped them in the final state.
    """

    def __init__(self) -> None:
        self.fields: dict[str, object] = {}
        self.first: dict[str, object] = {}
        self.ncalls: dict[str, int] = {}

    def record(self, name: str, value) -> None:
        if isinstance(value, np.ndarray):
            value = value.copy()
        if name not in self.first:
            self.first[name] = value
        self.fields[name] = value
        self.ncalls[name] = self.ncalls.get(name, 0) + 1

    def names(self) -> list[str]:
        return sorted(self.fields)


_DTYPES = {
    "real": np.float64,
    "integer": np.int64,
    "logical": np.bool_,
}

_SCALAR_DEFAULTS = {
    "real": 0.0,
    "integer": 0,
    "logical": False,
    "character": "",
}


class Interpreter:
    """Execute parsed Fortran modules numerically (see module docstring)."""

    def __init__(
        self,
        asts: Mapping[str, SourceFileAST],
        fp: Optional[FPConfig] = None,
        seed: int = 12345,
        collect_coverage: bool = True,
        max_statements: int = 50_000_000,
        compile: bool = True,
    ):
        self.fpu = FPU(fp)
        self.fp = self.fpu.config
        self.prng = PRNGStreams(seed)
        self.coverage: Optional[CoverageTrace] = (
            CoverageTrace() if collect_coverage else None
        )
        self._cov_counts = (
            self.coverage.counts if self.coverage is not None else None
        )
        self.history = History()
        self.statements_executed = 0
        self.max_statements = max_statements

        self._module_nodes: dict[str, ModuleNode] = {}
        for ast in asts.values():
            for mod in ast.modules:
                self._module_nodes[mod.name] = mod
        self.modules: dict[str, ModuleRuntime] = {}
        self._initializing: set[str] = set()
        #: id(sub) -> (sub, {entity: _EntityInfo}); the sub ref pins the id
        self._sub_info_cache: dict[int, tuple[Subprogram, dict[str, _EntityInfo]]] = {}

        self._intercepts = {
            ("cam_history", "outfld"): self._intercept_outfld,
            ("cam_history", "outfld2d"): self._intercept_outfld,
            ("shr_random_mod", "shr_random_raw"): self._intercept_random_raw,
            ("shr_random_mod", "shr_random_setseed"): self._intercept_setseed,
        }

        self._eval_dispatch = {
            NumberLit: self._eval_number,
            StringLit: lambda e, f: e.value,
            LogicalLit: lambda e, f: e.value,
            VarRef: self._eval_varref,
            Apply: self._eval_apply,
            DerivedRef: self._eval_derivedref,
            UnaryOp: self._eval_unary,
            BinOp: self._eval_binop,
        }
        self._exec_dispatch = {
            Assignment: self._exec_assignment,
            PointerAssignment: self._exec_assignment,
            CallStmt: self._exec_call,
            IfBlock: self._exec_if,
            DoLoop: self._exec_do,
            DoWhile: self._exec_do_while,
            SelectCase: self._exec_select,
            WhereBlock: self._exec_where,
            ReturnStmt: self._exec_return,
            ExitStmt: self._exec_exit,
            CycleStmt: self._exec_cycle,
            StopStmt: self._exec_stop,
            ContinueStmt: self._exec_continue,
            UnparsedStmt: self._exec_unparsed,
        }

        #: per-AST-node memoized evaluators (None => pure dispatch walking,
        #: the reference semantics the compiled path must match bit-for-bit)
        self._compiler: Optional[NodeCompiler] = (
            self._compiler_factory(self) if compile else None
        )

    #: the closure compiler this interpreter builds when ``compile=True``;
    #: subclasses (the vectorized runtime) swap in their own
    _compiler_factory = NodeCompiler

    # ------------------------------------------------------------------ API
    @classmethod
    def from_source(
        cls,
        source: str,
        filename: str = "<test>",
        macros: Optional[dict[str, str]] = None,
        **kwargs,
    ) -> "Interpreter":
        """Build an interpreter over a single source text (testing helper)."""
        ast = parse_source(source, filename=filename, macros=macros)
        return cls({filename: ast}, **kwargs)

    def call(self, module_name: str, sub_name: str, args: Sequence = ()):
        """Call a module subprogram with Python values as actual arguments.

        Returns the function result for functions, ``None`` for subroutines.
        Output arrays passed in as :class:`numpy.ndarray` are shared, so the
        caller observes ``intent(out)`` results in place.
        """
        mrt = self.module(module_name)
        sub = mrt.subprograms.get(sub_name)
        if sub is None:
            raise UndefinedNameError(
                f"module {module_name!r} has no subprogram {sub_name!r}"
            )
        return self._call_with_values(mrt, sub, list(args))

    # --------------------------------------------------------- module state
    def module(self, name: str) -> ModuleRuntime:
        """The runtime state of module ``name``, initialising it on demand."""
        rt = self.modules.get(name)
        if rt is not None:
            return rt
        node = self._module_nodes.get(name)
        if node is None:
            raise UndefinedNameError(
                f"no module named {name!r} is compiled into this build"
            )
        if name in self._initializing:
            raise FortranRuntimeError(
                f"circular module initialisation involving {name!r}"
            )
        self._initializing.add(name)
        try:
            rt = ModuleRuntime(node=node, scope=Scope(name))
            for use in node.uses:
                self._index_use(rt, use)
            stack: list[Subprogram] = list(node.subprograms.values())
            while stack:
                sub = stack.pop()
                rt.subprograms[sub.name] = sub
                stack.extend(sub.contains)
            # register before evaluating declarations so earlier entities of
            # this module are visible to later initialisers
            self.modules[name] = rt
            frame = Frame(rt, None, rt.scope)
            for decl in node.declarations:
                if isinstance(decl, Declaration):
                    self._declare(frame, decl)
        except BaseException:
            self.modules.pop(name, None)
            raise
        finally:
            self._initializing.discard(name)
        return rt

    @staticmethod
    def _index_use(rt: ModuleRuntime, use: UseStmt) -> None:
        if use.has_only or use.only:
            for rename in use.only:
                rt.renames[rename.local] = (use.module, rename.remote)
        else:
            rt.blanket.append(use.module)

    # ------------------------------------------------------ name resolution
    def _lookup_var(
        self, frame: Frame, name: str
    ) -> Optional[tuple[Scope, str]]:
        """The scope owning variable ``name`` as seen from ``frame``."""
        scope = frame.scope
        if name in scope:
            return scope, name
        mrt = frame.module
        if scope is not mrt.scope and name in mrt.scope:
            return mrt.scope, name
        return self._resolve_use_var(mrt, name, frozenset())

    def _lookup_nonlocal(
        self, frame: Frame, name: str
    ) -> Optional[tuple[Scope, str]]:
        """:meth:`_lookup_var` minus the frame-local check (the compiled
        closures test frame locals inline before falling back here)."""
        mrt = frame.module
        if frame.scope is not mrt.scope and name in mrt.scope:
            return mrt.scope, name
        return self._resolve_use_var(mrt, name, frozenset())

    def _resolve_use_var(
        self, mrt: ModuleRuntime, name: str, visited: frozenset[str]
    ) -> Optional[tuple[Scope, str]]:
        if mrt.node.name in visited:
            return None
        visited = visited | {mrt.node.name}
        if name in mrt.renames:
            target_mod, remote = mrt.renames[name]
            target = self.module(target_mod)
            if remote in target.scope:
                return target.scope, remote
            return self._resolve_use_var(target, remote, visited)
        for target_mod in mrt.blanket:
            target = self.module(target_mod)
            if name in target.scope:
                return target.scope, name
            found = self._resolve_use_var(target, name, visited)
            if found is not None:
                return found
        return None

    def _lookup_proc(
        self, mrt: ModuleRuntime, name: str, visited: frozenset[str]
    ) -> Optional[tuple[ModuleRuntime, Subprogram]]:
        """Resolve a procedure name through contains/use-association."""
        if mrt.node.name in visited:
            return None
        visited = visited | {mrt.node.name}
        if name in mrt.subprograms:
            return mrt, mrt.subprograms[name]
        if name in mrt.node.interfaces:
            for proc in mrt.node.interfaces[name].procedures:
                found = self._lookup_proc(mrt, proc, visited - {mrt.node.name})
                if found is not None:
                    return found
        if name in mrt.renames:
            target_mod, remote = mrt.renames[name]
            return self._lookup_proc(self.module(target_mod), remote, visited)
        for target_mod in mrt.blanket:
            found = self._lookup_proc(self.module(target_mod), name, visited)
            if found is not None:
                return found
        return None

    def _lookup_typedef(
        self, mrt: ModuleRuntime, type_name: str, visited: frozenset[str]
    ) -> Optional[tuple[ModuleRuntime, TypeDef]]:
        if mrt.node.name in visited:
            return None
        visited = visited | {mrt.node.name}
        if type_name in mrt.node.type_defs:
            return mrt, mrt.node.type_defs[type_name]
        if type_name in mrt.renames:
            target_mod, remote = mrt.renames[type_name]
            return self._lookup_typedef(self.module(target_mod), remote, visited)
        for target_mod in mrt.blanket:
            found = self._lookup_typedef(self.module(target_mod), type_name, visited)
            if found is not None:
                return found
        return None

    # ----------------------------------------------------------- declaring
    def _declare(self, frame: Frame, decl: Declaration) -> None:
        for entity in decl.entities:
            if entity.name in frame.scope:
                continue  # dummies are bound before locals are declared
            value = self._create_value(frame, decl, entity)
            frame.scope.define(entity.name, value, readonly=decl.is_parameter)

    def _create_value(self, frame: Frame, decl: Declaration, entity: EntityDecl):
        if decl.base_type in ("type", "class"):
            if decl.type_name is None:
                raise FortranRuntimeError(
                    f"declaration of {entity.name!r} names no derived type"
                )
            return self._instantiate_type(frame.module, decl.type_name)
        if "dimension" in decl.attributes and not entity.dims:
            raise FortranRuntimeError(
                "dimension-attribute declarations are outside the supported "
                f"subset (entity {entity.name!r})"
            )
        if entity.dims:
            shape = tuple(self._dim_extent(d, frame) for d in entity.dims)
            dtype = _DTYPES.get(decl.base_type)
            if dtype is None:
                raise FortranRuntimeError(
                    f"cannot allocate array of type {decl.base_type!r}"
                )
            array = np.zeros(shape, dtype=dtype)
            if entity.init is not None:
                array[...] = self.eval(entity.init, frame)
            return array
        if entity.init is not None:
            return self._coerce_scalar(decl.base_type, self.eval(entity.init, frame))
        try:
            return _SCALAR_DEFAULTS[decl.base_type]
        except KeyError:
            raise FortranRuntimeError(
                f"unsupported scalar type {decl.base_type!r}"
            ) from None

    def _dim_extent(self, dim: Expr, frame: Frame) -> int:
        if isinstance(dim, SectionRange):
            if dim.lower is None or dim.upper is None:
                # assumed-shape/size dummies are bound to shared arrays and
                # never allocated, so an unbounded extent only appears here
                # when a local declaration is out of subset
                raise FortranRuntimeError(
                    "assumed-size local arrays are outside the supported subset"
                )
            lower = int(self.eval(dim.lower, frame))
            if lower != 1:
                # every subscript in the value layer is 1-based; allocating
                # a(0:4) would silently rotate all section accesses
                raise FortranRuntimeError(
                    f"array lower bound must be 1, got {lower} (non-default "
                    "lower bounds are outside the supported subset)"
                )
            return max(0, int(self.eval(dim.upper, frame)))
        return max(0, int(self.eval(dim, frame)))

    def _instantiate_type(self, mrt: ModuleRuntime, type_name: str) -> DerivedValue:
        found = self._lookup_typedef(mrt, type_name, frozenset())
        if found is None:
            raise UndefinedNameError(
                f"derived type {type_name!r} is not visible from module "
                f"{mrt.node.name!r}"
            )
        def_mrt, typedef = found
        def_frame = Frame(def_mrt, None, def_mrt.scope)
        components: dict[str, object] = {}
        for decl in typedef.components:
            for entity in decl.entities:
                components[entity.name] = self._create_value(def_frame, decl, entity)
        return DerivedValue(type_name, components)

    @staticmethod
    def _coerce_scalar(base_type: str, value):
        if base_type == "real":
            return float(value)
        if base_type == "integer":
            return int(np.trunc(value)) if isinstance(value, float) else int(value)
        if base_type == "logical":
            return bool(value)
        if base_type == "character":
            return str(value)
        return value

    def _sub_info(self, sub: Subprogram) -> dict[str, _EntityInfo]:
        cached = self._sub_info_cache.get(id(sub))
        if cached is not None:
            return cached[1]
        info: dict[str, _EntityInfo] = {}
        for decl in sub.declarations:
            if isinstance(decl, Declaration):
                for entity in decl.entities:
                    info[entity.name] = _EntityInfo(decl=decl, entity=entity)
        self._sub_info_cache[id(sub)] = (sub, info)
        return info

    # ------------------------------------------------------------- calling
    def _call_with_values(
        self,
        mrt: ModuleRuntime,
        sub: Subprogram,
        values: list,
        caller: Optional[Frame] = None,
    ):
        """Call ``sub`` binding pre-evaluated values to its dummies."""
        if len(values) != len(sub.args):
            raise FortranRuntimeError(
                f"{sub.name!r} expects {len(sub.args)} argument(s), "
                f"got {len(values)}"
            )
        info = self._sub_info(sub)
        frame = Frame(mrt, sub, Scope(f"{mrt.node.name}:{sub.name}"), caller)
        for dummy, value in zip(sub.args, values):
            d = info.get(dummy)
            readonly = d is not None and d.intent == "in"
            frame.scope.define(dummy, value, readonly=readonly)
        return self._finish_call(mrt, sub, frame, writebacks=[])

    def _call_subprogram(
        self,
        mrt: ModuleRuntime,
        sub: Subprogram,
        arg_exprs: list[Expr],
        kw_exprs: dict[str, Expr],
        caller_frame: Frame,
        want_result: bool,
    ):
        info = self._sub_info(sub)
        pairs: dict[str, Optional[Expr]] = {}
        if len(arg_exprs) > len(sub.args):
            raise FortranRuntimeError(
                f"too many arguments in call to {sub.name!r}"
            )
        for dummy, actual in zip(sub.args, arg_exprs):
            pairs[dummy] = actual
        for kw, actual in kw_exprs.items():
            if kw not in sub.args:
                raise FortranRuntimeError(
                    f"{sub.name!r} has no dummy argument named {kw!r}"
                )
            if kw in pairs:
                raise FortranRuntimeError(
                    f"dummy argument {kw!r} bound twice in call to {sub.name!r}"
                )
            pairs[kw] = actual

        if (
            "elemental" in sub.prefixes
            and want_result
            and len(pairs) == len(sub.args)  # guard BEFORE evaluating, so a
            # partially-bound call never evaluates side-effecting actuals twice
        ):
            values = [self.eval(pairs[dummy], caller_frame) for dummy in sub.args]
            return self._dispatch_elemental(mrt, sub, values, caller_frame)

        frame = Frame(mrt, sub, Scope(f"{mrt.node.name}:{sub.name}"), caller_frame)
        writebacks: list[tuple[Ref, str]] = []
        for dummy in sub.args:
            d = info.get(dummy)
            actual = pairs.get(dummy)
            if actual is None:
                if d is not None and d.optional:
                    frame.optional_missing.add(dummy)
                    continue
                raise FortranRuntimeError(
                    f"missing actual argument for dummy {dummy!r} in call to "
                    f"{sub.name!r}"
                )
            kind, payload, writable = self._bind_actual(actual, caller_frame)
            intent = d.intent if d is not None else None
            if kind == "ref":
                value = payload.load()
                frame.scope.define(dummy, value, readonly=(intent == "in"))
                if intent != "in" and writable:
                    writebacks.append((payload, dummy))
            else:  # "share" or "value"
                readonly = intent == "in" or (kind == "share" and not writable)
                frame.scope.define(dummy, payload, readonly=readonly)
        return self._finish_call(mrt, sub, frame, writebacks, want_result)

    def _finish_call(
        self,
        mrt: ModuleRuntime,
        sub: Subprogram,
        frame: Frame,
        writebacks: list[tuple[Ref, str]],
        want_result: Optional[bool] = None,
    ):
        for decl in sub.declarations:
            if isinstance(decl, Declaration):
                self._declare(frame, decl)
            elif isinstance(decl, UseStmt):
                self._index_use_frame(frame, decl)
        if sub.is_function and sub.result not in frame.scope:
            frame.scope.define(sub.result, 0.0)
        try:
            self.exec_body(sub.body, frame)
        except _Return:
            pass
        for ref, dummy in writebacks:
            self._coerce_store(ref, frame.scope.get(dummy))
        if sub.is_function and (want_result is None or want_result):
            return frame.scope.get(sub.result)
        return None

    def _index_use_frame(self, frame: Frame, use: UseStmt) -> None:
        """Subprogram-level ``use``: alias the used names into the frame.

        Arrays and derived values alias live storage; scalars are snapshots
        taken at call entry (sufficient for the parameter/constant imports
        this form is used for).
        """
        if not (use.has_only or use.only):
            raise FortranRuntimeError(
                "subprogram-level 'use' without an only-list is outside the "
                f"supported subset (module {use.module!r})"
            )
        target = self.module(use.module)
        for rename in use.only:
            if rename.remote in target.scope:
                frame.scope.define(rename.local, target.scope.get(rename.remote))
                continue
            found = self._resolve_use_var(target, rename.remote, frozenset())
            if found is not None:
                frame.scope.define(rename.local, found[0].get(found[1]))
            # procedures imported this way resolve through _lookup_proc

    def _dispatch_elemental(
        self, mrt: ModuleRuntime, sub: Subprogram, values: list, caller_frame
    ):
        """Route a fully-bound elemental function call: broadcast over array
        arguments, plain call otherwise (overridden by the vectorized
        runtime, which must not collapse member batches element-wise)."""
        if any(isinstance(v, np.ndarray) for v in values):
            return self._call_elemental(mrt, sub, values)
        return self._call_with_values(mrt, sub, values, caller_frame)

    def _call_elemental(self, mrt: ModuleRuntime, sub: Subprogram, values: list):
        """Broadcast an elemental function over its array arguments."""
        arrays = [v for v in values if isinstance(v, np.ndarray)]
        shape = np.broadcast_shapes(*(a.shape for a in arrays))
        out = np.empty(shape, dtype=np.float64)
        broadcast = [
            np.broadcast_to(v, shape) if isinstance(v, np.ndarray) else None
            for v in values
        ]
        it = np.nditer(out, flags=["multi_index"], op_flags=["writeonly"])
        for slot in it:
            idx = it.multi_index
            scalars = [
                float(b[idx]) if b is not None else values[i]
                for i, b in enumerate(broadcast)
            ]
            slot[...] = self._call_with_values(mrt, sub, scalars)
        return out

    def _bind_actual(self, expr: Expr, frame: Frame):
        """Classify one actual argument.

        Returns ``(kind, payload, writable)`` where kind is ``"share"``
        (payload is an aliased array/derived value), ``"ref"`` (payload is a
        scalar storage location to copy in/out of) or ``"value"`` (payload is
        a computed value with no writeback).
        """
        if isinstance(expr, VarRef):
            found = self._lookup_var(frame, expr.name)
            if found is None:
                raise UndefinedNameError(
                    f"undefined name {expr.name!r} in {frame.scope.name!r}"
                )
            scope, name = found
            value = scope.get(name)
            writable = name not in scope.readonly
            if isinstance(value, (np.ndarray, DerivedValue)):
                return "share", value, writable
            return "ref", ScopeRef(scope, name), writable
        if isinstance(expr, DerivedRef):
            ref = self._resolve_target(expr, frame)
            value = ref.load()
            writable = not self._ref_readonly(ref)
            if isinstance(value, (np.ndarray, DerivedValue)):
                return "share", value, writable
            return "ref", ref, writable
        if isinstance(expr, Apply):
            found = self._lookup_var(frame, expr.name)
            if found is not None:
                scope, name = found
                container = scope.get(name)
                if isinstance(container, np.ndarray):
                    writable = name not in scope.readonly
                    index = fortran_slices(
                        self._eval_subscripts(expr.args, frame)
                    )
                    if any(isinstance(i, slice) for i in index):
                        return "share", container[index], writable
                    ref = ElementRef(
                        container, index,
                        guard=scope.readonly, guard_name=name,
                    )
                    return "ref", ref, writable
        return "value", self.eval(expr, frame), False

    @staticmethod
    def _ref_readonly(ref: Ref) -> bool:
        if isinstance(ref, ScopeRef):
            return ref.name in ref.scope.readonly
        guard = getattr(ref, "guard", None)
        return guard is not None and getattr(ref, "guard_name", "") in guard

    # ----------------------------------------------- intercepted procedures
    def _intercept_outfld(self, frame, arg_exprs, kw_exprs, mrt, sub):
        """Record the history field, then run the real Fortran body.

        Arguments are evaluated once: the recorded values are re-bound
        directly for the body (both dummies are ``intent(in)``).
        """
        if kw_exprs or len(arg_exprs) != 2:
            raise FortranRuntimeError(
                f"{sub.name} expects two positional arguments (name, field)"
            )
        name = self.eval(arg_exprs[0], frame)
        value = self.eval(arg_exprs[1], frame)
        self.history.record(str(name), value)
        self._call_with_values(mrt, sub, [name, value])

    def _intercept_random_raw(self, frame, arg_exprs, kw_exprs, mrt, sub):
        """Fill the harvest array from the *requesting* module's stream.

        ``shr_random_raw`` is the generator core behind the model's own
        ``shr_random_uniform`` wrapper (whose variate transform is real,
        patchable Fortran).  The stream is attributed to the nearest frame
        outside ``shr_random_mod`` so every component keeps its own
        independent, seed-derived sequence regardless of wrapper depth.
        """
        kind, payload, writable = self._bind_actual(arg_exprs[0], frame)
        if kind != "share" or not isinstance(payload, np.ndarray):
            raise FortranRuntimeError(
                "shr_random_raw requires a whole-array harvest argument"
            )
        if not writable:
            raise IntentViolationError(
                "shr_random_raw harvest argument is read-only here"
            )
        n = None
        if len(arg_exprs) > 1:
            n = int(self.eval(arg_exprs[1], frame))
        owner = frame
        while owner is not None and owner.module.node.name == mrt.node.name:
            owner = owner.caller
        owner_name = (owner or frame).module.node.name
        stream = self.prng.stream(owner_name)
        stream.fill(payload, n)

    def _intercept_setseed(self, frame, arg_exprs, kw_exprs, mrt, sub):
        seed = int(self.eval(arg_exprs[0], frame))
        self.prng.reseed(seed)
        if "seed_state" in mrt.scope:
            mrt.scope.store("seed_state", seed)

    def _call_intrinsic_subroutine(self, name, arg_exprs, kw_exprs, frame):
        if name == "random_number":
            kind, payload, writable = self._bind_actual(arg_exprs[0], frame)
            stream = self.prng.stream(frame.module.node.name)
            if kind == "share" and isinstance(payload, np.ndarray):
                stream.fill(payload)
            elif kind == "ref":
                payload.store(stream.uniform())
            else:
                raise FortranRuntimeError(
                    "random_number requires a variable argument"
                )
            return
        if name == "random_seed":
            put = kw_exprs.get("put")
            if put is not None:
                value = self.eval(put, frame)
                seed = int(np.asarray(value).reshape(-1)[0])
                self.prng.reseed(seed)
            return
        if name == "system_clock":
            if arg_exprs:
                ref = self._resolve_target(arg_exprs[0], frame)
                ref.store(self.statements_executed)
            return
        if name == "cpu_time":
            if arg_exprs:
                ref = self._resolve_target(arg_exprs[0], frame)
                ref.store(self.statements_executed * 1.0e-6)
            return
        if name in ("date_and_time", "get_command_argument"):
            return  # deterministic no-ops
        raise UndefinedNameError(f"unsupported intrinsic subroutine {name!r}")

    # ----------------------------------------------------------- execution
    def exec_body(self, body: list[Stmt], frame: Frame) -> None:
        compiler = self._compiler
        if compiler is not None:
            cached = compiler.body_cache.get(id(body))
            fns = cached[1] if cached is not None else compiler.body(body)
            for fn in fns:
                fn(frame)
            return
        for stmt in body:
            self.exec_stmt(stmt, frame)

    def _account(self, stmt: Stmt) -> None:
        """Charge one statement execution: budget check + coverage count."""
        self.statements_executed += 1
        if self.statements_executed > self.max_statements:
            raise StatementLimitExceeded(
                f"statement budget of {self.max_statements} exhausted "
                f"(possible runaway loop at {stmt.location})"
            )
        if self._cov_counts is not None:
            loc = stmt.location
            if loc.line > 0:
                key = (loc.filename, loc.line)
                self._cov_counts[key] = self._cov_counts.get(key, 0) + 1

    def exec_stmt(self, stmt: Stmt, frame: Frame) -> None:
        compiler = self._compiler
        if compiler is not None:
            cached = compiler.stmt_cache.get(id(stmt))
            fn = cached[1] if cached is not None else compiler.stmt(stmt)
            fn(frame)
            return
        self._account(stmt)
        handler = self._exec_dispatch.get(type(stmt))
        if handler is None:
            raise FortranRuntimeError(
                f"cannot execute statement {type(stmt).__name__} at "
                f"{stmt.location}"
            )
        handler(stmt, frame)

    def _exec_assignment(self, stmt, frame: Frame) -> None:
        value = self.eval(stmt.value, frame)
        ref = self._resolve_target(stmt.target, frame)
        self._coerce_store(ref, value)

    def _coerce_store(self, ref: Ref, value) -> None:
        """Store through a ref, truncating reals assigned to integer slots."""
        if isinstance(ref, ScopeRef):
            current = ref.scope.values.get(ref.name)
            if isinstance(current, (int, np.integer)) and not isinstance(
                current, (bool, np.bool_)
            ):
                if isinstance(value, (float, np.floating)):
                    value = int(np.trunc(value))
                else:
                    value = int(value)
            elif isinstance(current, float) and not isinstance(
                value, np.ndarray
            ):
                value = float(value)
            elif isinstance(current, (bool, np.bool_)):
                value = bool(value)
        ref.store(value)

    def _exec_call(self, stmt: CallStmt, frame: Frame) -> None:
        resolved = self._lookup_proc(frame.module, stmt.name, frozenset())
        if resolved is not None:
            target_mrt, sub = resolved
            intercept = self._intercepts.get((target_mrt.node.name, sub.name))
            if intercept is not None:
                intercept(frame, stmt.args, stmt.keywords, target_mrt, sub)
                return
            self._call_subprogram(
                target_mrt, sub, stmt.args, stmt.keywords, frame, False
            )
            return
        if stmt.name.lower() in SUBROUTINE_INTRINSICS:
            self._call_intrinsic_subroutine(
                stmt.name.lower(), stmt.args, stmt.keywords, frame
            )
            return
        raise UndefinedNameError(
            f"call to unknown subroutine {stmt.name!r} from module "
            f"{frame.module.node.name!r}"
        )

    def _exec_if(self, stmt: IfBlock, frame: Frame) -> None:
        for cond, body in stmt.branches:
            if cond is None or self._truthy(self.eval(cond, frame)):
                self.exec_body(body, frame)
                return

    def _exec_do(self, stmt: DoLoop, frame: Frame) -> None:
        start = self.eval(stmt.start, frame)
        stop = self.eval(stmt.stop, frame)
        step = self.eval(stmt.step, frame) if stmt.step is not None else 1
        if step == 0:
            raise FortranRuntimeError(f"zero do-loop step at {stmt.location}")
        found = self._lookup_var(frame, stmt.var)
        scope = found[0] if found is not None else frame.scope
        var_name = found[1] if found is not None else stmt.var
        count = int(np.trunc((stop - start + step) / step))
        if count < 0:
            count = 0
        var = start
        completed = True
        for _ in range(count):
            scope.store(var_name, var)
            try:
                self.exec_body(stmt.body, frame)
            except _Cycle:
                pass
            except _Exit:
                completed = False
                break
            var = var + step
        if completed:
            # Fortran leaves the control variable one step past the last
            scope.store(var_name, start + count * step)

    def _exec_do_while(self, stmt: DoWhile, frame: Frame) -> None:
        while self._truthy(self.eval(stmt.condition, frame)):
            try:
                self.exec_body(stmt.body, frame)
            except _Cycle:
                continue
            except _Exit:
                break
            self._account(stmt)  # charge each condition re-evaluation

    def _exec_select(self, stmt: SelectCase, frame: Frame) -> None:
        selector = self.eval(stmt.selector, frame)
        default_body = None
        for items, body in stmt.cases:
            if items is None:
                default_body = body
                continue
            for item in items:
                if self._case_matches(selector, item, frame):
                    self.exec_body(body, frame)
                    return
        if default_body is not None:
            self.exec_body(default_body, frame)

    def _case_matches(self, selector, item, frame: Frame) -> bool:
        if not item.is_range:
            return bool(selector == self.eval(item.value, frame))
        if item.lower is not None:
            if selector < self.eval(item.lower, frame):
                return False
        if item.upper is not None:
            if selector > self.eval(item.upper, frame):
                return False
        return True

    def _exec_where(self, stmt: WhereBlock, frame: Frame) -> None:
        mask = np.asarray(self.eval(stmt.mask, frame), dtype=bool)
        self._exec_masked(stmt.body, mask, frame)
        if stmt.else_body:
            self._exec_masked(stmt.else_body, ~mask, frame)

    def _exec_masked(self, body: list[Stmt], mask: np.ndarray, frame: Frame) -> None:
        for stmt in body:
            if not isinstance(stmt, Assignment):
                raise FortranRuntimeError(
                    "only assignments are supported inside where blocks "
                    f"(at {stmt.location})"
                )
            self._account(stmt)
            value = self.eval(stmt.value, frame)
            ref = self._resolve_target(stmt.target, frame)
            target = ref.load()
            if not isinstance(target, np.ndarray):
                raise FortranRuntimeError(
                    f"where-assignment target is not an array at {stmt.location}"
                )
            if self._ref_readonly(ref):
                raise IntentViolationError(
                    f"cannot assign through read-only target at {stmt.location}"
                )
            np.copyto(target, value, where=mask, casting="unsafe")

    def _exec_return(self, stmt, frame) -> None:
        raise _Return()

    def _exec_exit(self, stmt, frame) -> None:
        raise _Exit()

    def _exec_cycle(self, stmt, frame) -> None:
        raise _Cycle()

    def _exec_stop(self, stmt: StopStmt, frame) -> None:
        raise StopModel(stmt.message)

    def _exec_continue(self, stmt, frame) -> None:
        return None

    def _exec_unparsed(self, stmt: UnparsedStmt, frame) -> None:
        raise FortranRuntimeError(
            f"cannot execute unparsed statement at {stmt.location}: "
            f"{stmt.text!r}"
        )

    @staticmethod
    def _truthy(value) -> bool:
        if isinstance(value, np.ndarray):
            raise FortranRuntimeError(
                "scalar logical required (array condition in if/do while)"
            )
        return bool(value)

    # ----------------------------------------------------- target resolution
    def _resolve_target(self, expr: Expr, frame: Frame) -> Ref:
        if isinstance(expr, VarRef):
            found = self._lookup_var(frame, expr.name)
            if found is None:
                # implicit definition (e.g. an undeclared do index)
                frame.scope.define(expr.name, 0)
                return ScopeRef(frame.scope, expr.name)
            return ScopeRef(found[0], found[1])
        if isinstance(expr, Apply):
            found = self._lookup_var(frame, expr.name)
            if found is None:
                raise UndefinedNameError(
                    f"assignment to unknown array {expr.name!r}"
                )
            scope, name = found
            container = scope.get(name)
            if not isinstance(container, np.ndarray):
                raise FortranRuntimeError(
                    f"subscripted assignment to non-array {name!r}"
                )
            index = fortran_slices(self._eval_subscripts(expr.args, frame))
            return ElementRef(
                container, index, guard=scope.readonly, guard_name=name
            )
        if isinstance(expr, DerivedRef):
            root = expr
            while isinstance(root, DerivedRef):
                root = root.base
            root_name = root.name if isinstance(root, (VarRef, Apply)) else ""
            guard: Optional[set[str]] = None
            found = self._lookup_var(frame, root_name) if root_name else None
            if found is not None:
                guard = found[0].readonly
            base = self.eval(expr.base, frame)
            if not isinstance(base, DerivedValue):
                raise FortranRuntimeError(
                    f"component reference into non-derived value "
                    f"{expr.component!r}"
                )
            if expr.args:
                array = base.get(expr.component)
                if not isinstance(array, np.ndarray):
                    raise FortranRuntimeError(
                        f"subscripted non-array component {expr.component!r}"
                    )
                index = fortran_slices(self._eval_subscripts(expr.args, frame))
                return ElementRef(
                    array, index, guard=guard, guard_name=root_name
                )
            return ComponentRef(
                base, expr.component, None, guard=guard, guard_name=root_name
            )
        raise FortranRuntimeError(
            f"unsupported assignment target {type(expr).__name__}"
        )

    # ----------------------------------------------------------- evaluation
    def eval(self, expr: Expr, frame: Frame):
        compiler = self._compiler
        if compiler is not None:
            cached = compiler.expr_cache.get(id(expr))
            fn = cached[1] if cached is not None else compiler.expr(expr)
            return fn(frame)
        handler = self._eval_dispatch.get(type(expr))
        if handler is None:
            raise FortranRuntimeError(
                f"cannot evaluate expression {type(expr).__name__}"
            )
        return handler(expr, frame)

    @staticmethod
    def _eval_number(expr: NumberLit, frame: Frame):
        return int(expr.value) if expr.is_integer else float(expr.value)

    def _eval_varref(self, expr: VarRef, frame: Frame):
        found = self._lookup_var(frame, expr.name)
        if found is None:
            raise UndefinedNameError(
                f"undefined name {expr.name!r} in {frame.scope.name!r} "
                f"(module {frame.module.node.name!r})"
            )
        return found[0].get(found[1])

    def _eval_subscripts(self, args: list[Expr], frame: Frame) -> list:
        parts: list = []
        for arg in args:
            if isinstance(arg, SectionRange):
                lower = None if arg.lower is None else self.eval(arg.lower, frame)
                upper = None if arg.upper is None else self.eval(arg.upper, frame)
                stride = None if arg.stride is None else self.eval(arg.stride, frame)
                parts.append((lower, upper, stride))
            else:
                parts.append(int(self.eval(arg, frame)))
        return parts

    def _eval_apply(self, expr: Apply, frame: Frame):
        found = self._lookup_var(frame, expr.name)
        if found is not None:
            container = found[0].get(found[1])
            if isinstance(container, np.ndarray):
                index = fortran_slices(self._eval_subscripts(expr.args, frame))
                value = container[index]
                if isinstance(value, np.ndarray):
                    return value
                return value.item() if hasattr(value, "item") else value
            raise FortranRuntimeError(
                f"{expr.name!r} is not an array or function"
            )
        resolved = self._lookup_proc(frame.module, expr.name, frozenset())
        if resolved is not None:
            target_mrt, sub = resolved
            if not sub.is_function:
                raise FortranRuntimeError(
                    f"subroutine {sub.name!r} referenced as a function"
                )
            return self._call_subprogram(
                target_mrt, sub, expr.args, expr.keywords, frame, True
            )
        lowered = expr.name.lower()
        if lowered == "present":
            if len(expr.args) != 1 or not isinstance(expr.args[0], VarRef):
                raise FortranRuntimeError(
                    "present() takes exactly one dummy-argument name"
                )
            return expr.args[0].name not in frame.optional_missing
        fn = INTRINSIC_FUNCTIONS.get(lowered)
        if fn is not None:
            args = [self.eval(a, frame) for a in expr.args]
            keywords = {
                k: self.eval(v, frame) for k, v in expr.keywords.items()
            }
            return fn(*args, **keywords)
        raise UndefinedNameError(
            f"unknown function or array {expr.name!r} in module "
            f"{frame.module.node.name!r}"
        )

    def _eval_derivedref(self, expr: DerivedRef, frame: Frame):
        base = self.eval(expr.base, frame)
        if not isinstance(base, DerivedValue):
            raise FortranRuntimeError(
                f"component reference {expr.component!r} into non-derived value"
            )
        value = base.get(expr.component)
        if expr.args:
            index = fortran_slices(self._eval_subscripts(expr.args, frame))
            value = value[index]
            if not isinstance(value, np.ndarray):
                return value.item() if hasattr(value, "item") else value
        return value

    def _eval_unary(self, expr: UnaryOp, frame: Frame):
        value = self.eval(expr.operand, frame)
        if expr.op == "-":
            return -value
        if expr.op == ".not.":
            if isinstance(value, np.ndarray):
                return np.logical_not(value)
            return not value
        raise FortranRuntimeError(f"unsupported unary operator {expr.op!r}")

    def _eval_binop(self, expr: BinOp, frame: Frame):
        op = expr.op
        if op in ("+", "-"):
            fused = self._try_fma(expr, frame)
            if fused is not None:
                return fused[0]
            left = self.eval(expr.left, frame)
            right = self.eval(expr.right, frame)
            return self.fpu.add(left, right) if op == "+" else self.fpu.sub(left, right)
        left = self.eval(expr.left, frame)
        if op == ".and.":
            right = self.eval(expr.right, frame)
            if isinstance(left, np.ndarray) or isinstance(right, np.ndarray):
                return np.logical_and(left, right)
            return bool(left) and bool(right)
        if op == ".or.":
            right = self.eval(expr.right, frame)
            if isinstance(left, np.ndarray) or isinstance(right, np.ndarray):
                return np.logical_or(left, right)
            return bool(left) or bool(right)
        right = self.eval(expr.right, frame)
        if op == "*":
            return self.fpu.mul(left, right)
        if op == "/":
            return self.fpu.div(left, right)
        if op == "**":
            return self.fpu.pow(left, right)
        if op == "==":
            return left == right
        if op == "/=":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        if op == "//":
            return str(left) + str(right)
        raise FortranRuntimeError(f"unsupported binary operator {op!r}")

    def _try_fma(self, expr: BinOp, frame: Frame):
        """Contract ``a*b ± c`` / ``c ± a*b`` when FMA is on for this module.

        Returns a 1-tuple with the fused result, or ``None`` when the
        pattern does not apply (then the caller evaluates unfused).
        """
        if not self.fp.fma or not self.fp.fma_enabled_in(frame.module.node.name):
            return None
        op = expr.op
        left_mul = isinstance(expr.left, BinOp) and expr.left.op == "*"
        right_mul = isinstance(expr.right, BinOp) and expr.right.op == "*"
        if left_mul:
            a = self.eval(expr.left.left, frame)
            b = self.eval(expr.left.right, frame)
            c = self.eval(expr.right, frame)
            if self._all_int(a, b, c):
                product = self.fpu.mul(a, b)
                return (self.fpu.add(product, c) if op == "+"
                        else self.fpu.sub(product, c),)
            return (self.fpu.fma(a, b, c if op == "+" else -c),)
        if right_mul:
            # left-to-right operand evaluation, as in the unfused path, so
            # FMA mode changes only the rounding, never side-effect order
            c = self.eval(expr.left, frame)
            a = self.eval(expr.right.left, frame)
            b = self.eval(expr.right.right, frame)
            if self._all_int(a, b, c):
                product = self.fpu.mul(a, b)
                return (self.fpu.add(c, product) if op == "+"
                        else self.fpu.sub(c, product),)
            if op == "+":
                return (self.fpu.fma(a, b, c),)
            return (self.fpu.fma(-a, b, c),)  # c - a*b
        return None

    @staticmethod
    def _all_int(*values) -> bool:
        return all(
            isinstance(v, (int, np.integer)) and not isinstance(v, (bool, np.bool_))
            for v in values
        )

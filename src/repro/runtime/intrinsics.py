"""Runtime implementations of the Fortran intrinsics the front end knows.

Every name in :data:`repro.fortran.intrinsics.EXPRESSION_INTRINSICS` has an
entry in :data:`INTRINSIC_FUNCTIONS` (``present`` is special-cased by the
interpreter because it needs the call frame).  Implementations follow
Fortran semantics rather than Python's where they differ:

* ``int``/``aint`` truncate toward zero, ``nint`` rounds half *away* from
  zero (Python/numpy round half to even);
* ``mod`` takes the sign of the first argument;
* ``sign`` transfers the sign of the second argument, honouring IEEE
  negative zero;
* ``floor``, ``int``, ``nint`` return integers; ``aint`` returns a real;
* ``max``/``min`` are variadic and elementwise, and keep integer type when
  every argument is an integer;
* ``reshape``/``spread`` use Fortran (column-major) element order.

Scalars in, scalars out: Python ``int``/``float``/``bool`` arguments produce
Python results; :class:`numpy.ndarray` arguments produce arrays.
"""

from __future__ import annotations

import math

import numpy as np

from ..fortran.intrinsics import EXPRESSION_INTRINSICS

__all__ = ["INTRINSIC_FUNCTIONS", "call_intrinsic"]

_F64 = np.finfo(np.float64)
_INT_HUGE = 2147483647  # default integer kind is 4 bytes


def _is_int(x) -> bool:
    return isinstance(x, (int, np.integer)) and not isinstance(x, (bool, np.bool_))


def _scalarize(value, *inputs):
    """Return a Python scalar when no input was an array."""
    if any(isinstance(x, np.ndarray) for x in inputs):
        return value
    if isinstance(value, np.ndarray) and value.ndim == 0:
        value = value.item()
    if isinstance(value, np.generic):
        value = value.item()
    return value


def _real_unary(fn):
    def wrapped(x):
        return _scalarize(fn(x), x)

    return wrapped


def _vectorized(scalar_fn):
    """Scalar math.* function lifted elementwise over arrays."""

    def wrapped(x):
        if isinstance(x, np.ndarray):
            return np.vectorize(scalar_fn, otypes=[np.float64])(x)
        return scalar_fn(float(x))

    return wrapped


# --------------------------------------------------------------------------- #
# individual semantics
# --------------------------------------------------------------------------- #
def _abs(x):
    if _is_int(x):
        return abs(int(x))
    return _scalarize(np.abs(x), x)


def _aint(x):
    return _scalarize(np.trunc(x).astype(np.float64) if isinstance(x, np.ndarray) else float(np.trunc(x)), x)


def _int(x):
    if isinstance(x, np.ndarray):
        return np.trunc(x).astype(np.int64)
    return int(np.trunc(x))


def _nint(x):
    if isinstance(x, np.ndarray):
        return (np.trunc(x + np.copysign(0.5, x))).astype(np.int64)
    return int(np.trunc(x + math.copysign(0.5, x)))


def _floor(x):
    if isinstance(x, np.ndarray):
        return np.floor(x).astype(np.int64)
    return int(np.floor(x))


def _real(x):
    if isinstance(x, np.ndarray):
        return x.astype(np.float64)
    return float(x)


def _dim(a, b):
    if _is_int(a) and _is_int(b):
        return max(int(a) - int(b), 0)
    return _scalarize(np.maximum(np.subtract(a, b), 0.0), a, b)


def _mod(a, p):
    if _is_int(a) and _is_int(p):
        return int(math.fmod(int(a), int(p)))
    return _scalarize(np.fmod(a, p), a, p)


def _sign(a, b):
    if _is_int(a) and _is_int(b):
        return abs(int(a)) if b >= 0 else -abs(int(a))
    return _scalarize(np.copysign(np.abs(a), b), a, b)


def _max(*args):
    if all(_is_int(a) for a in args):
        return max(int(a) for a in args)
    out = args[0]
    for a in args[1:]:
        out = np.maximum(out, a)
    return _scalarize(out, *args)


def _min(*args):
    if all(_is_int(a) for a in args):
        return min(int(a) for a in args)
    out = args[0]
    for a in args[1:]:
        out = np.minimum(out, a)
    return _scalarize(out, *args)


def _maxval(array):
    value = np.max(array)
    return int(value) if np.issubdtype(np.asarray(array).dtype, np.integer) else float(value)


def _minval(array):
    value = np.min(array)
    return int(value) if np.issubdtype(np.asarray(array).dtype, np.integer) else float(value)


def _sum(array, dim=None):
    if dim is not None:
        return np.sum(array, axis=int(dim) - 1)
    value = np.sum(array)
    return int(value) if np.issubdtype(np.asarray(array).dtype, np.integer) else float(value)


def _merge(tsource, fsource, mask):
    if isinstance(mask, np.ndarray) or isinstance(tsource, np.ndarray) or isinstance(fsource, np.ndarray):
        return np.where(mask, tsource, fsource)
    return tsource if mask else fsource


def _spread(source, dim, ncopies):
    axis = int(dim) - 1
    ncopies = int(ncopies)
    if not isinstance(source, np.ndarray):
        return np.full(ncopies, source, dtype=np.float64 if not _is_int(source) else np.int64)
    return np.repeat(np.expand_dims(source, axis), ncopies, axis=axis)


def _reshape(source, shape):
    flat = np.asarray(source).flatten(order="F")
    dims = tuple(int(d) for d in np.asarray(shape).reshape(-1))
    return np.reshape(flat, dims, order="F")


def _size(array, dim=None):
    arr = np.asarray(array)
    if dim is None:
        return int(arr.size)
    return int(arr.shape[int(dim) - 1])


def _atan2(y, x):
    return _scalarize(np.arctan2(y, x), y, x)


def _present(*_args):  # pragma: no cover - replaced by the interpreter
    raise NotImplementedError(
        "present() requires the call frame; the interpreter handles it"
    )


#: name -> implementation for every expression intrinsic.
INTRINSIC_FUNCTIONS: dict[str, object] = {
    "abs": _abs,
    "acos": _real_unary(np.arccos),
    "aint": _aint,
    "asin": _real_unary(np.arcsin),
    "atan": _real_unary(np.arctan),
    "atan2": _atan2,
    "cos": _real_unary(np.cos),
    "cosh": _real_unary(np.cosh),
    "dble": _real,
    "dim": _dim,
    "epsilon": lambda x: float(_F64.eps),
    "exp": _real_unary(np.exp),
    "floor": _floor,
    "huge": lambda x: _INT_HUGE if _is_int(x) else float(_F64.max),
    "int": _int,
    "log": _real_unary(np.log),
    "log10": _real_unary(np.log10),
    "max": _max,
    "maxval": _maxval,
    "merge": _merge,
    "min": _min,
    "minval": _minval,
    "mod": _mod,
    "nint": _nint,
    "real": _real,
    "sign": _sign,
    "sin": _real_unary(np.sin),
    "sinh": _real_unary(np.sinh),
    "size": _size,
    "sqrt": _real_unary(np.sqrt),
    "sum": _sum,
    "tan": _real_unary(np.tan),
    "tanh": _real_unary(np.tanh),
    "tiny": lambda x: float(_F64.tiny),
    "gamma": _vectorized(math.gamma),
    "erf": _vectorized(math.erf),
    "erfc": _vectorized(math.erfc),
    "spread": _spread,
    "reshape": _reshape,
    "matmul": lambda a, b: np.matmul(a, b),
    "dot_product": lambda a, b: float(np.dot(a, b)),
    "count": lambda mask: int(np.count_nonzero(mask)),
    "any": lambda mask: bool(np.any(mask)),
    "all": lambda mask: bool(np.all(mask)),
    "present": _present,
    "trim": lambda s: s.rstrip(),
    "adjustl": lambda s: s.lstrip(),
    "len_trim": lambda s: len(s.rstrip()),
}

_missing = EXPRESSION_INTRINSICS - set(INTRINSIC_FUNCTIONS)
assert not _missing, f"intrinsics without runtime implementation: {_missing}"


def call_intrinsic(name: str, args: list, keywords: dict | None = None):
    """Invoke an expression intrinsic by (case-insensitive) name."""
    fn = INTRINSIC_FUNCTIONS[name.lower()]
    return fn(*args, **(keywords or {}))

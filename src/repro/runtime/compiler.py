"""Per-AST-node closure compilation for the numerical interpreter.

The AST-walking evaluator in :mod:`repro.runtime.interpreter` pays a type
dispatch, an operator-string compare and a full scope-chain walk for *every*
node visit; one model step visits ~355k expression nodes, so the dispatch
overhead dominates the run time.  :class:`NodeCompiler` removes it by
memoizing a compiled closure per AST node: the first visit of a node builds a
small closure specialised on

* the node type and operator (no dispatch or string compares afterwards),
* the floating-point configuration (plain ``+``/``-``/``*`` when neither
  flush-to-zero nor FMA can change the result),
* the resolved procedure / intrinsic for calls (name resolution through
  use-association runs once per call site, not once per execution), and
* the non-local scope owning a variable (locals are still checked first on
  every access, so dynamic shadowing keeps its interpreted semantics).

Caches are keyed by ``id(node)`` and pin the node object, so entries stay
valid for the lifetime of the interpreter.  Compilation is *behavioural*
memoization only — evaluation order, coercions, error types and messages,
statement accounting and coverage counts are identical to the dispatch
interpreter (``Interpreter(..., compile=False)``), which the conformance
suite checks bit-for-bit and the ensemble benchmark uses as its baseline.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..fortran.ast_nodes import (
    Apply,
    Assignment,
    BinOp,
    CallStmt,
    ContinueStmt,
    CycleStmt,
    DerivedRef,
    DoLoop,
    DoWhile,
    ExitStmt,
    Expr,
    IfBlock,
    LogicalLit,
    NumberLit,
    PointerAssignment,
    ReturnStmt,
    SectionRange,
    SelectCase,
    Stmt,
    StopStmt,
    StringLit,
    UnaryOp,
    VarRef,
    WhereBlock,
)
from ..fortran.intrinsics import SUBROUTINE_INTRINSICS
from .intrinsics import INTRINSIC_FUNCTIONS
from .values import (
    DerivedValue,
    FortranRuntimeError,
    IntentViolationError,
    StatementLimitExceeded,
    StopModel,
    UndefinedNameError,
    _Cycle,
    _Exit,
    _Return,
)

__all__ = ["NodeCompiler"]

_MISSING = object()


def _truthy(value) -> bool:
    if isinstance(value, np.ndarray):
        raise FortranRuntimeError(
            "scalar logical required (array condition in if/do while)"
        )
    return bool(value)


class NodeCompiler:
    """Build and memoize per-node evaluator closures for one interpreter."""

    __slots__ = ("interp", "expr_cache", "stmt_cache", "body_cache")

    #: expression-intrinsic implementations call sites specialise on; the
    #: vectorized compiler swaps in member-batch-aware wrappers
    _intrinsic_table = INTRINSIC_FUNCTIONS

    def __init__(self, interp):
        self.interp = interp
        #: id(node) -> (node, closure); the node reference pins the id
        self.expr_cache: dict[int, tuple[Expr, Callable]] = {}
        self.stmt_cache: dict[int, tuple[Stmt, Callable]] = {}
        self.body_cache: dict[int, tuple[list, list[Callable]]] = {}

    # ------------------------------------------------------------- entry
    def expr(self, node: Expr) -> Callable:
        cached = self.expr_cache.get(id(node))
        if cached is not None:
            return cached[1]
        fn = self._build_expr(node)
        self.expr_cache[id(node)] = (node, fn)
        return fn

    def stmt(self, node: Stmt) -> Callable:
        cached = self.stmt_cache.get(id(node))
        if cached is not None:
            return cached[1]
        fn = self._build_stmt(node)
        self.stmt_cache[id(node)] = (node, fn)
        return fn

    def body(self, body: list[Stmt]) -> list[Callable]:
        fns = [self.stmt(s) for s in body]
        self.body_cache[id(body)] = (body, fns)
        return fns

    def cached_body(self, body: list[Stmt]) -> list[Callable]:
        cached = self.body_cache.get(id(body))
        if cached is not None:
            return cached[1]
        return self.body(body)

    # ------------------------------------------------------ expressions
    def _build_expr(self, node: Expr) -> Callable:
        t = type(node)
        if t is NumberLit:
            value = int(node.value) if node.is_integer else float(node.value)
            return lambda frame: value
        if t is StringLit:
            text = node.value
            return lambda frame: text
        if t is LogicalLit:
            flag = node.value
            return lambda frame: flag
        if t is VarRef:
            return self._build_varref(node)
        if t is BinOp:
            return self._build_binop(node)
        if t is Apply:
            return self._build_apply(node)
        if t is DerivedRef:
            return self._build_derivedref(node)
        if t is UnaryOp:
            return self._build_unary(node)
        # anything else keeps the dispatch interpreter's behaviour exactly
        handler = self.interp._eval_dispatch.get(t)
        if handler is None:
            name = t.__name__

            def fail(frame):
                raise FortranRuntimeError(f"cannot evaluate expression {name}")

            return fail
        return lambda frame: handler(node, frame)

    def _build_varref(self, node: VarRef) -> Callable:
        interp = self.interp
        name = node.name
        cell: list[tuple[dict, str]] = []

        def run(frame):
            value = frame.scope.values.get(name, _MISSING)
            if value is not _MISSING:
                return value
            if cell:
                v = cell[0][0].get(cell[0][1], _MISSING)
                if v is not _MISSING:
                    return v
            found = interp._lookup_nonlocal(frame, name)
            if found is None:
                raise UndefinedNameError(
                    f"undefined name {name!r} in {frame.scope.name!r} "
                    f"(module {frame.module.node.name!r})"
                )
            scope, rname = found
            if not cell:
                cell.append((scope.values, rname))
            return scope.values[rname]

        return run

    def _build_unary(self, node: UnaryOp) -> Callable:
        operand = self.expr(node.operand)
        if node.op == "-":
            return lambda frame: -operand(frame)
        if node.op == ".not.":

            def run(frame):
                value = operand(frame)
                if isinstance(value, np.ndarray):
                    return np.logical_not(value)
                return not value

            return run
        op = node.op

        def fail(frame):
            raise FortranRuntimeError(f"unsupported unary operator {op!r}")

        return fail

    def _build_binop(self, node: BinOp) -> Callable:
        op = node.op
        if op in ("+", "-"):
            return self._build_addsub(node)
        left = self.expr(node.left)
        right = self.expr(node.right)
        fpu = self.interp.fpu
        if op == "*":
            if not fpu._ftz:
                return lambda frame: left(frame) * right(frame)
            mul = fpu.mul
            return lambda frame: mul(left(frame), right(frame))
        if op == "/":
            div = fpu.div
            return lambda frame: div(left(frame), right(frame))
        if op == "**":
            power = fpu.pow
            return lambda frame: power(left(frame), right(frame))
        if op == "==":
            return lambda frame: left(frame) == right(frame)
        if op == "/=":
            return lambda frame: left(frame) != right(frame)
        if op == "<":
            return lambda frame: left(frame) < right(frame)
        if op == "<=":
            return lambda frame: left(frame) <= right(frame)
        if op == ">":
            return lambda frame: left(frame) > right(frame)
        if op == ">=":
            return lambda frame: left(frame) >= right(frame)
        if op == ".and.":

            def run_and(frame):
                l = left(frame)
                r = right(frame)
                if isinstance(l, np.ndarray) or isinstance(r, np.ndarray):
                    return np.logical_and(l, r)
                return bool(l) and bool(r)

            return run_and
        if op == ".or.":

            def run_or(frame):
                l = left(frame)
                r = right(frame)
                if isinstance(l, np.ndarray) or isinstance(r, np.ndarray):
                    return np.logical_or(l, r)
                return bool(l) or bool(r)

            return run_or
        if op == "//":
            return lambda frame: str(left(frame)) + str(right(frame))

        def fail(frame):
            raise FortranRuntimeError(f"unsupported binary operator {op!r}")

        return fail

    def _build_addsub(self, node: BinOp) -> Callable:
        """``+``/``-`` with the FMA-contraction pattern resolved at compile
        time; evaluation order matches the dispatch interpreter exactly."""
        interp = self.interp
        fpu = interp.fpu
        fp = interp.fp
        op = node.op
        left = self.expr(node.left)
        right = self.expr(node.right)
        left_mul = isinstance(node.left, BinOp) and node.left.op == "*"
        right_mul = isinstance(node.right, BinOp) and node.right.op == "*"
        if not fp.fma or not (left_mul or right_mul):
            if not fpu._ftz and not fp.fma:
                if op == "+":
                    return lambda frame: left(frame) + right(frame)
                return lambda frame: left(frame) - right(frame)
            fused_add = fpu.add if op == "+" else fpu.sub
            return lambda frame: fused_add(left(frame), right(frame))

        add, sub, mul, fma = fpu.add, fpu.sub, fpu.mul, fpu.fma
        enabled_in = fp.fma_enabled_in
        all_int = interp._all_int
        if left_mul:
            a_fn = self.expr(node.left.left)
            b_fn = self.expr(node.left.right)

            def run(frame):
                if not enabled_in(frame.module.node.name):
                    l = left(frame)
                    r = right(frame)
                    return add(l, r) if op == "+" else sub(l, r)
                a = a_fn(frame)
                b = b_fn(frame)
                c = right(frame)
                if all_int(a, b, c):
                    product = mul(a, b)
                    return add(product, c) if op == "+" else sub(product, c)
                return fma(a, b, c if op == "+" else -c)

            return run

        a_fn = self.expr(node.right.left)
        b_fn = self.expr(node.right.right)

        def run(frame):
            if not enabled_in(frame.module.node.name):
                l = left(frame)
                r = right(frame)
                return add(l, r) if op == "+" else sub(l, r)
            # left-to-right operand evaluation, as in the unfused path
            c = left(frame)
            a = a_fn(frame)
            b = b_fn(frame)
            if all_int(a, b, c):
                product = mul(a, b)
                return add(c, product) if op == "+" else sub(c, product)
            if op == "+":
                return fma(a, b, c)
            return fma(-a, b, c)  # c - a*b

        return run

    # ------------------------------------------------------- subscripts
    def _build_index(self, args: list[Expr]) -> Callable:
        """Compile a subscript list straight to a numpy index tuple
        (:func:`repro.runtime.values.fortran_slices` semantics)."""
        if all(not isinstance(a, SectionRange) for a in args):
            fns = [self.expr(a) for a in args]
            if len(fns) == 1:
                f0 = fns[0]
                return lambda frame: (int(f0(frame)) - 1,)
            if len(fns) == 2:
                f0, f1 = fns
                return lambda frame: (int(f0(frame)) - 1, int(f1(frame)) - 1)
            return lambda frame: tuple(int(fn(frame)) - 1 for fn in fns)

        def make_part(arg):
            if not isinstance(arg, SectionRange):
                fn = self.expr(arg)
                return lambda frame: int(fn(frame)) - 1
            lower = None if arg.lower is None else self.expr(arg.lower)
            upper = None if arg.upper is None else self.expr(arg.upper)
            stride = None if arg.stride is None else self.expr(arg.stride)

            def part(frame):
                start = None if lower is None else int(lower(frame)) - 1
                step = None if stride is None else int(stride(frame))
                if step is not None and step < 0:
                    if upper is None:
                        stop = None
                    else:
                        stop = int(upper(frame)) - 2
                        if stop < 0:
                            stop = None
                else:
                    stop = None if upper is None else int(upper(frame))
                return slice(start, stop, step)

            return part

        parts = [make_part(a) for a in args]
        return lambda frame: tuple(p(frame) for p in parts)

    # ------------------------------------------------------------ apply
    def _build_apply(self, node: Apply) -> Callable:
        """Self-specialising call/indexing node: the first execution resolves
        the name's class (array, procedure, ``present``, intrinsic) — stable
        per scoping unit in Fortran — and installs the specialised closure."""
        impl: Optional[Callable] = None

        def bootstrap(frame):
            nonlocal impl
            if impl is None:
                impl = self._specialize_apply(node, frame)
            return impl(frame)

        return bootstrap

    def _specialize_apply(self, node: Apply, frame) -> Callable:
        interp = self.interp
        name = node.name
        if interp._lookup_var(frame, name) is not None:
            return self._build_array_index(node)
        resolved = interp._lookup_proc(frame.module, name, frozenset())
        if resolved is not None:
            target_mrt, sub = resolved
            if sub.is_function:
                args = node.args
                keywords = node.keywords
                call = interp._call_subprogram
                return lambda f: call(target_mrt, sub, args, keywords, f, True)
            # subroutine referenced as a function: legacy error path
            return lambda f: interp._eval_apply(node, f)
        lowered = name.lower()
        if lowered == "present":
            if len(node.args) != 1 or not isinstance(node.args[0], VarRef):
                return lambda f: interp._eval_apply(node, f)
            arg_name = node.args[0].name
            return lambda f: arg_name not in f.optional_missing
        fn = self._intrinsic_table.get(lowered)
        if fn is not None:
            arg_fns = [self.expr(a) for a in node.args]
            if node.keywords:
                kw_fns = {k: self.expr(v) for k, v in node.keywords.items()}

                def run(f):
                    return fn(
                        *[a(f) for a in arg_fns],
                        **{k: v(f) for k, v in kw_fns.items()},
                    )

                return run
            if len(arg_fns) == 1:
                a0 = arg_fns[0]
                return lambda f: fn(a0(f))
            if len(arg_fns) == 2:
                a0, a1 = arg_fns
                return lambda f: fn(a0(f), a1(f))
            return lambda f: fn(*[a(f) for a in arg_fns])
        # unknown name: legacy path raises with the right message
        return lambda f: interp._eval_apply(node, f)

    def _build_array_index(self, node: Apply) -> Callable:
        interp = self.interp
        name = node.name
        index_fn = self._build_index(node.args)
        cell: list[tuple[dict, str]] = []

        def run(frame):
            container = frame.scope.values.get(name, _MISSING)
            if container is _MISSING:
                if cell:
                    container = cell[0][0].get(cell[0][1], _MISSING)
                if container is _MISSING:
                    found = interp._lookup_nonlocal(frame, name)
                    if found is None:
                        # vanished binding (e.g. absent optional): legacy path
                        return interp._eval_apply(node, frame)
                    scope, rname = found
                    if not cell:
                        cell.append((scope.values, rname))
                    container = scope.values[rname]
            if isinstance(container, np.ndarray):
                value = container[index_fn(frame)]
                if isinstance(value, np.ndarray):
                    return value
                return value.item() if hasattr(value, "item") else value
            return interp._eval_apply(node, frame)

        return run

    def _build_derivedref(self, node: DerivedRef) -> Callable:
        interp = self.interp
        base_fn = self.expr(node.base)
        component = node.component
        index_fn = self._build_index(node.args) if node.args else None

        def run(frame):
            base = base_fn(frame)
            if not isinstance(base, DerivedValue):
                raise FortranRuntimeError(
                    f"component reference {component!r} into non-derived value"
                )
            value = base.get(component)
            if index_fn is not None:
                value = value[index_fn(frame)]
                if not isinstance(value, np.ndarray):
                    return value.item() if hasattr(value, "item") else value
            return value

        return run

    # ------------------------------------------------------- statements
    def _account_fn(self, node: Stmt) -> Callable[[], None]:
        """One statement execution: budget check, then coverage count."""
        interp = self.interp
        loc = node.location
        key = (loc.filename, loc.line) if loc.line > 0 else None
        cov = interp._cov_counts
        limit = interp.max_statements

        if cov is None or key is None:

            def account():
                n = interp.statements_executed + 1
                interp.statements_executed = n
                if n > limit:
                    raise StatementLimitExceeded(
                        f"statement budget of {limit} exhausted "
                        f"(possible runaway loop at {loc})"
                    )

            return account

        def account():
            n = interp.statements_executed + 1
            interp.statements_executed = n
            if n > limit:
                raise StatementLimitExceeded(
                    f"statement budget of {limit} exhausted "
                    f"(possible runaway loop at {loc})"
                )
            cov[key] = cov.get(key, 0) + 1

        return account

    def _build_stmt(self, node: Stmt) -> Callable:
        t = type(node)
        if t is Assignment or t is PointerAssignment:
            return self._build_assignment(node)
        if t is CallStmt:
            return self._build_call(node)
        if t is IfBlock:
            return self._build_if(node)
        if t is DoLoop:
            return self._build_do(node)
        if t is DoWhile:
            return self._build_do_while(node)
        if t is SelectCase:
            return self._build_select(node)
        if t is WhereBlock:
            return self._build_where(node)
        account = self._account_fn(node)
        if t in (ReturnStmt, ExitStmt, CycleStmt, StopStmt):
            return self._build_flow_stmt(node, account)
        if t is ContinueStmt:
            return lambda frame: account()
        # anything else keeps the dispatch interpreter's behaviour exactly
        handler = self.interp._exec_dispatch.get(t)
        if handler is None:
            name = t.__name__
            loc = node.location

            def fail(frame):
                account()
                raise FortranRuntimeError(
                    f"cannot execute statement {name} at {loc}"
                )

            return fail

        def run(frame):
            account()
            handler(node, frame)

        return run

    def _build_flow_stmt(self, node: Stmt, account: Callable) -> Callable:
        """``return`` / ``exit`` / ``cycle`` / ``stop`` (overridable: the
        vectorized compiler refuses these under diverged member masks)."""
        t = type(node)
        if t is ReturnStmt:
            def run_return(frame):
                account()
                raise _Return()

            return run_return
        if t is ExitStmt:
            def run_exit(frame):
                account()
                raise _Exit()

            return run_exit
        if t is CycleStmt:
            def run_cycle(frame):
                account()
                raise _Cycle()

            return run_cycle
        message = node.message

        def run_stop(frame):
            account()
            raise StopModel(message)

        return run_stop

    # ------------------------------------------------------- assignment
    def _build_assignment(self, node) -> Callable:
        account = self._account_fn(node)
        value_fn = self.expr(node.value)
        store_fn = self._build_store(node.target)

        def run(frame):
            account()
            store_fn(frame, value_fn(frame))

        return run

    def _build_store(self, target: Expr) -> Callable:
        """Compile an assignment target to a ``store(frame, value)`` closure
        with the dispatch interpreter's resolution, guard and coercion
        semantics."""
        t = type(target)
        if t is VarRef:
            return self._build_store_var(target.name)
        if t is Apply:
            return self._build_store_element(target)
        if t is DerivedRef:
            return self._build_store_component(target)
        interp = self.interp

        def fallback(frame, value):
            ref = interp._resolve_target(target, frame)
            interp._coerce_store(ref, value)

        return fallback

    def _build_store_var(self, name: str) -> Callable:
        interp = self.interp
        cell: list[tuple] = []

        def store(frame, value):
            scope = frame.scope
            rname = name
            if name not in scope.values:
                if cell:
                    scope, rname = cell[0]
                else:
                    found = interp._lookup_nonlocal(frame, name)
                    if found is None:
                        # implicit definition (e.g. an undeclared do index)
                        scope.define(name, 0)
                    else:
                        scope, rname = found
                        cell.append(found)
            current = scope.values.get(rname)
            if isinstance(current, (int, np.integer)) and not isinstance(
                current, (bool, np.bool_)
            ):
                if isinstance(value, (float, np.floating)):
                    value = int(np.trunc(value))
                else:
                    value = int(value)
            elif isinstance(current, float) and not isinstance(
                value, np.ndarray
            ):
                value = float(value)
            elif isinstance(current, (bool, np.bool_)):
                value = bool(value)
            scope.store(rname, value)

        return store

    def _build_store_element(self, target: Apply) -> Callable:
        interp = self.interp
        name = target.name
        index_fn = self._build_index(target.args)
        cell: list[tuple] = []

        def store(frame, value):
            scope = frame.scope
            rname = name
            container = scope.values.get(name, _MISSING)
            if container is _MISSING:
                if cell:
                    scope, rname = cell[0]
                    container = scope.values.get(rname, _MISSING)
                if container is _MISSING:
                    found = interp._lookup_nonlocal(frame, name)
                    if found is None:
                        raise UndefinedNameError(
                            f"assignment to unknown array {name!r}"
                        )
                    scope, rname = found
                    if not cell:
                        cell.append(found)
                    container = scope.values[rname]
            if not isinstance(container, np.ndarray):
                raise FortranRuntimeError(
                    f"subscripted assignment to non-array {rname!r}"
                )
            index = index_fn(frame)
            if rname in scope.readonly:
                raise IntentViolationError(
                    f"cannot assign through read-only name {rname!r}"
                )
            container[index] = value

        return store

    def _build_store_component(self, target: DerivedRef) -> Callable:
        interp = self.interp
        root = target
        while isinstance(root, DerivedRef):
            root = root.base
        root_name = root.name if isinstance(root, (VarRef, Apply)) else ""
        base_fn = self.expr(target.base)
        component = target.component
        index_fn = self._build_index(target.args) if target.args else None

        def store(frame, value):
            guard = None
            if root_name:
                found = interp._lookup_var(frame, root_name)
                if found is not None:
                    guard = found[0].readonly
            base = base_fn(frame)
            if not isinstance(base, DerivedValue):
                raise FortranRuntimeError(
                    f"component reference into non-derived value "
                    f"{component!r}"
                )
            if index_fn is not None:
                array = base.get(component)
                if not isinstance(array, np.ndarray):
                    raise FortranRuntimeError(
                        f"subscripted non-array component {component!r}"
                    )
                index = index_fn(frame)
                if guard is not None and root_name in guard:
                    raise IntentViolationError(
                        f"cannot assign through read-only name {root_name!r}"
                    )
                array[index] = value
                return
            if guard is not None and root_name in guard:
                raise IntentViolationError(
                    f"cannot assign through read-only name {root_name!r}"
                )
            base.set(component, value)

        return store

    # ------------------------------------------------------------ calls
    def _build_call(self, node: CallStmt) -> Callable:
        """Self-specialising call statement: procedure resolution (and the
        intercept check) runs once per call site."""
        account = self._account_fn(node)
        impl: Optional[Callable] = None

        def run(frame):
            nonlocal impl
            account()
            if impl is None:
                impl = self._specialize_call(node, frame)
            impl(frame)

        return run

    def _specialize_call(self, node: CallStmt, frame) -> Callable:
        interp = self.interp
        resolved = interp._lookup_proc(frame.module, node.name, frozenset())
        if resolved is not None:
            target_mrt, sub = resolved
            args = node.args
            keywords = node.keywords
            intercept = interp._intercepts.get((target_mrt.node.name, sub.name))
            if intercept is not None:
                return lambda f: intercept(f, args, keywords, target_mrt, sub)
            call = interp._call_subprogram
            return lambda f: call(target_mrt, sub, args, keywords, f, False)
        lowered = node.name.lower()
        if lowered in SUBROUTINE_INTRINSICS:
            args = node.args
            keywords = node.keywords
            intrinsic = interp._call_intrinsic_subroutine
            return lambda f: intrinsic(lowered, args, keywords, f)
        # unknown subroutine: legacy path raises with the right message
        return lambda f: interp._exec_call(node, f)

    # ----------------------------------------------------- control flow
    def _build_if(self, node: IfBlock) -> Callable:
        account = self._account_fn(node)
        branches = [
            (None if cond is None else self.expr(cond), self.body(body))
            for cond, body in node.branches
        ]

        def run(frame):
            account()
            for cond_fn, body_fns in branches:
                if cond_fn is None or _truthy(cond_fn(frame)):
                    for fn in body_fns:
                        fn(frame)
                    return

        return run

    def _build_do(self, node: DoLoop) -> Callable:
        interp = self.interp
        account = self._account_fn(node)
        start_fn = self.expr(node.start)
        stop_fn = self.expr(node.stop)
        step_fn = None if node.step is None else self.expr(node.step)
        body_fns = self.body(node.body)
        var = node.var
        loc = node.location

        def run(frame):
            account()
            start = start_fn(frame)
            stop = stop_fn(frame)
            step = step_fn(frame) if step_fn is not None else 1
            if step == 0:
                raise FortranRuntimeError(f"zero do-loop step at {loc}")
            found = interp._lookup_var(frame, var)
            scope = found[0] if found is not None else frame.scope
            var_name = found[1] if found is not None else var
            count = int(np.trunc((stop - start + step) / step))
            if count < 0:
                count = 0
            value = start
            completed = True
            store = scope.store
            for _ in range(count):
                store(var_name, value)
                try:
                    for fn in body_fns:
                        fn(frame)
                except _Cycle:
                    pass
                except _Exit:
                    completed = False
                    break
                value = value + step
            if completed:
                # Fortran leaves the control variable one step past the last
                store(var_name, start + count * step)

        return run

    def _build_do_while(self, node: DoWhile) -> Callable:
        account = self._account_fn(node)
        cond_fn = self.expr(node.condition)
        body_fns = self.body(node.body)

        def run(frame):
            account()
            while _truthy(cond_fn(frame)):
                try:
                    for fn in body_fns:
                        fn(frame)
                except _Cycle:
                    continue
                except _Exit:
                    break
                account()  # charge each condition re-evaluation

        return run

    def _build_select(self, node: SelectCase) -> Callable:
        account = self._account_fn(node)
        selector_fn = self.expr(node.selector)
        compiled_cases: list[tuple[Optional[list], list[Callable]]] = []
        for items, body in node.cases:
            if items is None:
                compiled_cases.append((None, self.body(body)))
                continue
            matchers = [self._build_case_item(item) for item in items]
            compiled_cases.append((matchers, self.body(body)))

        def run(frame):
            account()
            selector = selector_fn(frame)
            default_fns = None
            for matchers, body_fns in compiled_cases:
                if matchers is None:
                    default_fns = body_fns
                    continue
                for matches in matchers:
                    if matches(selector, frame):
                        for fn in body_fns:
                            fn(frame)
                        return
            if default_fns is not None:
                for fn in default_fns:
                    fn(frame)

        return run

    def _build_case_item(self, item) -> Callable:
        if not item.is_range:
            value_fn = self.expr(item.value)
            return lambda selector, frame: bool(selector == value_fn(frame))
        lower_fn = None if item.lower is None else self.expr(item.lower)
        upper_fn = None if item.upper is None else self.expr(item.upper)

        def matches(selector, frame):
            if lower_fn is not None and selector < lower_fn(frame):
                return False
            if upper_fn is not None and selector > upper_fn(frame):
                return False
            return True

        return matches

    def _build_where(self, node: WhereBlock) -> Callable:
        interp = self.interp
        account = self._account_fn(node)
        mask_fn = self.expr(node.mask)

        def compile_masked(body):
            items = []
            for stmt in body:
                if not isinstance(stmt, Assignment):
                    raise FortranRuntimeError(
                        "only assignments are supported inside where blocks "
                        f"(at {stmt.location})"
                    )
                items.append(
                    (self._account_fn(stmt), self.expr(stmt.value), stmt)
                )
            return items

        body_items = compile_masked(node.body)
        else_items = compile_masked(node.else_body) if node.else_body else None

        def exec_masked(items, mask, frame):
            for stmt_account, value_fn, stmt in items:
                stmt_account()
                value = value_fn(frame)
                ref = interp._resolve_target(stmt.target, frame)
                target = ref.load()
                if not isinstance(target, np.ndarray):
                    raise FortranRuntimeError(
                        f"where-assignment target is not an array at "
                        f"{stmt.location}"
                    )
                if interp._ref_readonly(ref):
                    raise IntentViolationError(
                        f"cannot assign through read-only target at "
                        f"{stmt.location}"
                    )
                np.copyto(target, value, where=mask, casting="unsafe")

        def run(frame):
            account()
            mask = np.asarray(mask_fn(frame), dtype=bool)
            exec_masked(body_items, mask, frame)
            if else_items:
                exec_masked(else_items, ~mask, frame)

        return run

"""Reproducible pseudo-random number streams for the model runtime.

CESM's ``shr_random`` layer gives every component an independent,
seed-derived random stream so that runs are bit-reproducible regardless of
how components interleave their draws; the paper's RAND-MT experiment swaps
one such stream's generator.  This module is the runtime's stand-in: a
:class:`PRNGStreams` object owns one deterministic :class:`Stream` per
Fortran *module*, each seeded from ``(base_seed, module_name)`` with a
stable (non-randomised) hash, so

* the same ``RunConfig.seed`` always reproduces the same draws, and
* adding a draw in one module never shifts the stream of another.

The generator is splitmix64 — tiny, fast, passes BigCrush for this use, and
needs no external dependency.  Uniform doubles are formed from the top 53
bits, so every value is exactly representable and in ``[0, 1)``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BatchedPRNGStreams", "BatchedStream", "PRNGStreams", "Stream"]

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def _mix64(z: int) -> int:
    """The splitmix64 output mixing function."""
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
    z = (z ^ (z >> 27)) * 0x94D049BB133111EB & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def _fnv1a(text: str) -> int:
    """64-bit FNV-1a hash of ``text`` (stable across processes)."""
    h = 0xCBF29CE484222325
    for byte in text.encode("utf-8"):
        h = ((h ^ byte) * 0x100000001B3) & _MASK64
    return h


class Stream:
    """One splitmix64 stream."""

    __slots__ = ("state", "draws")

    def __init__(self, seed: int):
        self.state = seed & _MASK64
        self.draws = 0

    def next_u64(self) -> int:
        self.state = (self.state + _GOLDEN) & _MASK64
        self.draws += 1
        return _mix64(self.state)

    def uniform(self) -> float:
        """A uniform double in ``[0, 1)`` from the top 53 bits."""
        return (self.next_u64() >> 11) * (1.0 / (1 << 53))

    def fill(self, array, n: int | None = None) -> None:
        """Fill the first ``n`` elements of ``array`` in row-major order
        (all elements when ``None``), writing through views in place.

        Indexing the array directly — never ``reshape``/``ravel``, which
        silently return *copies* for non-contiguous section views — so
        ``call random_number(a(1:2, 1:2))`` fills the caller's storage.
        """
        count = array.size if n is None else int(n)
        if array.ndim == 1:
            for i in range(count):
                array[i] = self.uniform()
            return
        for filled, index in enumerate(np.ndindex(*array.shape)):
            if filled >= count:
                break
            array[index] = self.uniform()


_GOLDEN64 = np.uint64(_GOLDEN)


def _mix64_vec(z: np.ndarray) -> np.ndarray:
    """:func:`_mix64` over a uint64 array (wrapping arithmetic is native)."""
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return z ^ (z >> np.uint64(31))


class BatchedStream:
    """One splitmix64 stream per ensemble member, advanced in lockstep.

    Member ``m`` of every draw is bit-identical to a scalar :class:`Stream`
    seeded with ``seeds[m]`` — the state update and output mix are the same
    arithmetic, evaluated element-wise over a ``(n,)`` uint64 state vector.
    """

    __slots__ = ("state", "draws")

    def __init__(self, seeds: np.ndarray):
        self.state = np.asarray(seeds, dtype=np.uint64).copy()
        self.draws = 0

    def next_u64(self) -> np.ndarray:
        self.state = self.state + _GOLDEN64
        self.draws += 1
        return _mix64_vec(self.state)

    def uniform(self) -> np.ndarray:
        """Per-member uniform doubles in ``[0, 1)`` from the top 53 bits."""
        return (self.next_u64() >> np.uint64(11)).astype(np.float64) * (
            1.0 / (1 << 53)
        )

    def fill(self, array, n: int | None = None) -> None:
        """Fill the first ``n`` *model-space* elements of a member-batched
        ``array`` in row-major model order, one vector draw per element —
        the same element order (and so the same per-member draw sequence)
        as :meth:`Stream.fill` over each member's model array."""
        base = np.asarray(array)
        model_shape = base.shape[1:]
        size = 1
        for extent in model_shape:
            size *= extent
        count = size if n is None else int(n)
        if len(model_shape) == 1:
            for i in range(count):
                base[:, i] = self.uniform()
            return
        for filled, index in enumerate(np.ndindex(*model_shape)):
            if filled >= count:
                break
            base[(slice(None),) + index] = self.uniform()


class PRNGStreams:
    """A family of per-module streams derived from one base seed."""

    def __init__(self, base_seed: int = 12345):
        self.base_seed = int(base_seed)
        self._streams: dict[str, Stream] = {}

    def reseed(self, base_seed: int) -> None:
        """Restart every stream from a new base seed."""
        self.base_seed = int(base_seed)
        self._streams.clear()

    def stream(self, module_name: str) -> Stream:
        """The stream owned by ``module_name`` (created on first use)."""
        stream = self._streams.get(module_name)
        if stream is None:
            seed = _mix64(self.base_seed & _MASK64) ^ _fnv1a(module_name)
            stream = Stream(seed)
            self._streams[module_name] = stream
        return stream

    def total_draws(self) -> int:
        """Number of uniform draws taken across all streams."""
        return sum(s.draws for s in self._streams.values())


class BatchedPRNGStreams:
    """Per-member :class:`PRNGStreams` families advanced in lockstep.

    ``base_seeds`` carries one base seed per ensemble member; the stream a
    module owns is seeded per member with exactly the scalar derivation
    ``_mix64(base_seed) ^ _fnv1a(module_name)``, so member ``m`` of every
    batched draw equals the draw a scalar run seeded with ``base_seeds[m]``
    would have produced.
    """

    def __init__(self, base_seeds):
        self.base_seeds = np.array(
            [int(s) & _MASK64 for s in np.asarray(base_seeds).tolist()],
            dtype=np.uint64,
        )
        self._streams: dict[str, BatchedStream] = {}

    @property
    def n_members(self) -> int:
        return int(self.base_seeds.shape[0])

    def reseed(self, base_seeds) -> None:
        """Restart every stream; accepts one seed (broadcast) or one per
        member."""
        seeds = np.asarray(base_seeds)
        if seeds.ndim == 0:
            seeds = np.full(self.n_members, int(seeds), dtype=object)
        self.base_seeds = np.array(
            [int(s) & _MASK64 for s in seeds.tolist()], dtype=np.uint64
        )
        self._streams.clear()

    def stream(self, module_name: str) -> BatchedStream:
        """The batched stream owned by ``module_name`` (created on use)."""
        stream = self._streams.get(module_name)
        if stream is None:
            seed = _mix64_vec(self.base_seeds) ^ np.uint64(
                _fnv1a(module_name)
            )
            stream = BatchedStream(seed)
            self._streams[module_name] = stream
        return stream

    def total_draws(self) -> int:
        """Number of vector draws taken across all streams (each vector
        draw is one per-member draw)."""
        return sum(s.draws for s in self._streams.values())

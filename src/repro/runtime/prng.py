"""Reproducible pseudo-random number streams for the model runtime.

CESM's ``shr_random`` layer gives every component an independent,
seed-derived random stream so that runs are bit-reproducible regardless of
how components interleave their draws; the paper's RAND-MT experiment swaps
one such stream's generator.  This module is the runtime's stand-in: a
:class:`PRNGStreams` object owns one deterministic :class:`Stream` per
Fortran *module*, each seeded from ``(base_seed, module_name)`` with a
stable (non-randomised) hash, so

* the same ``RunConfig.seed`` always reproduces the same draws, and
* adding a draw in one module never shifts the stream of another.

The generator is splitmix64 — tiny, fast, passes BigCrush for this use, and
needs no external dependency.  Uniform doubles are formed from the top 53
bits, so every value is exactly representable and in ``[0, 1)``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["PRNGStreams", "Stream"]

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def _mix64(z: int) -> int:
    """The splitmix64 output mixing function."""
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
    z = (z ^ (z >> 27)) * 0x94D049BB133111EB & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def _fnv1a(text: str) -> int:
    """64-bit FNV-1a hash of ``text`` (stable across processes)."""
    h = 0xCBF29CE484222325
    for byte in text.encode("utf-8"):
        h = ((h ^ byte) * 0x100000001B3) & _MASK64
    return h


class Stream:
    """One splitmix64 stream."""

    __slots__ = ("state", "draws")

    def __init__(self, seed: int):
        self.state = seed & _MASK64
        self.draws = 0

    def next_u64(self) -> int:
        self.state = (self.state + _GOLDEN) & _MASK64
        self.draws += 1
        return _mix64(self.state)

    def uniform(self) -> float:
        """A uniform double in ``[0, 1)`` from the top 53 bits."""
        return (self.next_u64() >> 11) * (1.0 / (1 << 53))

    def fill(self, array, n: int | None = None) -> None:
        """Fill the first ``n`` elements of ``array`` in row-major order
        (all elements when ``None``), writing through views in place.

        Indexing the array directly — never ``reshape``/``ravel``, which
        silently return *copies* for non-contiguous section views — so
        ``call random_number(a(1:2, 1:2))`` fills the caller's storage.
        """
        count = array.size if n is None else int(n)
        if array.ndim == 1:
            for i in range(count):
                array[i] = self.uniform()
            return
        for filled, index in enumerate(np.ndindex(*array.shape)):
            if filled >= count:
                break
            array[index] = self.uniform()


class PRNGStreams:
    """A family of per-module streams derived from one base seed."""

    def __init__(self, base_seed: int = 12345):
        self.base_seed = int(base_seed)
        self._streams: dict[str, Stream] = {}

    def reseed(self, base_seed: int) -> None:
        """Restart every stream from a new base seed."""
        self.base_seed = int(base_seed)
        self._streams.clear()

    def stream(self, module_name: str) -> Stream:
        """The stream owned by ``module_name`` (created on first use)."""
        stream = self._streams.get(module_name)
        if stream is None:
            seed = _mix64(self.base_seed & _MASK64) ^ _fnv1a(module_name)
            stream = Stream(seed)
            self._streams[module_name] = stream
        return stream

    def total_draws(self) -> int:
        """Number of uniform draws taken across all streams."""
        return sum(s.draws for s in self._streams.values())

"""Floating-point unit model for the numerical interpreter.

The paper's compiler-flag experiments (AVX2/FMA, §6) hinge on the fact that
the *same* Fortran source produces bit-different output when the compiler
contracts ``a*b + c`` into a fused multiply-add: the intermediate product is
not rounded, so results differ at the ULP level and the divergence grows
through the model's nonlinear physics.  :class:`FPConfig` captures exactly
that degree of freedom.

All arithmetic is round-to-nearest IEEE-754 binary64 (the model's ``r8``);
the FMA path computes ``round(a*b + c)`` with a *single* rounding using the
classic Dekker/Knuth error-free transformations, so it is deterministic and
platform independent — no 80-bit x87 or hardware-FMA dependence.

Knobs
-----
``fma``
    Enable fused contraction of ``a*b + c`` / ``a*b - c`` / ``c + a*b`` /
    ``c - a*b`` patterns during expression evaluation.
``fma_modules``
    When not ``None``, restrict contraction to the named Fortran modules
    (the paper recompiles single directories with different flags; this is
    the per-module analogue).
``flush_to_zero``
    Flush subnormal results of arithmetic to (signed) zero, modelling the
    Intel ``-ftz`` behaviour the paper's builds enable by default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["FPConfig", "FPU"]

#: Dekker splitting constant for binary64: 2**27 + 1.
_SPLIT = 134217729.0

#: Smallest positive normal binary64 number (threshold for flush-to-zero).
_MIN_NORMAL = np.finfo(np.float64).tiny


@dataclass(frozen=True)
class FPConfig:
    """Floating-point behaviour of one model build (see module docstring)."""

    fma: bool = False
    fma_modules: Optional[frozenset[str]] = None
    flush_to_zero: bool = False

    def __post_init__(self) -> None:
        if self.fma_modules is not None and not isinstance(
            self.fma_modules, frozenset
        ):
            object.__setattr__(self, "fma_modules", frozenset(self.fma_modules))

    def fma_enabled_in(self, module_name: str) -> bool:
        """True when FMA contraction applies inside ``module_name``."""
        if not self.fma:
            return False
        return self.fma_modules is None or module_name in self.fma_modules


def _two_sum(a, b):
    """Error-free sum: returns (s, e) with s = fl(a+b) and a+b = s+e exactly."""
    s = a + b
    v = s - a
    e = (a - (s - v)) + (b - v)
    return s, e


def _two_product(a, b):
    """Error-free product via Dekker splitting: a*b = p + e exactly."""
    p = a * b
    a_hi = a * _SPLIT
    a_hi = a_hi - (a_hi - a)
    a_lo = a - a_hi
    b_hi = b * _SPLIT
    b_hi = b_hi - (b_hi - b)
    b_lo = b - b_hi
    e = ((a_hi * b_hi - p) + a_hi * b_lo + a_lo * b_hi) + a_lo * b_lo
    return p, e


class FPU:
    """Arithmetic kernel the interpreter routes every real operation through.

    Scalars and :class:`numpy.ndarray` operands are both supported; all
    operations are elementwise.  Integer-only operations follow Fortran
    semantics (notably truncating integer division) and bypass the
    floating-point knobs entirely.
    """

    def __init__(self, config: FPConfig | None = None):
        self.config = config or FPConfig()
        self._ftz = self.config.flush_to_zero

    # ------------------------------------------------------------- helpers
    @staticmethod
    def _both_int(a, b) -> bool:
        return isinstance(a, (int, np.integer)) and not isinstance(
            a, (bool, np.bool_)
        ) and isinstance(b, (int, np.integer)) and not isinstance(b, (bool, np.bool_))

    def _finish(self, x):
        """Apply flush-to-zero to a float result when configured."""
        if not self._ftz:
            return x
        if isinstance(x, np.ndarray):
            np.copyto(x, 0.0, where=np.abs(x) < _MIN_NORMAL)
            return x
        if x != 0.0 and -_MIN_NORMAL < x < _MIN_NORMAL:
            return 0.0
        return x

    # ---------------------------------------------------------- operations
    def add(self, a, b):
        if self._both_int(a, b):
            return a + b
        return self._finish(a + b)

    def sub(self, a, b):
        if self._both_int(a, b):
            return a - b
        return self._finish(a - b)

    def mul(self, a, b):
        if self._both_int(a, b):
            return a * b
        return self._finish(a * b)

    def div(self, a, b):
        if self._both_int(a, b):
            # Fortran integer division truncates toward zero.
            q = abs(a) // abs(b)
            return -q if (a < 0) != (b < 0) else q
        return self._finish(a / b)

    def pow(self, a, b):
        if self._both_int(a, b):
            if b < 0:
                # Fortran: integer power with negative exponent truncates.
                return self.div(1, a ** (-b))
            return a ** b
        if isinstance(b, (int, np.integer)):
            # integer exponent on a real base is exact repeated multiplication
            return self._finish(np.power(np.float64(a) if not isinstance(a, np.ndarray) else a, int(b)))
        return self._finish(np.power(a, b))

    def fma(self, a, b, c):
        """``round(a*b + c)`` with a single rounding (fused multiply-add)."""
        a = np.float64(a) if not isinstance(a, np.ndarray) else a.astype(np.float64, copy=False)
        b = np.float64(b) if not isinstance(b, np.ndarray) else b.astype(np.float64, copy=False)
        c = np.float64(c) if not isinstance(c, np.ndarray) else c.astype(np.float64, copy=False)
        p, e = _two_product(a, b)
        s, t = _two_sum(p, c)
        result = s + (e + t)
        if not isinstance(result, np.ndarray):
            result = float(result)
        return self._finish(result)

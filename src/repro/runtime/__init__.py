"""Numerical runtime for the synthetic model: interpret, perturb, instrument.

This package executes the model the rest of the pipeline analyses statically:
an AST-walking interpreter (:mod:`repro.runtime.interpreter`) runs over the
*same* cached ASTs that :meth:`repro.model.builder.ModelSource.parse` shares
with the metagraph builder, so numbers and digraph always describe one build.
The stable entry point is :func:`run_model`; downstream modules
(``repro.ensemble``, ``repro.ect``, ``repro.coverage``, ``repro.slicing``)
consume only :class:`RunResult` and never touch evaluator internals.
:func:`run_model_batch` (:mod:`repro.runtime.vec`) is the member-batched
variant: one vectorized evaluation advances a whole ensemble and returns a
bit-identical :class:`RunResult` per member.

``RunConfig`` knobs
-------------------
``model``
    The :class:`repro.model.ModelConfig` to build and run — compset choice,
    bug-injection ``patches``, extra preprocessor ``macros``.  The default is
    the unpatched FC5 control build.
``nsteps``
    Number of ``cam_run_step`` time steps after ``cam_init`` (default 2; the
    paper's coverage/ensemble runs also use a handful of steps).
``pertlim``
    Initial-condition temperature perturbation magnitude, the paper's
    ensemble-generation knob (default 0.0 — the control trajectory).
``seed``
    Base seed of the reproducible stream-per-module PRNGs
    (:mod:`repro.runtime.prng`).  Identical configs give bit-identical runs.
``fp``
    The :class:`FPConfig` floating-point model (:mod:`repro.runtime.fpu`):
    ``fma`` turns on fused contraction of ``a*b + c`` patterns (optionally
    restricted to ``fma_modules``), ``flush_to_zero`` models ``-ftz``.  This
    is how patched-vs-unpatched *compiler flag* experiments diverge at the
    ULP level.
``collect_coverage``
    Record per-(file, line) execution counts into a
    :class:`CoverageTrace` (default True; turn off for speed inside large
    ensembles once coverage is known).
``max_statements``
    Hard budget on executed statements — a guard against runaway loops in
    badly patched models.

>>> result = run_model(RunConfig(nsteps=1))
>>> vec = result.output_vector()          # name -> global-mean float
>>> sorted(result.coverage.files())[0]    # executed files only
'cam_comp.F90'
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..model.builder import ModelConfig, ModelSource, build_model_source
from ..model.registry import iter_output_fields
from .coverage import CoverageTrace
from .fpu import FPConfig, FPU
from .interpreter import (
    History,
    Interpreter,
    StatementLimitExceeded,
    StopModel,
)
from .prng import BatchedPRNGStreams, BatchedStream, PRNGStreams, Stream
from .values import (
    DerivedValue,
    FortranRuntimeError,
    IntentViolationError,
    MemberBatch,
    Scope,
    UndefinedNameError,
    VectorizationError,
)

__all__ = [
    "BatchedPRNGStreams",
    "BatchedStream",
    "CoverageTrace",
    "DerivedValue",
    "FPConfig",
    "FPU",
    "FortranRuntimeError",
    "History",
    "IntentViolationError",
    "Interpreter",
    "MemberBatch",
    "PRNGStreams",
    "RunConfig",
    "RunResult",
    "Scope",
    "StatementLimitExceeded",
    "StopModel",
    "Stream",
    "UndefinedNameError",
    "VecInterpreter",
    "VectorizationError",
    "run_model",
    "run_model_batch",
]


@dataclass(frozen=True)
class RunConfig:
    """One model run: build configuration plus runtime knobs (see above).

    Invalid knobs raise :class:`ValueError` at construction time, so a bad
    ensemble spec fails before any member burns interpreter time.
    """

    model: ModelConfig = field(default_factory=ModelConfig)
    nsteps: int = 2
    pertlim: float = 0.0
    seed: int = 12345
    fp: FPConfig = field(default_factory=FPConfig)
    collect_coverage: bool = True
    max_statements: int = 50_000_000

    def __post_init__(self) -> None:
        if isinstance(self.nsteps, bool) or not isinstance(self.nsteps, int):
            raise ValueError(
                f"nsteps must be an int, got {type(self.nsteps).__name__}"
            )
        if self.nsteps < 1:
            raise ValueError(f"nsteps must be >= 1, got {self.nsteps}")
        if isinstance(self.pertlim, bool) or not isinstance(
            self.pertlim, (int, float)
        ):
            raise ValueError(
                f"pertlim must be a real number, got "
                f"{type(self.pertlim).__name__}"
            )
        if not np.isfinite(self.pertlim):
            raise ValueError(f"pertlim must be finite, got {self.pertlim!r}")
        if isinstance(self.seed, bool) or not isinstance(self.seed, int):
            raise ValueError(
                f"seed must be an int, got {type(self.seed).__name__}"
            )
        if isinstance(self.max_statements, bool) or not isinstance(
            self.max_statements, int
        ):
            raise ValueError(
                f"max_statements must be an int, got "
                f"{type(self.max_statements).__name__}"
            )
        if self.max_statements < 1:
            raise ValueError(
                f"max_statements must be >= 1, got {self.max_statements}"
            )


@dataclass
class RunResult:
    """Everything one run produces for the downstream pipeline stages.

    ``outputs`` holds the end-of-run write of every history field;
    ``first_outputs`` holds the first write (the end of step one).  The
    first-step snapshot is the consistency-testing layer's high-sensitivity
    view: fields the stochastic physics has not yet touched stay
    bit-identical across ensemble members, so ULP-level effects such as FMA
    contraction remain visible there long after chaotic growth has folded
    them into the end-state spread.
    """

    config: RunConfig
    outputs: dict[str, np.ndarray]
    coverage: CoverageTrace
    statements_executed: int
    prng_draws: int
    first_outputs: dict[str, np.ndarray] = field(default_factory=dict)

    def output_vector(self) -> dict[str, float]:
        """The named output-variable vector: global mean of every field,
        ordered like the registry's output-field declarations."""
        return {
            name: float(np.mean(value)) for name, value in self.outputs.items()
        }

    def output_array(
        self,
        names: Optional[list[str]] = None,
        which: str = "final",
    ) -> np.ndarray:
        """An ordered numpy vector of global means, aligned with
        ``OUTPUT_FIELDS`` declaration order (then extra fields, sorted).

        Parameters
        ----------
        names:
            Explicit field order; defaults to ``list(self.outputs)``, whose
            order run_model fixes to the registry declaration order.  Pass
            the same list for every run of an ensemble so rows line up.
        which:
            ``"final"`` for the end-of-run snapshot, ``"first"`` for the
            end-of-first-step snapshot.
        """
        if which == "final":
            source = self.outputs
        elif which == "first":
            source = self.first_outputs
        else:
            raise ValueError(
                f"which must be 'final' or 'first', got {which!r}"
            )
        if names is None:
            names = list(source)
        try:
            return np.array(
                [float(np.mean(source[name])) for name in names], dtype=float
            )
        except KeyError as exc:
            raise KeyError(
                f"output field {exc.args[0]!r} was not produced by this run "
                f"(known: {', '.join(source)})"
            ) from None

    def is_finite(self) -> bool:
        """True when every output field is finite everywhere."""
        return all(bool(np.isfinite(v).all()) for v in self.outputs.values())

    def difference(self, other: "RunResult") -> dict[str, float]:
        """Max absolute elementwise difference per shared output field."""
        out: dict[str, float] = {}
        for name, value in self.outputs.items():
            if name in other.outputs:
                out[name] = float(np.max(np.abs(value - other.outputs[name])))
        return out


def run_model(
    config: Optional[RunConfig] = None,
    source: Optional[ModelSource] = None,
) -> RunResult:
    """Build, initialise and step the model; collect outputs and coverage.

    Parameters
    ----------
    config:
        The :class:`RunConfig` (default: unpatched FC5 control run).
    source:
        An already-built :class:`~repro.model.builder.ModelSource` to reuse
        (its cached parse is shared with the metagraph builder).  Must match
        ``config.model``; omit it to build from the config.
    """
    config = config or RunConfig()
    if source is None:
        source = build_model_source(config.model)
    elif source.config != config.model:
        raise ValueError(
            "the provided ModelSource was built from a different ModelConfig "
            "than config.model"
        )
    asts = source.parse()

    interp = Interpreter(
        asts,
        fp=config.fp,
        seed=config.seed,
        collect_coverage=config.collect_coverage,
        max_statements=config.max_statements,
    )
    interp.call("cam_comp", "cam_init", [float(config.pertlim), int(config.seed)])
    for _ in range(config.nsteps):
        interp.call("cam_comp", "cam_run_step", [])

    declared = [f.name for f in iter_output_fields(source.compset)]
    missing = [name for name in declared if name not in interp.history.fields]
    if missing:
        raise FortranRuntimeError(
            "run completed but declared output fields were never written: "
            + ", ".join(missing)
        )
    outputs: dict[str, np.ndarray] = {}
    first_outputs: dict[str, np.ndarray] = {}
    for name in declared:
        outputs[name] = np.asarray(interp.history.fields[name])
    # fields written but not declared ride along at the end, sorted
    for name in sorted(set(interp.history.fields) - set(declared)):
        outputs[name] = np.asarray(interp.history.fields[name])
    for name in outputs:
        first_outputs[name] = np.asarray(interp.history.first[name])

    coverage = interp.coverage if interp.coverage is not None else CoverageTrace()
    from ..obs import get_metrics

    metrics = get_metrics()
    metrics.inc("interpreter.runs")
    metrics.inc("interpreter.statements", interp.statements_executed)
    return RunResult(
        config=config,
        outputs=outputs,
        coverage=coverage,
        statements_executed=interp.statements_executed,
        prng_draws=interp.prng.total_draws(),
        first_outputs=first_outputs,
    )


# imported last: repro.runtime.vec needs RunConfig/RunResult at call time
from .vec import VecInterpreter, run_model_batch  # noqa: E402

"""Numerical runtime for the synthetic model: interpret, perturb, instrument.

This package executes the model the rest of the pipeline analyses statically:
an AST-walking interpreter (:mod:`repro.runtime.interpreter`) runs over the
*same* cached ASTs that :meth:`repro.model.builder.ModelSource.parse` shares
with the metagraph builder, so numbers and digraph always describe one build.
The stable entry point is :func:`run_model`; downstream modules
(``repro.ensemble``, ``repro.ect``, ``repro.coverage``, ``repro.slicing``)
consume only :class:`RunResult` and never touch evaluator internals.

``RunConfig`` knobs
-------------------
``model``
    The :class:`repro.model.ModelConfig` to build and run — compset choice,
    bug-injection ``patches``, extra preprocessor ``macros``.  The default is
    the unpatched FC5 control build.
``nsteps``
    Number of ``cam_run_step`` time steps after ``cam_init`` (default 2; the
    paper's coverage/ensemble runs also use a handful of steps).
``pertlim``
    Initial-condition temperature perturbation magnitude, the paper's
    ensemble-generation knob (default 0.0 — the control trajectory).
``seed``
    Base seed of the reproducible stream-per-module PRNGs
    (:mod:`repro.runtime.prng`).  Identical configs give bit-identical runs.
``fp``
    The :class:`FPConfig` floating-point model (:mod:`repro.runtime.fpu`):
    ``fma`` turns on fused contraction of ``a*b + c`` patterns (optionally
    restricted to ``fma_modules``), ``flush_to_zero`` models ``-ftz``.  This
    is how patched-vs-unpatched *compiler flag* experiments diverge at the
    ULP level.
``collect_coverage``
    Record per-(file, line) execution counts into a
    :class:`CoverageTrace` (default True; turn off for speed inside large
    ensembles once coverage is known).
``max_statements``
    Hard budget on executed statements — a guard against runaway loops in
    badly patched models.

>>> result = run_model(RunConfig(nsteps=1))
>>> vec = result.output_vector()          # name -> global-mean float
>>> sorted(result.coverage.files())[0]    # executed files only
'cam_comp.F90'
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..model.builder import ModelConfig, ModelSource, build_model_source
from ..model.registry import iter_output_fields
from .coverage import CoverageTrace
from .fpu import FPConfig, FPU
from .interpreter import (
    History,
    Interpreter,
    StatementLimitExceeded,
    StopModel,
)
from .prng import PRNGStreams, Stream
from .values import (
    DerivedValue,
    FortranRuntimeError,
    IntentViolationError,
    Scope,
    UndefinedNameError,
)

__all__ = [
    "CoverageTrace",
    "DerivedValue",
    "FPConfig",
    "FPU",
    "FortranRuntimeError",
    "History",
    "IntentViolationError",
    "Interpreter",
    "PRNGStreams",
    "RunConfig",
    "RunResult",
    "Scope",
    "StatementLimitExceeded",
    "StopModel",
    "Stream",
    "UndefinedNameError",
    "run_model",
]


@dataclass(frozen=True)
class RunConfig:
    """One model run: build configuration plus runtime knobs (see above)."""

    model: ModelConfig = field(default_factory=ModelConfig)
    nsteps: int = 2
    pertlim: float = 0.0
    seed: int = 12345
    fp: FPConfig = field(default_factory=FPConfig)
    collect_coverage: bool = True
    max_statements: int = 50_000_000


@dataclass
class RunResult:
    """Everything one run produces for the downstream pipeline stages."""

    config: RunConfig
    outputs: dict[str, np.ndarray]
    coverage: CoverageTrace
    statements_executed: int
    prng_draws: int

    def output_vector(self) -> dict[str, float]:
        """The named output-variable vector: global mean of every field,
        ordered like the registry's output-field declarations."""
        return {
            name: float(np.mean(value)) for name, value in self.outputs.items()
        }

    def is_finite(self) -> bool:
        """True when every output field is finite everywhere."""
        return all(bool(np.isfinite(v).all()) for v in self.outputs.values())

    def difference(self, other: "RunResult") -> dict[str, float]:
        """Max absolute elementwise difference per shared output field."""
        out: dict[str, float] = {}
        for name, value in self.outputs.items():
            if name in other.outputs:
                out[name] = float(np.max(np.abs(value - other.outputs[name])))
        return out


def run_model(
    config: Optional[RunConfig] = None,
    source: Optional[ModelSource] = None,
) -> RunResult:
    """Build, initialise and step the model; collect outputs and coverage.

    Parameters
    ----------
    config:
        The :class:`RunConfig` (default: unpatched FC5 control run).
    source:
        An already-built :class:`~repro.model.builder.ModelSource` to reuse
        (its cached parse is shared with the metagraph builder).  Must match
        ``config.model``; omit it to build from the config.
    """
    config = config or RunConfig()
    if source is None:
        source = build_model_source(config.model)
    elif source.config != config.model:
        raise ValueError(
            "the provided ModelSource was built from a different ModelConfig "
            "than config.model"
        )
    asts = source.parse()

    interp = Interpreter(
        asts,
        fp=config.fp,
        seed=config.seed,
        collect_coverage=config.collect_coverage,
        max_statements=config.max_statements,
    )
    interp.call("cam_comp", "cam_init", [float(config.pertlim), int(config.seed)])
    for _ in range(config.nsteps):
        interp.call("cam_comp", "cam_run_step", [])

    declared = [f.name for f in iter_output_fields(source.compset)]
    missing = [name for name in declared if name not in interp.history.fields]
    if missing:
        raise FortranRuntimeError(
            "run completed but declared output fields were never written: "
            + ", ".join(missing)
        )
    outputs: dict[str, np.ndarray] = {}
    for name in declared:
        outputs[name] = np.asarray(interp.history.fields[name])
    # fields written but not declared ride along at the end, sorted
    for name in sorted(set(interp.history.fields) - set(declared)):
        outputs[name] = np.asarray(interp.history.fields[name])

    coverage = interp.coverage if interp.coverage is not None else CoverageTrace()
    return RunResult(
        config=config,
        outputs=outputs,
        coverage=coverage,
        statements_executed=interp.statements_executed,
        prng_draws=interp.prng.total_draws(),
    )

"""Process-wide counters, gauges, and fixed-bucket histograms.

One :class:`MetricsRegistry` unifies the telemetry previously scattered
across `ArtifactStore`, `MemberCache`, and the bench script behind a
dotted namespace:

=========================  ==================================================
``store.hits/misses/writes``        pipeline artifact-store traffic
``member_cache.hits/misses``        per-member run-artifact cache traffic
``ensemble.members_run/_cached``    fan-out volume per ensemble generation
``interpreter.runs/statements``     scalar-interpreter work
``vec.batches/mask_collapses``      vectorized-runtime work and divergence
``refine.iters``                    Algorithm 5.4 candidate evaluations
``ect.tests``                       consistency tests performed
=========================  ==================================================

Metrics are always on: increments are lock-guarded dict ops, far below
noise on any instrumented path, so there is no enable/disable knob to
get wrong.  Counters in process-backend *workers* land in the worker's
registry and are not shipped back — fan-out volume is still accounted
in the parent via the ``ensemble.*`` counters.

The snapshot/delta pair turns the registry into per-region telemetry:
``before = m.snapshot()`` ... ``m.counter_delta(before)`` yields only
the counters that moved, which is what `StageRecord.metrics` stores.
"""

from __future__ import annotations

import bisect
import threading
from typing import Mapping, Optional, Sequence

__all__ = ["DEFAULT_BUCKETS", "MetricsRegistry", "get_metrics"]

#: histogram bucket upper bounds (seconds-flavored, powers of ~10/3)
DEFAULT_BUCKETS = (0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0)


class MetricsRegistry:
    """Counters + gauges + histograms under one lock (see module doc)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        # name -> (bucket_bounds, per-bucket counts [len(bounds)+1 for +inf],
        #          total count, running sum)
        self._hists: dict[str, tuple[tuple, list, int, float]] = {}

    # -------------------------------------------------------------- writers
    def inc(self, name: str, value: float = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def observe(
        self, name: str, value: float, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        with self._lock:
            entry = self._hists.get(name)
            if entry is None:
                bounds = tuple(buckets)
                entry = (bounds, [0] * (len(bounds) + 1), 0, 0.0)
            bounds, counts, count, total = entry
            counts[bisect.bisect_left(bounds, value)] += 1
            self._hists[name] = (bounds, counts, count + 1, total + value)

    # -------------------------------------------------------------- readers
    def counters(self) -> dict[str, float]:
        with self._lock:
            return dict(self._counters)

    def snapshot(self) -> dict:
        """Full JSON-safe dump: counters, gauges, and histogram summaries."""
        with self._lock:
            hists = {
                name: {
                    "buckets": list(bounds),
                    "counts": list(counts),
                    "count": count,
                    "sum": total,
                }
                for name, (bounds, counts, count, total) in self._hists.items()
            }
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": hists,
            }

    def counter_delta(self, before: Optional[Mapping] = None) -> dict[str, float]:
        """Counters that moved since ``before`` (a prior ``snapshot()`` or
        ``counters()`` mapping), as a flat nonzero dict."""
        base: Mapping = {}
        if before:
            base = before["counters"] if "counters" in before else before
        delta = {}
        for name, value in self.counters().items():
            moved = value - base.get(name, 0)
            if moved:
                delta[name] = moved
        return delta

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._hists.clear()


#: the process-global registry every instrumented layer writes to
_METRICS = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    return _METRICS

"""repro.obs — dependency-free tracing, metrics, and profiling.

Three pieces, threaded through every layer of the stack:

* :mod:`repro.obs.trace` — hierarchical :class:`Span`s with a
  context-manager/decorator API on a process-global :class:`Tracer`
  (thread-local stacks, pickle-safe worker span collection, zero
  overhead while disabled).
* :mod:`repro.obs.metrics` — always-on counters/gauges/histograms in a
  :class:`MetricsRegistry` unifying the store / member-cache /
  interpreter / refinement telemetry under one dotted namespace.
* :mod:`repro.obs.export` — JSONL traces, a Chrome ``trace_event``
  converter, span summaries, and the hottest-modules profile table.

See ``docs/observability.md`` for the end-to-end walkthrough.
"""

from .export import (
    chrome_trace,
    hot_modules,
    read_trace,
    render_profile,
    render_summary,
    summarize_spans,
    write_chrome_trace,
    write_trace,
)
from .metrics import DEFAULT_BUCKETS, MetricsRegistry, get_metrics
from .trace import (
    NULL_SPAN,
    WALL_DECIMALS,
    Span,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    new_span_id,
    round_wall,
    runtime_info,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "MetricsRegistry",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "WALL_DECIMALS",
    "chrome_trace",
    "disable_tracing",
    "enable_tracing",
    "get_metrics",
    "get_tracer",
    "hot_modules",
    "new_span_id",
    "read_trace",
    "render_profile",
    "render_summary",
    "round_wall",
    "runtime_info",
    "summarize_spans",
    "write_chrome_trace",
    "write_trace",
]

"""Trace export and rendering: JSONL, Chrome ``trace_event``, tables.

The on-disk format is one span per line (JSONL) so traces stream and
append across pipeline resumes.  :func:`chrome_trace` converts a span
list into the Chrome/Perfetto ``trace_event`` JSON array (complete
``"X"`` events, microsecond timestamps) loadable at ``chrome://tracing``
or https://ui.perfetto.dev.  :func:`summarize_spans` /
:func:`render_summary` back ``python -m repro trace summarize``, and
:func:`hot_modules` / :func:`render_profile` build the ``--profile``
hottest-modules table by apportioning measured wall time over the
per-module statement counts the coverage machinery already collects —
no extra hot-path instrumentation, hence no extra overhead.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Mapping, Optional, Sequence, Union

from .trace import Span, round_wall

__all__ = [
    "chrome_trace",
    "hot_modules",
    "read_trace",
    "render_profile",
    "render_summary",
    "summarize_spans",
    "write_chrome_trace",
    "write_trace",
]


def write_trace(spans: Iterable[Span], path_or_file: Union[str, IO[str]]) -> int:
    """Append spans to ``path_or_file`` as JSONL; returns spans written."""
    if hasattr(path_or_file, "write"):
        return _write_lines(spans, path_or_file)  # type: ignore[arg-type]
    with open(path_or_file, "a", encoding="utf-8") as fh:
        return _write_lines(spans, fh)


def _write_lines(spans: Iterable[Span], fh: IO[str]) -> int:
    n = 0
    for span in spans:
        fh.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")
        n += 1
    return n


def read_trace(path_or_file: Union[str, IO[str]]) -> list[Span]:
    """Parse a JSONL trace back into :class:`Span` objects."""
    if hasattr(path_or_file, "read"):
        return _read_lines(path_or_file)  # type: ignore[arg-type]
    with open(path_or_file, "r", encoding="utf-8") as fh:
        return _read_lines(fh)


def _read_lines(fh: IO[str]) -> list[Span]:
    spans = []
    for line in fh:
        line = line.strip()
        if line:
            spans.append(Span.from_dict(json.loads(line)))
    return spans


def chrome_trace(spans: Sequence[Span]) -> list[dict]:
    """Spans as Chrome ``trace_event`` complete events (``ph: "X"``)."""
    events = []
    for span in spans:
        args = {"span_id": span.span_id, "parent_id": span.parent_id}
        args.update(span.attrs)
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": span.wall_s * 1e6,
                "pid": span.pid,
                "tid": span.thread_id,
                "cat": span.name.split(":", 1)[0].split(".", 1)[0],
                "args": args,
            }
        )
    return events


def write_chrome_trace(spans: Sequence[Span], path: str) -> int:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(spans), fh)
    return len(spans)


def summarize_spans(spans: Sequence[Span]) -> list[dict]:
    """Aggregate spans by name: count, total/max wall, total CPU.

    Rows come back sorted by total wall time, hottest first.
    """
    rows: dict[str, dict] = {}
    for span in spans:
        row = rows.setdefault(
            span.name,
            {"name": span.name, "count": 0, "wall_s": 0.0, "cpu_s": 0.0, "max_s": 0.0},
        )
        row["count"] += 1
        row["wall_s"] += span.wall_s
        row["cpu_s"] += span.cpu_s
        row["max_s"] = max(row["max_s"], span.wall_s)
    out = sorted(rows.values(), key=lambda r: -r["wall_s"])
    for row in out:
        for key in ("wall_s", "cpu_s", "max_s"):
            row[key] = round_wall(row[key])
    return out


def render_summary(spans: Sequence[Span], top: int = 0) -> str:
    """A markdown table of :func:`summarize_spans` (all rows if top==0)."""
    rows = summarize_spans(spans)
    if top:
        rows = rows[:top]
    lines = [
        "| span | count | wall_s | cpu_s | max_s |",
        "| --- | ---: | ---: | ---: | ---: |",
    ]
    for row in rows:
        lines.append(
            f"| {row['name']} | {row['count']} | {row['wall_s']:.4f}"
            f" | {row['cpu_s']:.4f} | {row['max_s']:.4f} |"
        )
    lines.append(f"\nspans: {len(spans)}")
    return "\n".join(lines)


def hot_modules(
    statement_counts: Mapping[str, int],
    wall_s: float,
    top: int = 10,
    module_names: Optional[Mapping[str, str]] = None,
) -> list[dict]:
    """The hottest-modules profile: statement share and estimated wall.

    ``statement_counts`` maps file name -> statements executed (summed
    coverage counts); ``wall_s`` is the measured wall time of the run(s)
    the coverage came from, apportioned proportionally.  ``module_names``
    optionally maps file name -> Fortran module name for display.
    """
    total = sum(statement_counts.values())
    rows = []
    for fname, count in sorted(statement_counts.items(), key=lambda kv: -kv[1]):
        share = count / total if total else 0.0
        rows.append(
            {
                "module": (module_names or {}).get(fname, fname),
                "file": fname,
                "statements": int(count),
                "share": round(share, 4),
                "est_wall_s": round_wall(wall_s * share),
            }
        )
    return rows[:top] if top else rows


def render_profile(rows: Sequence[Mapping]) -> str:
    """A markdown table of :func:`hot_modules` rows."""
    lines = [
        "| module | statements | share | est_wall_s |",
        "| --- | ---: | ---: | ---: |",
    ]
    for row in rows:
        lines.append(
            f"| {row['module']} | {row['statements']} | {row['share'] * 100:.1f}%"
            f" | {row['est_wall_s']:.4f} |"
        )
    return "\n".join(lines)

"""Hierarchical spans and the process-global tracer.

A :class:`Span` is one timed region of the root-cause workflow — a
pipeline stage, one ensemble member, one refinement iteration — with a
name, free-form ``attrs``, wall and CPU time, and a parent id that
reconstructs the hierarchy.  The :class:`Tracer` keeps a *thread-local*
span stack (concurrent backend workers nest correctly without seeing
each other) and a process-wide list of finished spans.

The tracer is **disabled by default and free when disabled**: ``span()``
returns a shared no-op handle before evaluating any attributes — pass
``attrs`` as a callable at hot call sites and it is never invoked unless
tracing is on.  Enabling happens explicitly (``enable_tracing()``, or the
CLI's ``--trace`` / ``--profile`` flags).

Spans produced inside :class:`~repro.ensemble.backends.ProcessBackend`
workers cannot reach the parent tracer through memory; workers build
them standalone with :meth:`Span.measure` (no tracer involved, so a
``fork`` child never double-records through inherited tracer state) and
ship them back pickled next to the run artifact.  The parent calls
:meth:`Tracer.adopt`, which deduplicates by span id — a span arrives in
the trace exactly once no matter how results are retried or replayed.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional

__all__ = [
    "Span",
    "Tracer",
    "disable_tracing",
    "enable_tracing",
    "get_tracer",
    "new_span_id",
    "round_wall",
    "runtime_info",
]

#: decimals every serialized wall-clock figure is rounded to — the one
#: rounding convention ``StageRecord``/``PipelineResult``/exports share
WALL_DECIMALS = 4


def round_wall(seconds: float) -> float:
    """``seconds`` rounded to the repo-wide wall-clock precision."""
    return round(float(seconds), WALL_DECIMALS)


def runtime_info() -> dict:
    """The environment attrs bundle stamped on trace roots and benches.

    Makes timing trajectories interpretable across machines: python and
    numpy versions, CPU count, platform triple, and the repro version.
    """
    import platform

    import numpy as np

    from .. import __version__

    return {
        "repro": __version__,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
    }


#: process-local monotonic span counter; ids embed the pid, so ids from
#: forked/spawned workers can never collide with the parent's
_COUNTER = itertools.count(1)


def new_span_id() -> str:
    return f"{os.getpid():x}-{next(_COUNTER):x}"


@dataclass
class Span:
    """One finished timed region (see module docstring)."""

    name: str
    span_id: str
    parent_id: Optional[str] = None
    #: epoch seconds at entry (``time.time``) — aligns spans across processes
    start: float = 0.0
    wall_s: float = 0.0
    cpu_s: float = 0.0
    attrs: dict = field(default_factory=dict)
    pid: int = 0
    thread_id: int = 0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "wall_s": round_wall(self.wall_s),
            "cpu_s": round_wall(self.cpu_s),
            "attrs": dict(self.attrs),
            "pid": self.pid,
            "thread_id": self.thread_id,
        }

    @classmethod
    def from_dict(cls, doc: Mapping) -> "Span":
        return cls(
            name=str(doc["name"]),
            span_id=str(doc["span_id"]),
            parent_id=doc.get("parent_id"),
            start=float(doc.get("start", 0.0)),
            wall_s=float(doc.get("wall_s", 0.0)),
            cpu_s=float(doc.get("cpu_s", 0.0)),
            attrs=dict(doc.get("attrs") or {}),
            pid=int(doc.get("pid", 0)),
            thread_id=int(doc.get("thread_id", 0)),
        )

    @classmethod
    def measure(
        cls,
        name: str,
        fn: Callable[[], Any],
        *,
        parent_id: Optional[str] = None,
        attrs: Optional[Mapping] = None,
    ) -> tuple["Span", Any]:
        """Run ``fn`` and return ``(span, value)`` without any tracer.

        The process-backend worker path: the span is built standalone
        (ids still embed the pid, so they stay globally unique), pickled
        back with the result, and adopted by the parent tracer.
        """
        start = time.time()
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        value = fn()
        span = cls(
            name=name,
            span_id=new_span_id(),
            parent_id=parent_id,
            start=start,
            wall_s=time.perf_counter() - wall0,
            cpu_s=time.process_time() - cpu0,
            attrs=dict(attrs or {}),
            pid=os.getpid(),
            thread_id=threading.get_ident(),
        )
        return span, value


class _NullHandle:
    """The shared no-op span handle the disabled tracer returns."""

    __slots__ = ()
    span_id = ""

    def annotate(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NullHandle":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


NULL_SPAN = _NullHandle()


class _SpanHandle:
    """Live context-manager handle of one open span."""

    __slots__ = (
        "_tracer",
        "name",
        "span_id",
        "parent_id",
        "attrs",
        "_start",
        "_wall0",
        "_cpu0",
    )

    def __init__(self, tracer: "Tracer", name: str, parent_id, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.span_id = new_span_id()
        self.parent_id = parent_id
        self.attrs = attrs

    def annotate(self, **attrs: Any) -> None:
        self.attrs.update(attrs)

    def __enter__(self) -> "_SpanHandle":
        stack = self._tracer._stack()
        if self.parent_id is None and stack:
            self.parent_id = stack[-1].span_id
        if self.parent_id in (None, ""):
            # a root span: stamp the environment bundle so every exported
            # trace is interpretable on its own
            self.parent_id = None
            merged = dict(self._tracer.root_attrs)
            merged.update(self.attrs)
            self.attrs = merged
        stack.append(self)
        self._start = time.time()
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        wall = time.perf_counter() - self._wall0
        cpu = time.process_time() - self._cpu0
        stack = self._tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # pragma: no cover - defensive
            stack.remove(self)
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._record(
            Span(
                name=self.name,
                span_id=self.span_id,
                parent_id=self.parent_id,
                start=self._start,
                wall_s=wall,
                cpu_s=cpu,
                attrs=self.attrs,
                pid=os.getpid(),
                thread_id=threading.get_ident(),
            )
        )
        return False


class Tracer:
    """Span collector with thread-local stacks (see module docstring)."""

    def __init__(self) -> None:
        self.enabled = False
        self.root_attrs: dict = {}
        self._finished: list[Span] = []
        self._seen: set[str] = set()
        self._lock = threading.Lock()
        self._local = threading.local()

    # ------------------------------------------------------------ lifecycle
    def enable(self, **root_attrs: Any) -> None:
        """Turn tracing on with a fresh span buffer.

        Every *root* span (no parent) automatically carries
        :func:`runtime_info` plus ``root_attrs``.
        """
        with self._lock:
            self._finished = []
            self._seen = set()
        self.root_attrs = {**runtime_info(), **root_attrs}
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    # ------------------------------------------------------------- recording
    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(
        self,
        name: str,
        attrs: "Mapping | Callable[[], Mapping] | None" = None,
        parent_id: Optional[str] = None,
        **extra: Any,
    ):
        """A context-manager handle for one region, or a shared no-op.

        ``attrs`` may be a mapping or a zero-argument callable; the
        callable form is never invoked while the tracer is disabled, so
        hot call sites pay exactly one attribute check.
        """
        if not self.enabled:
            return NULL_SPAN
        merged = dict(attrs() if callable(attrs) else (attrs or {}))
        if extra:
            merged.update(extra)
        return _SpanHandle(self, name, parent_id, merged)

    def traced(self, name: str, **attrs: Any):
        """Decorator: run the wrapped function under a span."""

        def wrap(fn):
            import functools

            @functools.wraps(fn)
            def inner(*args, **kwargs):
                with self.span(name, dict(attrs)):
                    return fn(*args, **kwargs)

            return inner

        return wrap

    def current_id(self) -> Optional[str]:
        """Id of the innermost open span on this thread, or None."""
        stack = self._stack()
        return stack[-1].span_id if stack else None

    def _record(self, span: Span) -> None:
        with self._lock:
            if span.span_id not in self._seen:
                self._seen.add(span.span_id)
                self._finished.append(span)

    def adopt(self, spans) -> int:
        """Merge externally produced spans (worker processes, batch
        backends); duplicates — by span id — are dropped.  Returns the
        number actually added."""
        added = 0
        with self._lock:
            for span in spans:
                if isinstance(span, Mapping):
                    span = Span.from_dict(span)
                if span.span_id not in self._seen:
                    self._seen.add(span.span_id)
                    self._finished.append(span)
                    added += 1
        return added

    # -------------------------------------------------------------- queries
    def finished(self) -> list[Span]:
        """A snapshot of every finished span, oldest first."""
        with self._lock:
            return list(self._finished)

    def drain(self) -> list[Span]:
        """Return every finished span and clear the buffer (dedup memory
        is kept until the next :meth:`enable`)."""
        with self._lock:
            spans, self._finished = self._finished, []
        return spans

    def __len__(self) -> int:
        with self._lock:
            return len(self._finished)


#: the process-global tracer every instrumented layer consults
_TRACER = Tracer()


def get_tracer() -> Tracer:
    return _TRACER


def enable_tracing(**root_attrs: Any) -> Tracer:
    """Enable the global tracer (fresh buffer) and return it."""
    _TRACER.enable(**root_attrs)
    return _TRACER


def disable_tracing() -> list[Span]:
    """Disable the global tracer; returns (and clears) its spans."""
    spans = _TRACER.drain()
    _TRACER.disable()
    return spans

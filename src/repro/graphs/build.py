"""Compile parsed Fortran ASTs into the variable-dependency metagraph.

This is the paper's source-to-digraph step (§4.2): every assignment becomes a
set of edges from the variables read on the right-hand side (and in the
target's subscripts) to the variable written; every ``call`` and function
reference binds actual arguments onto the callee's dummy arguments across the
subroutine boundary, honouring declared ``intent``; ``use``-association
(including renames like ``r8 => shr_kind_r8``) resolves names to the module
that defines them, which is what makes the resulting graph *cross-module*.

Scoping: dummies and locals are scoped per subprogram, module variables per
module, and derived-type component accesses (``state%t``) get component
nodes hanging off the aggregate variable's node (reads flow aggregate ->
component, writes component -> aggregate), so data carried through a
``type(physics_state)`` argument stays connected across call chains.

Deliberate simplifications, mirroring the paper:

* intrinsic references (``max``, ``sqrt`` ...) are inlined — their arguments
  are read directly, no hub node is created for the intrinsic;
* control dependencies (``if`` conditions guarding a store) are not edges —
  the digraph is data flow over assignments;
* a dummy argument with no declared intent is treated as ``inout``: all
  possible connections are mapped, as the paper does for interface calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..fortran.ast_nodes import (
    Apply,
    Assignment,
    Declaration,
    DerivedRef,
    DoLoop,
    Expr,
    CallStmt,
    ModuleNode,
    PointerAssignment,
    SectionRange,
    SourceFileAST,
    Stmt,
    Subprogram,
    UnaryOp,
    BinOp,
    UseStmt,
    VarRef,
)
from ..fortran.intrinsics import is_intrinsic
from .metagraph import MetaGraph, NodeKey


@dataclass
class _SubScope:
    """Name environment of one subprogram."""

    sub: Subprogram
    names: set[str] = field(default_factory=set)
    intents: dict[str, str] = field(default_factory=dict)

    def kind_of(self, name: str) -> str:
        if name in self.sub.args:
            return "dummy"
        if name == self.sub.result and self.sub.is_function:
            return "result"
        return "local"


@dataclass
class _ModuleIndex:
    """Per-module symbol tables built in the first pass."""

    node: ModuleNode
    variables: set[str] = field(default_factory=set)
    subprograms: dict[str, Subprogram] = field(default_factory=dict)
    renames: dict[str, tuple[str, str]] = field(default_factory=dict)
    blanket_uses: list[str] = field(default_factory=list)
    scopes: dict[str, _SubScope] = field(default_factory=dict)


class MetaGraphBuilder:
    """Two-pass builder: index symbols, then compile statements to edges."""

    def __init__(self, asts: Mapping[str, SourceFileAST]):
        self.asts = dict(asts)
        self.graph = MetaGraph()
        self.index: dict[str, _ModuleIndex] = {}
        #: call references to names no module defines (diagnostics)
        self.unresolved_calls: list[tuple[str, str, int]] = []

    # ------------------------------------------------------------ pass one
    def _index_modules(self) -> None:
        for ast in self.asts.values():
            for mod in ast.modules:
                idx = _ModuleIndex(node=mod)
                idx.variables.update(mod.module_variable_names())
                for use in mod.uses:
                    self._index_use(idx, use)
                subs: list[Subprogram] = list(mod.subprograms.values())
                while subs:
                    sub = subs.pop()
                    idx.subprograms[sub.name] = sub
                    idx.scopes[sub.name] = self._build_scope(sub)
                    # subprogram-level `use` statements resolve the same
                    # cross-module names (module-level approximation: the
                    # import is indexed for the whole module, which can only
                    # add resolutions, never lose them)
                    for decl in sub.declarations:
                        if isinstance(decl, UseStmt):
                            self._index_use(idx, decl)
                    subs.extend(sub.contains)
                self.index[mod.name] = idx

    @staticmethod
    def _index_use(idx: _ModuleIndex, use: UseStmt) -> None:
        if use.has_only or use.only:
            for rename in use.only:
                idx.renames[rename.local] = (use.module, rename.remote)
        else:
            idx.blanket_uses.append(use.module)

    @staticmethod
    def _build_scope(sub: Subprogram) -> _SubScope:
        scope = _SubScope(sub=sub)
        scope.names.update(sub.args)
        if sub.is_function:
            scope.names.add(sub.result)
        for decl in sub.declarations:
            if isinstance(decl, Declaration):
                for entity in decl.entities:
                    scope.names.add(entity.name)
                if decl.intent:
                    for entity in decl.entities:
                        scope.intents[entity.name] = decl.intent
        return scope

    # ------------------------------------------------------ name resolution
    def _resolve_module_name(
        self, module: str, name: str, _visited: frozenset[str] = frozenset()
    ) -> NodeKey | None:
        """Resolve ``name`` at module level, following use-association."""
        if module in _visited or module not in self.index:
            return None
        idx = self.index[module]
        if name in idx.variables:
            return (module, "", name)
        visited = _visited | {module}
        if name in idx.renames:
            target_mod, remote = idx.renames[name]
            resolved = self._resolve_module_name(target_mod, remote, visited)
            if resolved is not None:
                return resolved
            # renamed to something that is not a variable (e.g. a function)
            return None
        for target_mod in idx.blanket_uses:
            resolved = self._resolve_module_name(target_mod, name, visited)
            if resolved is not None:
                return resolved
        return None

    def _resolve_var(
        self, module: str, sub: Subprogram | None, name: str, line: int
    ) -> NodeKey:
        """Resolve a variable reference to a node key, creating the node."""
        idx = self.index[module]
        if sub is not None:
            scope = idx.scopes.get(sub.name)
            if scope is not None and name in scope.names:
                node = self.graph.add_node(
                    module, sub.name, name, kind=scope.kind_of(name), line=line
                )
                return node.key
        resolved = self._resolve_module_name(module, name)
        if resolved is not None:
            mod, _, var = resolved
            return self.graph.add_node(mod, "", var, kind="module-var", line=line).key
        # Unknown name (implicit or out-of-subset): keep it local so the
        # statement still contributes structure instead of being dropped.
        scope_name = sub.name if sub is not None else ""
        return self.graph.add_node(
            module, scope_name, name, kind="implicit", line=line
        ).key

    def _resolve_proc(
        self,
        module: str,
        name: str,
        _visited: frozenset[tuple[str, str]] = frozenset(),
    ) -> list[tuple[str, Subprogram]]:
        """All subprograms a name may refer to from ``module`` (paper: map
        every possible connection for generic interfaces)."""
        if (module, name) in _visited or module not in self.index:
            return []
        visited = _visited | {(module, name)}
        idx = self.index[module]
        if name in idx.subprograms:
            return [(module, idx.subprograms[name])]
        if name in idx.node.interfaces:
            out: list[tuple[str, Subprogram]] = []
            for proc in idx.node.interfaces[name].procedures:
                out.extend(self._resolve_proc(module, proc, visited))
            return out
        if name in idx.renames:
            target_mod, remote = idx.renames[name]
            return self._resolve_proc(target_mod, remote, visited)
        out = []
        for target_mod in idx.blanket_uses:
            out.extend(self._resolve_proc(target_mod, name, visited))
        return out

    # --------------------------------------------------- expression -> reads
    def _component_key(self, base: NodeKey, component: str, line: int, write: bool) -> NodeKey:
        """Node for ``base%component``; link it to the aggregate node."""
        mod, scope, base_name = base
        node = self.graph.add_node(
            mod, scope, f"{base_name}%{component}", kind="component", line=line
        )
        if write:
            self.graph.add_edge(node.key, base, line=line)
        else:
            self.graph.add_edge(base, node.key, line=line)
        return node.key

    def _ref_target(
        self, module: str, sub: Subprogram | None, expr: Expr, line: int, write: bool
    ) -> NodeKey | None:
        """The primary variable node a reference expression designates."""
        if isinstance(expr, VarRef):
            return self._resolve_var(module, sub, expr.name, line)
        if isinstance(expr, Apply):
            # array element / section; subscripts handled by the caller
            if is_intrinsic(expr.name) and not self._shadowed(module, sub, expr.name):
                return None
            return self._resolve_var(module, sub, expr.name, line)
        if isinstance(expr, DerivedRef):
            base = self._ref_target(module, sub, expr.base, line, write=False)
            if base is None:
                return None
            return self._component_key(base, expr.component, line, write=write)
        return None

    @staticmethod
    def _chain_subscripts(expr: Expr) -> list[Expr]:
        """Every subscript expression along a reference chain.

        For ``a%b(i)%c(j)`` this yields ``j`` and ``i`` — including the
        subscripts of *intermediate* components, which a naive unwrap to the
        root base would skip.
        """
        subscripts: list[Expr] = []
        current: Expr | None = expr
        while current is not None:
            if isinstance(current, DerivedRef):
                subscripts.extend(current.args)
                current = current.base
            elif isinstance(current, Apply):
                subscripts.extend(current.args)
                subscripts.extend(current.keywords.values())
                current = None
            else:
                current = None
        return subscripts

    def _shadowed(self, module: str, sub: Subprogram | None, name: str) -> bool:
        """True when a local declaration shadows an intrinsic name."""
        if sub is None:
            return name in self.index[module].variables
        scope = self.index[module].scopes.get(sub.name)
        return (scope is not None and name in scope.names) or (
            name in self.index[module].variables
        )

    def _collect_reads(
        self, module: str, sub: Subprogram | None, expr: Expr, line: int
    ) -> list[NodeKey]:
        """Variable nodes read by ``expr``; binds function-call arguments."""
        reads: list[NodeKey] = []
        if isinstance(expr, VarRef):
            reads.append(self._resolve_var(module, sub, expr.name, line))
        elif isinstance(expr, Apply):
            reads.extend(self._apply_reads(module, sub, expr, line))
        elif isinstance(expr, DerivedRef):
            target = self._ref_target(module, sub, expr, line, write=False)
            if target is not None:
                reads.append(target)
            # subscripts at every level of the chain (``elem(ie)%d(j)%omega``)
            for arg in self._chain_subscripts(expr):
                reads.extend(self._collect_reads(module, sub, arg, line))
        elif isinstance(expr, (UnaryOp,)):
            reads.extend(self._collect_reads(module, sub, expr.operand, line))
        elif isinstance(expr, BinOp):
            reads.extend(self._collect_reads(module, sub, expr.left, line))
            reads.extend(self._collect_reads(module, sub, expr.right, line))
        elif isinstance(expr, SectionRange):
            for part in (expr.lower, expr.upper, expr.stride):
                if part is not None:
                    reads.extend(self._collect_reads(module, sub, part, line))
        # literals contribute nothing
        return reads

    def _apply_reads(
        self, module: str, sub: Subprogram | None, expr: Apply, line: int
    ) -> list[NodeKey]:
        reads: list[NodeKey] = []
        arg_exprs = list(expr.args) + list(expr.keywords.values())
        shadowed = self._shadowed(module, sub, expr.name)
        if is_intrinsic(expr.name) and not shadowed:
            # inline the intrinsic: read its arguments directly (paper
            # localizes intrinsics to avoid spurious hub nodes)
            for arg in arg_exprs:
                reads.extend(self._collect_reads(module, sub, arg, line))
            return reads
        if not shadowed:
            callees = self._resolve_proc(module, expr.name)
            if callees:
                for callee_mod, callee in callees:
                    if callee.is_function:
                        reads.append(
                            self.graph.add_node(
                                callee_mod, callee.name, callee.result,
                                kind="result", line=line,
                            ).key
                        )
                    self._bind_arguments(module, sub, callee_mod, callee, expr.args,
                                         expr.keywords, line)
                return reads
        # plain array reference: the named variable plus its subscripts
        reads.append(self._resolve_var(module, sub, expr.name, line))
        for arg in arg_exprs:
            reads.extend(self._collect_reads(module, sub, arg, line))
        return reads

    # ------------------------------------------------------- call bindings
    def _bind_arguments(
        self,
        module: str,
        sub: Subprogram | None,
        callee_mod: str,
        callee: Subprogram,
        args: list[Expr],
        keywords: dict[str, Expr],
        line: int,
    ) -> None:
        """Map actual arguments onto dummy arguments across the call."""
        scope = self.index[callee_mod].scopes[callee.name]
        pairs: list[tuple[str, Expr]] = []
        pairs.extend(zip(callee.args, args))
        for kw, actual in keywords.items():
            if kw in callee.args:
                pairs.append((kw, actual))
        for dummy, actual in pairs:
            dummy_key = self.graph.add_node(
                callee_mod, callee.name, dummy, kind="dummy", line=line
            ).key
            intent = scope.intents.get(dummy)  # None -> treat as inout
            if intent != "out":
                for read in self._collect_reads(module, sub, actual, line):
                    self.graph.add_edge(read, dummy_key, line=line)
            if intent in (None, "out", "inout"):
                target = self._ref_target(module, sub, actual, line, write=True)
                if target is not None:
                    self.graph.add_edge(dummy_key, target, line=line)

    # ------------------------------------------------------------ pass two
    def _compile_module(self, mod: ModuleNode) -> None:
        # module-level variables and initializers
        for decl in mod.declarations:
            if not isinstance(decl, Declaration):
                continue
            for entity in decl.entities:
                node = self.graph.add_node(
                    mod.name, "", entity.name, kind="module-var",
                    line=decl.location.line,
                )
                if entity.init is not None:
                    for read in self._collect_reads(
                        mod.name, None, entity.init, decl.location.line
                    ):
                        self.graph.add_edge(read, node.key, line=decl.location.line)
        # subprogram-local initializers and executable statements
        for sub, stmt in mod.walk_statements():
            self._compile_statement(mod.name, sub, stmt)
        for sub_name, scope in self.index[mod.name].scopes.items():
            sub = self.index[mod.name].subprograms[sub_name]
            for decl in sub.declarations:
                if not isinstance(decl, Declaration):
                    continue
                for entity in decl.entities:
                    if entity.init is not None:
                        key = self.graph.add_node(
                            mod.name, sub_name, entity.name,
                            kind=scope.kind_of(entity.name),
                            line=decl.location.line,
                        ).key
                        for read in self._collect_reads(
                            mod.name, sub, entity.init, decl.location.line
                        ):
                            self.graph.add_edge(read, key, line=decl.location.line)

    def _compile_statement(self, module: str, sub: Subprogram, stmt: Stmt) -> None:
        line = stmt.location.line
        if isinstance(stmt, (Assignment, PointerAssignment)):
            target = self._ref_target(module, sub, stmt.target, line, write=True)
            reads = self._collect_reads(module, sub, stmt.value, line)
            # subscripts of the target select the stored element: reads too
            if isinstance(stmt.target, (Apply, DerivedRef)):
                for arg in self._chain_subscripts(stmt.target):
                    reads.extend(self._collect_reads(module, sub, arg, line))
            if target is None:
                return
            for read in reads:
                self.graph.add_edge(read, target, line=line)
        elif isinstance(stmt, CallStmt):
            callees = self._resolve_proc(module, stmt.name)
            if not callees:
                if not is_intrinsic(stmt.name):
                    self.unresolved_calls.append((module, stmt.name, line))
                return
            for callee_mod, callee in callees:
                self._bind_arguments(
                    module, sub, callee_mod, callee, stmt.args, stmt.keywords, line
                )
        elif isinstance(stmt, DoLoop):
            var_key = self._resolve_var(module, sub, stmt.var, line)
            for bound in (stmt.start, stmt.stop, stmt.step):
                if bound is not None:
                    for read in self._collect_reads(module, sub, bound, line):
                        self.graph.add_edge(read, var_key, line=line)
        # if/where conditions are control, not data flow: no edges (see
        # module docstring); their bodies arrive via walk_statements.

    # -------------------------------------------------------------- driver
    def build(self) -> MetaGraph:
        self._index_modules()
        for ast in self.asts.values():
            for mod in ast.modules:
                self._compile_module(mod)
        return self.graph


def build_metagraph(source) -> MetaGraph:
    """Build the metagraph for a model source or a set of parsed files.

    ``source`` may be a :class:`repro.model.builder.ModelSource` (its
    compiled files are parsed with the compset macros), a mapping of
    ``{filename: source text}``, or a mapping of ``{filename:
    SourceFileAST}``.
    """
    from ..fortran import parse_source  # local import: keep module light

    if hasattr(source, "parse"):
        asts = source.parse()
    elif isinstance(source, Mapping):
        asts = {}
        for name, value in source.items():
            if isinstance(value, SourceFileAST):
                asts[name] = value
            else:
                asts[name] = parse_source(value, filename=name)
    else:
        raise TypeError(
            "build_metagraph expects a ModelSource or a mapping of filenames "
            f"to source text / SourceFileAST, got {type(source).__name__}"
        )
    return MetaGraphBuilder(asts).build()


__all__ = ["MetaGraphBuilder", "build_metagraph"]

"""Source-to-digraph metagraph construction (paper §4.2).

The stable API of this package:

``build_metagraph(model_source) -> MetaGraph``
    Compile a :class:`~repro.model.builder.ModelSource` (or a mapping of
    file names to Fortran text / parsed ASTs) into the directed
    variable-dependency metagraph.
``MetaGraph``
    The graph: one node per (module, scope, variable) with line metadata,
    predecessor/successor queries, degree statistics (:meth:`MetaGraph.stats`)
    and BFS reachability — the substrate for slicing
    (:mod:`repro.slicing`) and community analysis (:mod:`repro.analysis`).

Typical use::

    from repro.model import ModelConfig, build_model_source
    from repro.graphs import build_metagraph

    graph = build_metagraph(build_model_source(ModelConfig()))
    stats = graph.stats()          # nodes, edges, degrees, cross-module edges
    graph.predecessors(graph.find("prect")[0])
"""

from .build import MetaGraphBuilder, build_metagraph
from .metagraph import MetaGraph, MetaGraphNode, MetaGraphStats, NodeKey

__all__ = [
    "MetaGraph",
    "MetaGraphBuilder",
    "MetaGraphNode",
    "MetaGraphStats",
    "NodeKey",
    "build_metagraph",
]

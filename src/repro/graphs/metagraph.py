"""The variable-dependency metagraph (paper §4.2).

Nodes are *variables*: one node per (module, scope, canonical name), where
``scope`` is the owning subprogram for dummies/locals and ``""`` for
module-level variables.  Derived-type component accesses get their own nodes
(``state%t``) whose canonical name is the trailing component, exactly as the
paper canonicalizes ``state%omega`` to ``omega``.

Edges are directed *data-flow* dependencies: an edge ``u -> v`` means a value
read from ``u`` contributed to a value stored in ``v`` — through an
assignment, a call-argument binding across a subroutine boundary, or an
aggregate/component relationship.  Every node and edge carries the source
lines it was compiled from, so slices and community reports can be mapped
back to the Fortran text.

The graph itself is a plain adjacency structure with predecessor/successor
queries and degree statistics; it deliberately has no third-party
dependencies so later stages (BFS slicing, Girvan-Newman, centralities) can
build on it directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

#: A node key: (module, scope, name).  ``scope`` is "" for module-level
#: variables and the subprogram name for dummies/locals.
NodeKey = tuple[str, str, str]


@dataclass
class MetaGraphNode:
    """One variable node with its source metadata."""

    module: str
    scope: str
    name: str
    kind: str = "local"     #: module-var | dummy | local | component | implicit
    lines: set[int] = field(default_factory=set)

    @property
    def key(self) -> NodeKey:
        return (self.module, self.scope, self.name)

    @property
    def canonical_name(self) -> str:
        """The paper's canonical name: the trailing ``%`` component."""
        return self.name.rsplit("%", 1)[-1]

    @property
    def qualified_name(self) -> str:
        parts = [self.module]
        if self.scope:
            parts.append(self.scope)
        parts.append(self.name)
        return "::".join(parts)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.qualified_name


@dataclass(frozen=True)
class MetaGraphStats:
    """Summary statistics reported for a built metagraph."""

    node_count: int
    edge_count: int
    module_count: int
    cross_module_edges: int
    mean_in_degree: float
    max_in_degree: int
    mean_out_degree: float
    max_out_degree: int


class MetaGraph:
    """Directed variable-dependency graph with degree/neighbour queries."""

    def __init__(self) -> None:
        self.nodes: dict[NodeKey, MetaGraphNode] = {}
        self._succ: dict[NodeKey, set[NodeKey]] = {}
        self._pred: dict[NodeKey, set[NodeKey]] = {}
        self._edge_lines: dict[tuple[NodeKey, NodeKey], set[int]] = {}

    # ------------------------------------------------------------ mutation
    def add_node(
        self,
        module: str,
        scope: str,
        name: str,
        kind: str = "local",
        line: int | None = None,
    ) -> MetaGraphNode:
        """Get-or-create the node, merging line metadata."""
        key = (module, scope, name)
        node = self.nodes.get(key)
        if node is None:
            node = MetaGraphNode(module=module, scope=scope, name=name, kind=kind)
            self.nodes[key] = node
            self._succ[key] = set()
            self._pred[key] = set()
        if line:
            node.lines.add(line)
        return node

    def add_edge(self, src: NodeKey, dst: NodeKey, line: int | None = None) -> None:
        """Add a data-flow edge ``src -> dst``; both nodes must exist."""
        if src not in self.nodes:
            raise KeyError(f"unknown source node {src!r}")
        if dst not in self.nodes:
            raise KeyError(f"unknown destination node {dst!r}")
        if src == dst:
            return  # self-dependence (x = x + 1) adds no structure
        self._succ[src].add(dst)
        self._pred[dst].add(src)
        if line:
            self._edge_lines.setdefault((src, dst), set()).add(line)

    # ------------------------------------------------------------- queries
    @property
    def node_count(self) -> int:
        return len(self.nodes)

    @property
    def edge_count(self) -> int:
        return sum(len(s) for s in self._succ.values())

    def __contains__(self, key: NodeKey) -> bool:
        return key in self.nodes

    def __iter__(self) -> Iterator[MetaGraphNode]:
        return iter(self.nodes.values())

    def edges(self) -> Iterator[tuple[NodeKey, NodeKey]]:
        for src, dsts in self._succ.items():
            for dst in dsts:
                yield src, dst

    def edge_lines(self, src: NodeKey, dst: NodeKey) -> frozenset[int]:
        """Source lines whose statements induced the edge (may be empty)."""
        return frozenset(self._edge_lines.get((src, dst), ()))

    def successors(self, key: NodeKey) -> frozenset[NodeKey]:
        """Nodes whose values this node feeds (out-neighbours)."""
        return frozenset(self._succ[key])

    def predecessors(self, key: NodeKey) -> frozenset[NodeKey]:
        """Nodes whose values feed this node (in-neighbours)."""
        return frozenset(self._pred[key])

    def in_degree(self, key: NodeKey) -> int:
        return len(self._pred[key])

    def out_degree(self, key: NodeKey) -> int:
        return len(self._succ[key])

    def modules(self) -> frozenset[str]:
        """Names of every Fortran module contributing nodes."""
        return frozenset(node.module for node in self.nodes.values())

    def find(self, canonical_name: str) -> list[NodeKey]:
        """All node keys whose canonical (trailing-component) name matches."""
        wanted = canonical_name.lower()
        return sorted(
            key for key, node in self.nodes.items()
            if node.canonical_name == wanted or node.name == wanted
        )

    def cross_module_edges(self) -> int:
        """Count of edges whose endpoints live in different modules."""
        return sum(1 for src, dst in self.edges() if src[0] != dst[0])

    def stats(self) -> MetaGraphStats:
        """Node/edge counts and in/out-degree statistics."""
        n = self.node_count
        in_degrees = [len(p) for p in self._pred.values()]
        out_degrees = [len(s) for s in self._succ.values()]
        return MetaGraphStats(
            node_count=n,
            edge_count=self.edge_count,
            module_count=len(self.modules()),
            cross_module_edges=self.cross_module_edges(),
            mean_in_degree=(sum(in_degrees) / n) if n else 0.0,
            max_in_degree=max(in_degrees, default=0),
            mean_out_degree=(sum(out_degrees) / n) if n else 0.0,
            max_out_degree=max(out_degrees, default=0),
        )

    # ------------------------------------------------------------ traversal
    def reachable_from(self, keys: Iterable[NodeKey], reverse: bool = False) -> set[NodeKey]:
        """BFS closure of ``keys`` along successors (or predecessors)."""
        neighbours = self.predecessors if reverse else self.successors
        seen: set[NodeKey] = set()
        frontier = [k for k in keys if k in self.nodes]
        while frontier:
            key = frontier.pop()
            if key in seen:
                continue
            seen.add(key)
            frontier.extend(n for n in neighbours(key) if n not in seen)
        return seen


__all__ = ["MetaGraph", "MetaGraphNode", "MetaGraphStats", "NodeKey"]

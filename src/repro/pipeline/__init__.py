"""repro.pipeline — the orchestrated, resumable root-cause DAG.

The paper's workflow — build patched CAM source → perturbed accepted
ensemble → UF-ECT verdict → coverage-filtered backward slice →
community-guided refinement → culprit report — as a typed stage DAG with
content-hashed cache keys, topological execution, a per-stage on-disk
artifact store, resume-from-cache and structured per-stage
timing/status records.

Layers:

* :mod:`repro.pipeline.store` — :class:`ArtifactStore`: one ``.npz`` per
  stage result under its content-addressed key (atomic writes,
  ``allow_pickle=False``), with hit/miss/write counters.
* :mod:`repro.pipeline.core` — :class:`Stage`, :class:`Pipeline`,
  :class:`StageRecord`, :class:`PipelineResult`: the engine, agnostic of
  what the stages compute.
* :mod:`repro.pipeline.stages` — the adapters binding
  :func:`repro.ensemble.generate_ensemble`, :class:`repro.ect.UltraFastECT`,
  :func:`repro.slicing.slice_failing_runs` and
  :func:`repro.refine.refine_slice` into DAG nodes, plus the
  :class:`RootCauseAnalysis` facade the CLI drives.

Quickstart — localize the ``wsubbug`` patch, resumably:

>>> from repro.pipeline import RootCauseAnalysis
>>> result = RootCauseAnalysis("wsubbug", store_dir="store").run()
>>> result["report"].localized
True
>>> RootCauseAnalysis("wsubbug", store_dir="store").run().record(
...     "control_ensemble").status          # second run: all from cache
'hit'
"""

from __future__ import annotations

from .core import (
    Pipeline,
    PipelineError,
    PipelineResult,
    Stage,
    StageContext,
    StageError,
    StageRecord,
    config_token,
)
from .stages import (
    RootCauseAnalysis,
    accepted_ensemble,
    fused_experimental_pipeline,
    root_cause_pipeline,
)
from .store import ArtifactStore, StoreError, json_payload, payload_json

__all__ = [
    "ArtifactStore",
    "Pipeline",
    "PipelineError",
    "PipelineResult",
    "RootCauseAnalysis",
    "Stage",
    "StageContext",
    "StageError",
    "StageRecord",
    "StoreError",
    "accepted_ensemble",
    "config_token",
    "fused_experimental_pipeline",
    "json_payload",
    "payload_json",
    "root_cause_pipeline",
]

"""Stage adapters: the existing root-cause stack behind the DAG engine.

Every stage of the paper's workflow — build patched model → perturbed
ensemble → UF-ECT verdict → coverage-filtered slice → community-guided
refinement → culprit report — gains a thin :class:`~repro.pipeline.core.Stage`
adapter here, so :func:`repro.ensemble.generate_ensemble`,
:func:`repro.ect.ect_test`, :func:`repro.slicing.slice_failing_runs` and
:func:`repro.refine.refine_slice` stop being hand-wired calls and become
cacheable, resumable, schedulable DAG nodes.

Two cache granularities cooperate:

* **member level** — every model run (ensemble member, experimental run,
  coverage run) goes through the shared content-addressed
  :class:`~repro.ensemble.cache.MemberCache` under ``<store>/members``, so
  no simulation the store already holds is ever re-run;
* **stage level** — each stage's *derived* product (ensemble matrix, ECT
  verdict, ranked slice, refinement trajectory, report) is one payload in
  ``<store>/stages`` under the stage's content-hashed key, so a resumed
  pipeline skips even the cheap recomputation and its records say so.

Rehydration notes: a cache-hit ensemble is rebuilt member-by-member from
the member cache (bit-identical matrix, merged coverage); a cache-hit
:class:`~repro.slicing.RankedSlice` carries its modules / ranking /
weights but drops the per-variable ``slices`` detail; a cache-hit
:class:`~repro.refine.RefinementResult` drops the fitted ``communities``
and baseline ``verdict`` objects (the pipeline's own ``ect`` stage is the
verdict of record).  Downstream stages and reports only consume the
preserved fields.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from ..ect import EctConfig, EctResult, UltraFastECT
from ..ensemble import Ensemble, generate_ensemble, member_cache_key
from ..ensemble.spec import EnsembleSpec
from ..graphs import build_metagraph
from ..model.builder import ModelConfig, ModelSource, build_model_source
from ..refine import RefinementConfig, RefinementResult, RefinementStep, refine_slice
from ..runtime import CoverageTrace, RunConfig, RunResult, run_model
from ..selection import SelectionResult, SelectionSpec, select_culprits
from ..slicing import RankedSlice, slice_failing_runs
from .core import Pipeline, PipelineResult, Stage, StageContext, config_token
from .store import StoreError, json_payload, payload_json

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..experiments import ExperimentSpec

__all__ = [
    "RootCauseAnalysis",
    "accepted_ensemble",
    "fused_experimental_pipeline",
    "make_ect_stage",
    "make_ensemble_stage",
    "make_fused_experimental_stage",
    "make_selection_stage",
    "make_source_stage",
    "root_cause_pipeline",
]


# --------------------------------------------------------------------- runs
def _cached_run(
    ctx: StageContext, source: ModelSource, config: RunConfig
) -> RunResult:
    """One model run through the shared member cache (run if missing)."""
    cache = ctx.member_cache
    if cache is None:
        return run_model(config, source=source)
    key = member_cache_key(source, config)
    result = cache.load(key, config)
    if result is None:
        result = run_model(config, source=source)
        cache.store(key, result)
    return result


def _load_cached_runs(
    ctx: StageContext,
    source: ModelSource,
    configs: list[RunConfig],
    keys: list[str],
) -> list[RunResult]:
    """Rehydrate runs from the member cache; StoreError on any gap."""
    if ctx.member_cache is None:
        raise StoreError("no member cache to rehydrate runs from")
    if len(keys) != len(configs):
        raise StoreError(
            f"cached run count {len(keys)} != expected {len(configs)}"
        )
    runs: list[RunResult] = []
    for key, config in zip(keys, configs):
        if key != member_cache_key(source, config):
            raise StoreError("cached run key does not match its config")
        artifact = ctx.member_cache.load_artifact(key)
        if artifact is None:
            raise StoreError(f"member artifact {key[:12]}... missing")
        runs.append(artifact.to_result(config))
    return runs


# ------------------------------------------------------------ source stages
def make_source_stage(name: str, model: ModelConfig) -> Stage:
    """Build + parse one :class:`ModelSource` (cheap, never cached on disk).

    The stage fingerprints with the built tree's content digest, so any
    model-source or patch change transitively invalidates every
    downstream stage key.
    """

    def func(ctx: StageContext) -> ModelSource:
        source = build_model_source(model)
        source.parse()
        return source

    return Stage(
        name=name,
        func=func,
        params={"model": model},
        cacheable=False,
        fingerprint=lambda source: source.content_digest(),
    )


def make_metagraph_stage(source_input: str = "control_source") -> Stage:
    """Build the variable-dependency metagraph of the control tree."""
    return Stage(
        name="metagraph",
        func=lambda ctx, **inputs: build_metagraph(inputs[source_input]),
        inputs=(source_input,),
        cacheable=False,
    )


# ---------------------------------------------------------- ensemble stage
def make_ensemble_stage(
    spec: EnsembleSpec,
    *,
    name: str = "control_ensemble",
    source_input: str = "control_source",
    backend=None,
    max_workers: Optional[int] = None,
) -> Stage:
    """The accepted-ensemble stage over the pluggable backend registry.

    The backend and pool width are *where* knobs, not *what* knobs — every
    backend is bit-identical — so they stay out of the cache key.  The
    stage payload is the member key list plus the stacked matrix; a hit
    rehydrates every member from the member cache (raising a store miss,
    and thus re-running, if any artifact is gone).
    """

    def member_keys(source: ModelSource) -> list[str]:
        return [
            member_cache_key(source, config)
            for config in spec.member_configs()
        ]

    def func(ctx: StageContext, **inputs) -> Ensemble:
        ensemble = generate_ensemble(
            spec,
            source=inputs[source_input],
            cache_dir=ctx.member_cache_dir,
            backend=backend,
            max_workers=max_workers,
        )
        ctx.count_members(ensemble.cache_hits, ensemble.cache_misses)
        ctx.annotate(
            backend=ensemble.stats.get("backend"),
            n_members=ensemble.n_members,
        )
        return ensemble

    def encode(ensemble: Ensemble, ctx: StageContext, inputs) -> dict:
        return json_payload(
            {
                "member_keys": member_keys(inputs[source_input]),
                "variable_names": list(ensemble.variable_names),
            },
            arrays={"matrix": ensemble.matrix},
        )

    def decode(payload, ctx: StageContext, inputs) -> Ensemble:
        meta = payload_json(payload)
        source = inputs[source_input]
        configs = spec.member_configs()
        members = _load_cached_runs(
            ctx, source, configs, list(meta["member_keys"])
        )
        matrix = np.asarray(payload["matrix"], dtype=float)
        if matrix.shape[0] != len(members):
            raise StoreError("cached ensemble matrix does not match members")
        ctx.annotate(backend="store", n_members=len(members))
        return Ensemble(
            spec=spec,
            variable_names=list(meta["variable_names"]),
            matrix=matrix,
            members=members,
            coverage=CoverageTrace().merged(*(m.coverage for m in members)),
            cache_hits=len(members),
            cache_misses=0,
            stats={"backend": "store"},
        )

    return Stage(
        name=name,
        func=func,
        inputs=(source_input,),
        params={"spec": spec},
        encode=encode,
        decode=decode,
    )


# ------------------------------------------------------ experimental stages
def make_experimental_runs_stage(
    spec: EnsembleSpec,
    model: ModelConfig,
    fp,
    n_runs: int,
    *,
    source_input: str,
) -> Stage:
    """K held-out experimental runs of the (possibly patched) build."""

    def configs() -> list[RunConfig]:
        return [
            spec.experimental_config(i, model=model, fp=fp)
            for i in range(n_runs)
        ]

    def func(ctx: StageContext, **inputs) -> list[RunResult]:
        source = inputs[source_input]
        return [_cached_run(ctx, source, config) for config in configs()]

    def encode(runs, ctx: StageContext, inputs) -> dict:
        source = inputs[source_input]
        return json_payload(
            {
                "run_keys": [
                    member_cache_key(source, config) for config in configs()
                ]
            }
        )

    def decode(payload, ctx: StageContext, inputs) -> list[RunResult]:
        meta = payload_json(payload)
        return _load_cached_runs(
            ctx, inputs[source_input], configs(), list(meta["run_keys"])
        )

    return Stage(
        name="experimental_runs",
        func=func,
        inputs=(source_input,),
        params={"spec": spec, "model": model, "fp": fp, "n_runs": n_runs},
        encode=encode,
        decode=decode,
    )


def make_fused_experimental_stage(
    lanes: "list[tuple[str, str, list[RunConfig]]]",
    *,
    name: str = "fused_experimental_runs",
) -> Stage:
    """Every experiment's held-out runs, batched per source build.

    ``lanes`` is ``[(experiment_name, source_stage, [RunConfig, ...]),
    ...]``; each entry's configs share a model build, ``nsteps`` and fp
    model, so they become the (config, member) lanes of one
    :func:`~repro.runtime.vec.run_model_batch` call executed by the
    kernel-fused vectorized runtime.  Lanes whose member artifact the
    shared cache already holds are skipped — only the cold remainder is
    batched — and every produced run is stored under its *unchanged*
    :func:`~repro.ensemble.member_cache_key`, so warm interop with the
    scalar per-experiment ``experimental_runs`` stages holds in both
    directions.  Each multi-lane batch counts its extra lanes into the
    ``vec.fused_configs`` metric.
    """
    inputs = tuple(dict.fromkeys(src for _, src, _ in lanes))

    def func(ctx: StageContext, **sources) -> "dict[str, list[RunResult]]":
        from ..obs import get_metrics
        from ..runtime.vec import run_model_batch

        out: dict[str, list[RunResult]] = {}
        fused = 0
        for exp_name, source_input, configs in lanes:
            source = sources[source_input]
            cache = ctx.member_cache
            keys = [member_cache_key(source, c) for c in configs]
            results: list[Optional[RunResult]] = [None] * len(configs)
            cold: list[int] = []
            for i, (key, config) in enumerate(zip(keys, configs)):
                hit = cache.load(key, config) if cache is not None else None
                if hit is not None:
                    results[i] = hit
                else:
                    cold.append(i)
            if cold:
                batch = run_model_batch(
                    [configs[i] for i in cold], source=source
                )
                fused += len(cold) - 1
                for i, run in zip(cold, batch):
                    results[i] = run
                    if cache is not None:
                        cache.store(keys[i], run)
            out[exp_name] = results
        if fused:
            get_metrics().inc("vec.fused_configs", fused)
        ctx.annotate(experiments=len(lanes), fused_configs=fused)
        return out

    def encode(value, ctx: StageContext, inputs_) -> dict:
        return json_payload(
            {
                "run_keys": {
                    exp_name: [
                        member_cache_key(inputs_[source_input], config)
                        for config in configs
                    ]
                    for exp_name, source_input, configs in lanes
                }
            }
        )

    def decode(payload, ctx: StageContext, inputs_):
        meta = payload_json(payload)
        out = {}
        for exp_name, source_input, configs in lanes:
            out[exp_name] = _load_cached_runs(
                ctx,
                inputs_[source_input],
                configs,
                list(meta["run_keys"][exp_name]),
            )
        ctx.annotate(experiments=len(lanes))
        return out

    return Stage(
        name=name,
        func=func,
        inputs=inputs,
        params={
            "experiments": {
                exp_name: configs for exp_name, _, configs in lanes
            }
        },
        encode=encode,
        decode=decode,
    )


def fused_experimental_pipeline(
    experiments=None, *, store_dir=None
) -> Pipeline:
    """The cross-config prewarm DAG: all experiments' runs, batched.

    One source stage per distinct experimental build plus a single
    :func:`make_fused_experimental_stage` over every experiment's
    held-out run configs.  Running this pipeline against the same store
    as a sweep leaves the member cache warm, so each experiment's own
    ``experimental_runs`` stage rehydrates instead of re-running —
    ``run_sweep(fused=True)`` is exactly this followed by the per-
    experiment pipelines.
    """
    from ..experiments import get_experiment, list_experiments

    names = experiments if experiments is not None else list_experiments()
    specs = [get_experiment(e) if isinstance(e, str) else e for e in names]
    stages: list[Stage] = []
    sources: dict[ModelConfig, str] = {}
    lanes: list[tuple[str, str, list[RunConfig]]] = []
    for spec in specs:
        espec = spec.ensemble_spec()
        model = spec.experimental_model()
        fp = spec.experimental_fp()
        stage_name = sources.get(model)
        if stage_name is None:
            stage_name = f"experimental_source_{len(sources)}"
            sources[model] = stage_name
            stages.append(make_source_stage(stage_name, model))
        configs = [
            espec.experimental_config(i, model=model, fp=fp)
            for i in range(spec.n_runs)
        ]
        lanes.append((spec.name, stage_name, configs))
    stages.append(make_fused_experimental_stage(lanes))
    return Pipeline(stages, store_dir=store_dir)


def make_coverage_run_stage(
    model: ModelConfig, fp, *, source_input: str
) -> Stage:
    """One single-step instrumented run of the failing configuration."""

    def config() -> RunConfig:
        kwargs = {} if fp is None else {"fp": fp}
        return RunConfig(
            model=model, nsteps=1, collect_coverage=True, **kwargs
        )

    def func(ctx: StageContext, **inputs) -> RunResult:
        return _cached_run(ctx, inputs[source_input], config())

    def encode(run, ctx: StageContext, inputs) -> dict:
        return json_payload(
            {"run_keys": [member_cache_key(inputs[source_input], config())]}
        )

    def decode(payload, ctx: StageContext, inputs) -> RunResult:
        meta = payload_json(payload)
        return _load_cached_runs(
            ctx, inputs[source_input], [config()], list(meta["run_keys"])
        )[0]

    return Stage(
        name="coverage_run",
        func=func,
        inputs=(source_input,),
        params={"model": model, "fp": fp, "nsteps": 1},
        encode=encode,
        decode=decode,
    )


# ---------------------------------------------------------------- ECT stage
def make_ect_stage(ect: Optional[EctConfig] = None) -> Stage:
    """The UF-ECT verdict of the experimental runs against the ensemble."""
    ect_config = ect or EctConfig()

    def func(ctx: StageContext, control_ensemble, experimental_runs):
        result = UltraFastECT(control_ensemble, ect_config).test(
            experimental_runs
        )
        ctx.annotate(
            consistent=result.consistent,
            failing_pcs=len(result.failing_pcs),
            invariant_violations=len(result.invariant_violations),
        )
        return result

    def encode(result: EctResult, ctx, inputs) -> dict:
        return json_payload(
            {
                "consistent": result.consistent,
                "n_runs": result.n_runs,
                "n_pcs": result.n_pcs,
                "failing_pcs": list(result.failing_pcs),
                "failing_variables": list(result.failing_variables),
                "invariant_violations": list(result.invariant_violations),
                "outlier_variables": list(result.outlier_variables),
            },
            arrays={
                "pc_fail_counts": result.pc_fail_counts,
                "run_scores": result.run_scores,
            },
        )

    def decode(payload, ctx: StageContext, inputs) -> EctResult:
        meta = payload_json(payload)
        result = EctResult(
            consistent=bool(meta["consistent"]),
            n_runs=int(meta["n_runs"]),
            n_pcs=int(meta["n_pcs"]),
            failing_pcs=[int(pc) for pc in meta["failing_pcs"]],
            failing_variables=list(meta["failing_variables"]),
            invariant_violations=list(meta["invariant_violations"]),
            pc_fail_counts=np.asarray(payload["pc_fail_counts"]),
            run_scores=np.asarray(payload["run_scores"]),
            config=ect_config,
            outlier_variables=list(meta["outlier_variables"]),
        )
        ctx.annotate(consistent=result.consistent)
        return result

    return Stage(
        name="ect",
        func=func,
        inputs=("control_ensemble", "experimental_runs"),
        params={"ect": ect_config},
        encode=encode,
        decode=decode,
    )


# -------------------------------------------------------------- slice stage
def make_slice_stage(
    *,
    top_k: int = 8,
    decay: float = 0.5,
    max_module_fraction: float = 0.45,
) -> Stage:
    """The coverage-filtered ranked backward slice of the failing runs."""

    def func(
        ctx: StageContext,
        control_ensemble,
        experimental_runs,
        ect,
        coverage_run,
        metagraph,
        control_source,
    ) -> RankedSlice:
        ranked = slice_failing_runs(
            control_ensemble,
            experimental_runs,
            graph=metagraph,
            source=control_source,
            coverage=coverage_run.coverage,
            ect_result=ect,
            top_k=top_k,
            decay=decay,
            max_module_fraction=max_module_fraction,
        )
        ctx.annotate(slice_modules=len(ranked.modules))
        return ranked

    def encode(ranked: RankedSlice, ctx, inputs) -> dict:
        return json_payload(
            {
                "modules": list(ranked.modules),
                "ranking": [[m, s] for m, s in ranked.ranking],
                "variable_weights": dict(ranked.variable_weights),
                "total_modules": ranked.total_modules,
            }
        )

    def decode(payload, ctx: StageContext, inputs) -> RankedSlice:
        meta = payload_json(payload)
        ranked = RankedSlice(
            modules=list(meta["modules"]),
            ranking=[(m, float(s)) for m, s in meta["ranking"]],
            variable_weights={
                k: float(v) for k, v in meta["variable_weights"].items()
            },
            slices={},  # per-variable detail is not persisted
            total_modules=int(meta["total_modules"]),
        )
        ctx.annotate(slice_modules=len(ranked.modules))
        return ranked

    return Stage(
        name="ranked_slice",
        func=func,
        inputs=(
            "control_ensemble",
            "experimental_runs",
            "ect",
            "coverage_run",
            "metagraph",
            "control_source",
        ),
        params={
            "top_k": top_k,
            "decay": decay,
            "max_module_fraction": max_module_fraction,
        },
        encode=encode,
        decode=decode,
    )


# ---------------------------------------------------------- selection stage
def make_selection_stage(
    selection: Optional[SelectionSpec] = None,
) -> Stage:
    """Optimization-based culprit selection between slicing and refinement.

    Runs :func:`repro.selection.select_culprits`: robust evidence
    selection over the ECT-failing variables, then the anchored
    minimum-weight set cover over the ranked slice's candidate pool,
    warm-started from the Girvan-Newman community partition of the module
    quotient graph.  The refine stage consumes the result as its initial
    suspect set.
    """
    selection_spec = selection or SelectionSpec()

    def func(
        ctx: StageContext,
        control_ensemble,
        experimental_runs,
        ect,
        coverage_run,
        metagraph,
        control_source,
        ranked_slice,
    ) -> SelectionResult:
        from ..analysis import girvan_newman_communities, quotient_graph

        communities = girvan_newman_communities(quotient_graph(metagraph))
        result = select_culprits(
            control_ensemble,
            experimental_runs,
            graph=metagraph,
            source=control_source,
            coverage=coverage_run.coverage,
            ect_result=ect,
            communities=communities,
            ranked=ranked_slice,
            spec=selection_spec,
        )
        ctx.annotate(
            selected_modules=len(result.modules),
            solver=result.solver,
            optimal=result.optimal,
            nodes_explored=result.nodes_explored,
        )
        return result

    def encode(result: SelectionResult, ctx, inputs) -> dict:
        return json_payload(result.to_dict())

    def decode(payload, ctx: StageContext, inputs) -> SelectionResult:
        result = SelectionResult.from_dict(payload_json(payload))
        ctx.annotate(
            selected_modules=len(result.modules), solver=result.solver
        )
        return result

    return Stage(
        name="selection",
        func=func,
        inputs=(
            "control_ensemble",
            "experimental_runs",
            "ect",
            "coverage_run",
            "metagraph",
            "control_source",
            "ranked_slice",
        ),
        params={"selection": selection_spec},
        encode=encode,
        decode=decode,
    )


# ------------------------------------------------------------- refine stage
def make_refine_stage(
    refine: Optional[RefinementConfig] = None,
    *,
    backend=None,
    max_workers: Optional[int] = None,
) -> Stage:
    """Algorithm 5.4 community-guided refinement of the ranked slice."""
    refine_config = refine or RefinementConfig()

    def func(
        ctx: StageContext,
        ranked_slice,
        selection,
        control_ensemble,
        experimental_runs,
        coverage_run,
        metagraph,
        control_source,
    ) -> RefinementResult:
        result = refine_slice(
            ranked_slice,
            control_ensemble,
            experimental_runs,
            config=refine_config,
            graph=metagraph,
            source=control_source,
            coverage=coverage_run.coverage,
            backend=backend,
            cache_dir=ctx.member_cache_dir,
            max_workers=max_workers,
            selection=selection,
        )
        ctx.count_members(
            result.ensemble_cache_hits, result.ensemble_cache_misses
        )
        ctx.annotate(
            refined_modules=len(result.modules),
            iterations=result.n_iterations,
        )
        return result

    def encode(result: RefinementResult, ctx, inputs) -> dict:
        return json_payload(
            {
                "modules": list(result.modules),
                "initial_modules": list(result.initial_modules),
                "protected": sorted(result.protected),
                "essential": sorted(result.essential),
                "steps": [
                    {
                        "iteration": step.iteration,
                        "candidate": list(step.candidate),
                        "community": list(step.community),
                        "kept_variables": list(step.kept_variables),
                        "consistent": step.consistent,
                        "action": step.action,
                    }
                    for step in result.steps
                ],
                "scores": dict(result.scores),
                "variable_weights": dict(result.variable_weights),
                "target": result.target,
                "total_modules": result.total_modules,
                "ensemble_cache_hits": result.ensemble_cache_hits,
                "ensemble_cache_misses": result.ensemble_cache_misses,
                "extra": dict(result.extra),
            }
        )

    def decode(payload, ctx: StageContext, inputs) -> RefinementResult:
        meta = payload_json(payload)
        result = RefinementResult(
            modules=list(meta["modules"]),
            initial_modules=list(meta["initial_modules"]),
            protected=frozenset(meta["protected"]),
            essential=frozenset(meta["essential"]),
            steps=[
                RefinementStep(
                    iteration=int(step["iteration"]),
                    candidate=tuple(step["candidate"]),
                    community=tuple(step["community"]),
                    kept_variables=tuple(step["kept_variables"]),
                    consistent=step["consistent"],
                    action=str(step["action"]),
                )
                for step in meta["steps"]
            ],
            scores={k: float(v) for k, v in meta["scores"].items()},
            variable_weights={
                k: float(v) for k, v in meta["variable_weights"].items()
            },
            communities=None,  # fitted objects are not persisted
            verdict=None,  # the pipeline's `ect` stage is the verdict
            target=int(meta["target"]),
            total_modules=int(meta["total_modules"]),
            ensemble_cache_hits=int(meta["ensemble_cache_hits"]),
            ensemble_cache_misses=int(meta["ensemble_cache_misses"]),
            extra=dict(meta.get("extra", {})),
        )
        ctx.annotate(
            refined_modules=len(result.modules),
            iterations=result.n_iterations,
        )
        return result

    return Stage(
        name="refined",
        func=func,
        inputs=(
            "ranked_slice",
            "selection",
            "control_ensemble",
            "experimental_runs",
            "coverage_run",
            "metagraph",
            "control_source",
        ),
        params={"refine": refine_config},
        encode=encode,
        decode=decode,
    )


# ------------------------------------------------------------- report stage
def make_report_stage(
    experiment_name: str,
    patch: Optional[str],
    fma: bool,
    target_modules: int,
) -> Stage:
    """The culprit report: verdict + localization, rendered by repro.reporting."""

    def func(
        ctx: StageContext, ect, ranked_slice, selection, refined, control_source
    ):
        from ..reporting import build_report

        report = build_report(
            experiment=experiment_name,
            patch=patch,
            fma=fma,
            source=control_source,
            verdict=ect,
            ranked=ranked_slice,
            refined=refined,
            target_modules=target_modules,
            selection=selection,
        )
        ctx.annotate(
            localized=report.localized,
            refined_modules=len(report.refined_modules),
        )
        return report

    def encode(report, ctx, inputs) -> dict:
        return json_payload(report.to_dict())

    def decode(payload, ctx: StageContext, inputs):
        from ..reporting import LocalizationReport

        report = LocalizationReport.from_dict(payload_json(payload))
        ctx.annotate(
            localized=report.localized,
            refined_modules=len(report.refined_modules),
        )
        return report

    return Stage(
        name="report",
        func=func,
        inputs=("ect", "ranked_slice", "selection", "refined", "control_source"),
        params={
            "experiment": experiment_name,
            "patch": patch,
            "fma": fma,
            "target_modules": target_modules,
        },
        encode=encode,
        decode=decode,
    )


# --------------------------------------------------------------- assemblies
def root_cause_pipeline(
    experiment: "ExperimentSpec",
    *,
    store_dir=None,
    backend=None,
    max_workers: Optional[int] = None,
) -> Pipeline:
    """Compile one experiment into the full root-cause DAG.

    ``backend`` / ``max_workers`` choose *where* members run (falling back
    to the experiment's own backend field) and never enter cache keys:
    all backends are bit-identical, so artifacts are shared across them.
    """
    spec = experiment.ensemble_spec()
    exp_model = experiment.experimental_model()
    exp_fp = experiment.experimental_fp()
    backend = backend if backend is not None else experiment.backend

    stages = [
        make_source_stage("control_source", spec.model),
        make_metagraph_stage(),
        make_ensemble_stage(
            spec, backend=backend, max_workers=max_workers
        ),
    ]
    if exp_model == spec.model:
        source_input = "control_source"
    else:
        source_input = "patched_source"
        stages.append(make_source_stage("patched_source", exp_model))
    stages += [
        make_experimental_runs_stage(
            spec,
            exp_model,
            exp_fp,
            experiment.n_runs,
            source_input=source_input,
        ),
        make_coverage_run_stage(exp_model, exp_fp, source_input=source_input),
        make_ect_stage(experiment.ect),
        make_slice_stage(),
        make_selection_stage(getattr(experiment, "selection", None)),
        make_refine_stage(
            experiment.refine, backend=backend, max_workers=max_workers
        ),
        make_report_stage(
            experiment.name,
            experiment.patch,
            getattr(experiment, "fma", False),
            experiment.target_modules,
        ),
    ]
    return Pipeline(stages, store_dir=store_dir)


def accepted_ensemble(
    spec: Optional[EnsembleSpec] = None,
    *,
    store_dir=None,
    backend=None,
    max_workers: Optional[int] = None,
) -> Ensemble:
    """Generate (or resume from the store) one accepted ensemble.

    The single entry point callers outside the full root-cause DAG use —
    the test suite's session ensemble fixture and ad-hoc notebooks — so
    even standalone ensembles flow through the same build + ensemble
    stages and share the same store layout as full experiments.
    """
    spec = spec or EnsembleSpec()
    pipeline = Pipeline(
        [
            make_source_stage("control_source", spec.model),
            make_ensemble_stage(
                spec, backend=backend, max_workers=max_workers
            ),
        ],
        store_dir=store_dir,
    )
    return pipeline.run()["control_ensemble"]


class RootCauseAnalysis:
    """End-to-end root cause analysis of one experiment, resumably.

    The facade the CLI (``python -m repro run <experiment>``) and the
    bench drive: resolve the experiment (by name through
    :func:`repro.experiments.get_experiment`, or an
    :class:`~repro.experiments.ExperimentSpec` directly), compile it to
    the stage DAG, and run it against one store.

    >>> from repro.pipeline import RootCauseAnalysis
    >>> result = RootCauseAnalysis("wsubbug", store_dir="store").run()
    >>> result["report"].localized
    True
    """

    def __init__(
        self,
        experiment: "ExperimentSpec | str",
        *,
        store_dir=None,
        backend=None,
        max_workers: Optional[int] = None,
    ):
        if isinstance(experiment, str):
            from ..experiments import get_experiment

            experiment = get_experiment(experiment)
        self.experiment = experiment
        self.pipeline = root_cause_pipeline(
            experiment,
            store_dir=store_dir,
            backend=backend,
            max_workers=max_workers,
        )

    def run(self) -> PipelineResult:
        """Execute (or resume) the DAG; ``result["report"]`` is the verdict."""
        return self.pipeline.run()

"""On-disk per-stage artifact store with hit/miss counters.

One pipeline stage result is one ``.npz`` file under the stage's
content-addressed cache key, following the conventions of
:mod:`repro.ensemble.artifact`: flat ``{name: ndarray}`` payloads written
with ``allow_pickle=False`` (no code execution on load, ever) through a
temp file + ``os.replace`` so a killed pipeline never leaves a truncated
entry behind — which is exactly what makes resume-from-cache safe after a
crash mid-stage.

Anything JSON-serializable rides along as a single-element string array
under a reserved key (:func:`json_payload` / :func:`payload_json`), so
stage adapters can mix structured metadata (module lists, weights,
refinement steps) with bulk arrays (ensemble matrices, PC scores) in one
payload.

The store counts ``hits`` / ``misses`` / ``writes``; the pipeline surfaces
per-stage deltas in its :class:`~repro.pipeline.core.StageRecord` values,
so resume behavior is observable and testable instead of inferred from
wall clock.
"""

from __future__ import annotations

import json
import os
import tempfile
import zipfile
from pathlib import Path
from typing import Any, Mapping, Optional

import numpy as np

from ..errors import ReproError
from ..obs import get_metrics

__all__ = [
    "ArtifactStore",
    "StoreError",
    "find_nonfinite",
    "json_payload",
    "payload_json",
]

#: reserved payload key carrying the JSON side-channel
JSON_KEY = "__json__"


class StoreError(ReproError, ValueError):
    """Raised when a stage payload cannot be encoded or decoded."""


def find_nonfinite(obj: Any, path: str = "$") -> Optional[str]:
    """JSONPath-ish location of the first NaN/Infinity in ``obj``, or None.

    Used to turn the bare ``ValueError`` from ``json.dumps(...,
    allow_nan=False)`` into an error that names the offending field —
    ``NaN`` would otherwise serialize as the *non-JSON* token ``NaN``,
    produce a payload ``payload_json`` cannot read back, and (in cache
    keys) hash unequal to every re-computation of itself.
    """
    if isinstance(obj, float) and not np.isfinite(obj):
        return path
    if isinstance(obj, dict):
        for key, value in obj.items():
            found = find_nonfinite(value, f"{path}.{key}")
            if found is not None:
                return found
    elif isinstance(obj, (list, tuple)):
        for i, value in enumerate(obj):
            found = find_nonfinite(value, f"{path}[{i}]")
            if found is not None:
                return found
    return None


def json_payload(
    obj: Any, arrays: Optional[Mapping[str, np.ndarray]] = None
) -> dict[str, np.ndarray]:
    """A store payload carrying ``obj`` as JSON plus optional bulk arrays.

    ``obj`` must be strictly JSON-serializable — NaN/Infinity raise
    :class:`StoreError` naming the offending field rather than writing a
    payload the loader would reject; array names must not collide with
    the reserved JSON key.  The JSON text is canonical (sorted keys), so
    identical objects always produce byte-identical payload entries.
    """
    try:
        text = json.dumps(obj, sort_keys=True, allow_nan=False)
    except ValueError as exc:
        where = find_nonfinite(obj)
        raise StoreError(
            "payload JSON carries a non-finite float at "
            f"{where or '<unknown>'}; drop or encode the value (e.g. as a "
            "string) before storing"
        ) from exc
    payload: dict[str, np.ndarray] = {JSON_KEY: np.array([text])}
    for name, value in (arrays or {}).items():
        if name == JSON_KEY:
            raise StoreError(f"array name {name!r} is reserved")
        payload[name] = np.asarray(value)
    return payload


def payload_json(payload: Mapping[str, np.ndarray]) -> Any:
    """The JSON object a :func:`json_payload` payload carries."""
    try:
        return json.loads(str(np.asarray(payload[JSON_KEY])[0]))
    except (KeyError, IndexError, ValueError) as exc:
        raise StoreError(f"payload carries no valid JSON entry: {exc}") from exc


class ArtifactStore:
    """Load/store flat ndarray payloads under content-addressed keys.

    The same conventions as the ensemble member cache: atomic writes,
    ``allow_pickle=False`` loads, corruption handled as a miss (the stage
    simply re-runs).  ``hits`` / ``misses`` / ``writes`` count every
    :meth:`load` / :meth:`save` outcome since construction;
    :meth:`stats` snapshots them for stage records.
    """

    def __init__(self, directory: str | os.PathLike):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.writes = 0

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.npz"

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def load(self, key: str) -> Optional[dict[str, np.ndarray]]:
        """The payload stored under ``key``, or None on miss/corruption.

        Arrays are materialized before the file closes, so the returned
        mapping is independent of the store.
        """
        path = self._path(key)
        if not path.exists():
            self._miss()
            return None
        try:
            with np.load(path, allow_pickle=False) as data:
                payload = {name: np.asarray(data[name]) for name in data.files}
        except (OSError, EOFError, zipfile.BadZipFile, ValueError, KeyError):
            self._miss()
            return None
        self.hits += 1
        get_metrics().inc("store.hits")
        return payload

    def _miss(self) -> None:
        self.misses += 1
        get_metrics().inc("store.misses")

    def save(self, key: str, payload: Mapping[str, np.ndarray]) -> None:
        """Persist ``payload`` under ``key`` (atomic write)."""
        fd, tmp = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=".npz"
        )
        try:
            try:
                handle = os.fdopen(fd, "wb")
            except BaseException:
                os.close(fd)  # fdopen failed: the raw fd is still ours
                raise
            with handle:
                np.savez_compressed(
                    handle, **{k: np.asarray(v) for k, v in payload.items()}
                )
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.writes += 1
        get_metrics().inc("store.writes")

    def stats(self) -> dict[str, int]:
        """Counter snapshot: ``{"hits", "misses", "writes", "entries"}``."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "entries": sum(
                1 for p in self.directory.iterdir() if p.suffix == ".npz"
            ),
        }

"""The typed stage DAG: content-hashed cache keys, topological execution,
resume-from-cache, per-stage timing/status records.

A :class:`Stage` is one unit of the root-cause workflow — "generate the
accepted ensemble", "run the consistency test" — with a name, the names of
the upstream stages it consumes, a ``params`` mapping that *fully
determines its behaviour*, and (when cacheable) an ``encode``/``decode``
pair mapping its value to a flat ndarray payload for the
:class:`~repro.pipeline.store.ArtifactStore`.

Cache keys are content hashes, derived the same way the ensemble member
cache hashes run configurations (:func:`repro.ensemble.cache.member_cache_key`):
a SHA-256 over the stage name, a canonical-JSON token of its params, a
format version, and the *fingerprints of its inputs* — so a changed
upstream stage (new patch, different ensemble size, edited model source)
transitively invalidates everything downstream, while an untouched prefix
of the DAG resumes from cache bit-identically.  Stage functions are
assumed pure given their params and inputs; the params mapping is that
contract.

:class:`Pipeline` executes the stages in dependency order (deterministic:
declaration order breaks ties), consulting the store before running each
cacheable stage, and returns a :class:`PipelineResult` whose
:class:`StageRecord` list says for every stage whether it was a cache
``hit`` or ``ran``, how long it took, and how many store / member-cache
hits and misses it saw — the observability that makes resume semantics
testable.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping, Optional, Sequence

from ..ensemble.cache import MemberCache, _json_safe
from ..errors import ReproError
from ..obs import get_metrics, get_tracer, round_wall
from .store import ArtifactStore, StoreError, find_nonfinite

__all__ = [
    "Pipeline",
    "PipelineError",
    "PipelineResult",
    "Stage",
    "StageContext",
    "StageError",
    "StageRecord",
    "config_token",
]

#: bump when key derivation or payload conventions change incompatibly
PIPELINE_FORMAT = 1


class PipelineError(ReproError, ValueError):
    """Raised for a structurally invalid pipeline (cycles, bad inputs)."""


class StageError(ReproError, RuntimeError):
    """A stage function raised; carries the records completed so far.

    The artifacts of every stage that finished *before* the failure are
    already in the store, so re-running the same pipeline resumes from
    them — the failure loses only the failing stage's own work.
    """

    def __init__(self, stage: str, cause: BaseException, records: list):
        super().__init__(f"pipeline stage {stage!r} failed: {cause}")
        self.stage = stage
        self.records = records


def config_token(value: Any) -> Any:
    """A deterministic JSON-safe token of a (possibly nested) config value.

    Dataclasses (``EnsembleSpec``, ``EctConfig``, ``RefinementConfig``,
    ...) are expanded field by field — a knob added to a config in a later
    PR automatically changes every key it participates in, the same
    regression-proofing the member cache applies to ``FPConfig``.  A
    dataclass may opt *where*-knobs out by naming them in a
    ``__config_token_exclude__`` class attribute (e.g.
    ``EnsembleSpec.vec_batch``, the vectorized batch width): excluded
    fields never enter a cache key, so turning such a knob keeps every
    artifact shareable — which is only sound for knobs that cannot change
    the bits a stage produces.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        exclude = getattr(type(value), "__config_token_exclude__", ())
        return {
            f.name: config_token(getattr(value, f.name))
            for f in dataclasses.fields(value)
            if f.name not in exclude
        }
    if isinstance(value, Mapping):
        return {str(k): config_token(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [config_token(v) for v in value]
    if isinstance(value, (frozenset, set)):
        return sorted(config_token(v) for v in value)
    return _json_safe(value)


@dataclass(frozen=True)
class Stage:
    """One DAG node (see module docstring).

    ``func(ctx, **inputs)`` computes the value; ``inputs`` are keyword
    arguments named after the upstream stages.  Cacheable stages must
    supply ``encode(value, ctx, inputs) -> payload`` and ``decode(payload,
    ctx, inputs) -> value``; ``fingerprint(value)``, when given, replaces the
    stage key as this stage's contribution to downstream keys (used by
    non-cacheable stages whose *content* matters downstream, e.g. the
    built model source contributing its content digest).
    """

    name: str
    func: Callable[..., Any]
    inputs: tuple[str, ...] = ()
    params: Mapping[str, Any] = field(default_factory=dict)
    cacheable: bool = True
    encode: Optional[Callable[[Any], Mapping]] = None
    decode: Optional[Callable[[Mapping, "StageContext", dict], Any]] = None
    fingerprint: Optional[Callable[[Any], str]] = None

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "a").isalnum():
            raise PipelineError(
                f"stage name must be a non-empty identifier, got {self.name!r}"
            )
        if not isinstance(self.inputs, tuple):
            object.__setattr__(self, "inputs", tuple(self.inputs))
        if self.cacheable and (self.encode is None or self.decode is None):
            raise PipelineError(
                f"cacheable stage {self.name!r} needs encode and decode"
            )

    def key(self, input_fingerprints: Mapping[str, str]) -> str:
        """The content hash identifying this stage's output."""
        h = hashlib.sha256()
        h.update(b"repro-pipeline-stage\x00")
        h.update(str(PIPELINE_FORMAT).encode())
        h.update(self.name.encode())
        token = {
            "params": config_token(dict(self.params)),
            "inputs": [
                [name, input_fingerprints[name]] for name in self.inputs
            ],
        }
        try:
            h.update(
                json.dumps(token, sort_keys=True, allow_nan=False).encode()
            )
        except ValueError as exc:
            # config_token hex-encodes floats, so a NaN here means a raw
            # non-finite snuck into params — which would hash as the
            # non-canonical token `NaN` and never match its own recompute
            where = find_nonfinite(token)
            raise PipelineError(
                f"stage {self.name!r} cache token carries a non-finite "
                f"float at {where or '<unknown>'}"
            ) from exc
        return h.hexdigest()


@dataclass
class StageRecord:
    """What happened to one stage in one :meth:`Pipeline.run`."""

    name: str
    key: str
    #: ``"hit"`` (decoded from the store without running) or ``"ran"``
    status: str = "ran"
    cacheable: bool = True
    wall_s: float = 0.0
    #: store loads this stage answered from disk / missed
    store_hits: int = 0
    store_misses: int = 0
    #: ensemble member-cache hits/misses attributable to this stage
    member_hits: int = 0
    member_misses: int = 0
    #: free-form annotations from the stage function (``ctx.annotate``)
    info: dict = field(default_factory=dict)
    #: trace span id of this stage's execution ("" when tracing is off)
    span_id: str = ""
    #: metrics counters that moved while this stage executed
    metrics: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "key": self.key,
            "status": self.status,
            "cacheable": self.cacheable,
            "wall_s": round_wall(self.wall_s),
            "store_hits": self.store_hits,
            "store_misses": self.store_misses,
            "member_hits": self.member_hits,
            "member_misses": self.member_misses,
            "info": dict(self.info),
            "span_id": self.span_id,
            "metrics": dict(self.metrics),
        }


class StageContext:
    """What a running stage sees of its pipeline.

    ``member_cache`` is the shared content-addressed
    :class:`~repro.ensemble.cache.MemberCache` under the pipeline store
    (None when the pipeline runs uncached): stage adapters route every
    model run through it, so *member simulations* are cached at run
    granularity below the stage granularity — a resumed pipeline re-runs
    no member the store already holds.  ``annotate`` attaches structured
    details to the stage record; ``count_members`` accounts member-cache
    traffic that went through a private cache instance (e.g. inside
    ``generate_ensemble``).
    """

    def __init__(
        self,
        record: StageRecord,
        member_cache: Optional[MemberCache],
    ):
        self.record = record
        self.member_cache = member_cache

    @property
    def member_cache_dir(self):
        return None if self.member_cache is None else self.member_cache.directory

    def annotate(self, **info: Any) -> None:
        self.record.info.update(info)

    def count_members(self, hits: int, misses: int) -> None:
        self.record.member_hits += hits
        self.record.member_misses += misses


@dataclass
class PipelineResult:
    """Stage values plus the per-stage execution records of one run."""

    outputs: dict[str, Any]
    records: list[StageRecord]
    store_stats: Optional[dict] = None
    terminal: str = ""

    def __getitem__(self, stage: str) -> Any:
        return self.outputs[stage]

    @property
    def value(self) -> Any:
        """The terminal stage's value (the last stage in dependency order)."""
        return self.outputs[self.terminal]

    def record(self, stage: str) -> StageRecord:
        for rec in self.records:
            if rec.name == stage:
                return rec
        raise KeyError(stage)

    def timings(self) -> dict[str, float]:
        """``{stage: wall seconds}`` in execution order."""
        return {rec.name: round_wall(rec.wall_s) for rec in self.records}

    #: alias: "where did the seconds go, per stage"
    wall_by_stage = timings

    def counters(self) -> dict[str, int]:
        """Store / member-cache traffic summed over every stage."""
        totals = {"store_hits": 0, "store_misses": 0, "member_hits": 0,
                  "member_misses": 0}
        for rec in self.records:
            totals["store_hits"] += rec.store_hits
            totals["store_misses"] += rec.store_misses
            totals["member_hits"] += rec.member_hits
            totals["member_misses"] += rec.member_misses
        return totals

    def to_dict(self) -> dict:
        return {
            "stages": [rec.to_dict() for rec in self.records],
            "store": self.store_stats,
            "wall_by_stage": self.timings(),
            "counters": self.counters(),
        }


class Pipeline:
    """Topologically executed stage DAG over one artifact store.

    ``store_dir`` roots both caches: ``<store_dir>/stages`` holds the
    per-stage payloads, ``<store_dir>/members`` the run-level member
    artifacts.  ``None`` disables caching entirely (every stage runs).
    """

    def __init__(
        self,
        stages: Sequence[Stage],
        store_dir: "str | Path | None" = None,
    ):
        if not stages:
            raise PipelineError("a pipeline needs at least one stage")
        names = [stage.name for stage in stages]
        dupes = {n for n in names if names.count(n) > 1}
        if dupes:
            raise PipelineError(f"duplicate stage names: {sorted(dupes)}")
        by_name = {stage.name: stage for stage in stages}
        for stage in stages:
            unknown = [i for i in stage.inputs if i not in by_name]
            if unknown:
                raise PipelineError(
                    f"stage {stage.name!r} consumes unknown stages: {unknown}"
                )
        self.stages = tuple(self._topological(stages, by_name))
        self.store_dir = Path(store_dir) if store_dir is not None else None

    @staticmethod
    def _topological(
        stages: Sequence[Stage], by_name: Mapping[str, Stage]
    ) -> list[Stage]:
        """Kahn's algorithm; declaration order breaks ties (deterministic)."""
        order = {stage.name: i for i, stage in enumerate(stages)}
        indegree = {stage.name: len(stage.inputs) for stage in stages}
        dependents: dict[str, list[str]] = {stage.name: [] for stage in stages}
        for stage in stages:
            for upstream in stage.inputs:
                dependents[upstream].append(stage.name)
        ready = sorted(
            (n for n, d in indegree.items() if d == 0), key=order.__getitem__
        )
        out: list[Stage] = []
        while ready:
            name = ready.pop(0)
            out.append(by_name[name])
            changed = False
            for dep in dependents[name]:
                indegree[dep] -= 1
                if indegree[dep] == 0:
                    ready.append(dep)
                    changed = True
            if changed:
                ready.sort(key=order.__getitem__)
        if len(out) != len(stages):
            stuck = sorted(n for n, d in indegree.items() if d > 0)
            raise PipelineError(f"pipeline has a dependency cycle: {stuck}")
        return out

    def stage(self, name: str) -> Stage:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(name)

    def keys(self) -> dict[str, str]:
        """Static stage keys, ignoring value fingerprints of dynamic stages.

        Exact for every stage whose transitive inputs all fingerprint by
        key (the default); stages downstream of a custom ``fingerprint``
        get their true key only at run time.  Useful for tests asserting
        key-sharing across pipelines.
        """
        fps: dict[str, str] = {}
        out: dict[str, str] = {}
        for stage in self.stages:
            key = stage.key({i: fps[i] for i in stage.inputs})
            out[stage.name] = key
            fps[stage.name] = key
        return out

    def run(self) -> PipelineResult:
        """Execute the DAG, resuming every cacheable stage the store holds."""
        store = member_cache = None
        if self.store_dir is not None:
            store = ArtifactStore(self.store_dir / "stages")
            member_cache = MemberCache(self.store_dir / "members")

        tracer = get_tracer()
        metrics = get_metrics()
        values: dict[str, Any] = {}
        fingerprints: dict[str, str] = {}
        records: list[StageRecord] = []
        with tracer.span(
            "pipeline.run",
            lambda: {"stages": len(self.stages), "cached": store is not None},
        ):
            for stage in self.stages:
                key = stage.key({i: fingerprints[i] for i in stage.inputs})
                record = StageRecord(
                    name=stage.name, key=key, cacheable=stage.cacheable
                )
                ctx = StageContext(record, member_cache)
                inputs = {i: values[i] for i in stage.inputs}
                span = tracer.span(f"stage:{stage.name}", {"key": key[:12]})
                record.span_id = span.span_id
                metrics_before = metrics.counters()
                started = time.perf_counter()
                store_h0 = store.hits if store else 0
                store_m0 = store.misses if store else 0
                member_h0 = member_cache.hits if member_cache else 0
                member_m0 = member_cache.misses if member_cache else 0

                with span:
                    value, decoded = None, False
                    if store is not None and stage.cacheable:
                        payload = store.load(key)
                        if payload is not None:
                            try:
                                value = stage.decode(payload, ctx, inputs)
                                decoded = True
                            except (StoreError, ValueError, KeyError, IndexError):
                                decoded = False  # treat as a miss and recompute
                    if decoded:
                        record.status = "hit"
                    else:
                        try:
                            value = stage.func(ctx, **inputs)
                        except Exception as exc:
                            record.status = "error"
                            record.wall_s = time.perf_counter() - started
                            record.metrics = metrics.counter_delta(metrics_before)
                            span.annotate(status="error")
                            records.append(record)
                            raise StageError(stage.name, exc, records) from exc
                        record.status = "ran"
                        if store is not None and stage.cacheable:
                            store.save(key, stage.encode(value, ctx, inputs))
                    span.annotate(status=record.status)

                values[stage.name] = value
                fingerprints[stage.name] = (
                    stage.fingerprint(value) if stage.fingerprint else key
                )
                record.wall_s = time.perf_counter() - started
                record.metrics = metrics.counter_delta(metrics_before)
                if store is not None:
                    record.store_hits += store.hits - store_h0
                    record.store_misses += store.misses - store_m0
                if member_cache is not None:
                    record.member_hits += member_cache.hits - member_h0
                    record.member_misses += member_cache.misses - member_m0
                records.append(record)

        return PipelineResult(
            outputs=values,
            records=records,
            store_stats=store.stats() if store is not None else None,
            terminal=self.stages[-1].name,
        )

"""repro.experiments — the paper's six experiments as declarative specs.

Each :class:`ExperimentSpec` names one change under test — one of the
five single-file bug patches (``cldfrc-premib``, ``goffgratch``,
``mg-autoconv``, ``rand-mt``, ``wsubbug``) or whole-model FMA
contraction — plus every knob of the workflow that evaluates it
(ensemble size, perturbation magnitude, FP model, ECT and refinement
configs, the ≤ ``target_modules`` localization criterion).  Specs are
frozen data: :func:`repro.pipeline.root_cause_pipeline` compiles a spec
into the build → ensemble → ECT → slice → selection → refine → report
DAG, and
because stage cache keys are content hashes of the specs' knobs, every
experiment in a sweep sharing one store shares the one accepted-ensemble
stage (the control build is identical across them) — the expensive 30
member simulations run once for all six.

>>> from repro.experiments import get_experiment, run_experiment
>>> get_experiment("wsubbug").patch
'wsubbug'
>>> result = run_experiment("wsubbug", store_dir="store")
>>> result["report"].localized
True
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..ect import EctConfig
from ..ensemble.spec import EnsembleSpec
from ..errors import ReproError
from ..model.builder import ModelConfig
from ..refine import RefinementConfig
from ..runtime import FPConfig
from ..selection import SelectionSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..pipeline import PipelineResult

__all__ = [
    "ExperimentSpec",
    "UnknownExperimentError",
    "get_experiment",
    "list_experiments",
    "run_experiment",
    "run_sweep",
]


class UnknownExperimentError(ReproError, KeyError):
    """Raised for an experiment name that is not registered.

    A ``KeyError`` (registry semantics) listing every known experiment,
    mirroring :class:`~repro.model.patches.UnknownPatchError`.
    """

    def __str__(self) -> str:  # avoid KeyError's repr-quoting of the message
        return self.args[0] if self.args else ""


@dataclass(frozen=True)
class ExperimentSpec:
    """One root-cause experiment, declaratively.

    ``patch`` selects a registered bug patch for the experimental build
    (None = the control build); ``fma`` turns on global FMA contraction
    in the experimental runs' FP model.  The remaining fields parameterize
    the pipeline stages; ``ect`` / ``refine`` / ``selection`` default to
    the library defaults when None.  ``backend`` is a *where* knob (never
    part of any cache key) naming the default execution backend for this
    experiment's member fan-outs.
    """

    name: str
    description: str = ""
    patch: Optional[str] = None
    fma: bool = False
    members: int = 30
    nsteps: int = 2
    n_runs: int = 3
    pertlim: float = 1.0e-14
    base_seed: int = 9100
    collect_coverage: bool = False
    backend: Optional[str] = None
    ect: Optional[EctConfig] = None
    refine: Optional[RefinementConfig] = None
    #: optimization-based culprit selection knobs (None = defaults)
    selection: Optional[SelectionSpec] = None
    #: the paper's localization criterion: refined suspect set size cap
    target_modules: int = 10

    def ensemble_spec(self) -> EnsembleSpec:
        """The accepted (control) ensemble this experiment tests against.

        Always the unpatched default-FP build: the ensemble defines the
        accepted distribution, the change under test only enters the
        experimental runs.  Member coverage is off by default — slicing
        evidence comes from the pipeline's dedicated instrumented
        coverage run, not from the members.
        """
        return EnsembleSpec(
            model=ModelConfig(),
            n_members=self.members,
            nsteps=self.nsteps,
            pertlim=self.pertlim,
            base_seed=self.base_seed,
            collect_coverage=self.collect_coverage,
        )

    def experimental_model(self) -> ModelConfig:
        """The build the experimental runs execute."""
        if self.patch is None:
            return ModelConfig()
        return ModelConfig(patches=(self.patch,))

    def experimental_fp(self) -> Optional[FPConfig]:
        """The experimental FP model override (None = the spec default)."""
        if self.fma:
            return FPConfig(fma=True)
        return None

    def with_(self, **changes) -> "ExperimentSpec":
        """A copy with the given fields replaced (sweep convenience)."""
        return dataclasses.replace(self, **changes)


def _bug(name: str, description: str) -> ExperimentSpec:
    return ExperimentSpec(name=name, description=description, patch=name)


#: the paper's six experiments: five single-file bug patches + global FMA
EXPERIMENTS: dict[str, ExperimentSpec] = {
    spec.name: spec
    for spec in (
        _bug(
            "cldfrc-premib",
            "cloud_fraction: perturbed minimum-RH bound in premib",
        ),
        _bug(
            "goffgratch",
            "wv_saturation: altered Goff-Gratch saturation pressure fit",
        ),
        _bug(
            "mg-autoconv",
            "micro_mg: perturbed autoconversion rate exponent",
        ),
        _bug(
            "rand-mt",
            "shr_random: degraded Mersenne-Twister tempering",
        ),
        _bug(
            "wsubbug",
            "microp_aero: wrong sub-grid vertical-velocity clamp",
        ),
        ExperimentSpec(
            name="fma",
            description=(
                "whole-model fused-multiply-add contraction (no single "
                "culprit module; detection via @first bit-invariants)"
            ),
            fma=True,
        ),
    )
}


def list_experiments() -> list[str]:
    """Registered experiment names, sorted."""
    return sorted(EXPERIMENTS)


def get_experiment(name: str) -> ExperimentSpec:
    """The registered :class:`ExperimentSpec` for ``name``."""
    try:
        return EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise UnknownExperimentError(
            f"unknown experiment {name!r} (known: {known})"
        ) from None


def run_experiment(
    experiment: "ExperimentSpec | str",
    *,
    store_dir=None,
    backend=None,
    max_workers: Optional[int] = None,
) -> "PipelineResult":
    """Compile and run (or resume) one experiment's pipeline."""
    from ..pipeline import RootCauseAnalysis

    return RootCauseAnalysis(
        experiment,
        store_dir=store_dir,
        backend=backend,
        max_workers=max_workers,
    ).run()


def run_sweep(
    experiments: "list[ExperimentSpec | str] | None" = None,
    *,
    store_dir=None,
    backend=None,
    max_workers: Optional[int] = None,
    fused: bool = False,
) -> "dict[str, PipelineResult]":
    """Run several experiments against one shared store.

    The control-ensemble stage key depends only on the (identical)
    ensemble spec, so the first experiment generates the 30 members and
    every later one resumes them from the store — the sweep's marginal
    cost per experiment is its experimental runs and analysis stages.

    ``fused=True`` first runs the cross-config prewarm DAG
    (:func:`repro.pipeline.fused_experimental_pipeline`): every
    experiment's held-out runs execute batched on the kernel-fused
    vectorized runtime and land in the shared member cache under their
    unchanged keys, so the per-experiment ``experimental_runs`` stages
    below rehydrate instead of re-running a single member.
    """
    specs = [
        get_experiment(e) if isinstance(e, str) else e
        for e in (experiments if experiments is not None else list_experiments())
    ]
    if fused:
        from ..pipeline import fused_experimental_pipeline

        fused_experimental_pipeline(specs, store_dir=store_dir).run()
    results: dict[str, "PipelineResult"] = {}
    for spec in specs:
        results[spec.name] = run_experiment(
            spec,
            store_dir=store_dir,
            backend=backend,
            max_workers=max_workers,
        )
    return results

"""repro — reproduction of Milroy et al., "Making Root Cause Analysis Feasible
for Large Code Bases: A Solution Approach for a Climate Model" (HPDC 2019).

The package implements the paper's full pipeline on a synthetic CESM-like
climate model:

* :mod:`repro.fortran` — Fortran-subset front end (preprocessor, lexer, parser).
* :mod:`repro.model` — the synthetic CAM-like model source and bug patches.
* :mod:`repro.runtime` — numerical interpreter, FPU/FMA model, PRNGs, coverage.
* :mod:`repro.coverage` — codecov-style report writing/parsing and filtering.
* :mod:`repro.kgen` — kernel extraction and normalized-RMS comparison.
* :mod:`repro.ensemble` — accepted-ensemble and experimental-run generation.
* :mod:`repro.ect` — UF-CAM-ECT style PCA consistency testing.
* :mod:`repro.selection` — optimization-based culprit selection: robust
  (median/lasso) affected-variable evidence + anchored weighted set cover.
* :mod:`repro.errors` — the consolidated :class:`ReproError` hierarchy.
* :mod:`repro.graphs` — source-to-digraph metagraph construction.
* :mod:`repro.slicing` — hybrid backward slicing (coverage + BFS paths).
* :mod:`repro.analysis` — Girvan-Newman communities, centralities, degree stats.
* :mod:`repro.refine` — Algorithm 5.4 iterative refinement with sampling.
* :mod:`repro.experiments` — the paper's six experiments.
* :mod:`repro.pipeline` — end-to-end root cause analysis orchestration.
* :mod:`repro.reporting` — Table 1/2 and figure-series generation.
* :mod:`repro.obs` — tracing, metrics, and profiling across all layers.

The public, stable API is re-exported lazily here; importing ``repro`` is
cheap and does not build the model.
"""

from __future__ import annotations

from importlib import import_module
from typing import Any

__version__ = "1.0.0"

#: name -> (module, attribute) lazy export table
_LAZY_EXPORTS: dict[str, tuple[str, str]] = {
    # front end
    "parse_source": ("repro.fortran", "parse_source"),
    # model
    "build_model_source": ("repro.model", "build_model_source"),
    "ModelConfig": ("repro.model", "ModelConfig"),
    "list_patches": ("repro.model", "list_patches"),
    "get_patch": ("repro.model", "get_patch"),
    "PatchError": ("repro.model", "PatchError"),
    # runtime
    "run_model": ("repro.runtime", "run_model"),
    "run_model_batch": ("repro.runtime", "run_model_batch"),
    "RunConfig": ("repro.runtime", "RunConfig"),
    "RunResult": ("repro.runtime", "RunResult"),
    "FPConfig": ("repro.runtime", "FPConfig"),
    "CoverageTrace": ("repro.runtime", "CoverageTrace"),
    "Interpreter": ("repro.runtime", "Interpreter"),
    "MemberBatch": ("repro.runtime", "MemberBatch"),
    "VecInterpreter": ("repro.runtime", "VecInterpreter"),
    "VectorizationError": ("repro.runtime", "VectorizationError"),
    # kernel extraction
    "Kernel": ("repro.kgen", "Kernel"),
    "KernelError": ("repro.kgen", "KernelError"),
    "KernelReport": ("repro.kgen", "KernelReport"),
    "extract_default_kernels": ("repro.kgen", "extract_default_kernels"),
    "extract_kernel": ("repro.kgen", "extract_kernel"),
    "verify_kernel": ("repro.kgen", "verify_kernel"),
    # graph
    "MetaGraph": ("repro.graphs", "MetaGraph"),
    "build_metagraph": ("repro.graphs", "build_metagraph"),
    # coverage reports
    "CoverageReport": ("repro.coverage", "CoverageReport"),
    # ensemble / ECT / selection
    "Ensemble": ("repro.ensemble", "Ensemble"),
    "EnsembleGenerator": ("repro.ensemble", "EnsembleGenerator"),
    "EnsembleSpec": ("repro.ensemble", "EnsembleSpec"),
    "ExecutionBackend": ("repro.ensemble", "ExecutionBackend"),
    "RunArtifact": ("repro.ensemble", "RunArtifact"),
    "generate_ensemble": ("repro.ensemble", "generate_ensemble"),
    "get_backend": ("repro.ensemble", "get_backend"),
    "list_backends": ("repro.ensemble", "list_backends"),
    "EctConfig": ("repro.ect", "EctConfig"),
    "EctResult": ("repro.ect", "EctResult"),
    "UltraFastECT": ("repro.ect", "UltraFastECT"),
    "ect_test": ("repro.ect", "ect_test"),
    "select_affected_variables": ("repro.selection", "select_affected_variables"),
    "select_culprits": ("repro.selection", "select_culprits"),
    "EvidenceSelection": ("repro.selection", "EvidenceSelection"),
    "SelectionSpec": ("repro.selection", "SelectionSpec"),
    "SelectionResult": ("repro.selection", "SelectionResult"),
    "SetCoverProblem": ("repro.selection", "SetCoverProblem"),
    "Solver": ("repro.selection", "Solver"),
    "get_solver": ("repro.selection", "get_solver"),
    "list_solvers": ("repro.selection", "list_solvers"),
    "SelectionError": ("repro.selection", "SelectionError"),
    "InfeasibleSelectionError": ("repro.selection", "InfeasibleSelectionError"),
    "UnknownSolverError": ("repro.selection", "UnknownSolverError"),
    # consolidated error hierarchy
    "ReproError": ("repro.errors", "ReproError"),
    # slicing / analysis / refinement
    "backward_slice": ("repro.slicing", "backward_slice"),
    "slice_failing_runs": ("repro.slicing", "slice_failing_runs"),
    "variable_weights": ("repro.slicing", "variable_weights"),
    "RankedSlice": ("repro.slicing", "RankedSlice"),
    "QuotientGraph": ("repro.analysis", "QuotientGraph"),
    "quotient_graph": ("repro.analysis", "quotient_graph"),
    "CommunityResult": ("repro.analysis", "CommunityResult"),
    "girvan_newman_communities": ("repro.analysis", "girvan_newman_communities"),
    "modularity": ("repro.analysis", "modularity"),
    "degree_centrality": ("repro.analysis", "degree_centrality"),
    "betweenness_centrality": ("repro.analysis", "betweenness_centrality"),
    "closeness_centrality": ("repro.analysis", "closeness_centrality"),
    "eigenvector_in_centrality": ("repro.analysis", "eigenvector_in_centrality"),
    "degree_stats": ("repro.analysis", "degree_stats"),
    "IterativeRefinement": ("repro.refine", "IterativeRefinement"),
    "RefinementConfig": ("repro.refine", "RefinementConfig"),
    "RefinementResult": ("repro.refine", "RefinementResult"),
    "refine_slice": ("repro.refine", "refine_slice"),
    # observability
    "Span": ("repro.obs", "Span"),
    "Tracer": ("repro.obs", "Tracer"),
    "MetricsRegistry": ("repro.obs", "MetricsRegistry"),
    "enable_tracing": ("repro.obs", "enable_tracing"),
    "disable_tracing": ("repro.obs", "disable_tracing"),
    "get_tracer": ("repro.obs", "get_tracer"),
    "get_metrics": ("repro.obs", "get_metrics"),
    "round_wall": ("repro.obs", "round_wall"),
    "runtime_info": ("repro.obs", "runtime_info"),
    # experiments / pipeline / reporting
    "ExperimentSpec": ("repro.experiments", "ExperimentSpec"),
    "get_experiment": ("repro.experiments", "get_experiment"),
    "list_experiments": ("repro.experiments", "list_experiments"),
    "run_experiment": ("repro.experiments", "run_experiment"),
    "run_sweep": ("repro.experiments", "run_sweep"),
    "Pipeline": ("repro.pipeline", "Pipeline"),
    "RootCauseAnalysis": ("repro.pipeline", "RootCauseAnalysis"),
    "Stage": ("repro.pipeline", "Stage"),
    "accepted_ensemble": ("repro.pipeline", "accepted_ensemble"),
    "root_cause_pipeline": ("repro.pipeline", "root_cause_pipeline"),
    "LocalizationReport": ("repro.reporting", "LocalizationReport"),
    "build_report": ("repro.reporting", "build_report"),
    "centrality_table": ("repro.reporting", "centrality_table"),
    "degree_table": ("repro.reporting", "degree_table"),
}

__all__ = ["__version__", *sorted(_LAZY_EXPORTS)]


def __getattr__(name: str) -> Any:
    try:
        module_name, attr = _LAZY_EXPORTS[name]
    except KeyError as exc:  # pragma: no cover - defensive
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from exc
    try:
        module = import_module(module_name)
    except ModuleNotFoundError as exc:
        if exc.name is not None and (
            exc.name == module_name or module_name.startswith(exc.name + ".")
        ):
            # The backing module itself is one of the not-yet-implemented
            # pipeline stages: surface that clearly instead of leaking an
            # ImportError out of attribute access.
            raise AttributeError(
                f"repro.{name} is not available yet: backing module "
                f"{module_name!r} is not implemented in this build"
            ) from exc
        raise  # a dependency of an implemented module is genuinely missing
    return getattr(module, attr)


def __dir__() -> list[str]:  # pragma: no cover - trivial
    return sorted(__all__)

"""``python -m repro`` — the resumable root-cause pipeline CLI.

One entry point over the whole stack::

    python -m repro list                         # the six experiments
    python -m repro run wsubbug --store store    # build -> ensemble -> ECT
                                                 #   -> slice -> selection
                                                 #   -> refine -> report
    python -m repro run wsubbug --store store    # again: resumes from cache
    python -m repro sweep --store store          # all experiments, shared store
    python -m repro tables                       # Table 1/2 metagraph tables

``run`` and ``sweep`` print the markdown localization report plus a
per-stage execution table (status, wall seconds, store and member-cache
hits/misses); ``--json`` switches to a machine-readable document carrying
the report, the stage records, the store statistics and the metrics
counters that moved — what the CI smoke job and the bench parse to
assert cache behavior.

Observability (see ``docs/observability.md``)::

    python -m repro run wsubbug --trace t.jsonl --profile
    python -m repro trace summarize t.jsonl
    python -m repro trace chrome t.jsonl --out t.chrome.json
    python -m repro --version

``--trace`` records a hierarchical span trace (pipeline -> stages ->
ensemble members -> refinement iterations) to a JSONL file; ``--profile``
prints the hottest-modules and hottest-spans tables.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    from . import __version__

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Root cause analysis for a synthetic climate model "
        "(Milroy et al., HPDC 2019).",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_run_options(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--store",
            default=".repro-store",
            help="pipeline store directory (stage + member caches); "
            "re-running against the same store resumes "
            "(default: %(default)s)",
        )
        p.add_argument(
            "--backend",
            default=None,
            help="execution backend for member fan-outs "
            "(serial/thread/process/vectorized; default: library default)",
        )
        p.add_argument(
            "--max-workers", type=int, default=None, help="pool width"
        )
        p.add_argument(
            "--vec-batch",
            default=None,
            metavar="N",
            help="batch-width bound for the vectorized backend (sets "
            "REPRO_VEC_BATCH for this process; bit-identical at any "
            "width, it only trades memory against fusion)",
        )
        p.add_argument(
            "--members", type=int, default=None, help="override ensemble size"
        )
        p.add_argument(
            "--nsteps", type=int, default=None, help="override run length"
        )
        p.add_argument(
            "--runs", type=int, default=None, help="override experimental runs"
        )
        p.add_argument(
            "--refine-members",
            type=int,
            default=None,
            help="override refinement-ensemble size",
        )
        p.add_argument(
            "--solver",
            default=None,
            help="set-cover solver for the selection stage "
            "(branch-and-bound/pulp; default: experiment spec)",
        )
        p.add_argument(
            "--json",
            action="store_true",
            help="emit a JSON document (report + stage records) instead "
            "of markdown",
        )
        p.add_argument(
            "--trace",
            default=None,
            metavar="PATH",
            help="record a hierarchical span trace to this JSONL file "
            "(render it with `python -m repro trace summarize PATH`)",
        )
        p.add_argument(
            "--profile",
            action="store_true",
            help="print the hottest-modules and hottest-spans tables",
        )

    run = sub.add_parser(
        "run", help="run (or resume) one experiment end to end"
    )
    run.add_argument("experiment", help="experiment name (see `list`)")
    add_run_options(run)

    sweep = sub.add_parser(
        "sweep", help="run several experiments against one shared store"
    )
    sweep.add_argument(
        "experiments",
        nargs="*",
        help="experiment names (default: all six)",
    )
    sweep.add_argument(
        "--fused",
        action="store_true",
        help="prewarm the member cache first by running every "
        "experiment's held-out runs batched on the kernel-fused "
        "vectorized runtime (per-experiment stages then resume them)",
    )
    add_run_options(sweep)

    sub.add_parser("list", help="list the registered experiments")

    trace = sub.add_parser(
        "trace", help="inspect or convert a saved JSONL span trace"
    )
    trace.add_argument(
        "action",
        choices=("summarize", "chrome"),
        help="summarize: aggregate spans by name; chrome: convert to a "
        "Chrome trace_event file for chrome://tracing / Perfetto",
    )
    trace.add_argument("path", help="JSONL trace written by run --trace")
    trace.add_argument(
        "--out",
        default=None,
        help="output path for `chrome` (default: PATH.chrome.json)",
    )
    trace.add_argument(
        "--top", type=int, default=0, help="top-N summary rows (0 = all)"
    )
    trace.add_argument("--json", action="store_true", help="emit JSON")

    tables = sub.add_parser(
        "tables", help="print the paper-style metagraph tables (Tables 1/2)"
    )
    tables.add_argument(
        "--top", type=int, default=None, help="top-N rows of the centrality table"
    )
    tables.add_argument("--json", action="store_true", help="emit JSON")

    return parser


def _resolve_experiment(args):
    """The (possibly overridden) ExperimentSpec the run/sweep args name."""
    from .experiments import get_experiment

    spec = get_experiment(args.experiment)
    overrides = {}
    if args.members is not None:
        overrides["members"] = args.members
    if args.nsteps is not None:
        overrides["nsteps"] = args.nsteps
    if args.runs is not None:
        overrides["n_runs"] = args.runs
    if args.refine_members is not None:
        from .refine import RefinementConfig

        base = spec.refine or RefinementConfig()
        import dataclasses

        overrides["refine"] = dataclasses.replace(
            base, members=args.refine_members
        )
    if getattr(args, "solver", None) is not None:
        import dataclasses

        from .selection import SelectionSpec

        base_sel = spec.selection or SelectionSpec()
        overrides["selection"] = dataclasses.replace(
            base_sel, solver=args.solver
        )
    return spec.with_(**overrides) if overrides else spec


def _run_document(result, metrics_before=None) -> dict:
    """The JSON document of one pipeline run."""
    from .obs import get_metrics

    doc = result.to_dict()
    doc["report"] = result["report"].to_dict()
    doc["metrics"] = get_metrics().counter_delta(metrics_before)
    return doc


def _profile_rows(result, top: int = 10) -> list:
    """Hottest-modules rows for one pipeline result.

    Derived post hoc from the coverage the accepted ensemble already
    collected (per-module statement counts apportion the measured wall),
    so profiling adds no hot-path instrumentation at all.
    """
    from .obs import hot_modules

    # prefer the accepted ensemble's merged member coverage; fall back to
    # the dedicated instrumented coverage run (the ensemble members run
    # with coverage off in most experiment specs)
    coverage = None
    for key in ("control_ensemble", "coverage_run"):
        candidate = getattr(result.outputs.get(key), "coverage", None)
        if candidate is not None and candidate.counts:
            coverage = candidate
            break
    if coverage is None:
        return []
    per_file: dict[str, int] = {}
    for (fname, _line), count in coverage.counts.items():
        per_file[fname] = per_file.get(fname, 0) + int(count)
    names: dict[str, str] = {}
    source = result.outputs.get("control_source")
    if source is not None:
        from .slicing.seeds import module_file_map

        names = {fname: mod for mod, fname in module_file_map(source).items()}
    wall = sum(rec.wall_s for rec in result.records)
    return hot_modules(per_file, wall, top=top, module_names=names)


def _print_profile(result, spans, out, top: int = 10) -> None:
    from .obs import render_profile, render_summary

    print("## Profile: hottest modules\n", file=out)
    rows = _profile_rows(result, top=top)
    if rows:
        print(render_profile(rows), file=out)
    else:
        print("(no coverage available — nothing to profile)", file=out)
    if spans:
        print("\n## Profile: hottest spans\n", file=out)
        print(render_summary(spans, top=top), file=out)


def _print_stage_table(result, out) -> None:
    print("| stage | status | wall s | store h/m | members h/m |", file=out)
    print("| --- | --- | --- | --- | --- |", file=out)
    for rec in result.records:
        print(
            f"| {rec.name} | {rec.status} | {rec.wall_s:.2f} "
            f"| {rec.store_hits}/{rec.store_misses} "
            f"| {rec.member_hits}/{rec.member_misses} |",
            file=out,
        )


#: exit code for bad experiment/backend names — distinct from exit 1,
#: which means "ran fine but did not localize"
EX_USAGE = 2


def _validate_names(args) -> Optional[str]:
    """Resolve the experiment, backend, batch-size and solver knobs up
    front; the error message (naming every known candidate) on a bad one,
    else None."""
    from .ensemble.backends import (
        InvalidBatchSizeError,
        UnknownBackendError,
        get_backend,
        validate_batch_size,
    )
    from .experiments import UnknownExperimentError
    from .selection import UnknownSolverError, get_solver

    try:
        if getattr(args, "solver", None) is not None:
            get_solver(args.solver)
        _resolve_experiment(args)
        if args.backend is not None:
            get_backend(args.backend, max_workers=args.max_workers)
        if getattr(args, "vec_batch", None) is not None:
            validate_batch_size(args.vec_batch, "--vec-batch")
    except (
        UnknownExperimentError,
        UnknownBackendError,
        InvalidBatchSizeError,
        UnknownSolverError,
    ) as exc:
        return str(exc)
    return None


def _apply_vec_batch(args) -> None:
    """Export a validated ``--vec-batch`` as ``REPRO_VEC_BATCH`` so every
    vectorized pass in this process (ensemble stages, fused prewarm)
    picks the width up at run time."""
    if getattr(args, "vec_batch", None) is None:
        return
    import os

    from .ensemble.backends import VEC_BATCH_ENV_VAR, validate_batch_size

    os.environ[VEC_BATCH_ENV_VAR] = str(
        validate_batch_size(args.vec_batch, "--vec-batch")
    )


def _cmd_run(args, out) -> int:
    from .obs import disable_tracing, enable_tracing, get_metrics, write_trace
    from .pipeline import RootCauseAnalysis

    error = _validate_names(args)
    if error is not None:
        print(f"error: {error}", file=sys.stderr)
        return EX_USAGE
    _apply_vec_batch(args)
    tracing = bool(args.trace or args.profile)
    metrics_before = get_metrics().counters()
    spans = []
    if tracing:
        enable_tracing(experiment=args.experiment)
    try:
        result = RootCauseAnalysis(
            _resolve_experiment(args),
            store_dir=args.store,
            backend=args.backend,
            max_workers=args.max_workers,
        ).run()
    finally:
        if tracing:
            spans = disable_tracing()
        if args.trace and spans:
            write_trace(spans, args.trace)
    report = result["report"]
    if args.json:
        doc = _run_document(result, metrics_before)
        if args.profile:
            doc["profile"] = _profile_rows(result)
        print(json.dumps(doc, indent=2, sort_keys=True), file=out)
    else:
        print(report.to_markdown(), file=out)
        print("## Pipeline\n", file=out)
        _print_stage_table(result, out)
        if args.profile:
            print("", file=out)
            _print_profile(result, spans, out)
    if args.trace:
        print(f"trace: {len(spans)} spans -> {args.trace}", file=sys.stderr)
    return 0 if report.localized else 1


def _cmd_sweep(args, out) -> int:
    from .experiments import list_experiments
    from .obs import disable_tracing, enable_tracing, get_metrics, write_trace
    from .pipeline import RootCauseAnalysis

    names = args.experiments or list_experiments()
    for name in names:
        sweep_args = argparse.Namespace(**{**vars(args), "experiment": name})
        error = _validate_names(sweep_args)
        if error is not None:
            print(f"error: {error}", file=sys.stderr)
            return EX_USAGE
    _apply_vec_batch(args)
    tracing = bool(args.trace or args.profile)
    documents, failures = {}, []
    prewarm_doc = None
    if getattr(args, "fused", False):
        from .pipeline import fused_experimental_pipeline

        specs = [
            _resolve_experiment(
                argparse.Namespace(**{**vars(args), "experiment": name})
            )
            for name in names
        ]
        prewarm = fused_experimental_pipeline(
            specs, store_dir=args.store
        ).run()
        if args.json:
            prewarm_doc = prewarm.to_dict()
        else:
            print("## fused prewarm", file=out)
            _print_stage_table(prewarm, out)
            print("", file=out)
    try:
        for name in names:
            sweep_args = argparse.Namespace(**{**vars(args), "experiment": name})
            metrics_before = get_metrics().counters()
            if tracing:  # one trace buffer per experiment, appended to one file
                enable_tracing(experiment=name)
            try:
                result = RootCauseAnalysis(
                    _resolve_experiment(sweep_args),
                    store_dir=args.store,
                    backend=args.backend,
                    max_workers=args.max_workers,
                ).run()
            finally:
                if tracing:
                    spans = disable_tracing()
                    if args.trace and spans:
                        write_trace(spans, args.trace)
            report = result["report"]
            if not report.localized:
                failures.append(name)
            if args.json:
                documents[name] = _run_document(result, metrics_before)
            else:
                print(f"## {name}: localized={report.localized}", file=out)
                _print_stage_table(result, out)
                if args.profile:
                    _print_profile(result, spans if tracing else [], out)
                print("", file=out)
    finally:
        if tracing:
            disable_tracing()
    if args.json:
        doc = {"experiments": documents, "failures": failures}
        if prewarm_doc is not None:
            doc["fused_prewarm"] = prewarm_doc
        print(json.dumps(doc, indent=2, sort_keys=True), file=out)
    return 1 if failures else 0


def _cmd_trace(args, out) -> int:
    from .obs import (
        read_trace,
        render_summary,
        summarize_spans,
        write_chrome_trace,
    )

    try:
        spans = read_trace(args.path)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: cannot read trace {args.path!r}: {exc}", file=sys.stderr)
        return EX_USAGE
    if args.action == "chrome":
        out_path = args.out or f"{args.path}.chrome.json"
        write_chrome_trace(spans, out_path)
        print(f"wrote {len(spans)} events -> {out_path}", file=out)
        return 0
    if args.json:
        print(
            json.dumps(summarize_spans(spans), indent=2, sort_keys=True),
            file=out,
        )
    else:
        print(render_summary(spans, top=args.top), file=out)
    return 0


def _cmd_list(out) -> int:
    from .experiments import get_experiment, list_experiments

    for name in list_experiments():
        print(f"{name:16s} {get_experiment(name).description}", file=out)
    return 0


def _cmd_tables(args, out) -> int:
    from .graphs import build_metagraph
    from .model import ModelConfig, build_model_source
    from .reporting import centrality_table, degree_table

    graph = build_metagraph(build_model_source(ModelConfig()))
    tables = [degree_table(graph), centrality_table(graph, top=args.top)]
    if args.json:
        print(
            json.dumps(
                [t.to_dict() for t in tables], indent=2, sort_keys=True
            ),
            file=out,
        )
    else:
        for table in tables:
            print(table.to_markdown(), file=out)
    return 0


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args, out)
    if args.command == "sweep":
        return _cmd_sweep(args, out)
    if args.command == "list":
        return _cmd_list(out)
    if args.command == "trace":
        return _cmd_trace(args, out)
    return _cmd_tables(args, out)

"""``python -m repro`` — the resumable root-cause pipeline CLI.

One entry point over the whole stack::

    python -m repro list                         # the six experiments
    python -m repro run wsubbug --store store    # build -> ensemble -> ECT
                                                 #   -> slice -> refine -> report
    python -m repro run wsubbug --store store    # again: resumes from cache
    python -m repro sweep --store store          # all experiments, shared store
    python -m repro tables                       # Table 1/2 metagraph tables

``run`` and ``sweep`` print the markdown localization report plus a
per-stage execution table (status, wall seconds, store and member-cache
hits/misses); ``--json`` switches to a machine-readable document carrying
the report, the stage records and the store statistics — what the CI
smoke job and the bench parse to assert cache behavior.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Root cause analysis for a synthetic climate model "
        "(Milroy et al., HPDC 2019).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_run_options(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--store",
            default=".repro-store",
            help="pipeline store directory (stage + member caches); "
            "re-running against the same store resumes "
            "(default: %(default)s)",
        )
        p.add_argument(
            "--backend",
            default=None,
            help="execution backend for member fan-outs "
            "(serial/thread/process/vectorized; default: library default)",
        )
        p.add_argument(
            "--max-workers", type=int, default=None, help="pool width"
        )
        p.add_argument(
            "--members", type=int, default=None, help="override ensemble size"
        )
        p.add_argument(
            "--nsteps", type=int, default=None, help="override run length"
        )
        p.add_argument(
            "--runs", type=int, default=None, help="override experimental runs"
        )
        p.add_argument(
            "--refine-members",
            type=int,
            default=None,
            help="override refinement-ensemble size",
        )
        p.add_argument(
            "--json",
            action="store_true",
            help="emit a JSON document (report + stage records) instead "
            "of markdown",
        )

    run = sub.add_parser(
        "run", help="run (or resume) one experiment end to end"
    )
    run.add_argument("experiment", help="experiment name (see `list`)")
    add_run_options(run)

    sweep = sub.add_parser(
        "sweep", help="run several experiments against one shared store"
    )
    sweep.add_argument(
        "experiments",
        nargs="*",
        help="experiment names (default: all six)",
    )
    add_run_options(sweep)

    sub.add_parser("list", help="list the registered experiments")

    tables = sub.add_parser(
        "tables", help="print the paper-style metagraph tables (Tables 1/2)"
    )
    tables.add_argument(
        "--top", type=int, default=None, help="top-N rows of the centrality table"
    )
    tables.add_argument("--json", action="store_true", help="emit JSON")

    return parser


def _resolve_experiment(args):
    """The (possibly overridden) ExperimentSpec the run/sweep args name."""
    from .experiments import get_experiment

    spec = get_experiment(args.experiment)
    overrides = {}
    if args.members is not None:
        overrides["members"] = args.members
    if args.nsteps is not None:
        overrides["nsteps"] = args.nsteps
    if args.runs is not None:
        overrides["n_runs"] = args.runs
    if args.refine_members is not None:
        from .refine import RefinementConfig

        base = spec.refine or RefinementConfig()
        import dataclasses

        overrides["refine"] = dataclasses.replace(
            base, members=args.refine_members
        )
    return spec.with_(**overrides) if overrides else spec


def _run_document(result) -> dict:
    """The JSON document of one pipeline run."""
    doc = result.to_dict()
    doc["report"] = result["report"].to_dict()
    return doc


def _print_stage_table(result, out) -> None:
    print("| stage | status | wall s | store h/m | members h/m |", file=out)
    print("| --- | --- | --- | --- | --- |", file=out)
    for rec in result.records:
        print(
            f"| {rec.name} | {rec.status} | {rec.wall_s:.2f} "
            f"| {rec.store_hits}/{rec.store_misses} "
            f"| {rec.member_hits}/{rec.member_misses} |",
            file=out,
        )


#: exit code for bad experiment/backend names — distinct from exit 1,
#: which means "ran fine but did not localize"
EX_USAGE = 2


def _validate_names(args) -> Optional[str]:
    """Resolve the experiment and backend names up front; the error
    message (naming every known candidate) on a bad one, else None."""
    from .ensemble.backends import UnknownBackendError, get_backend
    from .experiments import UnknownExperimentError

    try:
        _resolve_experiment(args)
        if args.backend is not None:
            get_backend(args.backend, max_workers=args.max_workers)
    except (UnknownExperimentError, UnknownBackendError) as exc:
        return str(exc)
    return None


def _cmd_run(args, out) -> int:
    from .pipeline import RootCauseAnalysis

    error = _validate_names(args)
    if error is not None:
        print(f"error: {error}", file=sys.stderr)
        return EX_USAGE
    result = RootCauseAnalysis(
        _resolve_experiment(args),
        store_dir=args.store,
        backend=args.backend,
        max_workers=args.max_workers,
    ).run()
    report = result["report"]
    if args.json:
        print(json.dumps(_run_document(result), indent=2, sort_keys=True), file=out)
    else:
        print(report.to_markdown(), file=out)
        print("## Pipeline\n", file=out)
        _print_stage_table(result, out)
    return 0 if report.localized else 1


def _cmd_sweep(args, out) -> int:
    from .experiments import list_experiments
    from .pipeline import RootCauseAnalysis

    names = args.experiments or list_experiments()
    for name in names:
        sweep_args = argparse.Namespace(**{**vars(args), "experiment": name})
        error = _validate_names(sweep_args)
        if error is not None:
            print(f"error: {error}", file=sys.stderr)
            return EX_USAGE
    documents, failures = {}, []
    for name in names:
        sweep_args = argparse.Namespace(**{**vars(args), "experiment": name})
        result = RootCauseAnalysis(
            _resolve_experiment(sweep_args),
            store_dir=args.store,
            backend=args.backend,
            max_workers=args.max_workers,
        ).run()
        report = result["report"]
        if not report.localized:
            failures.append(name)
        if args.json:
            documents[name] = _run_document(result)
        else:
            print(f"## {name}: localized={report.localized}", file=out)
            _print_stage_table(result, out)
            print("", file=out)
    if args.json:
        print(
            json.dumps(
                {"experiments": documents, "failures": failures},
                indent=2,
                sort_keys=True,
            ),
            file=out,
        )
    return 1 if failures else 0


def _cmd_list(out) -> int:
    from .experiments import get_experiment, list_experiments

    for name in list_experiments():
        print(f"{name:16s} {get_experiment(name).description}", file=out)
    return 0


def _cmd_tables(args, out) -> int:
    from .graphs import build_metagraph
    from .model import ModelConfig, build_model_source
    from .reporting import centrality_table, degree_table

    graph = build_metagraph(build_model_source(ModelConfig()))
    tables = [degree_table(graph), centrality_table(graph, top=args.top)]
    if args.json:
        print(
            json.dumps(
                [t.to_dict() for t in tables], indent=2, sort_keys=True
            ),
            file=out,
        )
    else:
        for table in tables:
            print(table.to_markdown(), file=out)
    return 0


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args, out)
    if args.command == "sweep":
        return _cmd_sweep(args, out)
    if args.command == "list":
        return _cmd_list(out)
    return _cmd_tables(args, out)

"""repro.reporting — verdict/localization reports and paper-style tables.

The rendering back half of the pipeline: the terminal ``report`` stage of
:mod:`repro.pipeline` assembles a :class:`LocalizationReport` (UF-ECT
verdict + slice → refinement trajectory + the ≤ ``target_modules``
success criterion), and :func:`degree_table` / :func:`centrality_table`
reproduce the paper's Table 1/2-style metagraph summaries over
:mod:`repro.analysis`.  Everything renders to both JSON (machines, the
pipeline store, CI) and markdown (humans).

>>> from repro.reporting import degree_table
>>> from repro.graphs import build_metagraph
>>> from repro.model import ModelConfig, build_model_source
>>> table = degree_table(build_metagraph(build_model_source(ModelConfig())))
>>> print(table.to_markdown())        # doctest: +SKIP
"""

from __future__ import annotations

from .report import (
    LocalizationReport,
    VerdictReport,
    build_report,
    expected_culprit_modules,
)
from .tables import ReportTable, centrality_table, degree_table

__all__ = [
    "LocalizationReport",
    "ReportTable",
    "VerdictReport",
    "build_report",
    "centrality_table",
    "degree_table",
    "expected_culprit_modules",
]

"""Paper-style metagraph tables (Tables 1 and 2) over repro.analysis.

Table 1 summarizes the CAM metagraph's module quotient — node/edge
counts, density, degree statistics.  Table 2 ranks the modules by the
centrality measures the paper uses to argue which modules matter
(degree, betweenness, closeness, eigenvector-in).  Both render to
markdown and JSON through one small :class:`ReportTable` container with
deterministic fixed-point float formatting, so two runs over the same
graph produce byte-identical output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..analysis import (
    QuotientGraph,
    betweenness_centrality,
    closeness_centrality,
    degree_centrality,
    degree_stats,
    eigenvector_in_centrality,
    quotient_graph,
)

__all__ = ["ReportTable", "centrality_table", "degree_table"]


def _fmt(value: Any) -> str:
    """Deterministic cell text: floats fixed to 4 decimals, rest via str."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return str(value)
    if isinstance(value, int):
        return str(value)
    return f"{value:.4f}"


@dataclass
class ReportTable:
    """A titled column/row table rendering to markdown and JSON."""

    title: str
    columns: list[str]
    rows: list[list[Any]] = field(default_factory=list)

    def to_markdown(self) -> str:
        lines = [
            f"### {self.title}",
            "",
            "| " + " | ".join(self.columns) + " |",
            "| " + " | ".join("---" for _ in self.columns) + " |",
        ]
        for row in self.rows:
            lines.append("| " + " | ".join(_fmt(cell) for cell in row) + " |")
        return "\n".join(lines) + "\n"

    def to_dict(self) -> dict:
        return {
            "title": self.title,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
        }


def _as_quotient(graph) -> QuotientGraph:
    """Accept a MetaGraph or an already-collapsed QuotientGraph."""
    if isinstance(graph, QuotientGraph):
        return graph
    return quotient_graph(graph)


def degree_table(graph) -> ReportTable:
    """Table 1: degree statistics of the module quotient graph."""
    stats = degree_stats(_as_quotient(graph))
    rows = [
        ["modules", stats.n_modules],
        ["directed edges", stats.n_edges],
        ["total edge weight", stats.total_weight],
        ["density", stats.density],
        ["mean in-degree", stats.mean_in_degree],
        ["max in-degree", stats.max_in_degree],
        ["mean out-degree", stats.mean_out_degree],
        ["max out-degree", stats.max_out_degree],
        ["mean degree", stats.mean_degree],
        ["max degree", stats.max_degree],
    ]
    return ReportTable(
        title="Metagraph degree statistics",
        columns=["statistic", "value"],
        rows=rows,
    )


def centrality_table(graph, top: Optional[int] = None) -> ReportTable:
    """Table 2: per-module centrality measures, most central first.

    Rows are sorted by eigenvector-in centrality (the measure the paper
    leans on for module importance), ties broken by degree centrality
    and then name for determinism.  ``top`` truncates to the N most
    central modules.
    """
    q = _as_quotient(graph)
    degree = degree_centrality(q)
    betweenness = betweenness_centrality(q)
    closeness = closeness_centrality(q)
    eigenvector = eigenvector_in_centrality(q)
    names = sorted(
        q.nodes, key=lambda n: (-eigenvector[n], -degree[n], n)
    )
    if top is not None:
        names = names[:top]
    rows = [
        [
            name,
            q.degree(name),
            q.in_degree(name),
            q.out_degree(name),
            degree[name],
            betweenness[name],
            closeness[name],
            eigenvector[name],
        ]
        for name in names
    ]
    return ReportTable(
        title="Module centrality",
        columns=[
            "module",
            "degree",
            "in",
            "out",
            "degree-c",
            "betweenness",
            "closeness",
            "eigenvector-in",
        ],
        rows=rows,
    )

"""Verdict and localization report objects.

The last stage of the root-cause pipeline renders its outcome as two
plain-data report objects: a :class:`VerdictReport` summarizing the
UF-ECT decision (did the change alter the climate?) and a
:class:`LocalizationReport` wrapping it with the slice → refinement
trajectory and the success criterion the paper evaluates — is the true
culprit module inside a suspect set of at most ``target_modules`` of the
model's modules?

Both objects are JSON round-trippable (``to_dict`` / ``from_dict``) so
the pipeline store can persist them, and render to markdown for humans.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Optional

__all__ = ["LocalizationReport", "VerdictReport", "build_report"]


@dataclass
class VerdictReport:
    """The UF-ECT decision of the experimental runs, summarized."""

    consistent: bool
    n_runs: int
    n_pcs: int
    failing_pcs: list[int] = field(default_factory=list)
    failing_variables: list[str] = field(default_factory=list)
    invariant_violations: list[str] = field(default_factory=list)
    outlier_variables: list[str] = field(default_factory=list)

    @classmethod
    def from_ect(cls, result) -> "VerdictReport":
        """Summarize an :class:`~repro.ect.EctResult`."""
        return cls(
            consistent=bool(result.consistent),
            n_runs=int(result.n_runs),
            n_pcs=int(result.n_pcs),
            failing_pcs=[int(pc) for pc in result.failing_pcs],
            failing_variables=list(result.failing_variables),
            invariant_violations=list(result.invariant_violations),
            outlier_variables=list(result.outlier_variables),
        )

    @property
    def detected(self) -> bool:
        """True when the change was flagged (the runs are inconsistent)."""
        return not self.consistent

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "VerdictReport":
        return cls(
            consistent=bool(data["consistent"]),
            n_runs=int(data["n_runs"]),
            n_pcs=int(data["n_pcs"]),
            failing_pcs=[int(pc) for pc in data["failing_pcs"]],
            failing_variables=list(data["failing_variables"]),
            invariant_violations=list(data["invariant_violations"]),
            outlier_variables=list(data["outlier_variables"]),
        )


@dataclass
class LocalizationReport:
    """One experiment's end-to-end outcome: verdict plus localization.

    ``localized`` is the paper's success criterion: the change was
    detected, the refined suspect set is within ``target_modules``, and —
    when the experiment names an expected culprit (a bug patch targeting
    one file) — that module is inside the set.  Whole-model changes like
    global FMA contraction have no single culprit module
    (``expected_modules`` empty), so containment is vacuously satisfied
    and detection + size carry the verdict.
    """

    experiment: str
    patch: Optional[str]
    fma: bool
    expected_modules: list[str]
    verdict: VerdictReport
    slice_modules: list[str]
    refined_modules: list[str]
    refine_iterations: int
    target_modules: int
    total_modules: int
    #: the selection stage's outcome (None on pre-selection reports):
    #: modules / anchors / solver / optimal / nodes_explored /
    #: warm_start_gap, as plain JSON-safe data
    selection: Optional[dict] = None

    @property
    def detected(self) -> bool:
        return self.verdict.detected

    @property
    def contained(self) -> bool:
        """Expected culprit inside the refined set (vacuous when unknown)."""
        if not self.expected_modules:
            return True
        return any(m in self.refined_modules for m in self.expected_modules)

    @property
    def localized(self) -> bool:
        return (
            self.detected
            and len(self.refined_modules) <= self.target_modules
            and self.contained
        )

    def to_dict(self) -> dict:
        return {
            "experiment": self.experiment,
            "patch": self.patch,
            "fma": self.fma,
            "expected_modules": list(self.expected_modules),
            "verdict": self.verdict.to_dict(),
            "slice_modules": list(self.slice_modules),
            "refined_modules": list(self.refined_modules),
            "refine_iterations": self.refine_iterations,
            "target_modules": self.target_modules,
            "total_modules": self.total_modules,
            "selection": self.selection,
            # derived, for consumers reading the JSON without this class
            "detected": self.detected,
            "contained": self.contained,
            "localized": self.localized,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LocalizationReport":
        return cls(
            experiment=str(data["experiment"]),
            patch=data["patch"],
            fma=bool(data["fma"]),
            expected_modules=list(data["expected_modules"]),
            verdict=VerdictReport.from_dict(data["verdict"]),
            slice_modules=list(data["slice_modules"]),
            refined_modules=list(data["refined_modules"]),
            refine_iterations=int(data["refine_iterations"]),
            target_modules=int(data["target_modules"]),
            total_modules=int(data["total_modules"]),
            selection=data.get("selection"),  # absent in pre-selection JSON
        )

    def to_json(self) -> str:
        import json

        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def to_markdown(self) -> str:
        v = self.verdict
        change = (
            f"patch `{self.patch}`"
            if self.patch
            else ("global FMA contraction" if self.fma else "control")
        )
        lines = [
            f"# Root cause report: {self.experiment}",
            "",
            f"Change under test: {change}.",
            "",
            "## Verdict",
            "",
            f"- consistent: **{v.consistent}** "
            f"({len(v.failing_pcs)} of {v.n_pcs} PCs failing, "
            f"{v.n_runs} runs)",
            f"- failing variables: "
            f"{', '.join(v.failing_variables) or '(none)'}",
        ]
        if v.invariant_violations:
            lines.append(
                f"- invariant violations: {', '.join(v.invariant_violations)}"
            )
        if v.outlier_variables:
            lines.append(
                f"- gross outliers: {', '.join(v.outlier_variables)}"
            )
        lines += [
            "",
            "## Localization",
            "",
            f"- slice: {len(self.slice_modules)} of "
            f"{self.total_modules} modules",
        ]
        if self.selection is not None and self.selection.get("modules"):
            sel = self.selection
            lines.append(
                f"- selection: {len(sel['modules'])} modules via "
                f"`{sel.get('solver', '?')}` "
                f"({'optimal' if sel.get('optimal') else 'node limit'}, "
                f"{len(sel.get('anchors', []))} anchored)"
            )
        lines += [
            f"- refined: {len(self.refined_modules)} modules "
            f"(target <= {self.target_modules}) "
            f"after {self.refine_iterations} iterations",
        ]
        if self.expected_modules:
            lines.append(
                f"- expected culprit: {', '.join(self.expected_modules)} "
                f"({'contained' if self.contained else 'MISSED'})"
            )
        lines += [
            "",
            f"**Localized: {self.localized}** "
            f"(detected={self.detected}, contained={self.contained})",
            "",
            "### Refined suspect set",
            "",
        ]
        lines += [f"1. {module}" for module in self.refined_modules]
        return "\n".join(lines) + "\n"


def expected_culprit_modules(source, patch: Optional[str]) -> list[str]:
    """The modules the named bug patch touches (empty for no/global change)."""
    if patch is None:
        return []
    from ..model.patches import get_patch
    from ..slicing import module_file_map

    filename = get_patch(patch).filename
    return sorted(
        module
        for module, fname in module_file_map(source).items()
        if fname == filename
    )


def build_report(
    *,
    experiment: str,
    patch: Optional[str],
    fma: bool,
    source,
    verdict,
    ranked,
    refined,
    target_modules: int,
    selection=None,
) -> LocalizationReport:
    """Assemble the :class:`LocalizationReport` of one pipeline run.

    ``verdict`` is the pipeline's top-level :class:`~repro.ect.EctResult`,
    ``ranked`` the :class:`~repro.slicing.RankedSlice`, ``refined`` the
    :class:`~repro.refine.RefinementResult`, ``selection`` (optional) the
    :class:`~repro.selection.SelectionResult` that warm-started it.
    """
    selection_block = None
    if selection is not None and getattr(selection, "modules", ()):
        selection_block = {
            "modules": list(selection.modules),
            "anchors": list(selection.anchors),
            "evidence_variables": (
                list(selection.evidence.variables)
                if selection.evidence is not None
                else []
            ),
            "solver": selection.solver,
            "optimal": bool(selection.optimal),
            "nodes_explored": int(selection.nodes_explored),
            "cost": float(selection.cost),
            "warm_start_gap": float(selection.warm_start_gap),
        }
    return LocalizationReport(
        experiment=experiment,
        patch=patch,
        fma=fma,
        expected_modules=expected_culprit_modules(source, patch),
        verdict=VerdictReport.from_ect(verdict),
        slice_modules=list(ranked.modules),
        refined_modules=list(refined.modules),
        refine_iterations=refined.n_iterations,
        target_modules=target_modules,
        total_modules=refined.total_modules,
        selection=selection_block,
    )

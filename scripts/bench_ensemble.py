#!/usr/bin/env python
"""Benchmark the interpreter hot path, ensemble throughput, and the
end-to-end root-cause localization pipeline.

Writes ``BENCH_ensemble.json`` (repo root by default) with

* ``dispatch_s`` / ``compiled_s`` — best-of-R single-run wall time of the
  dispatch-walking interpreter (``compile=False``, the PR 2 baseline
  semantics) vs. the compiled-closure interpreter, same build, same seed,
  coverage on;
* ``speedup`` — ``dispatch_s / compiled_s`` (the PR acceptance floor is 2x);
* ``backends`` — ``members_per_s`` of the same cached-off ensemble
  generation through every registered execution backend (``serial``,
  ``thread``, ``process``, ``vectorized``).  The thread pool is
  GIL-bound, so on a multi-core machine the process pool (per-worker
  parsed-source cache) must come out ahead; on a single-core runner the
  scalar backends are expected to tie within noise.
* ``vectorized`` — the member-batched runtime over ``VEC_MEMBERS``
  members, measured member-cache **cold** in two variants plus warm:
  ``kernel_fused`` (the default path: conformant kgen kernels swapped
  into the hot loop), ``interpreted_vec`` (``REPRO_KGEN_FUSION=0``, the
  PR 7 baseline), and ``warm`` (a second pass against a populated member
  cache, which must re-run zero members).  The effective batch width is
  recorded under ``batch_size``.  The strict floors are 5x the best
  *scalar* backend for the fused number, and fused >= interpreted.
* ``localization`` — the whole pipeline per registered bug patch, driven
  through :func:`repro.pipeline.root_cause_pipeline` against one shared
  store: experimental runs -> ECT verdict -> coverage -> ranked backward
  slice -> set-cover selection -> Algorithm 5.4 refinement -> report.
  Records ``refine_iters``, ``seconds_to_localize`` (end-to-end per
  patch, accepted ensemble amortized: shared-stage wall time excluded),
  whether the patch was ``localized`` (refined set at most 10 of the 40
  modules and containing the patched module), and a per-patch
  ``selection`` block (cover size, anchors, solver, nodes explored,
  optimality, warm-start gap) recording what the optimization stage
  contributed, so the perf trajectory covers the full root-cause path,
  not just member throughput.
* ``pipeline`` — per-stage wall times of every patch's pipeline run plus
  the final stage-store statistics, so stage-level perf and cache
  behavior (the later patches hit the shared accepted-ensemble stage)
  are part of the recorded trajectory.

Run from the repo root::

    PYTHONPATH=src python scripts/bench_ensemble.py [output.json] [--strict]

``--strict`` exits 1 when the compiled-path speedup is below the 2x
acceptance floor, when (given >1 CPU) the process backend does not beat
the thread backend, when the vectorized runtime is below 5x the best
scalar backend, when kernel-fused throughput falls below the
interpreted-vec baseline (or the warm pass re-runs any member), when
any registered patch fails to localize, or when any patch regresses
against the pre-selection (PR 6) localization baselines — more refined
modules than ``min(8, baseline)`` or more refinement iterations than the
baseline took — the
regression gate CI applies on its newest-Python matrix entry.  Checks a
runner cannot meaningfully make (the process-vs-thread ordering on a
single CPU) are skipped, and every skip is recorded with its reason under
``strict_skips`` in the JSON.  Wall-clock *numbers* stay ungated
everywhere (shared runners are too noisy); only the speedup ratios, the
backend ordering and the localization outcome are.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

from repro.ensemble import EnsembleSpec, generate_ensemble, list_backends
from repro.experiments import get_experiment
from repro.model import list_patches
from repro.model.builder import ModelConfig, build_model_source
from repro.obs import get_metrics, runtime_info
from repro.pipeline import root_cause_pipeline
from repro.runtime.interpreter import Interpreter

REPEATS = 5
NSTEPS = 1
ENSEMBLE_MEMBERS = 8
#: batch width of the dedicated vectorized measurement — wide enough to
#: amortize per-statement numpy overhead over the member axis
VEC_MEMBERS = 128
#: strict floor: vectorized throughput vs the best scalar backend
VEC_SPEEDUP_FLOOR = 5.0
#: accepted-ensemble size of the localization bench (the smallest at which
#: every registered patch is both detected and sliced correctly)
LOCALIZE_MEMBERS = 30
#: the paper-scale localization bar: 10 of the 40 modules
LOCALIZE_TARGET = 10
#: pre-selection (PR 6) per-patch localization baselines
#: (refined modules, refine iterations) — the optimization-based
#: selection stage must do no worse on either axis
PR6_BASELINES = {
    "cldfrc-premib": (8, 5),
    "goffgratch": (9, 6),
    "mg-autoconv": (8, 6),
    "rand-mt": (8, 6),
    "wsubbug": (10, 4),
}
#: the selection acceptance bar: every patch down to at most 8 modules
SELECTION_MODULE_CAP = 8


def time_single_run(asts, compile_flag: bool) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        interp = Interpreter(asts, seed=1, compile=compile_flag)
        interp.call("cam_comp", "cam_init", [0.0, 1])
        for _ in range(NSTEPS):
            interp.call("cam_comp", "cam_run_step", [])
        best = min(best, time.perf_counter() - start)
    return best


def bench_backend(spec, source, backend: str, cache_dir=None) -> dict:
    start = time.perf_counter()
    ensemble = generate_ensemble(
        spec, source=source, backend=backend, cache_dir=cache_dir
    )
    total = time.perf_counter() - start
    return {
        "total_s": round(total, 3),
        "members_per_s": round(ensemble.n_members / total, 2),
        "members_rerun": ensemble.cache_misses if cache_dir else spec.n_members,
    }


def bench_vectorized(source, strict: bool) -> dict:
    """The member-batched runtime, kernel-fused vs interpreted vs warm.

    Both throughput passes run member-cache *cold* — no ``cache_dir`` at
    all, so neither measurement can absorb hits from the other (the old
    bench measured the vectorized backend twice against shared state; the
    second number silently benefited from warm parse/registry caches).
    The one-time kernel extraction + conformance sweep is hoisted out of
    the timed region (it is memoized per build, a setup cost not a
    throughput cost), the interpreted pass disables fusion via
    ``REPRO_KGEN_FUSION=0``, and a separate warm pair (populate a member
    cache, then re-run against it) is recorded under ``warm`` with its
    re-run count — which must be zero.
    """
    from repro.ensemble.backends import VectorizedBackend
    from repro.kgen import kernel_registry_for

    spec = EnsembleSpec(n_members=VEC_MEMBERS, nsteps=NSTEPS)

    def cold(fused: bool) -> dict:
        if not fused:
            os.environ["REPRO_KGEN_FUSION"] = "0"
        try:
            return bench_backend(spec, source, "vectorized")
        finally:
            os.environ.pop("REPRO_KGEN_FUSION", None)

    registry = kernel_registry_for(source, spec.fp)  # hoisted setup cost
    interpreted = cold(fused=False)
    fused = cold(fused=True)
    if strict and fused["members_per_s"] < interpreted["members_per_s"]:
        # same benefit of the doubt the compiled-speedup gate gets:
        # re-measure both cold passes once and keep the better pair
        retry_interpreted = cold(fused=False)
        retry_fused = cold(fused=True)
        if (
            retry_fused["members_per_s"] / retry_interpreted["members_per_s"]
            > fused["members_per_s"] / interpreted["members_per_s"]
        ):
            interpreted, fused = retry_interpreted, retry_fused

    with tempfile.TemporaryDirectory(prefix="bench-vec-warm-") as cache_dir:
        generate_ensemble(
            spec, source=source, backend="vectorized", cache_dir=cache_dir
        )
        warm = bench_backend(spec, source, "vectorized", cache_dir=cache_dir)

    batch = VectorizedBackend().effective_batch_size()
    return {
        "members": VEC_MEMBERS,
        "batch_size": batch if batch is not None else "auto",
        "kernels": len(registry),
        "kernel_fused": fused,
        "interpreted_vec": interpreted,
        "warm": warm,
        "fused_vs_interpreted": round(
            fused["members_per_s"] / interpreted["members_per_s"], 2
        ),
        # headline numbers stay at the top level (and stay the fused path,
        # which is what `backend="vectorized"` now runs by default)
        "total_s": fused["total_s"],
        "members_per_s": fused["members_per_s"],
    }


#: stages shared (and so amortized) across patches through the one store
SHARED_STAGES = ("control_source", "metagraph", "control_ensemble")


def bench_localization(store_dir: str) -> tuple[dict, dict]:
    """End-to-end per-patch localization through the root-cause pipeline.

    Every patch's experiment runs against the same store, so the
    accepted-ensemble stage is generated by the first patch and resumed
    by the rest — the same amortization the old hand-wired bench did by
    hoisting the ensemble out of the loop, now expressed (and verified)
    by stage cache hits.  Returns ``(localization, pipeline)`` payload
    sections.
    """
    accepted_s = 0.0
    patches: dict[str, dict] = {}
    stage_timings: dict[str, dict] = {}
    store_stats: dict = {}
    for patch in sorted(list_patches()):
        result = root_cause_pipeline(
            get_experiment(patch), store_dir=store_dir
        ).run()
        report = result["report"]
        ensemble_record = result.record("control_ensemble")
        if ensemble_record.status == "ran":
            accepted_s += ensemble_record.wall_s
        seconds = sum(
            rec.wall_s
            for rec in result.records
            if rec.name not in SHARED_STAGES
        )
        sel = report.selection or {}
        patches[patch] = {
            "detected": report.detected,
            "slice_modules": len(report.slice_modules),
            "refined_modules": len(report.refined_modules),
            "refine_iters": report.refine_iterations,
            "seconds_to_localize": round(seconds, 3),
            "localized": report.localized,
            "selection": {
                "modules": len(sel.get("modules", [])),
                "anchors": len(sel.get("anchors", [])),
                "evidence_variables": len(sel.get("evidence_variables", [])),
                "solver": sel.get("solver"),
                "optimal": sel.get("optimal"),
                "nodes_explored": sel.get("nodes_explored"),
                "warm_start_gap": sel.get("warm_start_gap"),
            },
        }
        stage_timings[patch] = result.timings()
        store_stats = result.store_stats
    localization = {
        "accepted_members": LOCALIZE_MEMBERS,
        "accepted_ensemble_s": round(accepted_s, 3),
        "target_modules": LOCALIZE_TARGET,
        "selection_module_cap": SELECTION_MODULE_CAP,
        "pr6_baselines": {
            name: {"refined_modules": mods, "refine_iters": iters}
            for name, (mods, iters) in sorted(PR6_BASELINES.items())
        },
        "patches": patches,
        "all_localized": all(p["localized"] for p in patches.values()),
    }
    pipeline = {"stages": stage_timings, "store": store_stats}
    return localization, pipeline


def main() -> int:
    args = [a for a in sys.argv[1:] if a != "--strict"]
    strict = "--strict" in sys.argv[1:]
    out_path = Path(args[0]) if args else Path("BENCH_ensemble.json")

    source = build_model_source(ModelConfig())
    asts = source.parse()
    # warm both paths once so neither pays first-parse costs
    time_single_run(asts, True)

    dispatch_s = time_single_run(asts, False)
    compiled_s = time_single_run(asts, True)
    speedup = dispatch_s / compiled_s
    if strict and speedup < 2.0:
        # timing gates on shared runners deserve one benefit of the doubt:
        # re-measure (before the artifact is written, so the shipped
        # numbers are the ones the gate judged) and keep the better pair
        retry_dispatch = time_single_run(asts, False)
        retry_compiled = time_single_run(asts, True)
        if retry_dispatch / retry_compiled > speedup:
            dispatch_s, compiled_s = retry_dispatch, retry_compiled
            speedup = dispatch_s / compiled_s

    spec = EnsembleSpec(n_members=ENSEMBLE_MEMBERS, nsteps=NSTEPS)
    backends = {
        name: bench_backend(spec, source, name) for name in list_backends()
    }
    best_backend = max(backends, key=lambda n: backends[n]["members_per_s"])
    scalar_backends = [n for n in backends if n != "vectorized"]
    best_scalar = max(
        scalar_backends, key=lambda n: backends[n]["members_per_s"]
    )

    vec = bench_vectorized(source, strict)
    vec["speedup_vs_best_scalar"] = round(
        vec["members_per_s"] / backends[best_scalar]["members_per_s"], 2
    )

    with tempfile.TemporaryDirectory(prefix="bench-localize-") as store_dir:
        localization, pipeline = bench_localization(store_dir)

    multi_core = (os.cpu_count() or 1) > 1
    strict_skips: list[dict] = []
    if not multi_core:
        strict_skips.append(
            {
                "check": "process_beats_thread",
                "reason": "single-CPU runner: the process pool cannot be "
                "expected to beat the GIL-bound thread pool without a "
                "second core",
            }
        )

    payload = {
        "benchmark": "repro-ensemble-interpreter",
        "nsteps": NSTEPS,
        "repeats": REPEATS,
        "dispatch_s": round(dispatch_s, 4),
        "compiled_s": round(compiled_s, 4),
        "speedup": round(speedup, 2),
        "ensemble_members": ENSEMBLE_MEMBERS,
        "backends": backends,
        "best_backend": best_backend,
        "best_scalar_backend": best_scalar,
        "ensemble_members_per_s": backends[best_backend]["members_per_s"],
        "vectorized": vec,
        "localization": localization,
        "pipeline": pipeline,
        "strict_skips": strict_skips,
        "cpus": os.cpu_count(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        # repro.obs telemetry accumulated over everything the bench ran:
        # interpreter statement volume, cache traffic, refinement iteration
        # counts — the "where did the seconds and misses go" record that
        # makes bench trajectories across machines interpretable
        "obs": {"metrics": get_metrics().snapshot()},
        "runtime": runtime_info(),
    }
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))

    failed = False
    if speedup < 2.0:
        print(
            f"WARNING: compiled-path speedup {speedup:.2f}x is below the "
            "2x acceptance floor",
            file=sys.stderr,
        )
        failed = True
    if (
        "process" in backends
        and "thread" in backends
        and backends["process"]["members_per_s"]
        <= backends["thread"]["members_per_s"]
    ):
        print(
            "WARNING: process backend "
            f"({backends['process']['members_per_s']} members/s) did not "
            f"beat thread backend "
            f"({backends['thread']['members_per_s']} members/s)"
            + (
                ""
                if multi_core
                else " — check skipped on this single-CPU machine "
                "(see strict_skips)"
            ),
            file=sys.stderr,
        )
        failed = failed or multi_core
    if vec["speedup_vs_best_scalar"] < VEC_SPEEDUP_FLOOR:
        print(
            f"WARNING: vectorized backend ({vec['members_per_s']} "
            f"members/s) is below {VEC_SPEEDUP_FLOOR}x the best scalar "
            f"backend ({best_scalar}: "
            f"{backends[best_scalar]['members_per_s']} members/s)",
            file=sys.stderr,
        )
        failed = True
    if (
        vec["kernel_fused"]["members_per_s"]
        < vec["interpreted_vec"]["members_per_s"]
    ):
        print(
            "WARNING: kernel-fused vectorized throughput "
            f"({vec['kernel_fused']['members_per_s']} members/s) fell "
            "below the interpreted-vec baseline "
            f"({vec['interpreted_vec']['members_per_s']} members/s) — "
            "fusion must never cost throughput",
            file=sys.stderr,
        )
        failed = True
    if vec["warm"]["members_rerun"] != 0:
        print(
            f"WARNING: warm vectorized pass re-ran "
            f"{vec['warm']['members_rerun']} members — the member cache "
            "should have satisfied all of them",
            file=sys.stderr,
        )
        failed = True
    if not payload["obs"]["metrics"]["counters"]:
        print(
            "WARNING: the obs metrics block is empty — instrumentation "
            "recorded nothing across a full bench run",
            file=sys.stderr,
        )
        failed = True
    if not localization["all_localized"]:
        bad = [
            name
            for name, p in localization["patches"].items()
            if not p["localized"]
        ]
        print(
            f"WARNING: patches not localized to <= {LOCALIZE_TARGET} "
            f"modules containing the patched module: {', '.join(bad)}",
            file=sys.stderr,
        )
        failed = True
    regressions = []
    for name, p in sorted(localization["patches"].items()):
        base_modules, base_iters = PR6_BASELINES.get(
            name, (LOCALIZE_TARGET, LOCALIZE_TARGET)
        )
        cap = min(SELECTION_MODULE_CAP, base_modules)
        if p["refined_modules"] > cap:
            regressions.append(
                f"{name}: {p['refined_modules']} refined modules "
                f"(cap {cap})"
            )
        if p["refine_iters"] > base_iters:
            regressions.append(
                f"{name}: {p['refine_iters']} refine iterations "
                f"(baseline {base_iters})"
            )
    if regressions:
        print(
            "WARNING: localization regressed against the pre-selection "
            "baselines — " + "; ".join(regressions),
            file=sys.stderr,
        )
        failed = True
    return 1 if strict and failed else 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Benchmark the interpreter hot path and per-backend ensemble throughput.

Writes ``BENCH_ensemble.json`` (repo root by default) with

* ``dispatch_s`` / ``compiled_s`` — best-of-R single-run wall time of the
  dispatch-walking interpreter (``compile=False``, the PR 2 baseline
  semantics) vs. the compiled-closure interpreter, same build, same seed,
  coverage on;
* ``speedup`` — ``dispatch_s / compiled_s`` (the PR acceptance floor is 2x);
* ``backends`` — ``members_per_s`` of the same cached-off ensemble
  generation through every registered execution backend (``serial``,
  ``thread``, ``process``).  The thread pool is GIL-bound, so on a
  multi-core machine the process pool (per-worker parsed-source cache)
  must come out ahead; on a single-core runner the three are expected to
  tie within noise.

Run from the repo root::

    PYTHONPATH=src python scripts/bench_ensemble.py [output.json] [--strict]

``--strict`` exits 1 when the compiled-path speedup is below the 2x
acceptance floor or (given >1 CPU) the process backend does not beat the
thread backend — meant for local acceptance checks on a quiet machine.
CI runs without it (shared runners are too noisy for hard wall-clock
gates) and tracks the numbers through the uploaded artifact instead.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path

from repro.ensemble import EnsembleSpec, generate_ensemble, list_backends
from repro.model.builder import ModelConfig, build_model_source
from repro.runtime.interpreter import Interpreter

REPEATS = 5
NSTEPS = 1
ENSEMBLE_MEMBERS = 8


def time_single_run(asts, compile_flag: bool) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        interp = Interpreter(asts, seed=1, compile=compile_flag)
        interp.call("cam_comp", "cam_init", [0.0, 1])
        for _ in range(NSTEPS):
            interp.call("cam_comp", "cam_run_step", [])
        best = min(best, time.perf_counter() - start)
    return best


def bench_backend(spec, source, backend: str) -> dict:
    start = time.perf_counter()
    ensemble = generate_ensemble(spec, source=source, backend=backend)
    total = time.perf_counter() - start
    return {
        "total_s": round(total, 3),
        "members_per_s": round(ensemble.n_members / total, 2),
    }


def main() -> int:
    args = [a for a in sys.argv[1:] if a != "--strict"]
    strict = "--strict" in sys.argv[1:]
    out_path = Path(args[0]) if args else Path("BENCH_ensemble.json")

    source = build_model_source(ModelConfig())
    asts = source.parse()
    # warm both paths once so neither pays first-parse costs
    time_single_run(asts, True)

    dispatch_s = time_single_run(asts, False)
    compiled_s = time_single_run(asts, True)
    speedup = dispatch_s / compiled_s

    spec = EnsembleSpec(n_members=ENSEMBLE_MEMBERS, nsteps=NSTEPS)
    backends = {
        name: bench_backend(spec, source, name) for name in list_backends()
    }
    best_backend = max(backends, key=lambda n: backends[n]["members_per_s"])

    payload = {
        "benchmark": "repro-ensemble-interpreter",
        "nsteps": NSTEPS,
        "repeats": REPEATS,
        "dispatch_s": round(dispatch_s, 4),
        "compiled_s": round(compiled_s, 4),
        "speedup": round(speedup, 2),
        "ensemble_members": ENSEMBLE_MEMBERS,
        "backends": backends,
        "best_backend": best_backend,
        "ensemble_members_per_s": backends[best_backend]["members_per_s"],
        "cpus": os.cpu_count(),
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))

    failed = False
    if speedup < 2.0:
        print(
            f"WARNING: compiled-path speedup {speedup:.2f}x is below the "
            "2x acceptance floor",
            file=sys.stderr,
        )
        failed = True
    multi_core = (os.cpu_count() or 1) > 1
    if (
        "process" in backends
        and "thread" in backends
        and backends["process"]["members_per_s"]
        <= backends["thread"]["members_per_s"]
    ):
        print(
            "WARNING: process backend "
            f"({backends['process']['members_per_s']} members/s) did not "
            f"beat thread backend "
            f"({backends['thread']['members_per_s']} members/s)"
            + ("" if multi_core else " — expected on a single-CPU machine"),
            file=sys.stderr,
        )
        failed = failed or multi_core
    return 1 if strict and failed else 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Benchmark the interpreter hot path and ensemble throughput.

Writes ``BENCH_ensemble.json`` (repo root by default) with

* ``dispatch_s`` / ``compiled_s`` — best-of-R single-run wall time of the
  dispatch-walking interpreter (``compile=False``, the PR 2 baseline
  semantics) vs. the compiled-closure interpreter, same build, same seed,
  coverage on;
* ``speedup`` — ``dispatch_s / compiled_s`` (the PR acceptance floor is 2x);
* ``ensemble`` — members/sec of a small cached-off ensemble generation.

Run from the repo root::

    PYTHONPATH=src python scripts/bench_ensemble.py [output.json] [--strict]

``--strict`` exits 1 when the speedup is below the 2x acceptance floor —
meant for local acceptance checks on a quiet machine.  CI runs without it
(shared runners are too noisy for a hard wall-clock gate) and tracks the
number through the uploaded artifact instead.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path

from repro.ensemble import EnsembleSpec, generate_ensemble
from repro.model.builder import ModelConfig, build_model_source
from repro.runtime.interpreter import Interpreter

REPEATS = 5
NSTEPS = 1


def time_single_run(asts, compile_flag: bool) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        interp = Interpreter(asts, seed=1, compile=compile_flag)
        interp.call("cam_comp", "cam_init", [0.0, 1])
        for _ in range(NSTEPS):
            interp.call("cam_comp", "cam_run_step", [])
        best = min(best, time.perf_counter() - start)
    return best


def main() -> int:
    args = [a for a in sys.argv[1:] if a != "--strict"]
    strict = "--strict" in sys.argv[1:]
    out_path = Path(args[0]) if args else Path("BENCH_ensemble.json")

    source = build_model_source(ModelConfig())
    asts = source.parse()
    # warm both paths once so neither pays first-parse costs
    time_single_run(asts, True)

    dispatch_s = time_single_run(asts, False)
    compiled_s = time_single_run(asts, True)
    speedup = dispatch_s / compiled_s

    spec = EnsembleSpec(n_members=8, nsteps=NSTEPS)
    start = time.perf_counter()
    ensemble = generate_ensemble(spec, source=source)
    ensemble_s = time.perf_counter() - start

    payload = {
        "benchmark": "repro-ensemble-interpreter",
        "nsteps": NSTEPS,
        "repeats": REPEATS,
        "dispatch_s": round(dispatch_s, 4),
        "compiled_s": round(compiled_s, 4),
        "speedup": round(speedup, 2),
        "ensemble_members": ensemble.n_members,
        "ensemble_total_s": round(ensemble_s, 3),
        "ensemble_members_per_s": round(ensemble.n_members / ensemble_s, 2),
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    if speedup < 2.0:
        print(
            f"WARNING: compiled-path speedup {speedup:.2f}x is below the "
            "2x acceptance floor",
            file=sys.stderr,
        )
        if strict:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Benchmark the interpreter hot path, ensemble throughput, and the
end-to-end root-cause localization pipeline.

Writes ``BENCH_ensemble.json`` (repo root by default) with

* ``dispatch_s`` / ``compiled_s`` — best-of-R single-run wall time of the
  dispatch-walking interpreter (``compile=False``, the PR 2 baseline
  semantics) vs. the compiled-closure interpreter, same build, same seed,
  coverage on;
* ``speedup`` — ``dispatch_s / compiled_s`` (the PR acceptance floor is 2x);
* ``backends`` — ``members_per_s`` of the same cached-off ensemble
  generation through every registered execution backend (``serial``,
  ``thread``, ``process``).  The thread pool is GIL-bound, so on a
  multi-core machine the process pool (per-worker parsed-source cache)
  must come out ahead; on a single-core runner the three are expected to
  tie within noise.
* ``localization`` — the whole pipeline per registered bug patch:
  experimental runs -> ECT verdict -> coverage -> ranked backward slice ->
  Algorithm 5.4 refinement.  Records ``refine_iters``,
  ``seconds_to_localize`` (end-to-end per patch, accepted ensemble
  amortized) and whether the patch was ``localized`` (refined set at most
  10 of the 40 modules and containing the patched module), so the perf
  trajectory covers the full root-cause path, not just member throughput.

Run from the repo root::

    PYTHONPATH=src python scripts/bench_ensemble.py [output.json] [--strict]

``--strict`` exits 1 when the compiled-path speedup is below the 2x
acceptance floor, when (given >1 CPU) the process backend does not beat
the thread backend, or when any registered patch fails to localize — the
regression gate CI applies on its newest-Python matrix entry.  Wall-clock
*numbers* stay ungated everywhere (shared runners are too noisy); only
the speedup ratio, the backend ordering and the localization outcome are.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

from repro.ect import UltraFastECT
from repro.ensemble import EnsembleSpec, generate_ensemble, list_backends
from repro.graphs import build_metagraph
from repro.model import get_patch, list_patches
from repro.model.builder import ModelConfig, build_model_source
from repro.refine import IterativeRefinement
from repro.runtime import RunConfig, run_model
from repro.runtime.interpreter import Interpreter
from repro.slicing import module_file_map, slice_failing_runs

REPEATS = 5
NSTEPS = 1
ENSEMBLE_MEMBERS = 8
#: accepted-ensemble size of the localization bench (the smallest at which
#: every registered patch is both detected and sliced correctly)
LOCALIZE_MEMBERS = 30
#: the paper-scale localization bar: 10 of the 40 modules
LOCALIZE_TARGET = 10


def time_single_run(asts, compile_flag: bool) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        interp = Interpreter(asts, seed=1, compile=compile_flag)
        interp.call("cam_comp", "cam_init", [0.0, 1])
        for _ in range(NSTEPS):
            interp.call("cam_comp", "cam_run_step", [])
        best = min(best, time.perf_counter() - start)
    return best


def bench_backend(spec, source, backend: str) -> dict:
    start = time.perf_counter()
    ensemble = generate_ensemble(spec, source=source, backend=backend)
    total = time.perf_counter() - start
    return {
        "total_s": round(total, 3),
        "members_per_s": round(ensemble.n_members / total, 2),
    }


def bench_localization(source, cache_dir: str) -> dict:
    """End-to-end per-patch localization: runs -> ECT -> slice -> refine."""
    spec = EnsembleSpec(n_members=LOCALIZE_MEMBERS, collect_coverage=False)
    start = time.perf_counter()
    ensemble = generate_ensemble(spec, source=source, cache_dir=cache_dir)
    accepted_s = time.perf_counter() - start
    ect = UltraFastECT(ensemble)
    graph = build_metagraph(source)
    # the refinement ensemble is a member prefix: all cache hits
    refiner = IterativeRefinement(
        ensemble, source=source, graph=graph, cache_dir=cache_dir
    )
    file_modules: dict[str, set[str]] = {}
    for module, filename in module_file_map(source).items():
        file_modules.setdefault(filename, set()).add(module)

    patches: dict[str, dict] = {}
    for patch in sorted(list_patches()):
        t0 = time.perf_counter()
        model = ModelConfig(patches=(patch,))
        patched_source = build_model_source(model)
        runs = [
            run_model(
                spec.experimental_config(i, model=model),
                source=patched_source,
            )
            for i in range(3)
        ]
        verdict = ect.test(runs)
        coverage = run_model(
            RunConfig(model=model, nsteps=1), source=patched_source
        ).coverage
        ranked = slice_failing_runs(
            ensemble, runs, graph=graph, source=source,
            coverage=coverage, ect_result=verdict,
        )
        result = refiner.refine(ranked, runs, coverage=coverage)
        seconds = time.perf_counter() - t0
        patched_modules = file_modules[get_patch(patch).filename]
        patches[patch] = {
            "detected": not verdict.consistent,
            "slice_modules": len(ranked.modules),
            "refined_modules": len(result.modules),
            "refine_iters": result.n_iterations,
            "seconds_to_localize": round(seconds, 3),
            "localized": (
                not verdict.consistent
                and len(result.modules) <= LOCALIZE_TARGET
                and any(m in result for m in patched_modules)
            ),
        }
    return {
        "accepted_members": LOCALIZE_MEMBERS,
        "accepted_ensemble_s": round(accepted_s, 3),
        "target_modules": LOCALIZE_TARGET,
        "patches": patches,
        "all_localized": all(p["localized"] for p in patches.values()),
    }


def main() -> int:
    args = [a for a in sys.argv[1:] if a != "--strict"]
    strict = "--strict" in sys.argv[1:]
    out_path = Path(args[0]) if args else Path("BENCH_ensemble.json")

    source = build_model_source(ModelConfig())
    asts = source.parse()
    # warm both paths once so neither pays first-parse costs
    time_single_run(asts, True)

    dispatch_s = time_single_run(asts, False)
    compiled_s = time_single_run(asts, True)
    speedup = dispatch_s / compiled_s
    if strict and speedup < 2.0:
        # timing gates on shared runners deserve one benefit of the doubt:
        # re-measure (before the artifact is written, so the shipped
        # numbers are the ones the gate judged) and keep the better pair
        retry_dispatch = time_single_run(asts, False)
        retry_compiled = time_single_run(asts, True)
        if retry_dispatch / retry_compiled > speedup:
            dispatch_s, compiled_s = retry_dispatch, retry_compiled
            speedup = dispatch_s / compiled_s

    spec = EnsembleSpec(n_members=ENSEMBLE_MEMBERS, nsteps=NSTEPS)
    backends = {
        name: bench_backend(spec, source, name) for name in list_backends()
    }
    best_backend = max(backends, key=lambda n: backends[n]["members_per_s"])

    with tempfile.TemporaryDirectory(prefix="bench-localize-") as cache_dir:
        localization = bench_localization(source, cache_dir)

    payload = {
        "benchmark": "repro-ensemble-interpreter",
        "nsteps": NSTEPS,
        "repeats": REPEATS,
        "dispatch_s": round(dispatch_s, 4),
        "compiled_s": round(compiled_s, 4),
        "speedup": round(speedup, 2),
        "ensemble_members": ENSEMBLE_MEMBERS,
        "backends": backends,
        "best_backend": best_backend,
        "ensemble_members_per_s": backends[best_backend]["members_per_s"],
        "localization": localization,
        "cpus": os.cpu_count(),
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))

    failed = False
    if speedup < 2.0:
        print(
            f"WARNING: compiled-path speedup {speedup:.2f}x is below the "
            "2x acceptance floor",
            file=sys.stderr,
        )
        failed = True
    multi_core = (os.cpu_count() or 1) > 1
    if (
        "process" in backends
        and "thread" in backends
        and backends["process"]["members_per_s"]
        <= backends["thread"]["members_per_s"]
    ):
        print(
            "WARNING: process backend "
            f"({backends['process']['members_per_s']} members/s) did not "
            f"beat thread backend "
            f"({backends['thread']['members_per_s']} members/s)"
            + ("" if multi_core else " — expected on a single-CPU machine"),
            file=sys.stderr,
        )
        failed = failed or multi_core
    if not localization["all_localized"]:
        bad = [
            name
            for name, p in localization["patches"].items()
            if not p["localized"]
        ]
        print(
            f"WARNING: patches not localized to <= {LOCALIZE_TARGET} "
            f"modules containing the patched module: {', '.join(bad)}",
            file=sys.stderr,
        )
        failed = True
    return 1 if strict and failed else 0


if __name__ == "__main__":
    raise SystemExit(main())

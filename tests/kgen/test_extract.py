"""Kernel extraction: generated numpy kernels conform to the interpreter.

The extractor is useful exactly when its output is *provably* the same
computation as the scalar reference, so the tests lean on
:func:`verify_kernel`'s normalized-RMS gate: every default target must
come out bit-identical (nrms == 0), and the synthetic cases check the
if->where mask merge against hand-computed values as well as the
interpreter.  Constructs outside the vectorizable subset must raise
:class:`KernelError` rather than produce a silently wrong kernel.
"""

import numpy as np
import pytest

from repro.kgen import (
    DEFAULT_KERNEL_TARGETS,
    KernelError,
    extract_default_kernels,
    extract_kernel,
    nrms,
    verify_kernel,
)
from repro.runtime.interpreter import Interpreter

SYNTH_SRC = """
module synth
  implicit none
  real, parameter :: scale = 2.5
contains
  function piecewise(x) result(y)
    real, intent(in) :: x
    real :: y
    if (x > 1.0) then
      y = scale * x
    else if (x > 0.0) then
      y = x * x
    else
      y = -x
    end if
  end function piecewise

  function doubled(x) result(y)
    real, intent(in) :: x
    real :: y
    y = piecewise(x) + piecewise(x)
  end function doubled

  function looped(x) result(y)
    real, intent(in) :: x
    real :: y
    integer :: i
    y = 0.0
    do i = 1, 3
      y = y + x
    end do
  end function looped

  function dyn_loop(x, n) result(y)
    real, intent(in) :: x
    integer, intent(in) :: n
    real :: y
    integer :: i
    y = 0.0
    do i = 1, n
      y = y + x
    end do
  end function dyn_loop

  elemental subroutine split(x, lo, hi)
    real, intent(in) :: x
    real, intent(out) :: lo
    real, intent(out) :: hi
    if (x > 0.0) then
      hi = x * scale
      lo = 0.0
    else
      hi = 0.0
      lo = x * scale
    end if
  end subroutine split

  function arrayed(x) result(y)
    real, intent(in) :: x
    real :: buf(4)
    real :: y
    buf(1) = x
    y = buf(1)
  end function arrayed

  subroutine bump(x)
    real, intent(inout) :: x
    x = x + 1.0
  end subroutine bump
end module synth
"""


@pytest.fixture(scope="module")
def synth_interp():
    return Interpreter.from_source(SYNTH_SRC, collect_coverage=False)


class TestSyntheticExtraction:
    def test_if_chain_becomes_where_merge(self, synth_interp):
        kernel = extract_kernel(synth_interp, "synth", "piecewise")
        x = np.asarray([-2.0, 0.5, 3.0])
        np.testing.assert_array_equal(kernel(x), [2.0, 0.25, 7.5])
        assert "np.where" in kernel.source

    def test_matches_interpreter_per_element(self, synth_interp):
        kernel = extract_kernel(synth_interp, "synth", "piecewise")
        report = verify_kernel(
            kernel,
            synth_interp,
            samples={"x": np.linspace(-3.0, 3.0, 61)},
        )
        assert report.n_samples == 61
        assert report.nrms == 0.0
        assert report.conformant

    def test_module_constant_baked_as_literal(self, synth_interp):
        kernel = extract_kernel(synth_interp, "synth", "piecewise")
        assert "2.5" in kernel.source
        assert "scale" not in kernel.source

    def test_same_module_call_extracted_as_dependency(self, synth_interp):
        kernel = extract_kernel(synth_interp, "synth", "doubled")
        assert "_k_piecewise" in kernel.source
        np.testing.assert_array_equal(
            kernel(np.asarray([3.0])), [15.0]
        )

    def test_bounded_do_loop_unrolled(self, synth_interp):
        kernel = extract_kernel(synth_interp, "synth", "looped")
        np.testing.assert_array_equal(
            kernel(np.asarray([1.5, -2.0])), [4.5, -6.0]
        )
        report = verify_kernel(
            kernel,
            synth_interp,
            samples={"x": np.linspace(-3.0, 3.0, 31)},
        )
        assert report.nrms == 0.0

    def test_runtime_do_bound_refused(self, synth_interp):
        with pytest.raises(KernelError, match="compile-time"):
            extract_kernel(synth_interp, "synth", "dyn_loop")

    def test_elemental_subroutine_extracts_outputs(self, synth_interp):
        kernel = extract_kernel(synth_interp, "synth", "split")
        assert kernel.is_subroutine
        assert kernel.out_names == ["lo", "hi"]
        lo, hi = kernel(np.asarray([2.0, -2.0]))
        np.testing.assert_array_equal(lo, [0.0, -5.0])
        np.testing.assert_array_equal(hi, [5.0, 0.0])
        report = verify_kernel(
            kernel,
            synth_interp,
            samples={"x": np.linspace(-3.0, 3.0, 13)},
        )
        assert report.nrms == 0.0

    def test_array_local_refused(self, synth_interp):
        with pytest.raises(KernelError, match="array local"):
            extract_kernel(synth_interp, "synth", "arrayed")

    def test_subroutine_refused(self, synth_interp):
        with pytest.raises(KernelError, match="subroutine"):
            extract_kernel(synth_interp, "synth", "bump")

    def test_unknown_function_refused(self, synth_interp):
        with pytest.raises(KernelError, match="no function"):
            extract_kernel(synth_interp, "synth", "nope")


class TestDefaultTargets:
    def test_all_default_kernels_bit_identical(self):
        reports = extract_default_kernels()
        assert len(reports) == len(DEFAULT_KERNEL_TARGETS)
        for report in reports:
            assert report.n_samples == 256
            assert report.nrms == 0.0, report.kernel.function
            assert report.conformant

    def test_qsat_water_pulls_in_svp_kernel(self):
        kernel = extract_kernel(None, "wv_saturation", "qsat_water")
        assert "_k_goffgratch_svp" in kernel.source


class TestVerification:
    def test_nrms_zero_for_identical(self):
        a = np.asarray([1.0, 2.0, 3.0])
        assert nrms(a, a) == 0.0

    def test_nrms_normalizes_by_reference_scale(self):
        want = np.asarray([0.0, 100.0])
        got = np.asarray([1.0, 100.0])
        assert nrms(got, want) == pytest.approx(
            np.sqrt(0.5) / 100.0
        )

    def test_nrms_zero_reference_uses_unit_scale(self):
        assert nrms(np.asarray([3.0]), np.asarray([0.0])) == 3.0

    def test_verify_requires_samples_or_ranges(self, synth_interp):
        kernel = extract_kernel(synth_interp, "synth", "piecewise")
        with pytest.raises(ValueError, match="samples or ranges"):
            verify_kernel(kernel, synth_interp)

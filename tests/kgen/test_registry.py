"""The kernel registry only admits kernels the fused runtime may trust.

Three gates, each tested against the real model build: bit-identity
(nrms == 0, so a non-conformant kernel is rejected and counted as a
fallback), patch isolation (a kernel touching a patched module never
enters the registry — injected bugs must always execute interpreted),
and FP-model compatibility (FMA/FTZ builds reject every plain-numpy
kernel).  Registries are memoized per (source digest, fp identity).
"""

import dataclasses

import pytest

from repro.kgen import (
    DEFAULT_KERNEL_TARGETS,
    KernelRegistry,
    build_kernel_registry,
    extract_kernel,
    kernel_registry_for,
    verify_kernel,
)
from repro.kgen.extract import KernelReport
from repro.model import ModelConfig, build_model_source
from repro.obs import get_metrics
from repro.runtime import FPConfig


@pytest.fixture(scope="module")
def control_source():
    source = build_model_source(ModelConfig())
    source.parse()
    return source


@pytest.fixture(scope="module")
def control_registry(control_source):
    return build_kernel_registry(control_source)


class TestAdmission:
    def test_control_build_admits_every_default_target(
        self, control_registry
    ):
        assert len(control_registry) == len(DEFAULT_KERNEL_TARGETS)
        assert control_registry.rejected == {}
        for target in DEFAULT_KERNEL_TARGETS:
            assert (
                control_registry.lookup(target.module, target.function)
                is not None
            )

    def test_non_conformant_kernel_rejected(self, control_source):
        kernel = extract_kernel(None, "wv_saturation", "goffgratch_svp")
        good = verify_kernel(
            kernel, None, ranges=(("t", 180.0, 330.0),)
        )
        assert good.nrms == 0.0
        # the same kernel with a forged nonzero nrms must be refused
        bad = dataclasses.replace(good, nrms=1e-9)
        registry = KernelRegistry()
        before = get_metrics().counters().get("kgen.fallbacks", 0)
        assert registry.add(kernel, bad) is False
        assert registry.lookup(kernel.module, kernel.function) is None
        key = (kernel.module, kernel.function)
        assert "nrms" in registry.rejected[key]
        after = get_metrics().counters().get("kgen.fallbacks", 0)
        assert after == before + 1

    def test_nonzero_tolerance_admits_close_kernels(self):
        kernel = extract_kernel(None, "wv_saturation", "goffgratch_svp")
        report = KernelReport(
            kernel=kernel, n_samples=1, nrms=1e-13, tol=1e-12
        )
        registry = KernelRegistry(tol=1e-12)
        assert registry.add(kernel, report) is True


class TestPatchIsolation:
    def test_patched_module_kernels_rejected(self):
        registry = build_kernel_registry(
            ModelConfig(patches=("goffgratch",))
        )
        # every wv_saturation target depends on the patched module...
        for function in ("goffgratch_svp", "svp_ice", "qsat_water"):
            assert registry.lookup("wv_saturation", function) is None
            assert "patched" in registry.rejected[
                ("wv_saturation", function)
            ]
        # ...but the radsw kernel is untouched and stays admitted
        assert registry.lookup("radsw", "gravity_norm") is not None

    def test_unrelated_patch_rejects_nothing(self):
        registry = build_kernel_registry(
            ModelConfig(patches=("wsubbug",))
        )
        assert len(registry) == len(DEFAULT_KERNEL_TARGETS)
        assert registry.rejected == {}


class TestFPGate:
    def test_fma_rejects_every_kernel(self, control_source):
        registry = build_kernel_registry(
            control_source, fp=FPConfig(fma=True)
        )
        assert len(registry) == 0
        assert len(registry.rejected) == len(DEFAULT_KERNEL_TARGETS)
        for reason in registry.rejected.values():
            assert "fp model" in reason

    def test_flush_to_zero_rejects_every_kernel(self, control_source):
        registry = build_kernel_registry(
            control_source, fp=FPConfig(flush_to_zero=True)
        )
        assert len(registry) == 0

    def test_default_fp_is_compatible(self, control_source):
        registry = build_kernel_registry(control_source, fp=FPConfig())
        assert len(registry) == len(DEFAULT_KERNEL_TARGETS)


class TestMemoization:
    def test_same_build_and_fp_shares_the_registry(self, control_source):
        a = kernel_registry_for(control_source, FPConfig())
        b = kernel_registry_for(control_source, FPConfig())
        assert a is b

    def test_fp_identity_splits_the_cache(self, control_source):
        a = kernel_registry_for(control_source, FPConfig())
        b = kernel_registry_for(control_source, FPConfig(fma=True))
        assert a is not b
        assert len(a) > 0 and len(b) == 0

"""The lazy public API of :mod:`repro` resolves or fails loudly.

Every symbol in ``repro.__all__`` whose backing module is implemented must
import; symbols whose backing module is a later PR must raise a clear
``AttributeError`` naming the pending module — never a bare
``ModuleNotFoundError`` out of attribute access.
"""

import importlib

import pytest

import repro

#: backing modules implemented as of this PR
IMPLEMENTED_MODULES = {
    "repro.fortran",
    "repro.model",
    "repro.graphs",
    "repro.runtime",
    "repro.kgen",
    "repro.ensemble",
    "repro.ect",
    "repro.coverage",
    "repro.slicing",
    "repro.analysis",
    "repro.refine",
    "repro.pipeline",
    "repro.experiments",
    "repro.reporting",
    "repro.obs",
    "repro.selection",
    "repro.errors",
}

IMPLEMENTED = sorted(
    name
    for name, (module, _) in repro._LAZY_EXPORTS.items()
    if module in IMPLEMENTED_MODULES
)
PENDING = sorted(
    name
    for name, (module, _) in repro._LAZY_EXPORTS.items()
    if module not in IMPLEMENTED_MODULES
)


def test_version_is_exported():
    assert repro.__version__


def test_all_lists_every_lazy_export():
    assert set(repro._LAZY_EXPORTS) <= set(repro.__all__)


@pytest.mark.parametrize("name", IMPLEMENTED)
def test_implemented_symbols_resolve(name):
    assert getattr(repro, name) is not None


@pytest.mark.parametrize("name", IMPLEMENTED)
def test_lazy_export_matches_direct_import(name):
    module_name, attr = repro._LAZY_EXPORTS[name]
    assert getattr(repro, name) is getattr(importlib.import_module(module_name), attr)


@pytest.mark.parametrize("name", PENDING)
def test_pending_symbols_raise_clear_attribute_error(name):
    module_name, _ = repro._LAZY_EXPORTS[name]
    with pytest.raises(AttributeError, match=module_name):
        getattr(repro, name)


def test_unknown_attribute_raises_attribute_error():
    with pytest.raises(AttributeError, match="no attribute"):
        repro.definitely_not_exported


def test_dir_covers_all():
    assert set(repro.__all__) <= set(dir(repro))


def test_model_package_imports():
    # the regression this PR fixes: `import repro.model` used to raise
    module = importlib.import_module("repro.model")
    assert sorted(module.__all__)
    for name in module.__all__:
        assert getattr(module, name) is not None


def test_graphs_package_imports():
    module = importlib.import_module("repro.graphs")
    for name in module.__all__:
        assert getattr(module, name) is not None

"""Acceptance: Algorithm 5.4 localizes every registered patch.

For each of the five registered bug patches: slice the ECT-failing runs
(the PR 4 pipeline, plateaued at 18 of 40 modules), then refine — the
final suspect set must shrink to at most a quarter of the graph's modules
(<= 10 of 40) while still containing the patched module, deterministically,
and identically through every execution backend.
"""

import pytest

from repro.model import get_patch, list_patches
from repro.refine import IterativeRefinement, refine_slice

#: the paper-scale localization bar: 10 of the 40 modules
TARGET = 10


@pytest.mark.parametrize("patch", sorted(list_patches()))
def test_refinement_localizes_every_patch(
    patch, refiner, failing_case, file_modules
):
    runs, _, coverage, ranked = failing_case(patch)
    result = refiner.refine(ranked, runs, coverage=coverage)
    patched_modules = file_modules[get_patch(patch).filename]
    assert any(m in result for m in patched_modules), (
        f"{patch}: none of {sorted(patched_modules)} survived refinement "
        f"{result.summary()}"
    )
    assert len(result) <= TARGET, f"{patch}: {result.summary()}"
    assert len(result) < len(ranked.modules), f"{patch}: nothing pruned"
    assert result.n_iterations > 0
    # every pruned scope was exonerated by an intact-signal verdict
    pruned_steps = [s for s in result.steps if s.action == "pruned"]
    assert set(result.pruned) == {
        m for s in pruned_steps for m in s.candidate
    }
    assert all(s.consistent is False for s in pruned_steps)


@pytest.mark.parametrize("patch", sorted(list_patches()))
def test_refinement_is_deterministic_per_patch(
    patch, refiner, failing_case
):
    runs, _, coverage, ranked = failing_case(patch)
    first = refiner.refine(ranked, runs, coverage=coverage)
    second = refiner.refine(ranked, runs, coverage=coverage)
    assert first.modules == second.modules
    assert [s.candidate for s in first.steps] == [
        s.candidate for s in second.steps
    ]


def test_refine_slice_wrapper_matches_fitted_refiner(
    refiner, accepted_ensemble_30, control_graph, control_source,
    failing_case, file_modules,
):
    runs, _, coverage, ranked = failing_case("wsubbug")
    result = refine_slice(
        ranked,
        accepted_ensemble_30,
        runs,
        graph=control_graph,
        source=control_source,
        coverage=coverage,
        communities=refiner.communities,
    )
    fitted = refiner.refine(ranked, runs, coverage=coverage)
    assert result.modules == fitted.modules
    assert "microp_aero" in result


def test_refinement_is_backend_invariant(
    accepted_ensemble_30, control_source, control_graph, failing_case
):
    """Serial, thread and process ensembles are bit-identical, so the
    whole refinement trajectory must be too (the satellite determinism
    requirement)."""
    runs, _, coverage, ranked = failing_case("wsubbug")
    results = []
    for backend in ("serial", "thread", "process"):
        refiner = IterativeRefinement(
            accepted_ensemble_30,
            source=control_source,
            graph=control_graph,
            backend=backend,
        )
        results.append(refiner.refine(ranked, runs, coverage=coverage))
    serial, thread, process = results
    assert serial.modules == thread.modules == process.modules
    assert (
        [s.candidate for s in serial.steps]
        == [s.candidate for s in thread.steps]
        == [s.candidate for s in process.steps]
    )
    assert (
        serial.variable_weights
        == thread.variable_weights
        == process.variable_weights
    )

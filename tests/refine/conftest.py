"""Shared fixtures for the refinement suite.

The accepted 30-member ensemble comes from the session-scoped fixture in
``tests/conftest.py``; everything derived from the control model (source,
metagraph, communities, the fitted refiner) is package-scoped, and the
per-patch failing pipeline (runs, verdict, coverage, ranked slice) is
memoized so the two test files never re-run a patch.
"""

import pytest

from repro.ect import UltraFastECT
from repro.graphs import build_metagraph
from repro.model import ModelConfig, build_model_source, get_patch
from repro.refine import IterativeRefinement
from repro.runtime import RunConfig, run_model
from repro.slicing import module_file_map, slice_failing_runs


@pytest.fixture(scope="package")
def control_source():
    return build_model_source(ModelConfig())


@pytest.fixture(scope="package")
def control_graph(control_source):
    return build_metagraph(control_source)


@pytest.fixture(scope="package")
def file_modules(control_source):
    out = {}
    for module, filename in module_file_map(control_source).items():
        out.setdefault(filename, set()).add(module)
    return out


@pytest.fixture(scope="package")
def accepted_ect(accepted_ensemble_30):
    return UltraFastECT(accepted_ensemble_30)


@pytest.fixture(scope="package")
def refiner(accepted_ensemble_30, control_source, control_graph):
    """One fitted Algorithm 5.4 refiner shared by the whole suite."""
    return IterativeRefinement(
        accepted_ensemble_30, source=control_source, graph=control_graph
    )


@pytest.fixture(scope="package")
def failing_case(
    accepted_ensemble_30, accepted_ect, control_source, control_graph
):
    """``failing_case(patch)`` -> (runs, verdict, coverage, ranked slice)."""
    spec = accepted_ensemble_30.spec
    cache = {}

    def build(patch: str):
        if patch in cache:
            return cache[patch]
        model = ModelConfig(patches=(patch,))
        patched_source = build_model_source(model)
        runs = [
            run_model(
                spec.experimental_config(i, model=model),
                source=patched_source,
            )
            for i in range(3)
        ]
        verdict = accepted_ect.test(runs)
        assert not verdict.consistent, f"{patch} must fail ECT"
        coverage = run_model(
            RunConfig(model=model, nsteps=1), source=patched_source
        ).coverage
        ranked = slice_failing_runs(
            accepted_ensemble_30,
            runs,
            graph=control_graph,
            source=control_source,
            coverage=coverage,
            ect_result=verdict,
        )
        cache[patch] = (runs, verdict, coverage, ranked)
        return cache[patch]

    return build

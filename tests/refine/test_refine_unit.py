"""Unit behaviour of Algorithm 5.4: config validation, scoped tests,
refusal without a detectable signal, and the essential/pruned actions."""

import dataclasses

import pytest

from repro.refine import RefinementConfig, RefinementResult
from repro.slicing import RankedSlice


@pytest.mark.parametrize(
    "kwargs,match",
    [
        (dict(members=2), "members"),
        (dict(target_fraction=0.0), "target_fraction"),
        (dict(target_fraction=1.5), "target_fraction"),
        (dict(slack=-1), "slack"),
        (dict(sample_size=0), "sample_size"),
        (dict(decay=0.0), "decay"),
        (dict(decay=1.5), "decay"),
        (dict(top_variables=0), "variable counts"),
        (dict(evidence_variables=0), "variable counts"),
    ],
)
def test_config_validation(kwargs, match):
    with pytest.raises(ValueError, match=match):
        RefinementConfig(**kwargs)


def test_refinement_ensemble_is_a_member_prefix(
    refiner, accepted_ensemble_30
):
    """The small ensemble's members are the first k accepted members, so a
    shared artifact cache satisfies refinement regeneration instantly."""
    k = refiner.config.members
    assert refiner.ensemble.n_members == k
    assert (
        refiner.ensemble.matrix == accepted_ensemble_30.matrix[:k]
    ).all()
    assert (
        refiner.ensemble.variable_names
        == accepted_ensemble_30.variable_names
    )


def test_scoped_ect_restricts_to_requested_variables(refiner):
    ect = refiner.scoped_ect(["WSUB", "PRECT"])
    assert ect is not None
    bases = {n.replace("@first", "") for n in ect.variable_names}
    assert bases == {"WSUB", "PRECT"}
    # @first twins ride along with their base name
    assert any(n.endswith("@first") for n in ect.variable_names)
    assert refiner.scoped_ect(["NOT_A_FIELD"]) is None


def test_scoped_verdict_passes_for_accepted_members(refiner):
    vectors = [refiner.ensemble.matrix[i] for i in range(3)]
    verdict = refiner.scoped_verdict(["WSUB", "PRECT", "CLDLOW"], vectors)
    assert verdict is not None and verdict.consistent


def test_refine_refuses_to_prune_without_a_signal(
    refiner, accepted_ensemble_30, failing_case
):
    """Held-out unpatched runs carry no failure signal: the refinement must
    return the slice untouched rather than exonerate on no evidence."""
    from repro.runtime import run_model

    spec = accepted_ensemble_30.spec
    good_runs = [
        run_model(spec.experimental_config(i)) for i in range(3)
    ]
    _, _, coverage, ranked = failing_case("wsubbug")
    result = refiner.refine(ranked, good_runs, coverage=coverage)
    assert set(result.modules) == set(ranked.modules)
    assert result.steps == []
    assert result.verdict is None or result.verdict.consistent


def test_refine_never_prunes_scopes_it_cannot_test(
    refiner, failing_case
):
    """A suspect set outside every evidence slice (never-executed modules)
    leaves the exclusion test nothing to project onto: the refinement must
    mark such scopes essential instead of exonerating them untested."""
    runs, _, coverage, ranked = failing_case("wsubbug")
    config = dataclasses.replace(
        refiner.config,
        target_fraction=0.025,  # target of 1 forces the loop to the end
        sample_size=1,
    )
    tiny = RankedSlice(
        modules=["restart_mod", "seasalt_optics"],
        ranking=[("restart_mod", 2.0), ("seasalt_optics", 1.0)],
        variable_weights=dict(ranked.variable_weights),
        slices=dict(ranked.slices),
        total_modules=ranked.total_modules,
    )
    # IterativeRefinement is not a dataclass: rebind the config on a copy
    import copy

    refiner2 = copy.copy(refiner)
    refiner2.config = config
    result = refiner2.refine(tiny, runs, coverage=coverage)
    assert set(result.modules) == set(tiny.modules)  # nothing pruned
    assert all(step.action == "essential" for step in result.steps)
    assert all(step.consistent is None for step in result.steps)
    assert result.essential
    assert result.pruned == []


def test_refine_is_deterministic_for_a_fixed_seed(refiner, failing_case):
    runs, _, coverage, ranked = failing_case("wsubbug")
    first = refiner.refine(ranked, runs, coverage=coverage)
    second = refiner.refine(ranked, runs, coverage=coverage)
    assert first.modules == second.modules
    assert [s.candidate for s in first.steps] == [
        s.candidate for s in second.steps
    ]
    assert [s.action for s in first.steps] == [
        s.action for s in second.steps
    ]


def test_result_reporting_surface(refiner, failing_case):
    runs, _, coverage, ranked = failing_case("wsubbug")
    result = refiner.refine(ranked, runs, coverage=coverage)
    assert isinstance(result, RefinementResult)
    assert result.summary().startswith("RefinementResult(")
    assert len(result) == len(result.modules)
    assert result.modules[0] in result
    assert 0.0 < result.fraction < 0.5
    assert result.n_iterations == len(result.steps)
    # scores are reported for exactly the surviving modules, descending
    assert list(result.scores) == result.modules
    values = list(result.scores.values())
    assert values == sorted(values, reverse=True)

"""Unit tests for the Fortran-subset lexer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fortran.errors import LexError
from repro.fortran.lexer import tokenize_line
from repro.fortran.tokens import TokenType


def types_and_values(text):
    toks = tokenize_line(text)
    return [(t.type, t.value) for t in toks if t.type is not TokenType.EOL]


class TestNames:
    def test_simple_identifier(self):
        assert types_and_values("gravit") == [(TokenType.NAME, "gravit")]

    def test_identifiers_are_lowercased(self):
        assert types_and_values("Gravit QRL") == [
            (TokenType.NAME, "gravit"),
            (TokenType.NAME, "qrl"),
        ]

    def test_identifier_with_digits_and_underscores(self):
        assert types_and_values("micro_mg_tend2") == [
            (TokenType.NAME, "micro_mg_tend2")
        ]


class TestNumbers:
    def test_integer(self):
        assert types_and_values("42") == [(TokenType.INTEGER, "42")]

    def test_simple_real(self):
        assert types_and_values("3.14") == [(TokenType.REAL, "3.14")]

    def test_real_with_exponent(self):
        assert types_and_values("8.1328e-3") == [(TokenType.REAL, "8.1328e-3")]

    def test_real_with_d_exponent(self):
        assert types_and_values("1.d0") == [(TokenType.REAL, "1.d0")]

    def test_real_with_kind_suffix(self):
        assert types_and_values("0.20_r8") == [(TokenType.REAL, "0.20_r8")]

    def test_integer_with_kind_suffix(self):
        assert types_and_values("1_i8") == [(TokenType.INTEGER, "1_i8")]

    def test_real_trailing_dot(self):
        assert types_and_values("2. * x") == [
            (TokenType.REAL, "2."),
            (TokenType.OPERATOR, "*"),
            (TokenType.NAME, "x"),
        ]

    def test_leading_dot_real(self):
        assert types_and_values(".5") == [(TokenType.REAL, ".5")]

    def test_number_followed_by_dotop(self):
        # "1 .and." style is unusual but the dot must not be eaten by the number
        vals = types_and_values("i == 1 .and. flag")
        assert (TokenType.DOTOP, ".and.") in vals

    def test_integer_abutting_dot_eq(self):
        # "1.eq.2" must not lex as REAL "1." / NAME "eq" / REAL ".2"
        assert types_and_values("1.eq.2") == [
            (TokenType.INTEGER, "1"),
            (TokenType.OPERATOR, "=="),
            (TokenType.INTEGER, "2"),
        ]

    def test_integer_abutting_dot_and(self):
        assert types_and_values("1.and.x") == [
            (TokenType.INTEGER, "1"),
            (TokenType.DOTOP, ".and."),
            (TokenType.NAME, "x"),
        ]

    def test_dot_exponent_still_real(self):
        assert types_and_values("2.e3") == [(TokenType.REAL, "2.e3")]

    def test_dot_d_exponent_still_real(self):
        assert types_and_values("1.d0") == [(TokenType.REAL, "1.d0")]

    def test_one_line_if_with_dot_eq(self):
        vals = types_and_values("if (1.eq.2) x = 1")
        assert (TokenType.INTEGER, "1") in vals
        assert (TokenType.OPERATOR, "==") in vals
        assert all(t is not TokenType.REAL for t, _ in vals)

    def test_real_abutting_dotop(self):
        # the fractional part ends where the dot-operator begins
        assert types_and_values("1.5.and.x") == [
            (TokenType.REAL, "1.5"),
            (TokenType.DOTOP, ".and."),
            (TokenType.NAME, "x"),
        ]


class TestStringsAndLogicals:
    def test_single_quoted_string(self):
        assert types_and_values("'QRL'") == [(TokenType.STRING, "QRL")]

    def test_double_quoted_string(self):
        assert types_and_values('"WSUB"') == [(TokenType.STRING, "WSUB")]

    def test_escaped_quote(self):
        assert types_and_values("'don''t'") == [(TokenType.STRING, "don't")]

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize_line("'oops")

    def test_true_false(self):
        assert types_and_values(".true. .false.") == [
            (TokenType.LOGICAL, ".true."),
            (TokenType.LOGICAL, ".false."),
        ]

    def test_string_with_exclamation_is_not_comment(self):
        assert types_and_values("'a!b'") == [(TokenType.STRING, "a!b")]


class TestOperators:
    def test_arithmetic_operators(self):
        vals = [v for _, v in types_and_values("a + b - c * d / e ** f")]
        assert vals == ["a", "+", "b", "-", "c", "*", "d", "/", "e", "**", "f"]

    def test_relational_operators(self):
        vals = [v for _, v in types_and_values("a <= b >= c == d /= e")]
        assert "<=" in vals and ">=" in vals and "==" in vals and "/=" in vals

    def test_old_style_relational_operators_are_normalised(self):
        vals = [v for t, v in types_and_values("a .lt. b .ge. c .eq. d")]
        assert "<" in vals and ">=" in vals and "==" in vals

    def test_dot_logical_operators(self):
        out = types_and_values("a .and. b .or. .not. c")
        dotops = [v for t, v in out if t is TokenType.DOTOP]
        assert dotops == [".and.", ".or.", ".not."]

    def test_double_colon_and_arrow(self):
        vals = [v for _, v in types_and_values("real(r8) :: x => null()")]
        assert "::" in vals and "=>" in vals

    def test_percent_operator(self):
        vals = [v for _, v in types_and_values("state%omega(i,k)")]
        assert "%" in vals

    def test_comment_is_stripped(self):
        assert types_and_values("x ! a comment = 4") == [(TokenType.NAME, "x")]

    def test_unexpected_character_raises(self):
        with pytest.raises(LexError):
            tokenize_line("a $ b")


class TestStatementShapes:
    def test_assignment_statement(self):
        out = types_and_values("wsub(i) = 0.20_r8 * sqrt(tke(i,k))")
        names = [v for t, v in out if t is TokenType.NAME]
        assert names == ["wsub", "i", "sqrt", "tke", "i", "k"]
        # kind suffix stays attached to the literal, not a separate NAME
        assert (TokenType.REAL, "0.20_r8") in out

    def test_call_statement(self):
        out = types_and_values("call outfld('QRL', qrl, pcols, lchnk)")
        assert out[0] == (TokenType.NAME, "call")
        assert (TokenType.STRING, "QRL") in out

    def test_semicolon_emits_eol(self):
        toks = tokenize_line("a = 1; b = 2")
        assert sum(1 for t in toks if t.type is TokenType.EOL and t.value == ";") == 1


class TestLexerProperties:
    @given(st.from_regex(r"[a-z][a-z0-9_]{0,20}", fullmatch=True))
    def test_any_identifier_roundtrips(self, name):
        out = types_and_values(name)
        assert out == [(TokenType.NAME, name)]

    @given(st.integers(min_value=0, max_value=10**9))
    def test_any_integer_roundtrips(self, value):
        out = types_and_values(str(value))
        assert out == [(TokenType.INTEGER, str(value))]

    @given(
        st.floats(
            min_value=1e-12, max_value=1e12, allow_nan=False, allow_infinity=False
        )
    )
    def test_any_float_repr_lexes_as_real(self, value):
        text = repr(float(value))
        out = types_and_values(text)
        assert len(out) == 1
        assert out[0][0] in (TokenType.REAL, TokenType.INTEGER)

    @given(st.text(alphabet="abcdefghij_ ()+-*/,=%", max_size=40))
    def test_lexer_never_crashes_on_benign_alphabet(self, text):
        # Either tokenizes or raises LexError -- never any other exception.
        try:
            tokenize_line(text)
        except LexError:
            pass

    @given(st.lists(st.sampled_from(["a", "b1", "c_2", "x"]), min_size=1, max_size=6))
    def test_token_count_matches_word_count(self, words):
        text = " ".join(words)
        out = types_and_values(text)
        assert len(out) == len(words)

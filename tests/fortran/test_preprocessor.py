"""Unit tests for the CPP-style preprocessor."""

import pytest

from repro.fortran.errors import PreprocessorError
from repro.fortran.preprocessor import preprocess


def line_texts(source, macros=None):
    return [ln.text for ln in preprocess(source, macros=macros).lines]


class TestConditionals:
    def test_ifdef_taken(self):
        src = "#ifdef FC5\nx = 1\n#endif\n"
        assert line_texts(src, macros={"FC5": "1"}) == ["x = 1"]

    def test_ifdef_not_taken(self):
        src = "#ifdef FC5\nx = 1\n#endif\n"
        assert line_texts(src) == []

    def test_else_flips_branch(self):
        src = "#ifdef FC5\nx = 1\n#else\nx = 2\n#endif\n"
        assert line_texts(src) == ["x = 2"]
        assert line_texts(src, macros={"FC5": "1"}) == ["x = 1"]

    def test_duplicate_else_raises(self):
        src = "#ifdef FC5\nx = 1\n#else\nx = 2\n#else\nx = 3\n#endif\n"
        with pytest.raises(PreprocessorError, match="duplicate #else"):
            preprocess(src)

    def test_duplicate_else_raises_even_when_branch_taken(self):
        src = "#ifdef FC5\nx = 1\n#else\nx = 2\n#else\nx = 3\n#endif\n"
        with pytest.raises(PreprocessorError, match="duplicate #else"):
            preprocess(src, macros={"FC5": "1"})

    def test_nested_if_else_is_independent(self):
        src = (
            "#ifdef A\n"
            "#ifdef B\nx = 1\n#else\nx = 2\n#endif\n"
            "#else\nx = 3\n#endif\n"
        )
        assert line_texts(src, macros={"A": "1"}) == ["x = 2"]
        assert line_texts(src) == ["x = 3"]

    def test_else_without_if_raises(self):
        with pytest.raises(PreprocessorError, match="#else without #if"):
            preprocess("#else\n")

    def test_unterminated_if_raises(self):
        with pytest.raises(PreprocessorError, match="unterminated"):
            preprocess("#ifdef FC5\nx = 1\n")


class TestLogicalLines:
    def test_continuation_merging(self):
        src = "call foo(a, &\n  & b)\n"
        assert line_texts(src) == ["call foo(a, b)"]

    def test_comment_stripping_preserves_strings(self):
        src = "msg = 'a!b' ! trailing\n"
        assert line_texts(src) == ["msg = 'a!b'"]

    def test_line_numbers_point_at_first_piece(self):
        src = "x = 1\n\ny = 2 + &\n    3\n"
        result = preprocess(src)
        assert [(ln.text, ln.line) for ln in result.lines] == [
            ("x = 1", 1),
            ("y = 2 + 3", 3),
        ]

"""Unit tests for the Fortran-subset recursive-descent parser."""

import pytest

from repro.fortran import parse_expression, parse_source
from repro.fortran.ast_nodes import (
    Apply,
    Assignment,
    BinOp,
    CallStmt,
    Declaration,
    DerivedRef,
    DoLoop,
    IfBlock,
    NumberLit,
    PointerAssignment,
    StringLit,
    Subprogram,
    UnaryOp,
    VarRef,
    WhereBlock,
)
from repro.fortran.errors import ParseError


# --------------------------------------------------------------------------- #
# Expressions
# --------------------------------------------------------------------------- #
class TestExpressions:
    def test_number_literal(self):
        expr = parse_expression("8.1328e-3_r8")
        assert isinstance(expr, NumberLit)
        assert expr.value == pytest.approx(8.1328e-3)
        assert expr.kind == "r8"

    def test_d_exponent_literal(self):
        expr = parse_expression("1.5d2")
        assert isinstance(expr, NumberLit)
        assert expr.value == pytest.approx(150.0)

    def test_operator_precedence(self):
        expr = parse_expression("a + b * c")
        assert isinstance(expr, BinOp) and expr.op == "+"
        assert isinstance(expr.right, BinOp) and expr.right.op == "*"

    def test_power_is_right_associative(self):
        expr = parse_expression("a ** b ** c")
        assert isinstance(expr, BinOp) and expr.op == "**"
        assert isinstance(expr.right, BinOp) and expr.right.op == "**"

    def test_unary_minus(self):
        expr = parse_expression("-x + y")
        assert isinstance(expr, BinOp) and expr.op == "+"
        assert isinstance(expr.left, UnaryOp) and expr.left.op == "-"

    def test_power_chain_groups_right(self):
        # a ** b ** c  ==  a ** (b ** c): left operand of the root is bare "a"
        expr = parse_expression("a ** b ** c")
        assert isinstance(expr.left, VarRef) and expr.left.name == "a"
        assert isinstance(expr.right.left, VarRef) and expr.right.left.name == "b"

    def test_unary_minus_binds_looser_than_power(self):
        # Fortran semantics: -a**b is -(a**b), not (-a)**b
        expr = parse_expression("-a ** b")
        assert isinstance(expr, UnaryOp) and expr.op == "-"
        assert isinstance(expr.operand, BinOp) and expr.operand.op == "**"

    def test_unary_minus_power_stops_at_lower_precedence(self):
        # -a**b * c  ==  (-(a**b)) * c
        expr = parse_expression("-a ** b * c")
        assert isinstance(expr, BinOp) and expr.op == "*"
        assert isinstance(expr.left, UnaryOp)
        assert isinstance(expr.left.operand, BinOp) and expr.left.operand.op == "**"

    def test_relational_binds_tighter_than_logical(self):
        expr = parse_expression("a < b .and. c >= d")
        assert isinstance(expr, BinOp) and expr.op == ".and."
        assert isinstance(expr.left, BinOp) and expr.left.op == "<"
        assert isinstance(expr.right, BinOp) and expr.right.op == ">="

    def test_and_binds_tighter_than_or(self):
        expr = parse_expression("a .or. b .and. c")
        assert isinstance(expr, BinOp) and expr.op == ".or."
        assert isinstance(expr.right, BinOp) and expr.right.op == ".and."

    def test_not_binds_looser_than_relational(self):
        # .not. a == b  is  .not. (a == b) in Fortran
        expr = parse_expression(".not. a == b")
        assert isinstance(expr, UnaryOp) and expr.op == ".not."
        assert isinstance(expr.operand, BinOp) and expr.operand.op == "=="

    def test_not_binds_tighter_than_and(self):
        expr = parse_expression(".not. a .and. b")
        assert isinstance(expr, BinOp) and expr.op == ".and."
        assert isinstance(expr.left, UnaryOp) and expr.left.op == ".not."

    def test_dot_eq_without_spaces_parses(self):
        expr = parse_expression("1.eq.2 .and. x.lt.3")
        assert isinstance(expr, BinOp) and expr.op == ".and."
        assert isinstance(expr.left, BinOp) and expr.left.op == "=="
        assert isinstance(expr.right, BinOp) and expr.right.op == "<"

    def test_parentheses_override_precedence(self):
        expr = parse_expression("(a + b) * c")
        assert isinstance(expr, BinOp) and expr.op == "*"
        assert isinstance(expr.left, BinOp) and expr.left.op == "+"

    def test_function_or_array_reference_is_apply(self):
        expr = parse_expression("qsat(t(i,k), pmid(i,k))")
        assert isinstance(expr, Apply)
        assert expr.name == "qsat"
        assert len(expr.args) == 2
        assert all(isinstance(a, Apply) for a in expr.args)

    def test_keyword_argument(self):
        expr = parse_expression("qsat(t, p, es=esat)")
        assert isinstance(expr, Apply)
        assert "es" in expr.keywords
        assert isinstance(expr.keywords["es"], VarRef)

    def test_derived_type_reference(self):
        expr = parse_expression("state%omega(i,k)")
        assert isinstance(expr, DerivedRef)
        assert expr.component == "omega"
        assert expr.canonical_name == "omega"
        assert isinstance(expr.base, VarRef) and expr.base.name == "state"

    def test_chained_derived_type_reference(self):
        expr = parse_expression("elem(ie)%derived%omega_p")
        assert isinstance(expr, DerivedRef)
        assert expr.canonical_name == "omega_p"
        assert isinstance(expr.base, DerivedRef)
        assert expr.base.component == "derived"
        assert isinstance(expr.base.base, Apply)

    def test_logical_expression(self):
        expr = parse_expression("a > 0 .and. .not. flag")
        assert isinstance(expr, BinOp) and expr.op == ".and."
        assert isinstance(expr.right, UnaryOp) and expr.right.op == ".not."

    def test_composite_function_expression(self):
        # the omega = alpha(b(c,d) * e(f(g+h))) example from paper Fig. in 4.2
        expr = parse_expression("alpha(b(c, d) * e(f(g + h)))")
        assert isinstance(expr, Apply) and expr.name == "alpha"
        inner = expr.args[0]
        assert isinstance(inner, BinOp) and inner.op == "*"

    def test_array_section(self):
        expr = parse_expression("t(1:ncol, k)")
        assert isinstance(expr, Apply)
        assert len(expr.args) == 2

    def test_string_concatenation(self):
        expr = parse_expression("'cam' // suffix")
        assert isinstance(expr, BinOp) and expr.op == "//"
        assert isinstance(expr.left, StringLit)

    def test_trailing_garbage_raises(self):
        with pytest.raises(ParseError):
            parse_expression("a + b c")


# --------------------------------------------------------------------------- #
# Whole-module parsing
# --------------------------------------------------------------------------- #
SIMPLE_MODULE = """
module physconst
  implicit none
  public
  integer, parameter :: r8 = 8
  real(r8), parameter :: gravit = 9.80616_r8
  real(r8), parameter :: cpair  = 1004.64_r8
  real(r8) :: scale_factor = 1.0_r8
end module physconst
"""


SUBPROGRAM_MODULE = """
module microp_aero
  use shr_kind_mod, only: r8 => shr_kind_r8
  use physconst,    only: gravit
  implicit none
  private
  public :: microp_aero_run
contains
  subroutine microp_aero_run(ncol, tke, wsub)
    integer, intent(in) :: ncol
    real(r8), intent(in) :: tke(ncol)
    real(r8), intent(out) :: wsub(ncol)
    integer :: i
    do i = 1, ncol
      wsub(i) = 0.20_r8 * sqrt(tke(i))
      if (wsub(i) < 0.20_r8) then
        wsub(i) = 0.20_r8
      else if (wsub(i) > 10.0_r8) then
        wsub(i) = 10.0_r8
      end if
    end do
    call outfld('WSUB', wsub)
  end subroutine microp_aero_run
end module microp_aero
"""


class TestModuleParsing:
    def test_module_name_and_parameters(self):
        ast = parse_source(SIMPLE_MODULE, filename="physconst.F90")
        assert len(ast.modules) == 1
        mod = ast.modules[0]
        assert mod.name == "physconst"
        names = mod.module_variable_names()
        assert names == ["r8", "gravit", "cpair", "scale_factor"]

    def test_parameter_initializer_value(self):
        mod = parse_source(SIMPLE_MODULE).modules[0]
        decls = [d for d in mod.declarations if isinstance(d, Declaration)]
        gravit = next(e for d in decls for e in d.entities if e.name == "gravit")
        assert isinstance(gravit.init, NumberLit)
        assert gravit.init.value == pytest.approx(9.80616)

    def test_use_statements_with_rename(self):
        mod = parse_source(SUBPROGRAM_MODULE).modules[0]
        assert len(mod.uses) == 2
        kinds = mod.uses[0]
        assert kinds.module == "shr_kind_mod"
        assert kinds.has_only
        assert kinds.only[0].local == "r8"
        assert kinds.only[0].remote == "shr_kind_r8"

    def test_subroutine_signature(self):
        mod = parse_source(SUBPROGRAM_MODULE).modules[0]
        assert "microp_aero_run" in mod.subprograms
        sub = mod.subprograms["microp_aero_run"]
        assert sub.args == ["ncol", "tke", "wsub"]
        assert sub.kind == "subroutine"

    def test_do_loop_and_nested_if(self):
        sub = parse_source(SUBPROGRAM_MODULE).modules[0].subprograms["microp_aero_run"]
        loops = [s for s in sub.body if isinstance(s, DoLoop)]
        assert len(loops) == 1
        loop = loops[0]
        assert loop.var == "i"
        ifs = [s for s in loop.body if isinstance(s, IfBlock)]
        assert len(ifs) == 1
        assert len(ifs[0].branches) == 2  # if + else-if

    def test_assignments_are_collected(self):
        sub = parse_source(SUBPROGRAM_MODULE).modules[0].subprograms["microp_aero_run"]
        assigns = list(sub.assignments())
        # wsub(i) = ... appears three times (main, both clamp branches)
        assert len(assigns) == 3
        assert all(isinstance(a.target, Apply) for a in assigns)

    def test_call_statement_with_string_argument(self):
        sub = parse_source(SUBPROGRAM_MODULE).modules[0].subprograms["microp_aero_run"]
        calls = [s for s in sub.walk_statements() if isinstance(s, CallStmt)]
        assert len(calls) == 1
        assert calls[0].name == "outfld"
        assert isinstance(calls[0].args[0], StringLit)
        assert calls[0].args[0].value == "WSUB"

    def test_line_numbers_recorded(self):
        sub = parse_source(SUBPROGRAM_MODULE, filename="microp_aero.F90").modules[0]
        assigns = [a for _, a in sub.all_assignments()]
        assert all(a.location.line > 0 for a in assigns)
        assert all(a.location.filename == "microp_aero.F90" for a in assigns)


FUNCTION_MODULE = """
module wv_saturation
  use shr_kind_mod, only: r8 => shr_kind_r8
  implicit none
contains
  elemental function goffgratch_svp(t) result(es)
    real(r8), intent(in) :: t
    real(r8) :: es
    real(r8) :: ts, logterm
    ts = 373.16_r8
    logterm = -7.90298_r8 * (ts/t - 1.0_r8) + 8.1328e-3_r8 * (10.0_r8**(-3.49149_r8*(ts/t - 1.0_r8)) - 1.0_r8)
    es = 1013.246_r8 * 10.0_r8**logterm
  end function goffgratch_svp

  function qsat(t, p) result(qs)
    real(r8), intent(in) :: t, p
    real(r8) :: qs, es
    es = goffgratch_svp(t)
    qs = 0.622_r8 * es / max(p - 0.378_r8*es, 1.0e-10_r8)
  end function qsat
end module wv_saturation
"""


class TestFunctionParsing:
    def test_elemental_function_with_result(self):
        mod = parse_source(FUNCTION_MODULE).modules[0]
        fn = mod.subprograms["goffgratch_svp"]
        assert fn.kind == "function"
        assert "elemental" in fn.prefixes
        assert fn.result == "es"

    def test_function_without_explicit_prefix(self):
        mod = parse_source(FUNCTION_MODULE).modules[0]
        fn = mod.subprograms["qsat"]
        assert fn.result == "qs"
        assigns = list(fn.assignments())
        assert len(assigns) == 2

    def test_function_call_inside_expression(self):
        mod = parse_source(FUNCTION_MODULE).modules[0]
        fn = mod.subprograms["qsat"]
        first = next(iter(fn.assignments()))
        assert isinstance(first.value, Apply)
        assert first.value.name == "goffgratch_svp"


DERIVED_TYPE_MODULE = """
module physics_types
  use shr_kind_mod, only: r8 => shr_kind_r8
  use ppgrid, only: pcols, pver
  implicit none
  type physics_state
    real(r8) :: t(pcols, pver)
    real(r8) :: omega(pcols, pver)
    real(r8) :: ps(pcols)
  end type physics_state
  type physics_tend
    real(r8) :: dtdt(pcols, pver)
  end type physics_tend
contains
  subroutine physics_update(state, tend, dt)
    type(physics_state), intent(inout) :: state
    type(physics_tend), intent(in) :: tend
    real(r8), intent(in) :: dt
    state%t = state%t + dt * tend%dtdt
  end subroutine physics_update
end module physics_types
"""


class TestDerivedTypes:
    def test_type_definitions_collected(self):
        mod = parse_source(DERIVED_TYPE_MODULE).modules[0]
        assert set(mod.type_defs) == {"physics_state", "physics_tend"}
        state = mod.type_defs["physics_state"]
        comp_names = [e.name for d in state.components for e in d.entities]
        assert comp_names == ["t", "omega", "ps"]

    def test_derived_type_assignment(self):
        mod = parse_source(DERIVED_TYPE_MODULE).modules[0]
        sub = mod.subprograms["physics_update"]
        assign = next(iter(sub.assignments()))
        assert isinstance(assign.target, DerivedRef)
        assert assign.target.canonical_name == "t"

    def test_type_declaration_of_derived_variables(self):
        mod = parse_source(DERIVED_TYPE_MODULE).modules[0]
        sub = mod.subprograms["physics_update"]
        decl = sub.declarations[0]
        assert isinstance(decl, Declaration)
        assert decl.base_type == "type"
        assert decl.type_name == "physics_state"


MISC_MODULE = """
module misc
  implicit none
  real :: a(10), b(10), c
  real, pointer :: p(:)
contains
  subroutine misc_run(n)
    integer, intent(in) :: n
    integer :: i
    c = 0.0
    where (a > 0.0)
      b = a
    elsewhere
      b = 0.0
    end where
    do while (c < 1.0)
      c = c + 0.25
    end do
    do i = 1, n, 2
      if (i == 3) cycle
      if (i > 7) exit
      a(i) = real(i)
    end do
    p => a
    if (c > 0.5) c = 0.5
    return
  end subroutine misc_run
end module misc
"""


class TestMiscStatements:
    def test_where_block(self):
        sub = parse_source(MISC_MODULE).modules[0].subprograms["misc_run"]
        wheres = [s for s in sub.body if isinstance(s, WhereBlock)]
        assert len(wheres) == 1
        assert len(wheres[0].body) == 1
        assert len(wheres[0].else_body) == 1

    def test_do_while(self):
        from repro.fortran.ast_nodes import DoWhile

        sub = parse_source(MISC_MODULE).modules[0].subprograms["misc_run"]
        whiles = [s for s in sub.body if isinstance(s, DoWhile)]
        assert len(whiles) == 1

    def test_do_with_step_and_exit_cycle(self):
        from repro.fortran.ast_nodes import CycleStmt, ExitStmt

        sub = parse_source(MISC_MODULE).modules[0].subprograms["misc_run"]
        loop = [s for s in sub.body if isinstance(s, DoLoop)][0]
        assert loop.step is not None
        kinds = [type(s) for s in loop.walk()]
        assert CycleStmt in kinds and ExitStmt in kinds

    def test_pointer_assignment(self):
        sub = parse_source(MISC_MODULE).modules[0].subprograms["misc_run"]
        ptrs = [s for s in sub.body if isinstance(s, PointerAssignment)]
        assert len(ptrs) == 1

    def test_one_line_if(self):
        sub = parse_source(MISC_MODULE).modules[0].subprograms["misc_run"]
        one_liners = [
            s
            for s in sub.body
            if isinstance(s, IfBlock) and len(s.branches) == 1
        ]
        assert len(one_liners) >= 1
        cond, body = one_liners[-1].branches[0]
        assert cond is not None
        assert len(body) == 1
        assert isinstance(body[0], Assignment)


class TestPreprocessingIntegration:
    def test_continuation_lines_merge(self):
        src = """
module contmod
  implicit none
  real :: x
contains
  subroutine run()
    x = 1.0 + &
        2.0 + &
        3.0
  end subroutine run
end module contmod
"""
        mod = parse_source(src).modules[0]
        assign = next(iter(mod.subprograms["run"].assignments()))
        assert isinstance(assign.value, BinOp)

    def test_ifdef_excludes_code(self):
        src = """
module cppmod
  implicit none
  real :: x
contains
  subroutine run()
#ifdef WACCM
    x = 99.0
#else
    x = 1.0
#endif
  end subroutine run
end module cppmod
"""
        mod = parse_source(src, macros={}).modules[0]
        assigns = list(mod.subprograms["run"].assignments())
        assert len(assigns) == 1
        assert assigns[0].value.value == pytest.approx(1.0)

        mod2 = parse_source(src, macros={"WACCM": "1"}).modules[0]
        assigns2 = list(mod2.subprograms["run"].assignments())
        assert assigns2[0].value.value == pytest.approx(99.0)

    def test_multiple_modules_per_file(self):
        src = SIMPLE_MODULE + "\n" + SUBPROGRAM_MODULE
        ast = parse_source(src)
        assert [m.name for m in ast.modules] == ["physconst", "microp_aero"]


class TestFallbackIntegration:
    def test_pathological_statement_recovered_by_fallback(self):
        # An exotic construct the primary parser does not support: the
        # fallback should still recover LHS/RHS identifiers.
        src = """
module weird
  implicit none
  real :: x, y, z
contains
  subroutine run()
    x = merge(y, z, y > [1.0, 2.0])
    y = z
  end subroutine run
end module weird
"""
        mod = parse_source(src).modules[0]
        sub = mod.subprograms["run"]
        assigns = [s for s in sub.body if isinstance(s, Assignment)]
        assert len(assigns) == 2
        # first one came from the fallback parser (the array constructor
        # "[...]"), flagged accordingly
        assert assigns[0].from_fallback
        assert not assigns[1].from_fallback

    def test_totally_unparseable_statement_is_recorded(self):
        from repro.fortran.ast_nodes import UnparsedStmt

        src = """
module hopeless
  implicit none
  real :: x
contains
  subroutine run()
    write(iulog, *) 'impossible', (x, 1.0)
    x = 1.0
  end subroutine run
end module hopeless
"""
        mod = parse_source(src).modules[0]
        assert len(mod.unparsed) >= 0  # bookkeeping exists
        sub = mod.subprograms["run"]
        assert any(isinstance(s, (UnparsedStmt, CallStmt, Assignment)) for s in sub.body)
        # the real assignment still parses
        assert any(
            isinstance(s, Assignment) and not s.from_fallback for s in sub.body
        )


# --------------------------------------------------------------------------- #
# Corner cases the interpreter exercises (PR: repro.runtime)
# --------------------------------------------------------------------------- #
class TestInterpreterCornerCases:
    def test_nested_do_loops_with_negative_step(self):
        src = """
module m
  implicit none
contains
  subroutine s(a, n)
    integer, intent(in) :: n
    real, intent(out) :: a(n, n)
    integer :: i, k
    do k = n, 1, -1
      do i = n, 1, -2
        a(i, k) = i * k
      end do
    end do
  end subroutine s
end module m
"""
        sub = parse_source(src).modules[0].subprograms["s"]
        outer = sub.body[0]
        assert isinstance(outer, DoLoop)
        assert outer.var == "k"
        assert isinstance(outer.step, UnaryOp) and outer.step.op == "-"
        inner = outer.body[0]
        assert isinstance(inner, DoLoop)
        assert inner.var == "i"
        assert isinstance(inner.step, UnaryOp)
        assert isinstance(inner.step.operand, NumberLit)
        assert inner.step.operand.value == 2
        assert isinstance(inner.body[0], Assignment)

    def test_select_case_with_ranges(self):
        from repro.fortran.ast_nodes import CaseItem, SelectCase

        src = """
module m
  implicit none
contains
  subroutine s(k, r)
    integer, intent(in) :: k
    integer, intent(out) :: r
    select case (k)
    case (:0)
      r = -1
    case (1:5, 9)
      r = 1
    case (10:)
      r = 2
    case default
      r = 0
    end select
  end subroutine s
end module m
"""
        sub = parse_source(src).modules[0].subprograms["s"]
        block = sub.body[0]
        assert isinstance(block, SelectCase)
        assert len(block.cases) == 4
        low, mid, high, default = block.cases
        assert default[0] is None
        (item,) = low[0]
        assert isinstance(item, CaseItem) and item.is_range
        assert item.lower is None and item.upper is not None
        range_item, value_item = mid[0]
        assert range_item.is_range
        assert range_item.lower.value == 1 and range_item.upper.value == 5
        assert not value_item.is_range and value_item.value.value == 9
        (open_item,) = high[0]
        assert open_item.is_range and open_item.upper is None
        # each branch carries its own body
        assert all(len(body) == 1 for _, body in block.cases)

    def test_select_case_statement_walk_reaches_case_bodies(self):
        from repro.fortran.ast_nodes import SelectCase

        src = """
module m
  implicit none
contains
  subroutine s(k, r)
    integer, intent(in) :: k
    integer, intent(out) :: r
    select case (k)
    case (1)
      r = 10
    case default
      r = 20
    end select
  end subroutine s
end module m
"""
        sub = parse_source(src).modules[0].subprograms["s"]
        stmts = list(sub.walk_statements())
        assert sum(isinstance(s, SelectCase) for s in stmts) == 1
        assert sum(isinstance(s, Assignment) for s in stmts) == 2

    def test_call_statement_with_keyword_arguments(self):
        src = """
module m
  implicit none
contains
  subroutine s()
    real :: t, es
    call qsat(t, es=es, p=101325.0)
  end subroutine s
end module m
"""
        sub = parse_source(src).modules[0].subprograms["s"]
        call = sub.body[0]
        assert isinstance(call, CallStmt)
        assert call.name == "qsat"
        assert len(call.args) == 1
        assert set(call.keywords) == {"es", "p"}
        assert isinstance(call.keywords["es"], VarRef)
        assert isinstance(call.keywords["p"], NumberLit)

    def test_case_list_rejects_strides(self):
        # a stride has no meaning in a case range; like other malformed
        # block constructs this is a hard parse error, not a fallback
        bad_stride = """
module m
  implicit none
contains
  subroutine s(k)
    integer, intent(in) :: k
    select case (k)
    case (1:5:2)
      k = 0
    end select
  end subroutine s
end module m
"""
        with pytest.raises(ParseError, match="stride"):
            parse_source(bad_stride)

    def test_select_type_degrades_to_fallback_not_parse_error(self):
        # regression: only `select case` owns the block parser; other
        # select constructs stay out-of-subset and must not hard-fail
        src = """
module m
  implicit none
contains
  subroutine s(x)
    real, intent(inout) :: x
    select type (obj)
    end select
    x = 1.0
  end subroutine s
end module m
"""
        mod = parse_source(src).modules[0]
        sub = mod.subprograms["s"]
        # the real assignment after the unsupported block still parses
        assert any(
            isinstance(s, Assignment) and not getattr(s, "from_fallback", False)
            for s in sub.body
        )

"""The module quotient graph faithfully collapses the metagraph."""

import pytest

from repro.analysis import QuotientGraph, quotient_graph


def test_nodes_are_the_metagraph_modules(control_graph, control_quotient):
    assert set(control_quotient.nodes) == set(control_graph.modules())


def test_node_sizes_partition_the_variable_nodes(control_graph, control_quotient):
    total = sum(
        control_quotient.node_size(m) for m in control_quotient.nodes
    )
    assert total == control_graph.node_count


def test_total_weight_equals_cross_module_variable_edges(
    control_graph, control_quotient
):
    weight = sum(w for _, _, w in control_quotient.edges())
    assert weight == control_graph.cross_module_edges()


def test_no_self_edges(control_quotient):
    assert all(src != dst for src, dst, _ in control_quotient.edges())


def test_edge_iteration_is_sorted_and_deterministic(control_quotient):
    edges = list(control_quotient.edges())
    assert edges == sorted(edges, key=lambda e: (e[0], e[1]))
    assert edges == list(control_quotient.edges())


def test_undirected_weight_symmetry(control_quotient):
    for u, v, w in control_quotient.undirected_edges():
        assert u < v
        assert w == control_quotient.undirected_weight(v, u)
        assert w == pytest.approx(
            control_quotient.weight(u, v) + control_quotient.weight(v, u)
        )


def test_in_out_weight_conservation(control_quotient):
    total_in = sum(control_quotient.in_weight(m) for m in control_quotient)
    total_out = sum(control_quotient.out_weight(m) for m in control_quotient)
    assert total_in == total_out


def test_quotient_is_rebuild_deterministic(control_graph):
    a = quotient_graph(control_graph)
    b = quotient_graph(control_graph)
    assert list(a.edges()) == list(b.edges())
    assert a.nodes == b.nodes


def test_subgraph_restricts_nodes_and_edges(control_quotient):
    keep = control_quotient.nodes[:10] + ["not_a_module"]
    sub = control_quotient.subgraph(keep)
    assert set(sub.nodes) <= set(control_quotient.nodes[:10])
    for src, dst, w in sub.edges():
        assert w == control_quotient.weight(src, dst)


def test_manual_assembly_accumulates_weights():
    q = QuotientGraph()
    q.add_edge("a", "b", 2.0)
    q.add_edge("a", "b", 3.0)
    q.add_edge("b", "a", 1.0)
    assert q.weight("a", "b") == 5.0
    assert q.undirected_weight("a", "b") == 6.0
    assert q.neighbors("a") == ["b"]
    assert q.degree("a") == 1
    assert q.in_degree("b") == 1 and q.out_degree("b") == 1


def test_self_edges_are_dropped_and_bad_weights_rejected():
    q = QuotientGraph()
    q.add_edge("a", "a")
    assert q.edge_count == 0
    with pytest.raises(ValueError, match="positive"):
        q.add_edge("a", "b", 0.0)

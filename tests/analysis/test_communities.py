"""Girvan-Newman recovers planted structure and tracks modularity.

The satellite property test: on synthetic quotient graphs with two planted
dense clusters joined by a single weak bridge, the modularity-optimal
Girvan-Newman partition must recover the planted two-community split —
across a sweep of seeded random cluster sizes and densities.
"""

import random

import pytest

from repro.analysis import (
    CommunityResult,
    QuotientGraph,
    edge_betweenness,
    girvan_newman_communities,
    modularity,
)


def planted_two_cluster_graph(
    seed: int, size_a: int, size_b: int, p_extra: float = 0.6
) -> tuple[QuotientGraph, frozenset, frozenset]:
    """Two dense clusters (ring + random chords) and one bridge edge."""
    rng = random.Random(seed)
    a = [f"a{i}" for i in range(size_a)]
    b = [f"b{i}" for i in range(size_b)]
    q = QuotientGraph()
    for cluster in (a, b):
        for i, node in enumerate(cluster):  # ring keeps the cluster connected
            q.add_edge(node, cluster[(i + 1) % len(cluster)], 2.0)
        for u in cluster:  # seeded random chords densify it
            for v in cluster:
                if u < v and rng.random() < p_extra:
                    q.add_edge(u, v, 2.0)
    q.add_edge(a[0], b[0], 1.0)  # the single weak bridge
    return q, frozenset(a), frozenset(b)


@pytest.mark.parametrize(
    "seed,size_a,size_b",
    [(0, 5, 5), (1, 6, 4), (2, 7, 7), (3, 4, 8), (4, 5, 9)],
)
def test_planted_two_cluster_partition_is_recovered(seed, size_a, size_b):
    q, a, b = planted_two_cluster_graph(seed, size_a, size_b)
    result = girvan_newman_communities(q)
    assert set(result.communities) == {a, b}
    # the planted split beats the trivial one-community partition
    assert result.modularity > modularity(q, [a | b])
    # and it is exactly the modularity of the recovered partition
    assert result.modularity == pytest.approx(modularity(q, [a, b]))


def test_levels_track_the_dendrogram():
    q, a, b = planted_two_cluster_graph(0, 5, 5)
    result = girvan_newman_communities(q)
    counts = [level.n_communities for level in result.levels]
    assert counts == sorted(counts)  # strictly coarser to finer
    assert counts[0] == 1  # bridge keeps the initial graph connected
    assert counts[-1] == q.node_count  # sweep ends at isolated nodes
    removed = [level.removed_edges for level in result.levels]
    assert removed == sorted(removed)
    assert result.best is max(result.levels, key=lambda lv: lv.modularity)


def test_max_communities_stops_the_sweep():
    q, a, b = planted_two_cluster_graph(0, 5, 5)
    result = girvan_newman_communities(q, max_communities=2)
    assert result.levels[-1].n_communities == 2
    assert set(result.levels[-1].communities) == {a, b}


def test_girvan_newman_is_deterministic():
    q, _, _ = planted_two_cluster_graph(2, 7, 7)
    first = girvan_newman_communities(q)
    second = girvan_newman_communities(q)
    assert first.communities == second.communities
    assert [lv.modularity for lv in first.levels] == [
        lv.modularity for lv in second.levels
    ]


def test_community_of_and_len():
    q, a, b = planted_two_cluster_graph(1, 6, 4)
    result = girvan_newman_communities(q)
    assert result.community_of("a0") == a
    assert result.community_of("b0") == b
    assert len(result) == 2
    assert result.summary().startswith("CommunityResult(")
    with pytest.raises(KeyError, match="not in the graph"):
        result.community_of("zz")


def test_modularity_validates_partitions():
    q, a, b = planted_two_cluster_graph(0, 5, 5)
    with pytest.raises(ValueError, match="two communities"):
        modularity(q, [a, a | b])
    with pytest.raises(ValueError, match="does not cover"):
        modularity(q, [a])


def test_edge_betweenness_on_a_path():
    q = QuotientGraph()
    q.add_edge("a", "b")
    q.add_edge("b", "c")
    scores = edge_betweenness(q)
    # both edges carry two of the three shortest paths (a-b, a-c / b-c, a-c)
    assert scores[("a", "b")] == pytest.approx(2.0)
    assert scores[("b", "c")] == pytest.approx(2.0)


def test_real_model_communities(control_quotient):
    result = girvan_newman_communities(control_quotient)
    assert isinstance(result, CommunityResult)
    covered = set().union(*result.communities)
    assert covered == set(control_quotient.nodes)
    # microphysics and its aerosol driver are tightly coupled: one community
    assert result.community_of("micro_mg") == result.community_of(
        "microp_aero"
    )
    assert result.modularity > 0.0

"""Shared control-model graph fixtures for the analysis suite."""

import pytest

from repro.analysis import quotient_graph
from repro.graphs import build_metagraph
from repro.model import ModelConfig, build_model_source


@pytest.fixture(scope="package")
def control_graph():
    return build_metagraph(build_model_source(ModelConfig()))


@pytest.fixture(scope="package")
def control_quotient(control_graph):
    return quotient_graph(control_graph)

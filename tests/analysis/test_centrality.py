"""Centralities match their closed forms on canonical small graphs."""

import pytest

from repro.analysis import (
    betweenness_centrality,
    closeness_centrality,
    degree_centrality,
    degree_distribution,
    degree_stats,
    eigenvector_in_centrality,
    QuotientGraph,
)


def star(n_leaves: int = 4) -> QuotientGraph:
    q = QuotientGraph()
    for i in range(n_leaves):
        q.add_edge("hub", f"leaf{i}")
    return q


def cycle(names=("a", "b", "c")) -> QuotientGraph:
    q = QuotientGraph()
    for i, name in enumerate(names):
        q.add_edge(name, names[(i + 1) % len(names)])
    return q


def test_degree_centrality_star():
    scores = degree_centrality(star(4))
    assert scores["hub"] == pytest.approx(1.0)
    for i in range(4):
        assert scores[f"leaf{i}"] == pytest.approx(0.25)


def test_betweenness_centrality_star():
    scores = betweenness_centrality(star(4))
    # every leaf pair's unique shortest path crosses the hub
    assert scores["hub"] == pytest.approx(1.0)
    assert all(scores[f"leaf{i}"] == 0.0 for i in range(4))


def test_betweenness_centrality_path():
    q = QuotientGraph()
    q.add_edge("a", "b")
    q.add_edge("b", "c")
    scores = betweenness_centrality(q)
    assert scores["b"] == pytest.approx(1.0)
    assert scores["a"] == scores["c"] == 0.0


def test_closeness_centrality_star_and_disconnected():
    scores = closeness_centrality(star(4))
    assert scores["hub"] == pytest.approx(1.0)
    assert all(
        scores[f"leaf{i}"] == pytest.approx(4 / 7) for i in range(4)
    )
    q = star(2)
    q.add_node("isolated")
    scores = closeness_centrality(q)
    assert scores["isolated"] == 0.0
    # Wasserman-Faust: scaled by the reachable fraction (2 of 3 peers)
    assert scores["hub"] == pytest.approx((2 / 3) * (2 / 2))


def test_eigenvector_in_centrality_cycle_is_uniform():
    scores = eigenvector_in_centrality(cycle())
    assert all(v == pytest.approx(1.0) for v in scores.values())


def test_eigenvector_in_centrality_dag_falls_back_to_in_weight():
    q = QuotientGraph()
    q.add_edge("a", "sink", 3.0)
    q.add_edge("b", "sink", 1.0)
    q.add_edge("a", "b", 1.0)
    scores = eigenvector_in_centrality(q)
    # nilpotent adjacency: the power iteration collapses, the weighted
    # in-degree ranking takes over (sink: 4, b: 1, a: 0)
    assert scores["sink"] == pytest.approx(1.0)
    assert scores["b"] == pytest.approx(0.25)
    assert scores["a"] == 0.0


def test_degree_distribution_counts_every_node():
    dists = degree_distribution(star(4))
    assert sum(dists["undirected"].values()) == 5
    assert dists["out"][4] == 1  # the hub
    assert dists["in"][0] == 1


def test_degree_stats_small_graph():
    stats = degree_stats(star(4))
    assert stats.n_modules == 5
    assert stats.n_edges == 4
    assert stats.max_out_degree == 4
    assert stats.density == pytest.approx(4 / 20)


def test_real_model_centralities_are_normalized(control_quotient):
    n = control_quotient.node_count
    for fn in (
        degree_centrality,
        betweenness_centrality,
        closeness_centrality,
        eigenvector_in_centrality,
    ):
        scores = fn(control_quotient)
        assert set(scores) == set(control_quotient.nodes)
        assert all(0.0 <= v <= 1.0 + 1e-12 for v in scores.values())
    stats = degree_stats(control_quotient)
    assert stats.n_modules == n
    assert stats.n_edges == control_quotient.edge_count
    assert 0.0 < stats.density < 1.0


def test_metagraph_is_collapsed_automatically(control_graph, control_quotient):
    from_meta = degree_stats(control_graph)
    from_quotient = degree_stats(control_quotient)
    assert from_meta == from_quotient

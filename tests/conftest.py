"""Shared expensive fixtures for the integration suites."""

import pytest

from repro.ensemble import EnsembleSpec

#: the accepted-ensemble configuration the ECT and slicing integration
#: suites share (coverage off: 30 members is the expensive part)
ACCEPTED_SPEC = EnsembleSpec(n_members=30, collect_coverage=False)


@pytest.fixture(scope="session")
def accepted_ensemble_30(tmp_path_factory):
    """One 30-member accepted ensemble per test session.

    Generated through the pipeline's accepted-ensemble stage against a
    session-scoped store, so the suites exercise the same build +
    ensemble path the CLI runs and a re-request within the session is a
    stage cache hit.
    """
    from repro.pipeline import accepted_ensemble

    store = tmp_path_factory.mktemp("accepted-ensemble-store")
    return accepted_ensemble(ACCEPTED_SPEC, store_dir=store)

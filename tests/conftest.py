"""Shared expensive fixtures for the integration suites."""

import pytest

from repro.ensemble import EnsembleSpec, generate_ensemble

#: the accepted-ensemble configuration the ECT and slicing integration
#: suites share (coverage off: 30 members is the expensive part)
ACCEPTED_SPEC = EnsembleSpec(n_members=30, collect_coverage=False)


@pytest.fixture(scope="session")
def accepted_ensemble_30():
    """One 30-member accepted ensemble per test session."""
    return generate_ensemble(ACCEPTED_SPEC)

"""The member-batched (vectorized) runtime is bit-for-bit the scalar one.

Three layers of conformance:

* the batched PRNG reproduces each member's scalar stream exactly;
* ``run_model_batch`` over the real model — control, every registered
  bug patch, and the FMA floating-point mode — matches per-member
  ``run_model`` on outputs, first-write snapshots, coverage counts,
  statement accounting and draw counts;
* masked-divergence semantics over synthetic sources: ``if`` blocks whose
  conditions vary per member blend stores correctly (including scalar-slot
  promotion and nested divergence), and the safety rails refuse the
  constructs that cannot be expressed under a partial member mask.
"""

import numpy as np
import pytest

from repro.model import ModelConfig, build_model_source, list_patches
from repro.runtime import (
    FPConfig,
    MemberBatch,
    RunConfig,
    VectorizationError,
    run_model,
    run_model_batch,
)
from repro.runtime.prng import BatchedPRNGStreams, PRNGStreams
from repro.runtime.vec import VecInterpreter

SEEDS = [101, 202, 303]


# --------------------------------------------------------------------------- #
# PRNG lockstep
# --------------------------------------------------------------------------- #
class TestBatchedPRNG:
    def test_streams_match_scalar_per_member(self):
        batched = BatchedPRNGStreams(SEEDS)
        scalars = [PRNGStreams(s) for s in SEEDS]
        for module in ("cloud_fraction", "micro_mg", "cloud_fraction"):
            draws = batched.stream(module).uniform()
            for m, scalar in enumerate(scalars):
                assert draws[m] == scalar.stream(module).uniform()

    def test_fill_matches_scalar_element_order(self):
        batched = BatchedPRNGStreams(SEEDS)
        scalars = [PRNGStreams(s) for s in SEEDS]
        got = np.zeros((len(SEEDS), 4, 3)).view(MemberBatch)
        batched.stream("m").fill(got)
        for m, scalar in enumerate(scalars):
            want = np.zeros((4, 3))
            scalar.stream("m").fill(want)
            np.testing.assert_array_equal(np.asarray(got)[m], want)

    def test_reseed_broadcast_and_per_member(self):
        batched = BatchedPRNGStreams(SEEDS)
        batched.reseed(7)
        ref = PRNGStreams(7)
        draws = batched.stream("m").uniform()
        want = ref.stream("m").uniform()
        assert all(d == want for d in draws)
        batched.reseed(SEEDS)
        draws = batched.stream("m").uniform()
        for m, s in enumerate(SEEDS):
            assert draws[m] == PRNGStreams(s).stream("m").uniform()

    def test_total_draws_counts_vector_draws(self):
        batched = BatchedPRNGStreams(SEEDS)
        batched.stream("a").uniform()
        batched.stream("a").uniform()
        batched.stream("b").uniform()
        assert batched.total_draws() == 3


# --------------------------------------------------------------------------- #
# run_model_batch vs run_model over the real model
# --------------------------------------------------------------------------- #
def _assert_member_matches(scalar, batched):
    assert list(scalar.outputs) == list(batched.outputs)
    for name in scalar.outputs:
        np.testing.assert_array_equal(
            scalar.outputs[name], batched.outputs[name]
        )
        np.testing.assert_array_equal(
            scalar.first_outputs[name], batched.first_outputs[name]
        )
    assert scalar.statements_executed == batched.statements_executed
    assert scalar.prng_draws == batched.prng_draws
    assert scalar.coverage.counts == batched.coverage.counts


CASES = {
    "control": (ModelConfig(), FPConfig()),
    "fma": (ModelConfig(), FPConfig(fma=True)),
    **{
        patch: (ModelConfig(patches=(patch,)), FPConfig())
        for patch in sorted(list_patches())
    },
}


@pytest.mark.parametrize("case", sorted(CASES))
def test_batch_matches_scalar_bit_for_bit(case):
    model, fp = CASES[case]
    source = build_model_source(model)
    configs = [
        RunConfig(model=model, nsteps=1, pertlim=1e-14, seed=s, fp=fp)
        for s in SEEDS
    ]
    batch = run_model_batch(configs, source=source)
    for config, batched in zip(configs, batch):
        _assert_member_matches(run_model(config, source=source), batched)


def test_batch_validates_uniformity():
    with pytest.raises(ValueError, match="share"):
        run_model_batch(
            [RunConfig(nsteps=1, seed=1), RunConfig(nsteps=2, seed=2)]
        )
    with pytest.raises(ValueError, match="at least one"):
        run_model_batch([])


# --------------------------------------------------------------------------- #
# masked divergence over synthetic sources
# --------------------------------------------------------------------------- #
DIVERGE_SRC = """
module m
  implicit none
contains
  function classify(x) result(y)
    real, intent(in) :: x
    real :: y
    if (x > 2.0) then
      y = 100.0 + x
    else if (x > 1.0) then
      y = 10.0 + x
    else
      y = x
    end if
  end function classify

  function nested(x) result(y)
    real, intent(in) :: x
    real :: y
    y = 0.0
    if (x > 0.0) then
      y = 1.0
      if (x > 10.0) then
        y = 2.0
      end if
    end if
  end function nested

  function fill_array(x) result(total)
    real, intent(in) :: x
    real :: a(4)
    real :: total
    integer :: i
    do i = 1, 4
      a(i) = x * i
    end do
    if (x > 1.0) then
      a(2) = -1.0
    end if
    total = sum(a)
  end function fill_array

  function flow_rail(x) result(y)
    real, intent(in) :: x
    real :: y
    y = 0.0
    if (x > 1.0) then
      return
    end if
    y = 1.0
  end function flow_rail

  function bounds_rail(x) result(y)
    real, intent(in) :: x
    real :: y
    integer :: i
    y = 0.0
    do i = 1, int(x)
      y = y + 1.0
    end do
  end function bounds_rail
end module m
"""


def _batch(values):
    return np.asarray(values, dtype=np.float64).view(MemberBatch)


def _vec(src=DIVERGE_SRC, seeds=(1, 2, 3)):
    return VecInterpreter.from_source(src, seeds=list(seeds))


class TestMaskedDivergence:
    def test_three_way_branch_blends_per_member(self):
        interp = _vec()
        got = interp.call("m", "classify", [_batch([0.5, 1.5, 2.5])])
        np.testing.assert_array_equal(
            np.asarray(got), [0.5, 11.5, 102.5]
        )

    def test_matches_scalar_interpreter_member_by_member(self):
        from repro.runtime.interpreter import Interpreter

        xs = [0.5, 1.5, 2.5]
        got = _vec().call("m", "classify", [_batch(xs)])
        for m, x in enumerate(xs):
            scalar = Interpreter.from_source(DIVERGE_SRC)
            assert np.asarray(got)[m] == scalar.call("m", "classify", [x])

    def test_nested_divergence(self):
        got = _vec().call("m", "nested", [_batch([-1.0, 5.0, 20.0])])
        np.testing.assert_array_equal(np.asarray(got), [0.0, 1.0, 2.0])

    def test_uniform_condition_takes_fast_path(self):
        got = _vec().call("m", "classify", [_batch([3.0, 4.0, 5.0])])
        np.testing.assert_array_equal(np.asarray(got), [103.0, 104.0, 105.0])

    def test_masked_array_element_store(self):
        got = _vec(seeds=(1, 2)).call("m", "fill_array", [_batch([0.5, 2.0])])
        # member 0: 0.5*(1+2+3+4); member 1: 2+(-1)+6+8
        np.testing.assert_array_equal(np.asarray(got), [5.0, 15.0])

    def test_per_member_statement_accounting(self):
        from repro.runtime.interpreter import Interpreter

        xs = [0.5, 1.5, 2.5]
        interp = _vec()
        interp.call("m", "classify", [_batch(xs)])
        for m, x in enumerate(xs):
            scalar = Interpreter.from_source(DIVERGE_SRC)
            scalar.call("m", "classify", [x])
            assert interp.member_statements(m) == scalar.statements_executed

    def test_per_member_coverage(self):
        from repro.runtime.interpreter import Interpreter

        xs = [0.5, 1.5, 2.5]
        interp = _vec()
        interp.call("m", "classify", [_batch(xs)])
        for m, x in enumerate(xs):
            scalar = Interpreter.from_source(DIVERGE_SRC)
            scalar.call("m", "classify", [x])
            assert interp.member_coverage(m).counts == scalar.coverage.counts


class TestSafetyRails:
    def test_flow_under_mask_refused(self):
        with pytest.raises(VectorizationError, match="return"):
            _vec(seeds=(1, 2)).call("m", "flow_rail", [_batch([0.5, 2.0])])

    def test_flow_uniform_path_allowed(self):
        got = _vec(seeds=(1, 2)).call("m", "flow_rail", [_batch([2.0, 3.0])])
        np.testing.assert_array_equal(np.asarray(got), [0.0, 0.0])

    def test_member_varying_do_bounds_refused(self):
        with pytest.raises(VectorizationError, match="do-loop bounds"):
            _vec(seeds=(1, 2)).call("m", "bounds_rail", [_batch([1.0, 3.0])])

    def test_uniform_do_bounds_allowed(self):
        got = _vec(seeds=(1, 2)).call("m", "bounds_rail", [_batch([3.0, 3.0])])
        # int(x) promotes to a batch, so bounds stay member-varying in
        # representation only when values differ; equal values still batch
        np.testing.assert_array_equal(np.asarray(got), [3.0, 3.0])

    def test_requires_compiled_path(self):
        with pytest.raises(ValueError, match="compile"):
            VecInterpreter.from_source(
                DIVERGE_SRC, seeds=[1, 2], compile=False
            )

    def test_requires_at_least_one_seed(self):
        with pytest.raises(ValueError, match="seed"):
            VecInterpreter.from_source(DIVERGE_SRC, seeds=[])


# --------------------------------------------------------------------------- #
# kernel fusion in the hot path
# --------------------------------------------------------------------------- #
FUSE_SRC = """
module fusemod
  implicit none
  real, parameter :: scale = 2.5
contains
  elemental function warm(x) result(y)
    real, intent(in) :: x
    real :: y
    if (x > 1.0) then
      y = scale * x
    else
      y = x * x
    end if
  end function warm

  function drive(x) result(y)
    real, intent(in) :: x
    real :: y
    y = warm(x) + 1.0
  end function drive

  elemental function dampen(x) result(y)
    real, intent(in) :: x
    real :: y
    y = x * 0.5 + 1.0
  end function dampen

  function drive_array(x) result(total)
    real, intent(in) :: x
    integer :: a(3)
    real :: total
    integer :: i
    do i = 1, 3
      a(i) = i
    end do
    total = sum(dampen(a)) + x
  end function drive_array

  function drive_const(x) result(y)
    real, intent(in) :: x
    real :: y
    y = warm(2.0) + x
  end function drive_const
end module fusemod
"""


def _counter(name):
    from repro.obs import get_metrics

    return get_metrics().counters().get(name, 0)


class TestKernelFusion:
    """The registry-backed fast path is bit-identical and falls back safely."""

    @pytest.fixture(scope="class")
    def registry(self):
        from repro.kgen import KernelRegistry, extract_kernel, verify_kernel
        from repro.runtime.interpreter import Interpreter

        scalar = Interpreter.from_source(FUSE_SRC, collect_coverage=False)
        registry = KernelRegistry()
        for function in ("warm", "dampen"):
            kernel = extract_kernel(scalar, "fusemod", function)
            report = verify_kernel(
                kernel, scalar, ranges=(("x", -2.0, 3.0),)
            )
            assert report.nrms == 0.0
            assert registry.add(kernel, report)
        return registry

    def test_fused_call_is_bit_identical_and_counted(self, registry):
        xs = [0.5, 1.5, 2.5]
        fused = VecInterpreter.from_source(
            FUSE_SRC, seeds=[1, 2, 3], kernels=registry
        )
        got = fused.call("fusemod", "drive", [_batch(xs)])
        assert fused.kernel_calls > 0
        assert fused.kernel_fallbacks == 0
        plain = VecInterpreter.from_source(FUSE_SRC, seeds=[1, 2, 3])
        want = plain.call("fusemod", "drive", [_batch(xs)])
        np.testing.assert_array_equal(np.asarray(got), np.asarray(want))
        # accounting is replayed through the kernel: statement counts and
        # per-member coverage must not notice the swap
        for m in range(len(xs)):
            assert fused.member_statements(m) == plain.member_statements(m)
            assert (
                fused.member_coverage(m).counts
                == plain.member_coverage(m).counts
            )

    def test_array_actual_falls_back_to_interpretation(self, registry):
        xs = [0.5, 2.0]
        fused = VecInterpreter.from_source(
            FUSE_SRC, seeds=[1, 2], kernels=registry
        )
        got = fused.call("fusemod", "drive_array", [_batch(xs)])
        # the elemental call sees a member-uniform model array (integer
        # locals stay plain), not a batch-scalar: it must interpret,
        # never run the kernel on model-shaped data
        assert fused.kernel_fallbacks > 0
        assert fused.kernel_calls == 0
        plain = VecInterpreter.from_source(FUSE_SRC, seeds=[1, 2])
        want = plain.call("fusemod", "drive_array", [_batch(xs)])
        np.testing.assert_array_equal(np.asarray(got), np.asarray(want))

    def test_uniform_scalar_actual_falls_back(self, registry):
        xs = [0.5, 2.0]
        fused = VecInterpreter.from_source(
            FUSE_SRC, seeds=[1, 2], kernels=registry
        )
        got = fused.call("fusemod", "drive_const", [_batch(xs)])
        # warm(2.0) carries no member axis: nothing to vectorize over
        assert fused.kernel_fallbacks > 0
        assert fused.kernel_calls == 0
        plain = VecInterpreter.from_source(FUSE_SRC, seeds=[1, 2])
        want = plain.call("fusemod", "drive_const", [_batch(xs)])
        np.testing.assert_array_equal(np.asarray(got), np.asarray(want))

    def test_no_registry_means_no_kernel_bookkeeping(self):
        plain = VecInterpreter.from_source(FUSE_SRC, seeds=[1, 2])
        plain.call("fusemod", "drive", [_batch([0.5, 2.0])])
        assert plain.kernel_calls == 0
        assert plain.kernel_fallbacks == 0


class TestModelKernelFusion:
    """run_model_batch drives the default kernels over the real model."""

    @pytest.fixture(scope="class")
    def control_source(self):
        source = build_model_source(ModelConfig())
        source.parse()
        return source

    def _configs(self, n=2):
        return [
            RunConfig(model=ModelConfig(), nsteps=1, pertlim=1e-14, seed=s)
            for s in SEEDS[:n]
        ]

    def test_auto_registry_executes_kernels(self, control_source):
        before = _counter("kgen.kernel_calls")
        run_model_batch(self._configs(), source=control_source)
        assert _counter("kgen.kernel_calls") > before

    @pytest.mark.parametrize(
        "target",
        [("wv_saturation", "qsat_water"), ("radsw", "gravity_norm")],
        ids=lambda t: f"{t[0]}.{t[1]}",
    )
    def test_each_default_kernel_executes(self, control_source, target):
        # one single-kernel registry per target proves at least two
        # *distinct* kernels actually run in the model's hot path
        from repro.kgen import KernelRegistry, kernel_registry_for

        full = kernel_registry_for(control_source, FPConfig())
        kernel = full.lookup(*target)
        assert kernel is not None
        solo = KernelRegistry()
        assert solo.add(kernel, full.reports[target])
        before = _counter("kgen.kernel_calls")
        batch = run_model_batch(
            self._configs(), source=control_source, kernels=solo
        )
        assert _counter("kgen.kernel_calls") > before
        for config, run in zip(self._configs(), batch):
            _assert_member_matches(
                run_model(config, source=control_source), run
            )

    def test_env_kill_switch_disables_fusion(self, control_source, monkeypatch):
        monkeypatch.setenv("REPRO_KGEN_FUSION", "0")
        before = _counter("kgen.kernel_calls")
        batch = run_model_batch(self._configs(), source=control_source)
        assert _counter("kgen.kernel_calls") == before
        for config, run in zip(self._configs(), batch):
            _assert_member_matches(
                run_model(config, source=control_source), run
            )


# --------------------------------------------------------------------------- #
# cross-config lanes
# --------------------------------------------------------------------------- #
class TestMemberBatchLane:
    def test_lane_is_an_independent_copy(self):
        mb = np.arange(12, dtype=np.float64).reshape(3, 4).view(MemberBatch)
        lane = mb.lane(1)
        np.testing.assert_array_equal(lane, [4.0, 5.0, 6.0, 7.0])
        assert not isinstance(lane, MemberBatch)
        lane[:] = -1.0
        assert np.asarray(mb)[1, 0] == 4.0

    def test_lane_of_scalar_promoted_slot(self):
        # a scalar slot promoted to (n,) yields 0-d per-lane values; they
        # must come back by value, where .member() would hand out a view
        mb = _batch([1.0, 2.0, 3.0])
        lane = mb.lane(2)
        assert np.ndim(lane) == 0
        assert float(lane) == 3.0
        view = mb.member(2)
        assert float(view) == 3.0


class TestHeterogeneousLanes:
    """run_model_batch accepts configs differing beyond the model/fp/nsteps."""

    def test_mixed_coverage_lanes_match_scalar(self):
        model = ModelConfig()
        source = build_model_source(model)
        configs = [
            RunConfig(
                model=model, nsteps=1, pertlim=1e-14, seed=SEEDS[0],
                collect_coverage=True,
            ),
            RunConfig(
                model=model, nsteps=1, pertlim=1e-14, seed=SEEDS[1],
                collect_coverage=False,
            ),
        ]
        before = _counter("vec.fused_configs")
        batch = run_model_batch(configs, source=source)
        assert _counter("vec.fused_configs") == before + 1
        for config, run in zip(configs, batch):
            _assert_member_matches(run_model(config, source=source), run)
        assert batch[0].coverage.counts != {}
        assert batch[1].coverage.counts == {}

    def test_per_lane_statement_budget_enforced(self):
        from repro.runtime import StatementLimitExceeded

        model = ModelConfig()
        source = build_model_source(model)
        configs = [
            RunConfig(model=model, nsteps=1, pertlim=1e-14, seed=SEEDS[0]),
            RunConfig(
                model=model, nsteps=1, pertlim=1e-14, seed=SEEDS[1],
                max_statements=10,
            ),
        ]
        with pytest.raises(StatementLimitExceeded):
            run_model_batch(configs, source=source)

"""RunConfig validation and RunResult.output_array (ensemble satellites)."""

import numpy as np
import pytest

from repro.model.registry import OUTPUT_FIELD_NAMES
from repro.runtime import RunConfig, run_model


@pytest.fixture(scope="module")
def two_step_run():
    return run_model(RunConfig(nsteps=2, pertlim=1e-14, seed=777))


class TestRunConfigValidation:
    def test_zero_and_negative_nsteps_rejected(self):
        with pytest.raises(ValueError, match="nsteps must be >= 1"):
            RunConfig(nsteps=0)
        with pytest.raises(ValueError, match="nsteps must be >= 1"):
            RunConfig(nsteps=-3)

    def test_non_int_nsteps_rejected(self):
        with pytest.raises(ValueError, match="nsteps must be an int"):
            RunConfig(nsteps=1.5)
        with pytest.raises(ValueError, match="nsteps must be an int"):
            RunConfig(nsteps=True)

    def test_non_finite_pertlim_rejected(self):
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValueError, match="pertlim must be finite"):
                RunConfig(pertlim=bad)

    def test_non_numeric_pertlim_rejected(self):
        with pytest.raises(ValueError, match="pertlim"):
            RunConfig(pertlim="0.001")

    def test_non_int_seed_rejected(self):
        with pytest.raises(ValueError, match="seed must be an int"):
            RunConfig(seed=1.0)
        with pytest.raises(ValueError, match="seed must be an int"):
            RunConfig(seed="42")
        with pytest.raises(ValueError, match="seed must be an int"):
            RunConfig(seed=True)

    def test_bad_max_statements_rejected(self):
        with pytest.raises(ValueError, match="max_statements"):
            RunConfig(max_statements=0)

    def test_valid_configs_construct(self):
        RunConfig()
        RunConfig(nsteps=1, pertlim=-1e-14, seed=0)
        RunConfig(pertlim=0)  # int zero is a fine real number


class TestOutputArray:
    def test_default_order_matches_registry_then_extras(self, control_run):
        names = list(control_run.outputs)
        array = control_run.output_array()
        assert array.shape == (len(names),)
        declared = list(OUTPUT_FIELD_NAMES)
        assert names[: len(declared)] == declared
        vector = control_run.output_vector()
        np.testing.assert_array_equal(
            array, np.array([vector[n] for n in names])
        )

    def test_explicit_name_order_is_respected(self, control_run):
        names = sorted(control_run.outputs)[:5]
        array = control_run.output_array(names)
        vector = control_run.output_vector()
        np.testing.assert_array_equal(
            array, np.array([vector[n] for n in names])
        )

    def test_first_snapshot_array(self, two_step_run):
        names = list(two_step_run.outputs)
        first = two_step_run.output_array(names, which="first")
        assert first.shape == (len(names),)
        assert np.isfinite(first).all()
        # multi-step run: at least one field evolved after step one
        assert not np.array_equal(first, two_step_run.output_array(names))

    def test_single_step_run_has_first_equal_final(self, control_run):
        names = list(control_run.outputs)
        np.testing.assert_array_equal(
            control_run.output_array(names, which="first"),
            control_run.output_array(names),
        )

    def test_unknown_field_raises_named_keyerror(self, control_run):
        with pytest.raises(KeyError, match="NOT_A_FIELD"):
            control_run.output_array(["NOT_A_FIELD"])

    def test_unknown_snapshot_rejected(self, control_run):
        with pytest.raises(ValueError, match="final.*first"):
            control_run.output_array(which="middle")

    def test_first_outputs_populated_for_every_field(self, control_run):
        assert set(control_run.first_outputs) == set(control_run.outputs)

"""Statement-semantics conformance tests for the interpreter.

Covers the executable subset the model exercises — do-loop bounds/steps,
``exit``/``cycle``, ``select case`` (values and ranges), ``where``, intent
protection, argument binding (sharing vs copy-back, keywords), derived
types, use-association — plus the runtime's FPU, PRNG and coverage layers.
"""

import numpy as np
import pytest

from repro.runtime.coverage import CoverageTrace
from repro.runtime.fpu import FPConfig, FPU
from repro.runtime.interpreter import (
    Interpreter,
    StatementLimitExceeded,
    StopModel,
)
from repro.runtime.prng import PRNGStreams
from repro.runtime.values import (
    FortranRuntimeError,
    IntentViolationError,
    UndefinedNameError,
)


def run(source: str, sub: str, args=(), module: str = "m", **kwargs):
    interp = Interpreter.from_source(source, **kwargs)
    return interp.call(module, sub, list(args))


# --------------------------------------------------------------------------- #
# do loops
# --------------------------------------------------------------------------- #
DO_SRC = """
module m
  implicit none
contains
  function count_up(n) result(total)
    integer, intent(in) :: n
    integer :: total, i
    total = 0
    do i = 1, n
      total = total + i
    end do
  end function count_up

  function negative_step() result(total)
    integer :: total, k
    total = 0
    do k = 10, 1, -2
      total = total * 100 + k
    end do
  end function negative_step

  function zero_trips() result(total)
    integer :: total, i
    total = 0
    do i = 5, 1
      total = total + 1
    end do
  end function zero_trips

  function var_after_loop(n) result(final)
    integer, intent(in) :: n
    integer :: final, i
    do i = 1, n
      final = 0
    end do
    final = i
  end function var_after_loop

  function exit_cycle() result(total)
    integer :: total, i
    total = 0
    do i = 1, 100
      if (mod(i, 2) == 0) then
        cycle
      end if
      if (i > 7) then
        exit
      end if
      total = total + i
    end do
  end function exit_cycle

  function nested(n) result(total)
    integer, intent(in) :: n
    integer :: total, i, k
    total = 0
    do k = n, 1, -1
      do i = 1, k
        if (i == 3) then
          exit
        end if
        total = total + 1
      end do
    end do
  end function nested

  function while_loop() result(x)
    real :: x
    x = 1.0
    do while (x < 100.0)
      x = x * 3.0
    end do
  end function while_loop
end module m
"""


class TestDoLoops:
    def test_simple_bounds(self):
        assert run(DO_SRC, "count_up", [5]) == 15

    def test_negative_step_order(self):
        # iterates 10, 8, 6, 4, 2 in that order
        assert run(DO_SRC, "negative_step") == 1008060402

    def test_zero_trip_count(self):
        assert run(DO_SRC, "zero_trips") == 0

    def test_control_var_one_past_end_after_completion(self):
        # Fortran: after `do i = 1, n` completes, i == n + 1
        assert run(DO_SRC, "var_after_loop", [4]) == 5

    def test_exit_and_cycle(self):
        # odd i up to 7: 1 + 3 + 5 + 7
        assert run(DO_SRC, "exit_cycle") == 16

    def test_exit_leaves_only_innermost_loop(self):
        # k=4: i=1,2 -> 2; k=3: 2; k=2: 2; k=1: 1
        assert run(DO_SRC, "nested", [4]) == 7

    def test_do_while(self):
        assert run(DO_SRC, "while_loop") == 243.0

    def test_runaway_loop_hits_statement_budget(self):
        src = """
module m
  implicit none
contains
  subroutine spin()
    real :: x
    x = 0.0
    do while (x < 1.0)
      x = x * 1.0
    end do
  end subroutine spin
end module m
"""
        interp = Interpreter.from_source(src, max_statements=500)
        with pytest.raises(StatementLimitExceeded):
            interp.call("m", "spin")


# --------------------------------------------------------------------------- #
# select case
# --------------------------------------------------------------------------- #
SELECT_SRC = """
module m
  implicit none
contains
  function classify(k) result(r)
    integer, intent(in) :: k
    integer :: r
    select case (k)
    case (:0)
      r = -1
    case (1:3, 7)
      r = 1
    case (4)
      r = 2
    case (10:)
      r = 3
    case default
      r = 0
    end select
  end function classify

  function named(tag) result(r)
    character(len=*), intent(in) :: tag
    integer :: r
    select case (tag)
    case ('cold')
      r = 1
    case ('warm', 'hot')
      r = 2
    case default
      r = 3
    end select
  end function named
end module m
"""


class TestSelectCase:
    @pytest.mark.parametrize(
        "k,expected",
        [(-5, -1), (0, -1), (1, 1), (3, 1), (7, 1), (4, 2), (10, 3), (99, 3),
         (5, 0), (8, 0)],
    )
    def test_integer_ranges(self, k, expected):
        assert run(SELECT_SRC, "classify", [k]) == expected

    @pytest.mark.parametrize(
        "tag,expected", [("cold", 1), ("warm", 2), ("hot", 2), ("tepid", 3)]
    )
    def test_character_selector(self, tag, expected):
        assert run(SELECT_SRC, "named", [tag]) == expected


# --------------------------------------------------------------------------- #
# intent protection and argument binding
# --------------------------------------------------------------------------- #
INTENT_SRC = """
module m
  implicit none
  real, parameter :: fixed = 2.5
contains
  subroutine bad_write(x)
    real, intent(in) :: x
    x = 0.0
  end subroutine bad_write

  subroutine bad_array_write(a)
    real, intent(in) :: a(3)
    a(1) = 0.0
  end subroutine bad_array_write

  subroutine bad_param_write()
    fixed = 0.0
  end subroutine bad_param_write

  subroutine scalar_out(x, y)
    real, intent(in) :: x
    real, intent(out) :: y
    y = 2.0 * x
  end subroutine scalar_out

  function keyword_call() result(r)
    real :: r, a, b
    a = 3.0
    call scalar_out(y=b, x=a)
    r = b
  end function keyword_call

  subroutine fill(a, n)
    integer, intent(in) :: n
    real, intent(out) :: a(n)
    integer :: i
    do i = 1, n
      a(i) = i * 10.0
    end do
  end subroutine fill

  function array_shared() result(r)
    real :: buf(4)
    real :: r
    call fill(buf, 4)
    r = buf(1) + buf(4)
  end function array_shared

  function int_division() result(r)
    integer :: r
    r = (-7) / 2 * 100 + 7 / 2
  end function int_division
end module m
"""


class TestIntentAndBinding:
    def test_write_to_intent_in_scalar_raises(self):
        interp = Interpreter.from_source(INTENT_SRC)
        with pytest.raises(IntentViolationError):
            interp.call("m", "bad_write", [1.0])

    def test_write_to_intent_in_array_raises(self):
        src_caller = INTENT_SRC.replace(
            "end module m",
            """
  subroutine call_bad()
    real :: local(3)
    call bad_array_write(local)
  end subroutine call_bad
end module m""",
        )
        interp = Interpreter.from_source(src_caller)
        with pytest.raises(IntentViolationError):
            interp.call("m", "call_bad")

    def test_write_to_parameter_raises(self):
        interp = Interpreter.from_source(INTENT_SRC)
        with pytest.raises(IntentViolationError):
            interp.call("m", "bad_param_write")

    def test_keyword_arguments_bind_by_dummy_name(self):
        assert run(INTENT_SRC, "keyword_call") == 6.0

    def test_intent_out_array_shared_with_caller(self):
        assert run(INTENT_SRC, "array_shared") == 50.0

    def test_python_level_array_sharing(self):
        interp = Interpreter.from_source(INTENT_SRC)
        buf = np.zeros(4)
        interp.call("m", "fill", [buf, 4])
        np.testing.assert_array_equal(buf, [10.0, 20.0, 30.0, 40.0])

    def test_fortran_integer_division_truncates_toward_zero(self):
        assert run(INTENT_SRC, "int_division") == -297  # -3*100 + 3

    def test_unknown_name_is_loud(self):
        src = """
module m
  implicit none
contains
  subroutine s()
    real :: x
    x = no_such_thing + 1.0
  end subroutine s
end module m
"""
        with pytest.raises(UndefinedNameError):
            run(src, "s")


# --------------------------------------------------------------------------- #
# derived types, module state, use association
# --------------------------------------------------------------------------- #
MODULES_SRC = """
module constants
  implicit none
  integer, parameter :: n = 3
  real, parameter :: scale = 2.0
end module constants

module typesmod
  use constants, only: n
  implicit none
  type point
    real :: x
    real :: coords(n)
  end type point
contains
  subroutine point_init(p, base)
    type(point), intent(inout) :: p
    real, intent(in) :: base
    integer :: i
    p%x = base
    do i = 1, n
      p%coords(i) = base * i
    end do
  end subroutine point_init
end module typesmod

module consumer
  use constants, only: big => scale
  use typesmod, only: point, point_init
  implicit none
  type(point) :: saved
  integer :: calls = 0
contains
  function use_point(base) result(total)
    real, intent(in) :: base
    real :: total
    integer :: i
    call point_init(saved, base)
    calls = calls + 1
    total = saved%x * big
    do i = 1, 3
      total = total + saved%coords(i)
    end do
  end function use_point

  function call_count() result(c)
    integer :: c
    c = calls
  end function call_count
end module consumer
"""


class TestDerivedAndModules:
    def test_derived_type_components_and_renamed_use(self):
        # 5*2 + 5 + 10 + 15 = 40
        assert run(MODULES_SRC, "use_point", [5.0], module="consumer") == 40.0

    def test_module_state_persists_between_calls(self):
        interp = Interpreter.from_source(MODULES_SRC)
        interp.call("consumer", "use_point", [1.0])
        interp.call("consumer", "use_point", [2.0])
        assert interp.call("consumer", "call_count") == 2
        saved = interp.module("consumer").scope.get("saved")
        assert saved.get("x") == 2.0
        np.testing.assert_array_equal(saved.get("coords"), [2.0, 4.0, 6.0])


# --------------------------------------------------------------------------- #
# where blocks, whole-array assignment, stop
# --------------------------------------------------------------------------- #
MISC_SRC = """
module m
  implicit none
contains
  function masked() result(total)
    real :: a(5), total
    integer :: i
    do i = 1, 5
      a(i) = i * 1.0
    end do
    where (a > 3.0)
      a = a * 10.0
    elsewhere
      a = 0.0
    end where
    total = sum(a)
  end function masked

  function fill_all() result(total)
    real :: a(4), b(4), total
    a = 2.5
    b = a
    b(2) = 0.0
    total = sum(a) + sum(b)
  end function fill_all

  subroutine abort_now()
    stop 'boom'
  end subroutine abort_now
end module m
"""


class TestSections:
    def test_negative_stride_section_keeps_all_elements(self):
        # regression: a(5:2:-1) must walk 5,4,3,2 — the naive stop bound
        # silently dropped the tail of the reversed section
        src = """
module m
  implicit none
contains
  function reversed() result(total)
    real :: a(5), total
    integer :: i
    do i = 1, 5
      a(i) = i * 1.0
    end do
    total = sum(a(5:2:-1)) * 1000.0 + sum(a(5:1:-1))
  end function reversed
end module m
"""
        # 5+4+3+2 = 14 and 5+4+3+2+1 = 15
        assert run(src, "reversed") == 14015.0

    def test_plain_sections_are_inclusive(self):
        src = """
module m
  implicit none
contains
  function sliced() result(total)
    real :: a(6), total
    integer :: i
    do i = 1, 6
      a(i) = i * 1.0
    end do
    total = sum(a(2:4)) * 100.0 + sum(a(:3)) + sum(a(5:))
  end function sliced
end module m
"""
        # (2+3+4)*100 + (1+2+3) + (5+6)
        assert run(src, "sliced") == 917.0

    def test_non_default_lower_bound_is_rejected_loudly(self):
        # regression: a(0:4) used to allocate 5 slots but rotate every
        # section access; the index layer is 1-based only
        src = """
module m
  implicit none
contains
  subroutine s()
    real :: a(0:4)
    a(0) = 1.0
  end subroutine s
end module m
"""
        with pytest.raises(FortranRuntimeError, match="lower bound"):
            run(src, "s")

    def test_explicit_one_based_bounds_still_allocate(self):
        src = """
module m
  implicit none
contains
  function ok() result(total)
    real :: a(1:4), total
    a = 2.0
    total = sum(a)
  end function ok
end module m
"""
        assert run(src, "ok") == 8.0


class TestArraysAndStop:
    def test_where_elsewhere_masked_assignment(self):
        assert run(MISC_SRC, "masked") == 90.0  # 0+0+0+40+50

    def test_whole_array_fill_and_copy(self):
        # a untouched by b's edit: 10.0 + 7.5
        assert run(MISC_SRC, "fill_all") == 17.5

    def test_stop_raises_stop_model(self):
        interp = Interpreter.from_source(MISC_SRC)
        with pytest.raises(StopModel, match="boom"):
            interp.call("m", "abort_now")


# --------------------------------------------------------------------------- #
# FPU model
# --------------------------------------------------------------------------- #
class TestFPU:
    def test_fma_single_rounding_differs_from_two_roundings(self):
        fpu = FPU()
        a = 1.0 + 2.0 ** -27
        b = 1.0 + 2.0 ** -27
        c = -(1.0 + 2.0 ** -26)
        unfused = a * b + c
        fused = fpu.fma(a, b, c)
        assert unfused == 0.0
        assert fused == 2.0 ** -54  # the bit the unfused product rounds away

    def test_fma_matches_plain_when_exact(self):
        fpu = FPU()
        assert fpu.fma(3.0, 4.0, 5.0) == 17.0

    def test_fma_elementwise_on_arrays(self):
        fpu = FPU()
        a = np.array([1.0 + 2.0 ** -27, 3.0])
        b = np.array([1.0 + 2.0 ** -27, 4.0])
        c = np.array([-(1.0 + 2.0 ** -26), 5.0])
        np.testing.assert_array_equal(fpu.fma(a, b, c), [2.0 ** -54, 17.0])

    def test_flush_to_zero(self):
        # 1e-320 is subnormal: kept by default, flushed with the knob on
        fpu = FPU(FPConfig(flush_to_zero=True))
        assert fpu.mul(1e-200, 1e-120) == 0.0
        assert FPU().mul(1e-200, 1e-120) != 0.0

    def test_fma_config_module_restriction(self):
        cfg = FPConfig(fma=True, fma_modules=frozenset({"micro_mg"}))
        assert cfg.fma_enabled_in("micro_mg")
        assert not cfg.fma_enabled_in("radlw")
        assert FPConfig(fma=True).fma_enabled_in("anything")
        assert not FPConfig().fma_enabled_in("micro_mg")

    def test_interpreted_fma_contraction(self):
        src = """
module m
  implicit none
contains
  function muladd(a, b, c) result(r)
    real, intent(in) :: a, b, c
    real :: r
    r = a * b + c
  end function muladd
end module m
"""
        args = [1.0 + 2.0 ** -27, 1.0 + 2.0 ** -27, -(1.0 + 2.0 ** -26)]
        plain = run(src, "muladd", args)
        fused = run(src, "muladd", args, fp=FPConfig(fma=True))
        assert plain == 0.0
        assert fused == 2.0 ** -54

    def test_fma_preserves_operand_evaluation_order(self):
        # regression: the c + a*b contraction must still evaluate c first,
        # so FMA changes only rounding, never side-effect order
        src = """
module m
  implicit none
  integer :: log1 = 0
  integer :: log2 = 0
  integer :: tick = 0
contains
  function noisy(which) result(r)
    integer, intent(in) :: which
    real :: r
    tick = tick + 1
    if (which == 1) then
      log1 = tick
    else
      log2 = tick
    end if
    r = 1.0
  end function noisy

  function combined() result(x)
    real :: x
    x = noisy(1) + 2.0 * noisy(2)
  end function combined
end module m
"""
        for fp in (FPConfig(), FPConfig(fma=True)):
            interp = Interpreter.from_source(src, fp=fp)
            interp.call("m", "combined")
            scope = interp.module("m").scope
            assert scope.get("log1") == 1, fp  # left operand evaluated first
            assert scope.get("log2") == 2, fp


# --------------------------------------------------------------------------- #
# PRNG streams
# --------------------------------------------------------------------------- #
class TestPRNG:
    def test_same_seed_same_sequence(self):
        a = PRNGStreams(7)
        b = PRNGStreams(7)
        assert [a.stream("x").uniform() for _ in range(5)] == [
            b.stream("x").uniform() for _ in range(5)
        ]

    def test_streams_are_module_independent(self):
        streams = PRNGStreams(7)
        first = streams.stream("a").uniform()
        # draws on another module's stream do not shift module a's stream
        fresh = PRNGStreams(7)
        fresh.stream("b").uniform()
        fresh.stream("b").uniform()
        assert fresh.stream("a").uniform() == first

    def test_different_modules_differ(self):
        streams = PRNGStreams(7)
        assert streams.stream("a").uniform() != streams.stream("b").uniform()

    def test_values_in_unit_interval(self):
        stream = PRNGStreams(123).stream("m")
        draws = [stream.uniform() for _ in range(1000)]
        assert all(0.0 <= d < 1.0 for d in draws)
        assert 0.4 < sum(draws) / len(draws) < 0.6

    def test_reseed_restarts(self):
        streams = PRNGStreams(7)
        first = streams.stream("a").uniform()
        streams.stream("a").uniform()
        streams.reseed(7)
        assert streams.stream("a").uniform() == first

    def test_fill_writes_through_non_contiguous_sections(self):
        # regression: reshape(-1) on a non-contiguous 2-D view returns a
        # copy, so the section silently stayed zero
        src = """
module m
  implicit none
contains
  subroutine draw_corner(a)
    real, intent(inout) :: a(4, 4)
    call random_number(a(1:2, 1:2))
  end subroutine draw_corner
end module m
"""
        a = np.zeros((4, 4))
        Interpreter.from_source(src, seed=3).call("m", "draw_corner", [a])
        corner = a[:2, :2]
        assert np.all((corner > 0.0) & (corner < 1.0))
        assert np.all(a[2:, :] == 0.0) and np.all(a[:, 2:] == 0.0)

    def test_random_number_intrinsic_uses_module_stream(self):
        src = """
module m
  implicit none
contains
  subroutine draw(a)
    real, intent(out) :: a(4)
    call random_number(a)
  end subroutine draw
end module m
"""
        out1 = np.zeros(4)
        out2 = np.zeros(4)
        Interpreter.from_source(src, seed=3).call("m", "draw", [out1])
        Interpreter.from_source(src, seed=3).call("m", "draw", [out2])
        np.testing.assert_array_equal(out1, out2)
        assert np.all((out1 >= 0.0) & (out1 < 1.0))
        assert len(set(out1.tolist())) == 4


# --------------------------------------------------------------------------- #
# coverage trace mechanics
# --------------------------------------------------------------------------- #
class TestCoverageTrace:
    def test_record_and_query(self):
        trace = CoverageTrace()
        trace.record("a.F90", 3)
        trace.record("a.F90", 3)
        trace.record("b.F90", 1)
        trace.record("a.F90", 0)  # ignored: no real line
        assert trace.hits("a.F90", 3) == 2
        assert trace.files() == ["a.F90", "b.F90"]
        assert trace.executed_lines("a.F90") == [3]
        assert trace.total_statements == 3
        assert trace.total_lines == 2

    def test_merge_and_restrict(self):
        one = CoverageTrace({("a.F90", 1): 2})
        two = CoverageTrace({("a.F90", 1): 1, ("b.F90", 5): 4})
        merged = one.merged(two)
        assert merged.hits("a.F90", 1) == 3
        assert merged.hits("b.F90", 5) == 4
        assert one.hits("a.F90", 1) == 2  # originals untouched
        assert merged.restricted_to(["b.F90"]).files() == ["b.F90"]

    def test_value_equality(self):
        assert CoverageTrace({("a", 1): 2}) == CoverageTrace({("a", 1): 2})
        assert CoverageTrace({("a", 1): 2}) != CoverageTrace({("a", 1): 3})

    def test_interpreter_records_per_line_counts(self):
        src = """
module m
  implicit none
contains
  function loop(n) result(total)
    integer, intent(in) :: n
    integer :: total, i
    total = 0
    do i = 1, n
      total = total + 1
    end do
  end function loop
end module m
"""
        interp = Interpreter.from_source(src, filename="loop.F90")
        interp.call("m", "loop", [5])
        trace = interp.coverage
        assert trace.files() == ["loop.F90"]
        # the loop body line ran 5 times, the do header once
        body_hits = max(trace.lines("loop.F90").values())
        assert body_hits == 5

    def test_coverage_can_be_disabled(self):
        src = MISC_SRC
        interp = Interpreter.from_source(src, collect_coverage=False)
        interp.call("m", "fill_all")
        assert interp.coverage is None


# --------------------------------------------------------------------------- #
# misc runtime errors
# --------------------------------------------------------------------------- #
def test_calling_missing_module_is_loud():
    interp = Interpreter.from_source(MISC_SRC)
    with pytest.raises(UndefinedNameError, match="no module"):
        interp.call("nope", "s")


def test_wrong_argument_count_is_loud():
    interp = Interpreter.from_source(MISC_SRC)
    with pytest.raises(FortranRuntimeError):
        interp.call("m", "abort_now", [1, 2, 3])

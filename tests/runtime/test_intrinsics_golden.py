"""Golden expression-evaluation tables for every supported intrinsic.

Every name in :data:`repro.fortran.intrinsics.EXPRESSION_INTRINSICS` must
have at least one golden entry here (``present`` is exercised through the
interpreter because it needs a call frame); a completeness test enforces it
so adding an intrinsic to the front end without a runtime implementation —
or without conformance coverage — fails loudly.
"""

import math

import numpy as np
import pytest

from repro.fortran.intrinsics import EXPRESSION_INTRINSICS
from repro.runtime.interpreter import Interpreter
from repro.runtime.intrinsics import INTRINSIC_FUNCTIONS, call_intrinsic

#: (intrinsic, args, kwargs, expected).  Exact comparison for ints, bools,
#: strings and exactly-representable floats; approx for transcendentals.
GOLDEN = [
    ("abs", (-3,), {}, 3),
    ("abs", (-2.5,), {}, 2.5),
    ("acos", (0.5,), {}, math.acos(0.5)),
    ("aint", (2.7,), {}, 2.0),
    ("aint", (-2.7,), {}, -2.0),
    ("asin", (0.5,), {}, math.asin(0.5)),
    ("atan", (1.0,), {}, math.atan(1.0)),
    ("atan2", (1.0, -1.0), {}, math.atan2(1.0, -1.0)),
    ("cos", (1.2,), {}, math.cos(1.2)),
    ("cosh", (0.5,), {}, math.cosh(0.5)),
    ("dble", (3,), {}, 3.0),
    ("dim", (5.0, 3.0), {}, 2.0),
    ("dim", (3, 5), {}, 0),
    ("epsilon", (1.0,), {}, 2.220446049250313e-16),
    ("erf", (0.5,), {}, math.erf(0.5)),
    ("erfc", (0.5,), {}, math.erfc(0.5)),
    ("exp", (1.0,), {}, math.e),
    ("floor", (2.7,), {}, 2),
    ("floor", (-2.7,), {}, -3),
    ("gamma", (5.0,), {}, 24.0),
    ("huge", (1,), {}, 2147483647),
    ("huge", (1.0,), {}, 1.7976931348623157e308),
    ("int", (2.9,), {}, 2),
    ("int", (-2.9,), {}, -2),
    ("log", (10.0,), {}, math.log(10.0)),
    ("log10", (100.0,), {}, 2.0),
    ("max", (1, 7, 3), {}, 7),
    ("max", (1.0, 2.5), {}, 2.5),
    ("min", (4, 2, 9), {}, 2),
    ("min", (0.25, -1.5), {}, -1.5),
    ("mod", (7, 3), {}, 1),
    ("mod", (-7, 3), {}, -1),       # Fortran mod takes the sign of a
    ("mod", (7.5, 2.0), {}, 1.5),
    ("mod", (-7.5, 2.0), {}, -1.5),
    ("nint", (2.5,), {}, 3),        # half away from zero, not banker's
    ("nint", (-2.5,), {}, -3),
    ("nint", (2.4,), {}, 2),
    ("real", (3,), {}, 3.0),
    ("sign", (3.0, -1.0), {}, -3.0),
    ("sign", (-3.0, 1.0), {}, 3.0),
    ("sign", (3, -2), {}, -3),
    ("sign", (2.0, 0.0), {}, 2.0),  # zero counts as non-negative
    ("sin", (0.7,), {}, math.sin(0.7)),
    ("sinh", (0.7,), {}, math.sinh(0.7)),
    ("sqrt", (2.25,), {}, 1.5),
    ("tan", (0.3,), {}, math.tan(0.3)),
    ("tanh", (0.3,), {}, math.tanh(0.3)),
    ("tiny", (1.0,), {}, 2.2250738585072014e-308),
    # reductions / array queries
    ("maxval", (np.array([1.0, 5.0, 2.0]),), {}, 5.0),
    ("minval", (np.array([1.0, 5.0, 2.0]),), {}, 1.0),
    ("sum", (np.array([1.0, 2.0, 3.5]),), {}, 6.5),
    ("sum", (np.array([1, 2, 3]),), {}, 6),
    ("size", (np.zeros((2, 3)),), {}, 6),
    ("size", (np.zeros((2, 3)), 2), {}, 3),
    ("count", (np.array([True, False, True]),), {}, 2),
    ("any", (np.array([False, True]),), {}, True),
    ("any", (np.array([False, False]),), {}, False),
    ("all", (np.array([True, True]),), {}, True),
    ("all", (np.array([True, False]),), {}, False),
    ("dot_product", (np.array([1.0, 2.0, 3.0]), np.array([4.0, 5.0, 6.0])), {}, 32.0),
    ("merge", (1.0, 2.0, True), {}, 1.0),
    ("merge", (1.0, 2.0, False), {}, 2.0),
    # character handling
    ("trim", ("abc  ",), {}, "abc"),
    ("adjustl", ("  abc",), {}, "abc"),
    ("len_trim", ("abc  ",), {}, 3),
]

#: array-valued golden entries, compared with array_equal
GOLDEN_ARRAYS = [
    ("merge", (np.array([1.0, 2.0]), np.array([9.0, 8.0]), np.array([True, False])),
     {}, np.array([1.0, 8.0])),
    ("spread", (1.5, 1, 3), {}, np.array([1.5, 1.5, 1.5])),
    ("spread", (np.array([1.0, 2.0]), 2, 2), {}, np.array([[1.0, 1.0], [2.0, 2.0]])),
    # Fortran reshape is column-major
    ("reshape", (np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0]), (2, 3)),
     {}, np.array([[1.0, 3.0, 5.0], [2.0, 4.0, 6.0]])),
    ("matmul", (np.array([[1.0, 2.0], [3.0, 4.0]]), np.array([[5.0, 6.0], [7.0, 8.0]])),
     {}, np.array([[19.0, 22.0], [43.0, 50.0]])),
    ("abs", (np.array([-1.0, 2.0]),), {}, np.array([1.0, 2.0])),
    ("sqrt", (np.array([4.0, 9.0]),), {}, np.array([2.0, 3.0])),
    ("floor", (np.array([1.7, -1.7]),), {}, np.array([1, -2])),
    ("nint", (np.array([0.5, -0.5, 1.4]),), {}, np.array([1, -1, 1])),
    ("erf", (np.array([0.0, 0.5]),), {}, np.array([0.0, math.erf(0.5)])),
]


@pytest.mark.parametrize(
    "name,args,kwargs,expected",
    GOLDEN,
    ids=[f"{n}-{i}" for i, (n, *_rest) in enumerate(GOLDEN)],
)
def test_golden_scalar(name, args, kwargs, expected):
    result = call_intrinsic(name, list(args), kwargs)
    if isinstance(expected, bool):
        assert result is expected or result == expected
        assert isinstance(result, (bool, np.bool_))
    elif isinstance(expected, int):
        assert result == expected
        assert isinstance(result, (int, np.integer)), (name, type(result))
    elif isinstance(expected, float):
        assert result == pytest.approx(expected, rel=1e-15, abs=0.0)
        assert isinstance(result, (float, np.floating)), (name, type(result))
    else:
        assert result == expected


@pytest.mark.parametrize(
    "name,args,kwargs,expected",
    GOLDEN_ARRAYS,
    ids=[f"{n}-arr{i}" for i, (n, *_rest) in enumerate(GOLDEN_ARRAYS)],
)
def test_golden_array(name, args, kwargs, expected):
    result = call_intrinsic(name, list(args), kwargs)
    assert isinstance(result, np.ndarray)
    assert result.shape == expected.shape
    np.testing.assert_allclose(result, expected, rtol=1e-15)


def test_every_front_end_intrinsic_has_a_runtime_implementation():
    assert set(INTRINSIC_FUNCTIONS) >= set(EXPRESSION_INTRINSICS)


def test_every_intrinsic_has_golden_coverage():
    covered = {name for name, *_ in GOLDEN}
    covered |= {name for name, *_ in GOLDEN_ARRAYS}
    covered.add("present")  # needs a call frame: tested through the interpreter
    missing = set(EXPRESSION_INTRINSICS) - covered
    assert not missing, f"intrinsics without golden entries: {sorted(missing)}"


PRESENT_SRC = """
module m
  implicit none
contains
  function f(a, b) result(r)
    real, intent(in) :: a
    real, intent(in), optional :: b
    real :: r
    if (present(b)) then
      r = a + b
    else
      r = a - 1.0
    end if
  end function f

  function without() result(r)
    real :: r
    r = f(10.0)
  end function without

  function with() result(r)
    real :: r
    r = f(10.0, 2.0)
  end function with

  function with_keyword() result(r)
    real :: r
    r = f(10.0, b=5.0)
  end function with_keyword
end module m
"""


def test_present_through_the_interpreter():
    interp = Interpreter.from_source(PRESENT_SRC)
    assert interp.call("m", "without") == 9.0
    assert interp.call("m", "with") == 12.0
    assert interp.call("m", "with_keyword") == 15.0


INTRINSIC_IN_EXPR_SRC = """
module m
  implicit none
contains
  function mixed(x) result(r)
    real, intent(in) :: x
    real :: r
    r = sqrt(max(x, 4.0)) + mod(7, 3) * merge(10.0, 20.0, x > 0.0)
  end function mixed

  function shadowed(i) result(r)
    integer, intent(in) :: i
    real :: sum(3)
    real :: r
    sum(1) = 1.0
    sum(2) = 2.0
    sum(3) = 4.0
    r = sum(i)
  end function shadowed
end module m
"""


def test_intrinsics_inside_expressions():
    interp = Interpreter.from_source(INTRINSIC_IN_EXPR_SRC)
    # sqrt(max(9,4)) + mod(7,3)*merge(10,20,True) = 3 + 1*10
    assert interp.call("m", "mixed", [9.0]) == 13.0
    # sqrt(4) + 1*20 with x=-1 -> 22
    assert interp.call("m", "mixed", [-1.0]) == 22.0


def test_local_array_shadows_intrinsic():
    interp = Interpreter.from_source(INTRINSIC_IN_EXPR_SRC)
    # `sum` is a local array here, not the reduction intrinsic
    assert interp.call("m", "shadowed", [3]) == 4.0

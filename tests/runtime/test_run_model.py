"""Full-model conformance: completion, determinism, divergence, coverage.

These are the acceptance tests of the `repro.runtime` tentpole: an unpatched
FC5 run completes with a finite named-output-variable vector and a non-empty
coverage trace; identical configs reproduce bit-identically; every
registered bug patch and the FMA compiler-flag knob produce numerically
different outputs; and files the compset excludes (or the first steps never
reach) never appear in the trace.
"""

import numpy as np
import pytest

import repro
from repro.model import (
    COMPSET_FC5,
    ModelConfig,
    OUTPUT_FIELD_NAMES,
    PatchError,
    build_model_source,
    list_patches,
)
from repro.runtime import CoverageTrace, FPConfig, RunConfig, RunResult, run_model


class TestControlRun:
    def test_completes_with_finite_outputs(self, control_run):
        assert isinstance(control_run, RunResult)
        assert control_run.is_finite()

    def test_every_declared_output_field_is_produced(self, control_run):
        assert set(OUTPUT_FIELD_NAMES) <= set(control_run.outputs)
        vector = control_run.output_vector()
        assert len(vector) >= len(OUTPUT_FIELD_NAMES)
        assert all(np.isfinite(v) for v in vector.values())

    def test_output_vector_preserves_registry_order(self, control_run):
        names = list(control_run.output_vector())
        assert names[: len(OUTPUT_FIELD_NAMES)] == list(OUTPUT_FIELD_NAMES)

    def test_outputs_are_physically_plausible(self, control_run):
        vec = control_run.output_vector()
        assert 180.0 < vec["T"] < 320.0          # global mean temperature, K
        assert 50000.0 < vec["PS"] < 110000.0    # surface pressure, Pa
        assert 0.0 <= vec["CLDTOT"] <= 1.0       # cloud fraction
        assert vec["PRECT"] >= 0.0               # precipitation rate

    def test_coverage_trace_is_non_empty(self, control_run):
        trace = control_run.coverage
        assert isinstance(trace, CoverageTrace)
        assert trace.total_statements > 1000
        assert len(trace.files()) > 20

    def test_run_model_via_public_facade(self, control_run):
        result = repro.run_model(repro.RunConfig(nsteps=1))
        assert result.output_vector() == control_run.output_vector()


class TestDeterminism:
    def test_same_config_is_bit_identical(self, control_run):
        again = run_model(RunConfig(nsteps=1))
        assert set(again.outputs) == set(control_run.outputs)
        for name, value in control_run.outputs.items():
            assert np.array_equal(value, again.outputs[name]), name

    def test_same_config_gives_identical_coverage(self, control_run):
        again = run_model(RunConfig(nsteps=1))
        assert again.coverage == control_run.coverage
        assert again.statements_executed == control_run.statements_executed
        assert again.prng_draws == control_run.prng_draws

    def test_different_seed_diverges(self, control_run):
        other = run_model(RunConfig(nsteps=1, seed=99999))
        diffs = control_run.difference(other)
        assert any(v > 0 for v in diffs.values())

    def test_pertlim_perturbs_the_trajectory(self, control_run):
        other = run_model(RunConfig(nsteps=1, pertlim=1.0e-8))
        diffs = control_run.difference(other)
        assert any(v > 0 for v in diffs.values())


class TestDivergence:
    @pytest.mark.parametrize("patch_name", sorted(list_patches()))
    def test_each_registered_patch_changes_the_outputs(self, control_run, patch_name):
        patched = run_model(
            RunConfig(model=ModelConfig(patches=(patch_name,)), nsteps=1)
        )
        assert patched.is_finite()
        diffs = patched.difference(control_run)
        changed = [name for name, v in diffs.items() if v > 0]
        assert changed, f"patch {patch_name!r} produced bit-identical outputs"

    def test_fma_mode_changes_at_least_one_output(self, control_run):
        fused = run_model(RunConfig(nsteps=1, fp=FPConfig(fma=True)))
        assert fused.is_finite()
        diffs = fused.difference(control_run)
        changed = [name for name, v in diffs.items() if v > 0]
        assert changed
        # ULP-level origin: the largest change after one step stays small
        assert max(diffs.values()) < 1.0

    def test_fma_restricted_to_one_module_still_diverges(self, control_run):
        # dyn_hydrostatic's hyam*p0 + hybm*ps contraction writes pressure
        # state directly, so its ULP-level difference survives to outputs
        # (micro_mg's fused sites only perturb tiny tendencies that are
        # absorbed when added to much larger state values)
        fused = run_model(
            RunConfig(
                nsteps=1,
                fp=FPConfig(fma=True, fma_modules=frozenset({"dyn_hydrostatic"})),
            )
        )
        diffs = fused.difference(control_run)
        assert any(v > 0 for v in diffs.values())


class TestCoverageSanity:
    def test_uncompiled_files_never_appear_in_the_trace(self, control_run):
        executed = set(control_run.coverage.files())
        assert not executed & COMPSET_FC5.excluded_files

    def test_compiled_but_unreached_files_never_appear(self, control_run):
        executed = set(control_run.coverage.files())
        # compiled into the build, but not called in the first steps
        for unreached in ("seasalt_optics.F90", "restart_mod.F90",
                          "abortutils.F90", "cam_logfile.F90"):
            assert unreached not in executed

    def test_every_traced_file_is_a_compiled_file(self, control_run):
        source = build_model_source(ModelConfig())
        assert set(control_run.coverage.files()) <= set(source.compiled_files)

    def test_hot_physics_files_are_traced(self, control_run):
        executed = set(control_run.coverage.files())
        for hot in ("micro_mg.F90", "cloud_fraction.F90", "dyn_comp.F90",
                    "physpkg.F90", "cam_comp.F90"):
            assert hot in executed

    def test_coverage_can_be_disabled(self):
        result = run_model(RunConfig(nsteps=1, collect_coverage=False))
        assert result.coverage.total_statements == 0
        assert result.is_finite()


class TestRunModelInterface:
    def test_source_reuse_shares_the_parse(self, control_run):
        source = build_model_source(ModelConfig())
        asts = source.parse()
        result = run_model(RunConfig(nsteps=1), source=source)
        assert source.parse() is asts  # cache untouched by the run
        assert result.output_vector() == control_run.output_vector()

    def test_source_config_mismatch_is_loud(self):
        source = build_model_source(ModelConfig(patches=("goffgratch",)))
        with pytest.raises(ValueError, match="different ModelConfig"):
            run_model(RunConfig(nsteps=1), source=source)

    def test_source_macro_mismatch_is_loud(self):
        # regression: macros used to be excluded from ModelConfig equality,
        # so a differently-preprocessed source slipped past the guard
        source = build_model_source(ModelConfig(macros={"WACCM_PHYS": "1"}))
        with pytest.raises(ValueError, match="different ModelConfig"):
            run_model(RunConfig(nsteps=1), source=source)

    def test_unknown_patch_name_raises_patch_error(self):
        with pytest.raises(PatchError, match="known"):
            run_model(RunConfig(model=ModelConfig(patches=("no-such-bug",))))

    def test_two_steps_stay_finite(self):
        result = run_model(RunConfig(nsteps=2))
        assert result.is_finite()
        assert result.statements_executed > 0

"""Shared fixtures for the interpreter conformance suite.

The unpatched control run is the comparison baseline of half the suite, so
it is computed once per session; every test treats results as read-only.
"""

import pytest

from repro.runtime import RunConfig, run_model


@pytest.fixture(scope="session")
def control_run():
    """One-step unpatched FC5 control run (shared, read-only)."""
    return run_model(RunConfig(nsteps=1))

"""PRNG stream independence across member seeds (ensemble satellite).

The accepted ensemble's statistics assume that two members with different
base seeds draw *unrelated* random sequences in every module, and that two
modules never share a sequence under one seed.  These tests pin both
properties for the splitmix64 stream family.
"""

import numpy as np

from repro.ensemble import EnsembleSpec
from repro.runtime.prng import PRNGStreams

MODULES = ("cloud_fraction", "microp_aero", "micro_mg", "cam_comp")
N_DRAWS = 4096


def draws(base_seed: int, module: str, n: int = N_DRAWS) -> np.ndarray:
    stream = PRNGStreams(base_seed).stream(module)
    return np.array([stream.uniform() for _ in range(n)])


class TestSeedIndependence:
    def test_distinct_seeds_give_uncorrelated_streams_per_module(self):
        """Member seeds from a real spec: pairwise stream correlations are
        noise-level in every module."""
        seeds = [c.seed for c in EnsembleSpec(n_members=6).member_configs()]
        # 3-sigma band for the correlation of independent uniform pairs
        bound = 3.0 / np.sqrt(N_DRAWS)
        for module in MODULES:
            sequences = [draws(seed, module) for seed in seeds]
            for i in range(len(seeds)):
                for j in range(i + 1, len(seeds)):
                    corr = np.corrcoef(sequences[i], sequences[j])[0, 1]
                    assert abs(corr) < bound, (
                        f"streams of seeds {seeds[i]} and {seeds[j]} in "
                        f"{module} correlate: {corr:.4f}"
                    )

    def test_distinct_seeds_share_no_values(self):
        a = set(draws(1001, "cloud_fraction"))
        b = set(draws(1002, "cloud_fraction"))
        assert not a & b

    def test_adjacent_seeds_are_still_independent(self):
        """splitmix64 decorrelates even seed, seed+1 (the worst case for
        naive LCG-style families)."""
        x = draws(42, "micro_mg")
        y = draws(43, "micro_mg")
        assert abs(np.corrcoef(x, y)[0, 1]) < 3.0 / np.sqrt(N_DRAWS)

    def test_same_seed_reproduces_exactly(self):
        np.testing.assert_array_equal(
            draws(1234, "cam_comp"), draws(1234, "cam_comp")
        )


class TestModuleIndependence:
    def test_modules_have_distinct_streams_under_one_seed(self):
        sequences = {m: draws(99, m, 512) for m in MODULES}
        values = list(sequences.values())
        for i in range(len(values)):
            for j in range(i + 1, len(values)):
                assert not np.array_equal(values[i], values[j])
                corr = np.corrcoef(values[i], values[j])[0, 1]
                assert abs(corr) < 3.0 / np.sqrt(512)

    def test_draw_in_one_module_never_shifts_another(self):
        streams = PRNGStreams(7)
        expected = streams.stream("b").uniform()
        fresh = PRNGStreams(7)
        for _ in range(100):
            fresh.stream("a").uniform()
        assert fresh.stream("b").uniform() == expected

    def test_uniforms_cover_the_unit_interval(self):
        x = draws(5, "cloud_fraction")
        assert x.min() >= 0.0 and x.max() < 1.0
        # crude equidistribution check: decile counts within 5 sigma
        counts, _ = np.histogram(x, bins=10, range=(0.0, 1.0))
        expected = N_DRAWS / 10
        assert np.all(np.abs(counts - expected) < 5 * np.sqrt(expected))

"""The compiled-closure interpreter is bit-for-bit the dispatch walker.

``Interpreter(compile=True)`` (the default everywhere) is pure behavioural
memoization: outputs, first-write snapshots, coverage counts and statement
accounting must be exactly those of ``Interpreter(compile=False)`` — the
PR 2 reference semantics the benchmark uses as its baseline.
"""

import numpy as np
import pytest

from repro.model import ModelConfig, build_model_source
from repro.runtime import FPConfig
from repro.runtime.interpreter import Interpreter

CASES = {
    "control": (ModelConfig(), FPConfig()),
    "fma": (ModelConfig(), FPConfig(fma=True)),
    "ftz": (ModelConfig(), FPConfig(flush_to_zero=True)),
    "patched": (ModelConfig(patches=("goffgratch",)), FPConfig()),
}


def execute(asts, compile_flag, fp):
    interp = Interpreter(asts, fp=fp, seed=321, compile=compile_flag)
    interp.call("cam_comp", "cam_init", [1e-14, 321])
    interp.call("cam_comp", "cam_run_step", [])
    return interp


@pytest.mark.parametrize("case", sorted(CASES))
def test_compiled_path_matches_dispatch_bit_for_bit(case):
    model, fp = CASES[case]
    asts = build_model_source(model).parse()
    dispatch = execute(asts, False, fp)
    compiled = execute(asts, True, fp)

    assert set(dispatch.history.fields) == set(compiled.history.fields)
    for name, value in dispatch.history.fields.items():
        np.testing.assert_array_equal(
            np.asarray(value), np.asarray(compiled.history.fields[name])
        )
        np.testing.assert_array_equal(
            np.asarray(dispatch.history.first[name]),
            np.asarray(compiled.history.first[name]),
        )
    assert dispatch.history.ncalls == compiled.history.ncalls
    assert dispatch.statements_executed == compiled.statements_executed
    assert dispatch.prng.total_draws() == compiled.prng.total_draws()
    assert dispatch.coverage.counts == compiled.coverage.counts

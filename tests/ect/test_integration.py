"""The paper's pass/fail experiments, end to end over the live interpreter.

This is the PR's acceptance criterion: a 30-member accepted ensemble is
generated once, and ECT must flag every registered bug patch and the FMA
compiler-flag build as inconsistent while held-out unpatched runs (new
seeds, new pertlim draws) pass.
"""

import numpy as np
import pytest

from repro.ect import UltraFastECT
from repro.ensemble import EnsembleSpec
from repro.model import ModelConfig, build_model_source, list_patches
from repro.runtime import FPConfig, run_model

SPEC = EnsembleSpec(n_members=30, collect_coverage=False)


@pytest.fixture(scope="module")
def accepted_ensemble(accepted_ensemble_30):
    assert accepted_ensemble_30.spec == SPEC  # shared session fixture
    return accepted_ensemble_30


@pytest.fixture(scope="module")
def ect(accepted_ensemble):
    return UltraFastECT(accepted_ensemble)


def experimental_runs(model=None, fp=None, base=0, count=3):
    source = build_model_source(model) if model is not None else None
    runs = []
    for i in range(count):
        config = SPEC.experimental_config(base + i, model=model, fp=fp)
        runs.append(run_model(config, source=source))
    return runs


class TestAcceptedEnsemble:
    def test_thirty_members_complete_with_finite_matrix(
        self, accepted_ensemble
    ):
        assert accepted_ensemble.n_members == 30
        assert np.isfinite(accepted_ensemble.matrix).all()

    def test_first_step_snapshot_provides_bit_invariants(
        self, accepted_ensemble, ect
    ):
        # the high-sensitivity channel exists: some @first fields are
        # bit-identical across all 30 members
        assert any(
            name.endswith("@first") for name in ect.invariant_names
        )

    def test_pca_truncation_is_meaningful(self, ect):
        assert 1 <= ect.n_pcs < 30
        assert ect.explained_variance_fraction >= ect.config.variance_fraction


class TestVerdicts:
    def test_held_out_unpatched_runs_pass(self, ect):
        result = ect.test(experimental_runs())
        assert result.consistent, result.summary()

    def test_second_held_out_batch_passes(self, ect):
        result = ect.test(experimental_runs(base=10))
        assert result.consistent, result.summary()

    @pytest.mark.parametrize("patch", sorted(list_patches()))
    def test_every_registered_patch_fails(self, ect, patch):
        model = ModelConfig(patches=(patch,))
        result = ect.test(experimental_runs(model=model))
        assert not result.consistent, f"{patch}: {result.summary()}"
        assert result.failing_variables

    def test_fma_mode_fails_via_first_step_invariants(self, ect):
        result = ect.test(experimental_runs(fp=FPConfig(fma=True)))
        assert not result.consistent, result.summary()
        # FMA's ULP-level signature lives in the bit-exact channel
        assert any(
            name.endswith("@first") for name in result.invariant_violations
        )

    def test_rand_mt_is_attributed_to_the_perturbation_stream(self, ect):
        model = ModelConfig(patches=("rand-mt",))
        result = ect.test(experimental_runs(model=model))
        assert not result.consistent
        implicated = " ".join(result.failing_variables)
        assert "RHPERT" in implicated

"""ECT unit semantics on small synthetic ensembles (no model runs)."""

import numpy as np
import pytest

from repro.ect import EctConfig, EctResult, UltraFastECT, ect_test


class FakeEnsemble:
    def __init__(self, matrix, names=None):
        self.matrix = np.asarray(matrix, dtype=float)
        self.variable_names = names or [
            f"V{j}" for j in range(self.matrix.shape[1])
        ]


def correlated_ensemble(n=24, seed=0):
    """Members varying mostly along one direction, plus small noise."""
    rng = np.random.default_rng(seed)
    driver = rng.normal(size=(n, 1))
    loadings = np.array([[1.0, 0.8, -0.6, 0.3]])
    noise = 0.1 * rng.normal(size=(n, 4))
    matrix = np.hstack([driver @ loadings + noise, np.full((n, 1), 7.5)])
    return FakeEnsemble(matrix, ["A", "B", "C", "D", "CONST"])


class TestFit:
    def test_invariant_columns_are_split_out(self):
        ect = UltraFastECT(correlated_ensemble())
        assert ect.invariant_names == ["CONST"]
        assert ect.invariant_values.tolist() == [7.5]

    def test_truncation_keeps_leading_variance(self):
        ect = UltraFastECT(
            correlated_ensemble(), EctConfig(variance_fraction=0.8)
        )
        # one strong common factor -> one or two PCs dominate
        assert 1 <= ect.n_pcs <= 2
        assert ect.explained_variance_fraction >= 0.8

    def test_max_pcs_cap(self):
        ect = UltraFastECT(
            correlated_ensemble(),
            EctConfig(variance_fraction=1.0, max_pcs=2),
        )
        assert ect.n_pcs == 2

    def test_member_scores_have_unit_std(self):
        ens = correlated_ensemble()
        ect = UltraFastECT(ens)
        scores = np.array([ect.scores(row) for row in ens.matrix])
        np.testing.assert_allclose(scores.std(axis=0, ddof=1), 1.0)

    def test_too_few_members_rejected(self):
        with pytest.raises(ValueError, match="at least 3"):
            UltraFastECT(FakeEnsemble(np.eye(2)))

    def test_config_validation(self):
        with pytest.raises(ValueError, match="variance_fraction"):
            EctConfig(variance_fraction=0.0)
        with pytest.raises(ValueError, match="sigma"):
            EctConfig(sigma=-1.0)


class TestVerdicts:
    def test_members_themselves_are_consistent(self):
        ens = correlated_ensemble()
        ect = UltraFastECT(ens)
        result = ect.test([ens.matrix[0], ens.matrix[1], ens.matrix[2]])
        assert result.consistent
        assert isinstance(result, EctResult)
        assert bool(result) is True

    def test_shifted_runs_fail_the_pc_rule(self):
        ens = correlated_ensemble()
        ect = UltraFastECT(ens, EctConfig(min_failing_pcs=1))
        shifted = ens.matrix[:3] + np.array([8.0, 6.4, -4.8, 2.4, 0.0])
        result = ect.test(list(shifted))
        assert not result.consistent
        assert result.failing_pcs
        assert result.failing_variables

    def test_invariant_violation_fails(self):
        ens = correlated_ensemble()
        ect = UltraFastECT(ens)
        bad = ens.matrix[:3].copy()
        bad[:, 4] += 1e-12  # ULP-scale nudge of the bit-exact invariant
        result = ect.test(list(bad))
        assert not result.consistent
        assert result.invariant_violations == ["CONST"]
        assert "CONST" in result.failing_variables

    def test_single_violating_run_is_tolerated(self):
        """One bad run of three is below min_invariant_runs."""
        ens = correlated_ensemble()
        ect = UltraFastECT(ens)
        runs = ens.matrix[:3].copy()
        runs[0, 4] += 1e-12
        assert ect.test(list(runs)).consistent

    def test_gross_outlier_channel(self):
        """A deviation confined to one variable still fails the test."""
        ens = correlated_ensemble()
        ect = UltraFastECT(ens, EctConfig(min_failing_pcs=99))
        runs = ens.matrix[:3].copy()
        runs[:, 3] += 3.0  # ~10 ensemble sds on D only
        result = ect.test(list(runs))
        assert not result.consistent
        assert "D" in result.outlier_variables
        assert "D" in result.failing_variables

    def test_failure_rule_counts_runs_per_pc(self):
        ens = correlated_ensemble()
        ect = UltraFastECT(ens, EctConfig(min_failing_pcs=1))
        shift = np.array([8.0, 6.4, -4.8, 2.4, 0.0])
        one_bad = [ens.matrix[0] + shift, ens.matrix[1], ens.matrix[2]]
        assert ect.test(one_bad).consistent  # 1 of 3 < min_runs_per_pc
        two_bad = [ens.matrix[0] + shift, ens.matrix[1] + shift, ens.matrix[2]]
        assert not ect.test(two_bad).consistent

    def test_single_run_test_uses_reduced_run_threshold(self):
        ens = correlated_ensemble()
        ect = UltraFastECT(ens, EctConfig(min_failing_pcs=1))
        shifted = ens.matrix[0] + np.array([8.0, 6.4, -4.8, 2.4, 0.0])
        assert not ect.test([shifted]).consistent

    def test_empty_runs_rejected(self):
        ect = UltraFastECT(correlated_ensemble())
        with pytest.raises(ValueError, match="at least one"):
            ect.test([])

    def test_wrong_vector_shape_rejected(self):
        ect = UltraFastECT(correlated_ensemble())
        with pytest.raises(ValueError, match="shape"):
            ect.test([np.zeros(3)])

    def test_ect_test_convenience_matches_class(self):
        ens = correlated_ensemble()
        runs = [ens.matrix[0], ens.matrix[1], ens.matrix[2]]
        a = ect_test(ens, runs)
        b = UltraFastECT(ens).test(runs)
        assert a.consistent == b.consistent
        assert a.failing_pcs == b.failing_pcs

    def test_summary_mentions_verdict(self):
        ens = correlated_ensemble()
        result = UltraFastECT(ens).test([ens.matrix[0]])
        assert "consistent" in result.summary()

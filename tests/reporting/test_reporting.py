"""Report objects and paper-style tables."""

import json

import numpy as np
import pytest

from repro.ect import EctConfig, EctResult
from repro.reporting import (
    LocalizationReport,
    ReportTable,
    VerdictReport,
    centrality_table,
    degree_table,
)


def ect_result(consistent=False):
    return EctResult(
        consistent=consistent,
        n_runs=3,
        n_pcs=5,
        failing_pcs=[0, 2],
        failing_variables=["WSUB", "WSUB@first"],
        invariant_violations=["WSUB@first"],
        pc_fail_counts=np.array([3, 0, 2, 0, 0]),
        run_scores=np.zeros((3, 5)),
        config=EctConfig(),
        outlier_variables=["WSUB"],
    )


def report(**overrides):
    fields = dict(
        experiment="wsubbug",
        patch="wsubbug",
        fma=False,
        expected_modules=["microp_aero"],
        verdict=VerdictReport.from_ect(ect_result()),
        slice_modules=["microp_aero", "physpkg", "cam_comp"],
        refined_modules=["microp_aero", "physpkg"],
        refine_iterations=2,
        target_modules=10,
        total_modules=40,
    )
    fields.update(overrides)
    return LocalizationReport(**fields)


class TestVerdictReport:
    def test_from_ect_copies_the_decision(self):
        v = VerdictReport.from_ect(ect_result())
        assert v.detected and not v.consistent
        assert v.failing_variables == ["WSUB", "WSUB@first"]
        assert v.outlier_variables == ["WSUB"]

    def test_round_trip(self):
        v = VerdictReport.from_ect(ect_result())
        assert VerdictReport.from_dict(v.to_dict()) == v


class TestLocalizationReport:
    def test_localized_when_detected_small_and_contained(self):
        assert report().localized

    def test_not_localized_when_consistent(self):
        r = report(verdict=VerdictReport.from_ect(ect_result(True)))
        assert not r.detected and not r.localized

    def test_not_localized_when_set_exceeds_target(self):
        r = report(refined_modules=[f"m{i}" for i in range(11)])
        assert not r.localized

    def test_not_localized_when_culprit_missed(self):
        r = report(refined_modules=["physpkg", "cam_comp"])
        assert not r.contained and not r.localized

    def test_containment_vacuous_without_expected_culprit(self):
        r = report(patch=None, fma=True, expected_modules=[])
        assert r.contained and r.localized

    def test_round_trip_preserves_everything(self):
        r = report()
        again = LocalizationReport.from_dict(r.to_dict())
        assert again.to_dict() == r.to_dict()
        assert again.localized == r.localized

    def test_json_is_stable_and_carries_derived_flags(self):
        doc = json.loads(report().to_json())
        assert doc["localized"] is True
        assert doc["detected"] is True
        assert doc["contained"] is True

    def test_markdown_mentions_the_essentials(self):
        text = report().to_markdown()
        assert "wsubbug" in text
        assert "microp_aero" in text
        assert "Localized: True" in text
        assert "2 of 5 PCs failing" in text

    def test_markdown_for_fma(self):
        text = report(patch=None, fma=True, expected_modules=[]).to_markdown()
        assert "FMA" in text
        assert "expected culprit" not in text


class TestTables:
    @pytest.fixture(scope="class")
    def graph(self):
        from repro.graphs import build_metagraph
        from repro.model import ModelConfig, build_model_source

        return build_metagraph(build_model_source(ModelConfig()))

    def test_degree_table_over_the_fc5_graph(self, graph):
        table = degree_table(graph)
        stats = dict(table.rows)
        assert stats["modules"] == 40
        assert stats["directed edges"] > 0
        md = table.to_markdown()
        assert md.startswith("### Metagraph degree statistics")
        assert "| modules | 40 |" in md

    def test_centrality_table_covers_every_module(self, graph):
        table = centrality_table(graph)
        assert len(table.rows) == 40
        assert table.columns[0] == "module"
        modules = [row[0] for row in table.rows]
        assert "microp_aero" in modules
        # most central first: descending eigenvector-in centrality
        eig = [row[-1] for row in table.rows]
        assert eig == sorted(eig, reverse=True)

    def test_centrality_table_top_truncates(self, graph):
        assert len(centrality_table(graph, top=5).rows) == 5

    def test_tables_are_deterministic(self, graph):
        assert (
            centrality_table(graph).to_markdown()
            == centrality_table(graph).to_markdown()
        )
        assert degree_table(graph).to_dict() == degree_table(graph).to_dict()

    def test_report_table_markdown_shape(self):
        table = ReportTable(
            title="T", columns=["a", "b"], rows=[[1, 0.123456], ["x", True]]
        )
        lines = table.to_markdown().splitlines()
        assert lines[0] == "### T"
        assert lines[2] == "| a | b |"
        assert lines[4] == "| 1 | 0.1235 |"
        assert lines[5] == "| x | True |"
